// E10 — Analytics substrate performance (tutorial §4: "semantic search
// and analytics over entities and relations"). google-benchmark micro-
// benchmarks over the triple store (index vs full scan), the join
// engine (selectivity reordering on/off, streamed vs materialized
// LIMIT, plan cache hit vs miss), the pluggable TripleSource (in-memory
// snapshot vs LSM-backed StoredTripleSource) and the LSM store (Bloom
// filters on/off) — the design-choice ablations of DESIGN.md §4.
//
// `--smoke` skips google-benchmark and runs every ablation once on a
// tiny graph (CI liveness + perf-trajectory seed, not a measurement).

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_util.h"
#include "query/engine.h"
#include "rdf/triple_store.h"
#include "storage/kv_store.h"
#include "storage/stored_triple_source.h"
#include "storage/triple_codec.h"
#include "util/random.h"

using namespace kb;

namespace {

constexpr size_t kEntities = 2000;
constexpr size_t kTriples = 100000;
constexpr size_t kStoredTriples = 20000;  // LSM mirror is write-heavier

/// A synthetic (s, p, o) graph with 16 predicates.
rdf::TripleStore BuildStore(uint64_t seed, size_t entities, size_t triples) {
  rdf::TripleStore store;
  Rng rng(seed);
  std::vector<rdf::TermId> es, ps;
  for (size_t i = 0; i < entities; ++i) {
    es.push_back(store.dict().Intern(rdf::Term::Iri("e" + std::to_string(i))));
  }
  for (size_t i = 0; i < 16; ++i) {
    ps.push_back(store.dict().Intern(rdf::Term::Iri("p" + std::to_string(i))));
  }
  for (size_t i = 0; i < triples; ++i) {
    store.Add(rdf::Triple(rng.Choice(es), rng.Choice(ps), rng.Choice(es)));
  }
  store.EnsureIndexed();
  return store;
}

/// Lazy shared graph so `--smoke` never pays for the full-size build.
rdf::TripleStore& GetStore() {
  static rdf::TripleStore* store =
      new rdf::TripleStore(BuildStore(33, kEntities, kTriples));
  return *store;
}

std::string TempDbDir(const std::string& tag) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("kbforge_bench_" + tag))
                         .string();
  std::filesystem::remove_all(path);
  return path;
}

/// The same graph held twice: in memory and as triple keys in the LSM
/// store, queried through the common TripleSource interface.
struct StoredFixture {
  rdf::TripleStore mem;
  std::unique_ptr<storage::KVStore> kv;
  std::unique_ptr<storage::StoredTripleSource> source;

  StoredFixture(size_t entities, size_t triples) {
    mem = BuildStore(34, entities, triples);
    storage::StoreOptions options;
    options.use_wal = false;
    auto store = storage::KVStore::Open(options, TempDbDir("stored_src"));
    kv = std::move(*store);
    mem.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
      for (storage::TripleOrder order :
           {storage::TripleOrder::kSpo, storage::TripleOrder::kPos,
            storage::TripleOrder::kOsp}) {
        kv->Put(storage::EncodeTripleKey(order, t), "").ok();
      }
      return true;
    });
    kv->Flush().ok();
    source = std::make_unique<storage::StoredTripleSource>(kv.get());
  }
};

StoredFixture& GetStoredFixture() {
  static StoredFixture* fixture = new StoredFixture(kEntities, kStoredTriples);
  return *fixture;
}

query::SelectQuery MakeJoinQuery(const rdf::TripleStore& store,
                                 bool selective_last) {
  // ?x p0 ?y . ?y p1 ?z . ?x p2 e7  — the bound pattern placed first
  // or last in written order.
  auto var = [](const char* v) { return query::QueryTerm::Var(v); };
  auto bound = [&](const std::string& iri) {
    return query::QueryTerm::Bound(store.dict().Lookup(rdf::Term::Iri(iri)));
  };
  query::SelectQuery q;
  query::QueryPattern p1{var("x"), bound("p0"), var("y")};
  query::QueryPattern p2{var("y"), bound("p1"), var("z")};
  query::QueryPattern p3{var("x"), bound("p2"), bound("e7")};
  if (selective_last) {
    q.where = {p1, p2, p3};
  } else {
    q.where = {p3, p1, p2};
  }
  return q;
}

void BM_TriplePattern_Indexed(benchmark::State& state) {
  rdf::TermId subject = GetStore().dict().Lookup(rdf::Term::Iri("e42"));
  for (auto _ : state) {
    rdf::TriplePattern pattern;
    pattern.s = subject;
    benchmark::DoNotOptimize(GetStore().Match(pattern));
  }
}
BENCHMARK(BM_TriplePattern_Indexed);

void BM_TriplePattern_FullScan(benchmark::State& state) {
  rdf::TermId subject = GetStore().dict().Lookup(rdf::Term::Iri("e42"));
  for (auto _ : state) {
    rdf::TriplePattern pattern;
    pattern.s = subject;
    benchmark::DoNotOptimize(GetStore().MatchFullScan(pattern));
  }
}
BENCHMARK(BM_TriplePattern_FullScan);

void BM_Join3_Reordered(benchmark::State& state) {
  query::QueryEngine engine(&GetStore());
  query::SelectQuery q = MakeJoinQuery(GetStore(), /*selective_last=*/true);
  query::ExecutionOptions options;  // reordering on
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q, options));
  }
}
BENCHMARK(BM_Join3_Reordered);

void BM_Join3_WrittenOrder(benchmark::State& state) {
  query::QueryEngine engine(&GetStore());
  query::SelectQuery q = MakeJoinQuery(GetStore(), /*selective_last=*/true);
  query::ExecutionOptions options;
  options.reorder_patterns = false;  // executes the bad written order
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q, options));
  }
}
BENCHMARK(BM_Join3_WrittenOrder);

// ---- Streaming executor ablations ---------------------------------

query::SelectQuery MakeLimitQuery(const rdf::TripleStore& store) {
  query::SelectQuery q;
  q.where.push_back({query::QueryTerm::Var("x"),
                     query::QueryTerm::Bound(
                         store.dict().Lookup(rdf::Term::Iri("p0"))),
                     query::QueryTerm::Var("y")});
  q.limit = 10;
  return q;
}

void BM_Limit10_Streamed(benchmark::State& state) {
  query::QueryEngine engine(&GetStore());
  query::SelectQuery q = MakeLimitQuery(GetStore());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q));  // pushdown on
  }
}
BENCHMARK(BM_Limit10_Streamed);

void BM_Limit10_Materialized(benchmark::State& state) {
  query::QueryEngine engine(&GetStore());
  query::SelectQuery q = MakeLimitQuery(GetStore());
  query::ExecutionOptions options;
  options.pushdown_limit = false;  // drain everything, truncate at the end
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q, options));
  }
}
BENCHMARK(BM_Limit10_Materialized);

void BM_PlanCache_Hit(benchmark::State& state) {
  query::QueryEngine engine(&GetStore());
  query::SelectQuery q = MakeJoinQuery(GetStore(), /*selective_last=*/true);
  q.limit = 1;                  // keep execution cheap: planning dominates
  engine.Execute(q);            // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q));
  }
}
BENCHMARK(BM_PlanCache_Hit);

void BM_PlanCache_Miss(benchmark::State& state) {
  query::QueryEngine engine(&GetStore());
  query::SelectQuery q = MakeJoinQuery(GetStore(), /*selective_last=*/true);
  q.limit = 1;
  query::ExecutionOptions options;
  options.use_plan_cache = false;  // replan (incl. estimates) every run
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q, options));
  }
}
BENCHMARK(BM_PlanCache_Miss);

// ---- TripleSource: memory vs LSM ----------------------------------

void BM_PatternScan_MemorySource(benchmark::State& state) {
  StoredFixture& fixture = GetStoredFixture();
  rdf::TriplePattern pattern;
  pattern.s = fixture.mem.dict().Lookup(rdf::Term::Iri("e42"));
  for (auto _ : state) {
    size_t n = 0;
    fixture.mem.Scan(pattern, [&n](const rdf::Triple&) {
      ++n;
      return true;
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_PatternScan_MemorySource);

void BM_PatternScan_StoredSource(benchmark::State& state) {
  StoredFixture& fixture = GetStoredFixture();
  rdf::TriplePattern pattern;
  pattern.s = fixture.mem.dict().Lookup(rdf::Term::Iri("e42"));
  for (auto _ : state) {
    size_t n = 0;
    fixture.source->Scan(pattern, [&n](const rdf::Triple&) {
      ++n;
      return true;
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_PatternScan_StoredSource);

void BM_Join3_MemorySource(benchmark::State& state) {
  StoredFixture& fixture = GetStoredFixture();
  query::QueryEngine engine(&fixture.mem);
  query::SelectQuery q = MakeJoinQuery(fixture.mem, /*selective_last=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q));
  }
}
BENCHMARK(BM_Join3_MemorySource);

void BM_Join3_StoredSource(benchmark::State& state) {
  StoredFixture& fixture = GetStoredFixture();
  query::QueryEngine engine(fixture.source.get());
  query::SelectQuery q = MakeJoinQuery(fixture.mem, /*selective_last=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q));
  }
}
BENCHMARK(BM_Join3_StoredSource);

// ---- LSM store ----------------------------------------------------

void BM_LsmFill(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = TempDbDir("fill");
    storage::StoreOptions options;
    options.use_wal = state.range(0) != 0;
    auto store = storage::KVStore::Open(options, dir);
    state.ResumeTiming();
    for (int i = 0; i < 20000; ++i) {
      rdf::Triple t(i, i % 16, i * 7 % 2048);
      (*store)
          ->Put(storage::EncodeTripleKey(storage::TripleOrder::kSpo, t),
                "v")
          .ok();
    }
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_LsmFill)->Arg(0)->Arg(1)->ArgName("wal");

struct LsmFixture {
  std::unique_ptr<storage::KVStore> with_bloom;
  std::unique_ptr<storage::KVStore> without_bloom;
  LsmFixture() {
    auto build = [](bool bloom) {
      std::string dir = TempDbDir(bloom ? "bloom" : "nobloom");
      storage::StoreOptions options;
      options.use_wal = false;
      options.l0_compaction_trigger = 1000;  // keep many tables
      options.memtable_flush_bytes = 64 << 10;
      if (!bloom) options.table.bloom_bits_per_key = 0;
      auto store = storage::KVStore::Open(options, dir);
      Rng rng(9);
      for (int i = 0; i < 50000; ++i) {
        (*store)->Put("key" + std::to_string(i), "v").ok();
      }
      (*store)->Flush().ok();
      return std::move(*store);
    };
    with_bloom = build(true);
    without_bloom = build(false);
  }
};

LsmFixture& GetLsm() {
  static LsmFixture* fixture = new LsmFixture();
  return *fixture;
}

void BM_LsmNegativeGet_Bloom(benchmark::State& state) {
  int i = 0;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GetLsm().with_bloom->Get("absent" + std::to_string(i++ % 10000),
                                 &value));
  }
  state.counters["bloom_skips"] = static_cast<double>(
      GetLsm().with_bloom->stats().bloom_skips);
}
BENCHMARK(BM_LsmNegativeGet_Bloom);

void BM_LsmNegativeGet_NoBloom(benchmark::State& state) {
  int i = 0;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GetLsm().without_bloom->Get("absent" + std::to_string(i++ % 10000),
                                    &value));
  }
}
BENCHMARK(BM_LsmNegativeGet_NoBloom);

void BM_LsmPointGet(benchmark::State& state) {
  int i = 0;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GetLsm().with_bloom->Get("key" + std::to_string(i++ % 50000),
                                 &value));
  }
}
BENCHMARK(BM_LsmPointGet);

void BM_LsmScan(benchmark::State& state) {
  for (auto _ : state) {
    size_t n = 0;
    GetLsm().with_bloom->Scan(Slice("key1"), Slice("key2"),
                              [&n](const Slice&, const Slice&) {
                                ++n;
                                return true;
                              });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_LsmScan);

// ---- --smoke: every ablation once on a tiny graph -----------------

double TimeQueryMs(const query::QueryEngine& engine,
                   const query::SelectQuery& q,
                   const query::ExecutionOptions& options,
                   query::QueryStats* stats = nullptr) {
  kbbench::Timer timer;
  engine.Execute(q, options, stats);
  return timer.ms();
}

int RunSmoke() {
  kbbench::Banner(
      "E10 query+storage (smoke)",
      "indexes, join reordering, LIMIT streaming and plan caching each "
      "cut query work; the same plans run off the LSM store",
      "streamed LIMIT visits fewer intermediate rows; cache hits skip "
      "planning; stored-source results match memory");
  rdf::TripleStore store = BuildStore(33, 200, 5000);
  query::QueryEngine engine(&store);

  query::SelectQuery limit_q = MakeLimitQuery(store);
  query::QueryStats streamed, drained;
  query::ExecutionOptions no_pushdown;
  no_pushdown.pushdown_limit = false;
  double streamed_ms = TimeQueryMs(engine, limit_q, {}, &streamed);
  double drained_ms = TimeQueryMs(engine, limit_q, no_pushdown, &drained);
  kbbench::Row("%-34s %8.3f ms  %6llu intermediate rows",
               "LIMIT 10 streamed", streamed_ms,
               static_cast<unsigned long long>(streamed.intermediate_rows));
  kbbench::Row("%-34s %8.3f ms  %6llu intermediate rows",
               "LIMIT 10 materialized", drained_ms,
               static_cast<unsigned long long>(drained.intermediate_rows));

  query::SelectQuery join_q = MakeJoinQuery(store, /*selective_last=*/true);
  query::QueryStats miss, hit;
  query::ExecutionOptions uncached;
  uncached.use_plan_cache = false;
  double miss_ms = TimeQueryMs(engine, join_q, uncached, &miss);
  TimeQueryMs(engine, join_q, {}, nullptr);  // warm
  double hit_ms = TimeQueryMs(engine, join_q, {}, &hit);
  kbbench::Row("%-34s %8.3f ms  cache_hit=%d", "3-way join, replanned",
               miss_ms, miss.plan_cache_hit ? 1 : 0);
  kbbench::Row("%-34s %8.3f ms  cache_hit=%d", "3-way join, cached plan",
               hit_ms, hit.plan_cache_hit ? 1 : 0);

  StoredFixture fixture(/*entities=*/50, /*triples=*/2000);
  query::QueryEngine mem_engine(&fixture.mem);
  query::QueryEngine disk_engine(fixture.source.get());
  query::SelectQuery src_q = MakeJoinQuery(fixture.mem,
                                           /*selective_last=*/true);
  kbbench::Timer mem_timer;
  auto mem_rows = mem_engine.Execute(src_q);
  double mem_ms = mem_timer.ms();
  kbbench::Timer disk_timer;
  auto disk_rows = disk_engine.Execute(src_q);
  double disk_ms = disk_timer.ms();
  kbbench::Row("%-34s %8.3f ms  %zu rows", "3-way join, memory source",
               mem_ms, mem_rows.size());
  kbbench::Row("%-34s %8.3f ms  %zu rows", "3-way join, stored source",
               disk_ms, disk_rows.size());
  kbbench::Report("e10.limit", "streamed_ms", streamed_ms);
  kbbench::Report("e10.limit", "materialized_ms", drained_ms);
  kbbench::Report("e10.limit", "streamed_intermediate_rows",
                  static_cast<double>(streamed.intermediate_rows));
  kbbench::Report("e10.limit", "materialized_intermediate_rows",
                  static_cast<double>(drained.intermediate_rows));
  kbbench::Report("e10.plan_cache", "miss_ms", miss_ms);
  kbbench::Report("e10.plan_cache", "hit_ms", hit_ms);
  kbbench::Report("e10.source", "memory_ms", mem_ms);
  kbbench::Report("e10.source", "stored_ms", disk_ms);
  if (disk_rows.size() != mem_rows.size()) {
    kbbench::Row("FAIL: stored source disagrees with memory source");
    return 1;
  }
  if (streamed.intermediate_rows >= drained.intermediate_rows) {
    kbbench::Row("FAIL: LIMIT pushdown did not reduce intermediate rows");
    return 1;
  }
  if (!hit.plan_cache_hit) {
    kbbench::Row("FAIL: repeated query shape missed the plan cache");
    return 1;
  }
  kbbench::Row("ok");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  if (args.smoke) return RunSmoke();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
