// E10 — Analytics substrate performance (tutorial §4: "semantic search
// and analytics over entities and relations"). google-benchmark micro-
// benchmarks over the triple store (index vs full scan), the join
// engine (selectivity reordering on/off) and the LSM store (Bloom
// filters on/off), i.e. the design-choice ablations of DESIGN.md §4.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "query/engine.h"
#include "rdf/triple_store.h"
#include "storage/kv_store.h"
#include "storage/triple_codec.h"
#include "util/random.h"

using namespace kb;

namespace {

constexpr size_t kEntities = 2000;
constexpr size_t kTriples = 100000;

/// One shared synthetic graph: (s, p, o) with 16 predicates.
rdf::TripleStore* BuildStore() {
  auto* store = new rdf::TripleStore();
  Rng rng(33);
  std::vector<rdf::TermId> entities, predicates;
  for (size_t i = 0; i < kEntities; ++i) {
    entities.push_back(store->dict().Intern(
        rdf::Term::Iri("e" + std::to_string(i))));
  }
  for (size_t i = 0; i < 16; ++i) {
    predicates.push_back(store->dict().Intern(
        rdf::Term::Iri("p" + std::to_string(i))));
  }
  for (size_t i = 0; i < kTriples; ++i) {
    store->Add(rdf::Triple(rng.Choice(entities), rng.Choice(predicates),
                           rng.Choice(entities)));
  }
  store->EnsureIndexed();
  return store;
}

rdf::TripleStore* g_store = BuildStore();

void BM_TriplePattern_Indexed(benchmark::State& state) {
  Rng rng(1);
  rdf::TermId subject = g_store->dict().Lookup(rdf::Term::Iri("e42"));
  for (auto _ : state) {
    rdf::TriplePattern pattern;
    pattern.s = subject;
    benchmark::DoNotOptimize(g_store->Match(pattern));
  }
}
BENCHMARK(BM_TriplePattern_Indexed);

void BM_TriplePattern_FullScan(benchmark::State& state) {
  rdf::TermId subject = g_store->dict().Lookup(rdf::Term::Iri("e42"));
  for (auto _ : state) {
    rdf::TriplePattern pattern;
    pattern.s = subject;
    benchmark::DoNotOptimize(g_store->MatchFullScan(pattern));
  }
}
BENCHMARK(BM_TriplePattern_FullScan);

query::SelectQuery MakeJoinQuery(bool selective_last) {
  // ?x p0 ?y . ?y p1 ?z . ?x p2 e7  — the bound pattern placed first
  // or last in written order.
  auto var = [](const char* v) { return query::QueryTerm::Var(v); };
  auto bound = [&](const std::string& iri) {
    return query::QueryTerm::Bound(
        g_store->dict().Lookup(rdf::Term::Iri(iri)));
  };
  query::SelectQuery q;
  query::QueryPattern p1{var("x"), bound("p0"), var("y")};
  query::QueryPattern p2{var("y"), bound("p1"), var("z")};
  query::QueryPattern p3{var("x"), bound("p2"), bound("e7")};
  if (selective_last) {
    q.where = {p1, p2, p3};
  } else {
    q.where = {p3, p1, p2};
  }
  return q;
}

void BM_Join3_Reordered(benchmark::State& state) {
  query::QueryEngine engine(g_store);
  query::SelectQuery q = MakeJoinQuery(/*selective_last=*/true);
  query::ExecutionOptions options;  // reordering on
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q, options));
  }
}
BENCHMARK(BM_Join3_Reordered);

void BM_Join3_WrittenOrder(benchmark::State& state) {
  query::QueryEngine engine(g_store);
  query::SelectQuery q = MakeJoinQuery(/*selective_last=*/true);
  query::ExecutionOptions options;
  options.reorder_patterns = false;  // executes the bad written order
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(q, options));
  }
}
BENCHMARK(BM_Join3_WrittenOrder);

// ---- LSM store ----------------------------------------------------

std::string TempDbDir(const std::string& tag) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("kbforge_bench_" + tag))
                         .string();
  std::filesystem::remove_all(path);
  return path;
}

void BM_LsmFill(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = TempDbDir("fill");
    storage::StoreOptions options;
    options.use_wal = state.range(0) != 0;
    auto store = storage::KVStore::Open(options, dir);
    state.ResumeTiming();
    for (int i = 0; i < 20000; ++i) {
      rdf::Triple t(i, i % 16, i * 7 % 2048);
      (*store)
          ->Put(storage::EncodeTripleKey(storage::TripleOrder::kSpo, t),
                "v")
          .ok();
    }
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_LsmFill)->Arg(0)->Arg(1)->ArgName("wal");

struct LsmFixture {
  std::unique_ptr<storage::KVStore> with_bloom;
  std::unique_ptr<storage::KVStore> without_bloom;
  LsmFixture() {
    auto build = [](bool bloom) {
      std::string dir = TempDbDir(bloom ? "bloom" : "nobloom");
      storage::StoreOptions options;
      options.use_wal = false;
      options.l0_compaction_trigger = 1000;  // keep many tables
      options.memtable_flush_bytes = 64 << 10;
      if (!bloom) options.table.bloom_bits_per_key = 0;
      auto store = storage::KVStore::Open(options, dir);
      Rng rng(9);
      for (int i = 0; i < 50000; ++i) {
        (*store)->Put("key" + std::to_string(i), "v").ok();
      }
      (*store)->Flush().ok();
      return std::move(*store);
    };
    with_bloom = build(true);
    without_bloom = build(false);
  }
};

LsmFixture* g_lsm = new LsmFixture();

void BM_LsmNegativeGet_Bloom(benchmark::State& state) {
  int i = 0;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_lsm->with_bloom->Get("absent" + std::to_string(i++ % 10000),
                               &value));
  }
  state.counters["bloom_skips"] = static_cast<double>(
      g_lsm->with_bloom->stats().bloom_skips);
}
BENCHMARK(BM_LsmNegativeGet_Bloom);

void BM_LsmNegativeGet_NoBloom(benchmark::State& state) {
  int i = 0;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_lsm->without_bloom->Get("absent" + std::to_string(i++ % 10000),
                                  &value));
  }
}
BENCHMARK(BM_LsmNegativeGet_NoBloom);

void BM_LsmPointGet(benchmark::State& state) {
  int i = 0;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_lsm->with_bloom->Get("key" + std::to_string(i++ % 50000),
                               &value));
  }
}
BENCHMARK(BM_LsmPointGet);

void BM_LsmScan(benchmark::State& state) {
  for (auto _ : state) {
    size_t n = 0;
    g_lsm->with_bloom->Scan(Slice("key1"), Slice("key2"),
                            [&n](const Slice&, const Slice&) {
                              ++n;
                              return true;
                            });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_LsmScan);

}  // namespace

BENCHMARK_MAIN();
