// E11 — Multilingual knowledge and interlinked KBs (tutorial §2/§3):
// harvesting multilingual labels from interwiki links and aligning
// KBs across languages. We sweep interwiki coverage (seed richness)
// and languages with different string drift.

#include <cstdio>

#include "bench_util.h"
#include "corpus/generator.h"
#include "multilingual/aligner.h"
#include "multilingual/interwiki.h"
#include "util/random.h"

using namespace kb;

namespace {

struct AlignSetup {
  multilingual::KbView left;
  multilingual::KbView right;
  std::vector<uint32_t> gold;
};

AlignSetup MakeSetup(const corpus::World& world, const std::string& lang) {
  AlignSetup setup;
  size_t n = world.entities().size();
  setup.left.labels.resize(n);
  setup.left.neighbors.resize(n);
  setup.right.labels.resize(n);
  setup.right.neighbors.resize(n);
  setup.gold.resize(n);
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(5);
  rng.Shuffle(&perm);
  for (uint32_t i = 0; i < n; ++i) {
    setup.left.labels[i] = world.entity(i).labels.at("en");
    setup.right.labels[perm[i]] = world.entity(i).labels.at(lang);
    setup.gold[i] = perm[i];
  }
  for (const corpus::GoldFact& f : world.facts()) {
    if (corpus::GetRelationInfo(f.relation).literal_object) continue;
    setup.left.neighbors[f.subject].push_back(f.object);
    setup.left.neighbors[f.object].push_back(f.subject);
    setup.right.neighbors[perm[f.subject]].push_back(perm[f.object]);
    setup.right.neighbors[perm[f.object]].push_back(perm[f.subject]);
  }
  return setup;
}

}  // namespace

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E11: multilingual labels and cross-lingual KB alignment",
      "multilingual names are harvested from interwiki links; KBs are "
      "interlinked at the entity level across languages using string + "
      "structure signals",
      "interwiki harvest precision ~100% at generator-set coverage; "
      "alignment recovers most links even from few seeds, degrading "
      "gracefully as string drift grows and seeds shrink");

  corpus::WorldOptions world_options;
  world_options.seed = 19;
  world_options.num_persons = args.Scaled(300, 50);
  corpus::World world = corpus::World::Generate(world_options);

  // --- Interwiki harvest at different coverages.
  kbbench::Row("%-12s %10s %12s %10s", "coverage", "labels",
               "precision", "recall");
  for (double coverage : {0.3, 0.7, 1.0}) {
    corpus::CorpusOptions corpus_options;
    corpus_options.seed = 20;
    corpus_options.news_docs = 0;
    corpus_options.web_docs = 0;
    corpus_options.interwiki_coverage = coverage;
    auto docs = corpus::GenerateDocuments(world, corpus_options);
    auto labels = multilingual::HarvestInterwikiLabels(docs);
    size_t correct = 0;
    for (const auto& l : labels) {
      const corpus::Entity& e = world.entity(l.entity);
      auto it = e.labels.find(l.lang);
      if (it != e.labels.end() && it->second == l.label) ++correct;
    }
    size_t possible = world.entities().size() * 2;  // de + fr
    kbbench::Row("%-12.1f %10zu %11.1f%% %9.1f%%", coverage, labels.size(),
                 labels.empty() ? 0.0 : 100.0 * correct / labels.size(),
                 100.0 * labels.size() / possible);
  }

  // --- Alignment: seed fraction x language drift.
  printf("\n");
  kbbench::Row("%-6s %-12s %10s %12s %10s", "lang", "seed-frac",
               "aligned", "precision", "coverage");
  for (const char* lang : {"de", "fr"}) {
    AlignSetup setup = MakeSetup(world, lang);
    for (int seed_stride : {5, 10, 50}) {
      std::vector<multilingual::Alignment> seeds;
      for (uint32_t i = 0; i < setup.left.labels.size();
           i += seed_stride) {
        seeds.push_back({i, setup.gold[i], 1.0});
      }
      auto alignments = multilingual::AlignViews(
          setup.left, setup.right, seeds, multilingual::AlignerOptions());
      size_t correct = 0;
      for (const auto& a : alignments) {
        if (setup.gold[a.left] == a.right) ++correct;
      }
      double denominator = static_cast<double>(setup.left.labels.size() -
                                               seeds.size());
      kbbench::Row("%-6s 1/%-11d %10zu %11.1f%% %9.1f%%", lang,
                   seed_stride, alignments.size(),
                   alignments.empty()
                       ? 0.0
                       : 100.0 * correct / alignments.size(),
                   100.0 * alignments.size() / denominator);
    }
  }
  return 0;
}
