// E12 — Crash recovery and fault tolerance (robustness layer). A KB
// that takes days to harvest is only as good as its ability to come
// back after a crash. We measure: WAL replay throughput, full-store
// recovery time as the log grows, the fsync cost of durable writes,
// retry overhead under transient fault rates, and a crash-loop sweep
// that kills the engine at many points of its op schedule and checks
// the recovered store is a clean prefix every time.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storage/env.h"
#include "storage/fault_injection_env.h"
#include "storage/kv_store.h"
#include "util/metrics_registry.h"

using namespace kb;
using storage::Env;
using storage::FaultInjectionEnv;
using storage::KVStore;
using storage::RecoveryReport;
using storage::StoreOptions;

namespace {

std::string TempDir(const std::string& name) {
  std::string path =
      (std::filesystem::temp_directory_path() / ("kbforge_bench_" + name))
          .string();
  std::filesystem::remove_all(path);
  return path;
}

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%07d", i);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E12: crash recovery, durability and fault tolerance",
      "the storage engine recovers a checksum-clean prefix of writes "
      "after a crash at any point, and transient IO faults are absorbed "
      "by bounded retries",
      "recovery time grows linearly with WAL size; sync_wal costs an "
      "fsync per write; every crash point in the sweep recovers a clean "
      "prefix with zero acknowledged writes lost");

  const int entries = static_cast<int>(args.Scaled(20000, 2000));
  const std::string value(100, 'v');

  // --- durable vs buffered write cost -------------------------------
  kbbench::Row("%-28s %10s %12s", "write mode", "entries", "ms");
  for (bool sync_wal : {false, true}) {
    std::string dir = TempDir(sync_wal ? "sync" : "nosync");
    StoreOptions options;
    options.sync_wal = sync_wal;
    auto store = KVStore::Open(options, dir);
    if (!store.ok()) return 1;
    kbbench::Timer timer;
    for (int i = 0; i < entries; ++i) {
      if (!(*store)->Put(Slice(Key(i)), Slice(value)).ok()) return 1;
    }
    kbbench::Row("%-28s %10d %12.1f",
                 sync_wal ? "sync_wal=true (durable)" : "sync_wal=false",
                 entries, timer.ms());
  }

  // --- recovery time vs WAL size ------------------------------------
  printf("\n");
  kbbench::Row("%-12s %12s %14s %12s", "wal entries", "replay ms",
               "records", "truncated B");
  for (int size : {entries / 10, entries / 2, entries}) {
    std::string dir = TempDir("recover_" + std::to_string(size));
    StoreOptions options;
    options.sync_wal = false;
    options.memtable_flush_bytes = 256 << 20;  // keep everything in the WAL
    {
      auto store = KVStore::Open(options, dir);
      if (!store.ok()) return 1;
      for (int i = 0; i < size; ++i) {
        if (!(*store)->Put(Slice(Key(i)), Slice(value)).ok()) return 1;
      }
    }
    kbbench::Timer timer;
    RecoveryReport report;
    auto recovered = KVStore::Recover(options, dir, &report);
    if (!recovered.ok()) return 1;
    kbbench::Row("%-12d %12.1f %14llu %12llu", size, timer.ms(),
                 static_cast<unsigned long long>(report.wal_records_replayed),
                 static_cast<unsigned long long>(report.wal_bytes_truncated));
  }

  // --- retry overhead under transient fault rates -------------------
  printf("\n");
  kbbench::Row("%-16s %10s %12s %14s", "fault rate", "entries", "ms",
               "injected errs");
  for (double rate : {0.0, 0.01, 0.05}) {
    FaultInjectionEnv::Options fopts;
    fopts.fail_probability = rate;
    fopts.seed = 97;
    fopts.torn_writes = false;
    FaultInjectionEnv env(Env::Default(), fopts);
    std::string dir = TempDir("retry_" + std::to_string(int(rate * 100)));
    StoreOptions options;
    options.env = &env;
    options.sync_wal = false;
    options.retry.max_attempts = 8;
    options.retry.base_backoff_ms = 0;
    auto store = KVStore::Open(options, dir);
    for (int attempt = 0; attempt < 8 && !store.ok(); ++attempt) {
      store = KVStore::Open(options, dir);
    }
    if (!store.ok()) return 1;
    kbbench::Timer timer;
    int failed = 0;
    for (int i = 0; i < entries; ++i) {
      if (!(*store)->Put(Slice(Key(i)), Slice(value)).ok()) ++failed;
    }
    kbbench::Row("%-16.2f %10d %12.1f %14llu", rate, entries - failed,
                 timer.ms(),
                 static_cast<unsigned long long>(env.injected_errors()));
  }

  // --- crash-loop sweep ---------------------------------------------
  printf("\n");
  const int crash_entries = static_cast<int>(args.Scaled(2000, 300));
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv env(Env::Default());
    std::string dir = TempDir("crash_clean");
    StoreOptions options;
    options.env = &env;
    options.sync_wal = true;
    options.memtable_flush_bytes = 8192;
    auto store = KVStore::Open(options, dir);
    if (!store.ok()) return 1;
    for (int i = 0; i < crash_entries; ++i) {
      if (!(*store)->Put(Slice(Key(i)), Slice(value)).ok()) return 1;
    }
    total_ops = env.op_count();
  }
  const uint64_t points = args.Scaled(50, 12);
  const uint64_t stride = total_ops / points + 1;
  int sweeps = 0, clean = 0;
  kbbench::Timer sweep_timer;
  for (uint64_t fail_at = 1; fail_at <= total_ops; fail_at += stride) {
    FaultInjectionEnv::Options fopts;
    fopts.fail_at_op = fail_at;
    fopts.seed = fail_at;
    FaultInjectionEnv env(Env::Default());
    env.Reset(fopts);
    std::string dir = TempDir("crash_sweep");
    StoreOptions options;
    options.env = &env;
    options.sync_wal = true;
    options.memtable_flush_bytes = 8192;
    options.retry.max_attempts = 2;
    options.retry.base_backoff_ms = 0;
    int acked = 0;
    {
      auto store = KVStore::Open(options, dir);
      if (store.ok()) {
        for (int i = 0; i < crash_entries; ++i) {
          if (!(*store)->Put(Slice(Key(i)), Slice(value)).ok()) break;
          acked = i + 1;
        }
      }
    }
    if (!env.DropUnsyncedData().ok()) return 1;
    env.Reset(FaultInjectionEnv::Options());
    auto recovered = KVStore::Recover(options, dir);
    ++sweeps;
    if (!recovered.ok()) continue;
    int found = 0;
    bool prefix = true;
    Status s = (*recovered)->Scan(
        Slice(), Slice(), [&](const Slice& k, const Slice&) {
          if (k.ToString() != Key(found)) prefix = false;
          ++found;
          return true;
        });
    if (s.ok() && prefix && found >= acked) ++clean;
  }
  kbbench::Row("%-28s %10d", "crash points swept", sweeps);
  kbbench::Row("%-28s %10d", "clean prefix recoveries", clean);
  kbbench::Row("%-28s %10.1f", "sweep total ms", sweep_timer.ms());
  if (clean != sweeps) {
    printf("FAIL: %d crash points recovered unclean state\n",
           sweeps - clean);
    return 1;
  }

  // --- metrics snapshot ---------------------------------------------
  // The recovery/retry/fault counters land in the smoke-bench artifact
  // so CI runs leave an inspectable trace of what was exercised.
  printf("\nmetrics snapshot (recovery/retry/fault counters):\n");
  const MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  for (const auto& [name, count] : snapshot.counters) {
    if (name.rfind("kv.", 0) == 0 || name.rfind("retry.", 0) == 0 ||
        name.rfind("faultenv.", 0) == 0 || name.rfind("sstable.", 0) == 0) {
      printf("  %-28s %llu\n", name.c_str(),
             static_cast<unsigned long long>(count));
    }
  }
  return 0;
}
