// E13: the KB serving layer under closed-loop load.
//
// A harvested KB is served by KbServer; client threads issue a hot
// query mix (repeated shapes, so the result cache can work) in a
// closed loop, each thread with its own blocking connection. We sweep
// worker counts with the result cache on and off and report
// throughput and latency percentiles, then demonstrate admission
// control shedding deterministically.
//
// Expected shape: cache-on hot-query latency well under cache-off
// (the hit path skips parse-free execution, rendering and
// serialization); throughput scales with workers until the KB lock
// and loopback stack saturate; a full queue sheds instead of queueing.

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <cstdio>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "core/harvester.h"
#include "rdf/namespaces.h"
#include "server/kb_client.h"
#include "server/kb_server.h"
#include "util/metrics_registry.h"

namespace {

using namespace kb;

struct LoadResult {
  double seconds = 0;
  size_t requests = 0;
  size_t shed = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  double throughput() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  }
};

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(
                                             sorted_ms.size() - 1));
  return sorted_ms[index];
}

/// Closed-loop run: `threads` clients issue `per_thread` requests each
/// from a fixed hot-query mix against the given port.
LoadResult RunLoad(int port, int threads, size_t per_thread,
                   const std::vector<std::string>& queries,
                   const std::vector<std::string>& entities) {
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(threads));
  std::atomic<size_t> shed{0};
  kbbench::Timer timer;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      server::KbClient client;
      if (!client.Connect(port).ok()) return;
      auto& local = latencies[static_cast<size_t>(t)];
      local.reserve(per_thread);
      for (size_t i = 0; i < per_thread; ++i) {
        kbbench::Timer request_timer;
        Status status;
        size_t pick = i + static_cast<size_t>(t) * 7;
        if (!entities.empty() && pick % 5 == 4) {
          status =
              client.EntityCard(entities[pick % entities.size()]).status();
        } else {
          status = client.Query(queries[pick % queries.size()]).status();
        }
        if (status.IsUnavailable()) {
          shed.fetch_add(1);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(client.retry_after_ms()));
          if (!client.Connect(port).ok()) return;
          continue;
        }
        if (!status.ok()) return;  // counted as missing requests below
        local.push_back(request_timer.ms());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  LoadResult result;
  result.seconds = timer.seconds();
  result.shed = shed.load();
  std::vector<double> all;
  for (const auto& local : latencies) {
    all.insert(all.end(), local.begin(), local.end());
  }
  result.requests = all.size();
  std::sort(all.begin(), all.end());
  result.p50 = Percentile(all, 0.50);
  result.p95 = Percentile(all, 0.95);
  result.p99 = Percentile(all, 0.99);
  return result;
}

/// Raw connect that never sends a byte — parks a server worker (or
/// occupies a queue slot) deterministically.
int IdleConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E13: serving layer (multi-threaded query server + result cache)",
      "admission-controlled serving with an epoch-invalidated result "
      "cache turns hot KB queries into cache hits",
      "cache-on hot queries faster than cache-off; overload sheds");

  corpus::WorldOptions world_options;
  world_options.seed = 1313;
  world_options.num_persons = args.Scaled(800, 200);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 1314;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  core::Harvester harvester;
  core::HarvestResult harvest = harvester.Harvest(corpus);
  core::KnowledgeBase& kb = harvest.kb;
  kbbench::Row("KB: %zu triples, %zu entities", kb.NumTriples(),
               kb.NumEntities());

  // Hot query mix: full worksFor relation scan (expensive: join-free
  // but renders every row), per-company member lists, typed entities.
  std::vector<std::string> queries = {
      "SELECT ?p ?c WHERE { ?p <" + rdf::PropertyIri("worksFor") +
          "> ?c . }",
      "SELECT ?p WHERE { ?p "
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <" +
          rdf::ClassIri("person") + "> . }",
  };
  std::vector<std::string> entities;
  for (uint32_t id : corpus.world.ByKind(corpus::EntityKind::kCompany)) {
    const corpus::Entity& company = corpus.world.entity(id);
    queries.push_back("SELECT ?p WHERE { ?p <" +
                      rdf::PropertyIri("worksFor") + "> <" +
                      rdf::EntityIri(company.canonical) + "> . }");
    entities.push_back(company.canonical);
    if (queries.size() >= 8) break;
  }

  const int kThreads = static_cast<int>(args.Scaled(8, 4));
  const size_t kPerThread = args.Scaled(600, 120);
  const std::vector<int> worker_counts =
      args.smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  kbbench::Row("%-22s %10s %9s %9s %9s", "config", "req/s", "p50ms",
               "p95ms", "p99ms");
  for (bool cache_on : {false, true}) {
    for (int workers : worker_counts) {
      server::KbServer::Options options;
      options.num_workers = workers;
      options.queue_depth = 64;
      options.cache_bytes = cache_on ? (16u << 20) : 0;
      server::KbServer server(&kb, options);
      Status status = server.Start();
      if (!status.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      LoadResult result = RunLoad(server.port(), kThreads, kPerThread,
                                  queries, entities);
      server.Stop();
      std::string config = "workers=" + std::to_string(workers) +
                           " cache=" + (cache_on ? "on" : "off");
      kbbench::Row("%-22s %10.0f %9.3f %9.3f %9.3f", config.c_str(),
                   result.throughput(), result.p50, result.p95, result.p99);
      std::string key = "w" + std::to_string(workers) +
                        (cache_on ? "_cache_on" : "_cache_off");
      kbbench::Report("e13_serving", "throughput_" + key,
                      result.throughput());
      kbbench::Report("e13_serving", "p50_ms_" + key, result.p50);
      kbbench::Report("e13_serving", "p99_ms_" + key, result.p99);
    }
  }

  // Hot-query microbench: the same server, the same connection, the
  // same full-relation scan — measured once forced past the cache
  // (no_cache) and once served from it. This isolates what the hit
  // path actually saves: execution, term rendering, serialization.
  double hot_uncached_ms = 0, hot_cached_ms = 0;
  {
    server::KbServer::Options options;
    options.num_workers = 2;
    options.cache_bytes = 16u << 20;
    server::KbServer server(&kb, options);
    if (!server.Start().ok()) return 1;
    server::KbClient client;
    if (!client.Connect(server.port()).ok()) return 1;
    const std::string& hot = queries[0];
    const size_t kIters = args.Scaled(300, 80);
    for (size_t i = 0; i < 10; ++i) {  // warm both paths
      client.Query(hot, -1, -1, /*no_cache=*/true);
      client.Query(hot);
    }
    kbbench::Timer uncached_timer;
    for (size_t i = 0; i < kIters; ++i) {
      if (!client.Query(hot, -1, -1, /*no_cache=*/true).ok()) return 1;
    }
    hot_uncached_ms = uncached_timer.ms() / static_cast<double>(kIters);
    kbbench::Timer cached_timer;
    for (size_t i = 0; i < kIters; ++i) {
      auto result = client.Query(hot);
      if (!result.ok() || !result->cached) return 1;
    }
    hot_cached_ms = cached_timer.ms() / static_cast<double>(kIters);
    server.Stop();
  }
  kbbench::Row("hot query: %.3fms uncached vs %.3fms cached (%.1fx)",
               hot_uncached_ms, hot_cached_ms,
               hot_cached_ms > 0 ? hot_uncached_ms / hot_cached_ms : 0);
  kbbench::Report("e13_serving", "hot_query_uncached_ms", hot_uncached_ms);
  kbbench::Report("e13_serving", "hot_query_cached_ms", hot_cached_ms);

  // Admission control: one idle connection parks the single worker,
  // a second fills the queue, so every further connection must be
  // shed with the overload envelope.
  MetricsRegistry::Default().counter("server.rejected").Reset();
  server::KbServer::Options options;
  options.num_workers = 1;
  options.queue_depth = 1;
  server::KbServer server(&kb, options);
  if (!server.Start().ok()) return 1;
  int parked_worker = IdleConnect(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  int parked_queue = IdleConnect(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  size_t shed_count = 0;
  for (int i = 0; i < 16; ++i) {
    server::KbClient client;
    if (!client.Connect(server.port()).ok()) continue;
    if (client.Health().status().IsUnavailable()) ++shed_count;
  }
  uint64_t rejected =
      MetricsRegistry::Default().Snapshot().counter("server.rejected");
  ::close(parked_worker);
  ::close(parked_queue);
  server.Stop();
  kbbench::Row("overload: %zu/16 connections shed (server.rejected=%llu)",
               shed_count, static_cast<unsigned long long>(rejected));
  kbbench::Report("e13_serving", "shed_connections",
                  static_cast<double>(shed_count));

  if (args.smoke) {
    // The cached hot-query path must beat the uncached one, and a
    // full queue must shed — the PR's two behavioral claims. The
    // mixed-sweep p50s are reported above but not asserted on (too
    // noisy at smoke sizes); the controlled same-connection hot-query
    // comparison is the oracle.
    if (!(hot_cached_ms < hot_uncached_ms)) {
      std::fprintf(stderr,
                   "SMOKE FAIL: cached hot query %.3fms not below uncached "
                   "%.3fms\n",
                   hot_cached_ms, hot_uncached_ms);
      return 1;
    }
    if (shed_count == 0 || rejected == 0) {
      std::fprintf(stderr, "SMOKE FAIL: admission control shed nothing\n");
      return 1;
    }
    kbbench::Row("smoke assertions passed: cached hot query %.3fms < "
                 "uncached %.3fms; %zu shed",
                 hot_cached_ms, hot_uncached_ms, shed_count);
  }
  return 0;
}
