// E14: the storage engine under YCSB-style open-loop load.
//
// Every storage number so far came from closed-loop, uniform-key
// benches (E5/E10); production KB traffic is skewed and bursty. This
// driver loads a keyspace into ShardedKVStore and sweeps the YCSB
// core workload matrix (A update-heavy, B read-mostly, C read-only,
// D read-latest, E short-scans) with seeded Zipfian/latest key choice
// and an open-loop arrival schedule at a target rate, recording
// coordinated-omission-safe latency (measured from each op's intended
// start) into the metrics registry's p50/p99/p999 histograms.
//
// Expected shape: skewed reads concentrate block-cache hits far above
// the uniform baseline under a cache smaller than the working set;
// read-mostly workloads sustain the target rate with flat tails;
// update-heavy pushes the WAL/memtable path without collapsing.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "loadgen/key_chooser.h"
#include "loadgen/open_loop.h"
#include "loadgen/workload.h"
#include "storage/sharded_kv_store.h"
#include "util/metrics_registry.h"

using namespace kb;

namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu",
           static_cast<unsigned long long>(i));
  return buf;
}

struct RunConfig {
  loadgen::Workload workload;
  int shards = 8;
  size_t cache_bytes = 8u << 20;
  uint64_t records = 0;      ///< preloaded key space
  uint64_t ops = 0;          ///< scheduled operations
  double target_rate = 0;    ///< ops/s
  int threads = 4;
};

struct RunResult {
  loadgen::OpenLoopResult loop;
  HistogramSnapshot latency;  ///< ms from intended start
  uint64_t cache_hit_delta = 0;
};

/// One workload against one engine config: load `records` keys, flush
/// so reads hit SSTables, then run the open-loop schedule.
RunResult RunWorkload(const std::string& dir, const RunConfig& config) {
  std::filesystem::remove_all(dir);
  storage::ShardedStoreOptions options;
  options.num_shards = config.shards;
  options.block_cache_bytes = config.cache_bytes;
  options.store.sync_wal = false;
  options.store.memtable_flush_bytes = 256 << 10;
  auto store = storage::ShardedKVStore::Open(options, dir);
  if (!store.ok()) {
    fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    exit(1);
  }
  const std::string value(100, 'v');
  for (uint64_t i = 0; i < config.records; ++i) {
    (*store)->Put(Slice(Key(i)), Slice(value));
  }
  (*store)->Flush();

  std::atomic<uint64_t> insert_count{config.records};
  // Thread t owns ops i == t (mod threads), so per-thread choosers
  // indexed by op % threads are race-free.
  std::vector<std::unique_ptr<loadgen::KeyChooser>> choosers;
  for (int t = 0; t < config.threads; ++t) {
    choosers.push_back(
        config.workload.MakeChooser(config.records, &insert_count));
  }

  Histogram& latency = MetricsRegistry::Named("loadgen").histogram(
      "e14." + config.workload.name + ".latency_ms");
  latency.Reset();
  Counter& hits = MetricsRegistry::Default().counter("kv.cache_hits");
  const uint64_t hits_before = hits.value();

  loadgen::OpenLoopOptions loop;
  loop.target_ops_per_sec = config.target_rate;
  loop.num_ops = config.ops;
  loop.num_threads = config.threads;
  loop.seed = 14;
  const loadgen::Workload& workload = config.workload;
  loadgen::OpenLoopResult result = loadgen::RunOpenLoop(
      loop,
      [&](uint64_t op_index, Rng& rng) {
        loadgen::KeyChooser& chooser =
            *choosers[op_index % static_cast<uint64_t>(config.threads)];
        switch (workload.mix.Choose(rng)) {
          case loadgen::OpType::kRead: {
            // Latest skew can race a concurrent insert: the counter
            // advances before the Put lands, so NotFound is a benign
            // outcome there, not a lost op.
            std::string out;
            Status s = (*store)->Get(Slice(Key(chooser.Next(rng))), &out);
            return s.ok() || s.IsNotFound();
          }
          case loadgen::OpType::kUpdate:
            return (*store)
                ->Put(Slice(Key(chooser.Next(rng))), Slice(value))
                .ok();
          case loadgen::OpType::kInsert: {
            uint64_t fresh = insert_count.fetch_add(1);
            return (*store)->Put(Slice(Key(fresh)), Slice(value)).ok();
          }
          case loadgen::OpType::kScan: {
            uint64_t start = chooser.Next(rng);
            uint64_t want = 1 + rng.Uniform(workload.max_scan_len);
            uint64_t seen = 0;
            return (*store)
                ->Scan(Slice(Key(start)), Slice(Key(start + want)),
                       [&](const Slice&, const Slice&) {
                         return ++seen < want;
                       })
                .ok();
          }
        }
        return false;
      },
      &latency);

  RunResult out;
  out.loop = result;
  MetricsSnapshot metrics = MetricsRegistry::Named("loadgen").Snapshot();
  const HistogramSnapshot* snap =
      metrics.histogram("e14." + config.workload.name + ".latency_ms");
  if (snap != nullptr) out.latency = *snap;
  out.cache_hit_delta = hits.value() - hits_before;
  store->reset();  // drain background work before deleting the dir
  std::filesystem::remove_all(dir);
  return out;
}

void ReportRun(const RunConfig& config, const RunResult& r) {
  std::string key = "s" + std::to_string(config.shards) +
                    (config.cache_bytes > 0 ? "_cache" : "_nocache");
  const std::string& w = config.workload.name;
  kbbench::Report("e14_ycsb_kv", "throughput_" + key,
                  r.loop.achieved_ops_per_sec(), w);
  kbbench::Report("e14_ycsb_kv", "completed_" + key,
                  static_cast<double>(r.loop.completed), w);
  kbbench::Report("e14_ycsb_kv", "errors_" + key,
                  static_cast<double>(r.loop.errors), w);
  kbbench::Report("e14_ycsb_kv", "p50_ms_" + key, r.latency.p50, w);
  kbbench::Report("e14_ycsb_kv", "p99_ms_" + key, r.latency.p99, w);
  kbbench::Report("e14_ycsb_kv", "p999_ms_" + key, r.latency.p999, w);
}

}  // namespace

int main(int argc, char** argv) {
  kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E14: YCSB-style open-loop load on the sharded storage engine",
      "skewed, rate-controlled load (the production shape) is served "
      "with bounded tails; Zipfian skew turns a small block cache into "
      "most of the read path",
      "target rate sustained on read-mostly mixes; p50<=p99<=p999; "
      "zipfian cache hits >> uniform under a working set > cache");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "kbforge_bench_e14_kv")
          .string();

  RunConfig base;
  base.records = args.Scaled(100000, 4000);
  base.ops = args.Scaled(60000, 2500);
  base.target_rate = static_cast<double>(args.Scaled(30000, 5000));
  base.threads = 4;

  kbbench::Row("%-4s %-7s %7s %7s %10s %9s %9s %9s %9s", "wl", "shards",
               "ops", "errs", "ops/s", "p50ms", "p99ms", "p999ms",
               "cache-hits");
  bool ok = true;
  for (int shards : {1, 8}) {
    for (char letter : {'A', 'B', 'C', 'D', 'E'}) {
      RunConfig config = base;
      config.workload = loadgen::Workload::Ycsb(letter);
      config.shards = shards;
      if (letter == 'E') {
        // Scans touch up to max_scan_len records per op; keep the
        // schedule comparable by issuing fewer, heavier ops.
        config.ops /= 4;
        config.target_rate /= 4;
        config.workload.max_scan_len = args.Scaled(100, 25);
      }
      RunResult r = RunWorkload(dir, config);
      ReportRun(config, r);
      kbbench::Row("%-4s %-7d %7llu %7llu %10.0f %9.3f %9.3f %9.3f %9llu",
                   config.workload.name.c_str(), shards,
                   static_cast<unsigned long long>(r.loop.completed),
                   static_cast<unsigned long long>(r.loop.errors),
                   r.loop.achieved_ops_per_sec(), r.latency.p50,
                   r.latency.p99, r.latency.p999,
                   static_cast<unsigned long long>(r.cache_hit_delta));
      if (r.loop.completed != r.loop.scheduled || r.loop.errors != 0) {
        fprintf(stderr, "FAIL: workload %s lost ops (%llu/%llu, %llu errs)\n",
                config.workload.name.c_str(),
                static_cast<unsigned long long>(r.loop.completed),
                static_cast<unsigned long long>(r.loop.scheduled),
                static_cast<unsigned long long>(r.loop.errors));
        ok = false;
      }
      if (!(r.latency.p50 <= r.latency.p99 &&
            r.latency.p99 <= r.latency.p999) ||
          r.latency.p999 <= 0) {
        fprintf(stderr, "FAIL: workload %s percentiles not ordered\n",
                config.workload.name.c_str());
        ok = false;
      }
    }
  }

  // Skew ablation: same read-only schedule, cache far smaller than the
  // working set, uniform vs zipfian key choice. Zipfian rank i is key
  // i, so the hot ranks are *adjacent* keys packed into a handful of
  // 4KB blocks the small cache keeps resident; uniform cycles the
  // whole table set through it. (The cache must still hold a few
  // blocks per way — a cache under ~one block per way degenerates to
  // caching nothing for everyone.)
  printf("\nskew ablation (read-only, 128KB cache):\n");
  uint64_t uniform_hits = 0, zipfian_hits = 0;
  for (bool zipfian : {false, true}) {
    RunConfig config = base;
    config.workload = loadgen::Workload::Ycsb('C');
    if (!zipfian) {
      config.workload.skew = loadgen::Skew::kUniform;
      config.workload.name = "C-uniform";
    }
    config.shards = 8;
    config.records = args.Scaled(50000, 8000);
    config.cache_bytes = 128 << 10;
    RunResult r = RunWorkload(dir, config);
    kbbench::Row("  %-10s %9llu cache hits, %7.0f ops/s, p99 %.3fms",
                 zipfian ? "zipfian" : "uniform",
                 static_cast<unsigned long long>(r.cache_hit_delta),
                 r.loop.achieved_ops_per_sec(), r.latency.p99);
    kbbench::Report("e14_ycsb_kv",
                    zipfian ? "skew_cache_hits_zipfian"
                            : "skew_cache_hits_uniform",
                    static_cast<double>(r.cache_hit_delta), "C");
    (zipfian ? zipfian_hits : uniform_hits) = r.cache_hit_delta;
  }

  if (args.smoke) {
    // The structural claims, not the timings: nothing lost or errored
    // (asserted per-run above), percentiles ordered, and Zipfian skew
    // actually concentrating the cache. Throughput/latency rows feed
    // the trajectory; bench_check.py bands them instead.
    if (!ok) {
      fprintf(stderr, "SMOKE FAIL: lost ops or disordered percentiles\n");
      return 1;
    }
    if (zipfian_hits <= uniform_hits) {
      fprintf(stderr,
              "SMOKE FAIL: zipfian cache hits (%llu) not above uniform "
              "(%llu) under a too-small cache\n",
              static_cast<unsigned long long>(zipfian_hits),
              static_cast<unsigned long long>(uniform_hits));
      return 1;
    }
    kbbench::Row("smoke assertions passed: %llu zipfian vs %llu uniform "
                 "cache hits; all schedules complete",
                 static_cast<unsigned long long>(zipfian_hits),
                 static_cast<unsigned long long>(uniform_hits));
  }
  return ok ? 0 : 1;
}
