// E15: the KB serving layer under YCSB-style open-loop load.
//
// E13 measured the server closed-loop: every client waits for its
// response before sending again, so an overloaded server slows its own
// load generator and the recorded tail is a fiction (coordinated
// omission). Here N connections follow a fixed open-loop arrival
// schedule at a target request rate, with a Zipfian-skewed hot-query
// mix (some query shapes are much hotter than others — the shape the
// result cache exists for) and a YCSB-A/B read/write mix where writes
// are insert_facts batches that bump the epoch and invalidate the
// cache. Latency is charged from each request's *intended* start, so
// queueing delay behind a stall lands in p999 instead of vanishing.
//
// Expected shape: at rates under capacity the schedule is sustained
// and tails stay low; pushing the target rate past capacity blows up
// p999 by orders of magnitude while throughput saturates — visible
// only because the loop is open.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/harvester.h"
#include "loadgen/key_chooser.h"
#include "loadgen/open_loop.h"
#include "loadgen/workload.h"
#include "rdf/namespaces.h"
#include "server/kb_client.h"
#include "server/kb_server.h"
#include "util/metrics_registry.h"

using namespace kb;

namespace {

struct ServingRun {
  loadgen::OpenLoopResult loop;
  HistogramSnapshot latency;  ///< ms from intended start
};

/// `connections` KbClients run one open-loop schedule against the
/// server: reads are Zipfian-picked hot queries, writes insert fresh
/// facts (epoch bump -> cache invalidation). A shed or dropped
/// connection reconnects and the op counts as an error.
ServingRun RunServing(int port, const loadgen::Workload& workload,
                      double target_rate, uint64_t ops, int connections,
                      const std::vector<std::string>& queries,
                      const std::string& label) {
  std::vector<std::unique_ptr<server::KbClient>> clients;
  std::vector<std::unique_ptr<loadgen::KeyChooser>> choosers;
  for (int c = 0; c < connections; ++c) {
    clients.push_back(std::make_unique<server::KbClient>());
    if (!clients.back()->Connect(port).ok()) {
      fprintf(stderr, "connect failed\n");
      exit(1);
    }
    choosers.push_back(
        std::make_unique<loadgen::ZipfianChooser>(queries.size()));
  }

  Histogram& latency =
      MetricsRegistry::Named("loadgen").histogram("e15." + label);
  latency.Reset();

  std::atomic<uint64_t> insert_seq{0};
  loadgen::OpenLoopOptions loop;
  loop.target_ops_per_sec = target_rate;
  loop.num_ops = ops;
  loop.num_threads = connections;
  loop.seed = 15;
  loadgen::OpenLoopResult result = loadgen::RunOpenLoop(
      loop,
      [&](uint64_t op_index, Rng& rng) {
        size_t slot = op_index % static_cast<uint64_t>(connections);
        server::KbClient& client = *clients[slot];
        Status status;
        if (workload.mix.Choose(rng) == loadgen::OpType::kRead) {
          uint64_t pick = choosers[slot]->Next(rng);
          status = client.Query(queries[pick]).status();
        } else {
          // Writes are fresh facts: exercises interning, the exclusive
          // KB lock and the epoch-based cache invalidation.
          uint64_t seq = insert_seq.fetch_add(1);
          server::WireFact fact;
          fact.s = "e15_person_" + std::to_string(seq);
          fact.p = "worksFor";
          fact.o = "e15_company_" + std::to_string(seq % 7);
          status = client.InsertFacts({fact}).status();
        }
        if (!status.ok()) {
          client.Close();
          client.Connect(port);
          return false;
        }
        return true;
      },
      &latency);

  ServingRun run;
  run.loop = result;
  MetricsSnapshot metrics = MetricsRegistry::Named("loadgen").Snapshot();
  const HistogramSnapshot* snap = metrics.histogram("e15." + label);
  if (snap != nullptr) run.latency = *snap;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E15: YCSB-style open-loop load on the serving layer",
      "an open-loop, skew-aware harness measures the serving tail "
      "honestly: queueing delay is charged to the schedule, not hidden "
      "by a stalled generator",
      "under-capacity rates sustain the schedule with low p99; "
      "overdriven rates saturate throughput and blow up p999");

  corpus::WorldOptions world_options;
  world_options.seed = 1515;
  world_options.num_persons = args.Scaled(800, 200);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 1516;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  core::Harvester harvester;
  core::HarvestResult harvest = harvester.Harvest(corpus);
  core::KnowledgeBase& kb = harvest.kb;
  kbbench::Row("KB: %zu triples, %zu entities", kb.NumTriples(),
               kb.NumEntities());

  // The hot-query mix from E13: one expensive full-relation scan, a
  // type scan, and per-company member lists. Zipfian choice makes the
  // first entries much hotter — the result cache's favorite shape.
  std::vector<std::string> queries = {
      "SELECT ?p ?c WHERE { ?p <" + rdf::PropertyIri("worksFor") +
          "> ?c . }",
      "SELECT ?p WHERE { ?p "
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <" +
          rdf::ClassIri("person") + "> . }",
  };
  for (uint32_t id : corpus.world.ByKind(corpus::EntityKind::kCompany)) {
    const corpus::Entity& company = corpus.world.entity(id);
    queries.push_back("SELECT ?p WHERE { ?p <" +
                      rdf::PropertyIri("worksFor") + "> <" +
                      rdf::EntityIri(company.canonical) + "> . }");
    if (queries.size() >= 8) break;
  }

  server::KbServer::Options options;
  options.num_workers = 4;
  options.queue_depth = 64;
  options.cache_bytes = 16u << 20;
  server::KbServer server(&kb, options);
  if (!server.Start().ok()) {
    fprintf(stderr, "server start failed\n");
    return 1;
  }

  const int kConnections = static_cast<int>(args.Scaled(8, 4));
  const uint64_t kOps = args.Scaled(20000, 1200);
  const std::vector<double> rates =
      args.smoke ? std::vector<double>{1500}
                 : std::vector<double>{2000, 6000, 12000};

  kbbench::Row("%-24s %8s %7s %10s %9s %9s %9s", "config", "ops", "errs",
               "req/s", "p50ms", "p99ms", "p999ms");
  bool ok = true;
  ServingRun last_b{};
  for (char letter : {'B', 'A'}) {
    loadgen::Workload workload = loadgen::Workload::Ycsb(letter);
    for (double rate : rates) {
      std::string label = std::string(1, letter) + "_rate" +
                          std::to_string(static_cast<int>(rate));
      ServingRun run = RunServing(server.port(), workload, rate, kOps,
                                  kConnections, queries, label);
      kbbench::Row("%-24s %8llu %7llu %10.0f %9.3f %9.3f %9.3f",
                   label.c_str(),
                   static_cast<unsigned long long>(run.loop.completed),
                   static_cast<unsigned long long>(run.loop.errors),
                   run.loop.achieved_ops_per_sec(), run.latency.p50,
                   run.latency.p99, run.latency.p999);
      std::string w(1, letter);
      std::string key = "rate" + std::to_string(static_cast<int>(rate));
      kbbench::Report("e15_ycsb_serving", "throughput_" + key,
                      run.loop.achieved_ops_per_sec(), w);
      kbbench::Report("e15_ycsb_serving", "completed_" + key,
                      static_cast<double>(run.loop.completed), w);
      kbbench::Report("e15_ycsb_serving", "errors_" + key,
                      static_cast<double>(run.loop.errors), w);
      kbbench::Report("e15_ycsb_serving", "p50_ms_" + key, run.latency.p50,
                      w);
      kbbench::Report("e15_ycsb_serving", "p99_ms_" + key, run.latency.p99,
                      w);
      kbbench::Report("e15_ycsb_serving", "p999_ms_" + key,
                      run.latency.p999, w);
      if (letter == 'B' && rate == rates.front()) last_b = run;
      if (run.loop.completed + run.loop.errors != run.loop.scheduled) {
        fprintf(stderr, "FAIL: schedule lost ops in %s\n", label.c_str());
        ok = false;
      }
      if (!(run.latency.p50 <= run.latency.p99 &&
            run.latency.p99 <= run.latency.p999)) {
        fprintf(stderr, "FAIL: percentiles disordered in %s\n",
                label.c_str());
        ok = false;
      }
    }
  }

  // Coordinated-omission demonstration: the same workload B at a
  // target far past capacity. The closed-loop E13 harness physically
  // cannot record this (its generator would just slow down); the open
  // loop shows saturation as p999 explosion.
  {
    double overdrive = args.smoke ? 30000 : 60000;
    ServingRun run =
        RunServing(server.port(), loadgen::Workload::Ycsb('B'), overdrive,
                   args.Scaled(12000, 2000), kConnections, queries,
                   "B_overdrive");
    kbbench::Row("%-24s %8llu %7llu %10.0f %9.3f %9.3f %9.3f",
                 "B overdriven",
                 static_cast<unsigned long long>(run.loop.completed),
                 static_cast<unsigned long long>(run.loop.errors),
                 run.loop.achieved_ops_per_sec(), run.latency.p50,
                 run.latency.p99, run.latency.p999);
    kbbench::Report("e15_ycsb_serving", "overdrive_p999_ms",
                    run.latency.p999, "B");
    kbbench::Report("e15_ycsb_serving", "overdrive_throughput",
                    run.loop.achieved_ops_per_sec(), "B");
    // Saturation means the achieved rate falls short of the target and
    // the tail carries the backlog: p999 of the overdriven run must
    // dominate the under-capacity run's.
    if (args.smoke) {
      if (run.loop.completed == 0 ||
          run.latency.p999 < last_b.latency.p999) {
        fprintf(stderr,
                "SMOKE FAIL: overdriven p999 %.3fms does not dominate "
                "under-capacity p999 %.3fms\n",
                run.latency.p999, last_b.latency.p999);
        ok = false;
      }
    }
  }
  server.Stop();

  if (args.smoke) {
    if (last_b.loop.errors != 0 ||
        last_b.loop.completed != last_b.loop.scheduled) {
      fprintf(stderr, "SMOKE FAIL: under-capacity run shed or lost ops\n");
      ok = false;
    }
    if (!ok) return 1;
    kbbench::Row("smoke assertions passed: schedule complete at %0.f/s, "
                 "overdrive tail dominates",
                 rates.front());
  }
  return ok ? 0 : 1;
}
