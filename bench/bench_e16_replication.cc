// E16: what the replicated serving tier buys.
//
// Two measurements. First, staleness vs. replication lag: a follower
// tails the leader's WAL at two shipper poll intervals while a write
// burst lands, and we record the worst observed epoch lag and the
// time from last write to full catch-up — the knob that trades
// shipping overhead against read staleness.
//
// Second, ride-through read throughput. On a one-core runner, replicas
// cannot add raw CPU, so the honest scaling claim is availability: a
// replica that stalls (modeled with the server's own exclusive KB
// lock — the replay/compaction stall seam) blocks every read hashed
// to it until the router's per-request timeout fires and the health
// machine ejects it. A one-replica tier pays that price on *every*
// query shape; a two-replica tier keeps the shapes hashed to the
// healthy replica at full speed and fails the rest over. Aggregate
// reads through an identical stall schedule must therefore be
// strictly higher with two replicas — the --smoke assertion — and
// failover must absorb every stall (zero client-visible errors).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/knowledge_base.h"
#include "rdf/namespaces.h"
#include "replication/follower.h"
#include "replication/hash_ring.h"
#include "replication/repl_log.h"
#include "replication/router.h"
#include "replication/wal_shipper.h"
#include "server/kb_client.h"
#include "server/kb_server.h"

using namespace kb;

namespace {

constexpr int kCompanies = 16;

std::string TempDir(const std::string& name) {
  std::string path =
      (std::filesystem::temp_directory_path() / ("kbforge_bench_e16_" + name))
          .string();
  std::filesystem::remove_all(path);
  return path;
}

/// Leader and followers build the same deterministic base; replication
/// ships only the inserted delta.
core::KnowledgeBase MakeBaseKb() {
  core::KnowledgeBase kb;
  kb.AssertSubclass("company", "organization");
  for (int c = 0; c < kCompanies; ++c) {
    kb.AssertType("E16_Co_" + std::to_string(c), "company");
  }
  return kb;
}

server::WireFact MakeFact(uint64_t i) {
  server::WireFact fact;
  fact.s = "E16_Person_" + std::to_string(i);
  fact.p = "worksFor";
  fact.o = "E16_Co_" + std::to_string(i % kCompanies);
  fact.confidence = 0.9;
  return fact;
}

std::string MemberQuery(int company) {
  return "SELECT ?p WHERE { ?p <" + rdf::PropertyIri("worksFor") + "> <" +
         rdf::EntityIri("E16_Co_" + std::to_string(company)) + "> . }";
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

struct Leader {
  Leader(const std::string& dir, double poll_interval_ms) {
    kb = MakeBaseKb();
    replication::ReplicationLog::Options log_options;
    log_options.num_shards = 2;
    auto opened = replication::ReplicationLog::Open(log_options, dir);
    if (!opened.ok()) {
      fprintf(stderr, "repl log open failed: %s\n",
              opened.status().ToString().c_str());
      exit(1);
    }
    log = std::move(*opened);

    server::KbServer::Options server_options;
    // Router workers each cache a connection and the health checker
    // holds one more; the worker pool must exceed that sum plus any
    // direct clients or new connections starve.
    server_options.num_workers = 12;
    server_options.queue_depth = 64;
    server_options.pre_insert_hook =
        [this](const std::vector<server::WireFact>& batch) {
          return log->Append(batch);
        };
    server = std::make_unique<server::KbServer>(&kb, server_options);
    replication::WalShipper::Options ship;
    ship.poll_interval_ms = poll_interval_ms;
    shipper = std::make_unique<replication::WalShipper>(
        log.get(), [this] { return kb.epoch(); }, ship);
    if (!server->Start().ok() || !shipper->Start().ok()) {
      fprintf(stderr, "leader start failed\n");
      exit(1);
    }
  }
  ~Leader() {
    shipper->Stop();
    server->Stop();
  }

  void Insert(uint64_t begin, uint64_t end, size_t batch = 100) {
    server::KbClient client;
    if (!client.Connect(server->port()).ok()) {
      fprintf(stderr, "leader connect failed\n");
      exit(1);
    }
    for (uint64_t i = begin; i < end;) {
      std::vector<server::WireFact> facts;
      for (size_t b = 0; b < batch && i < end; ++b, ++i) {
        facts.push_back(MakeFact(i));
      }
      auto inserted = client.InsertFacts(facts);
      if (!inserted.ok()) {
        fprintf(stderr, "insert failed: %s\n",
                inserted.status().ToString().c_str());
        exit(1);
      }
    }
  }

  core::KnowledgeBase kb;
  std::unique_ptr<replication::ReplicationLog> log;
  std::unique_ptr<server::KbServer> server;
  std::unique_ptr<replication::WalShipper> shipper;
};

struct Follower {
  Follower(int leader_repl_port, const std::string& dir) {
    kb = MakeBaseKb();
    server::KbServer::Options server_options;
    server_options.num_workers = 12;
    server_options.queue_depth = 64;
    server_options.read_only = true;
    server_options.applied_epoch_fn = [this]() -> uint64_t {
      return replica != nullptr ? replica->applied_epoch() : 0;
    };
    server = std::make_unique<server::KbServer>(&kb, server_options);

    replication::FollowerReplica::Options replica_options;
    replica_options.leader_repl_port = leader_repl_port;
    replica_options.data_dir = dir;
    replica_options.num_shards = 2;
    replica_options.reconnect_backoff_ms = 10;
    auto opened =
        replication::FollowerReplica::Open(replica_options, &kb, server.get());
    if (!opened.ok()) {
      fprintf(stderr, "follower open failed: %s\n",
              opened.status().ToString().c_str());
      exit(1);
    }
    replica = std::move(*opened);
    if (!server->Start().ok() || !replica->Start().ok()) {
      fprintf(stderr, "follower start failed\n");
      exit(1);
    }
  }
  ~Follower() {
    replica->Stop();
    server->Stop();
  }

  core::KnowledgeBase kb;
  std::unique_ptr<server::KbServer> server;
  std::unique_ptr<replication::FollowerReplica> replica;
};

// ------------------------------------------------ staleness vs. lag

struct StalenessRun {
  uint64_t max_lag_epochs = 0;
  double catchup_ms = 0;
  bool caught_up = false;
  uint64_t applied_records = 0;
};

StalenessRun RunStaleness(double poll_interval_ms, uint64_t facts,
                          const std::string& tag) {
  Leader leader(TempDir("stale_leader_" + tag), poll_interval_ms);
  core::KnowledgeBase follower_kb = MakeBaseKb();
  replication::FollowerReplica::Options options;
  options.leader_repl_port = leader.shipper->port();
  options.data_dir = TempDir("stale_follower_" + tag);
  options.num_shards = 2;
  options.reconnect_backoff_ms = 10;
  auto opened =
      replication::FollowerReplica::Open(options, &follower_kb, nullptr);
  if (!opened.ok()) {
    fprintf(stderr, "follower open failed\n");
    exit(1);
  }
  std::unique_ptr<replication::FollowerReplica> replica = std::move(*opened);
  replica->Start();

  StalenessRun run;
  std::atomic<bool> done{false};
  std::thread sampler([&] {
    while (!done.load()) {
      uint64_t epoch = leader.kb.epoch();
      uint64_t applied = replica->applied_epoch();
      if (epoch > applied && epoch - applied > run.max_lag_epochs) {
        run.max_lag_epochs = epoch - applied;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  leader.Insert(0, facts, /*batch=*/50);
  kbbench::Timer catchup;
  run.caught_up = WaitFor(
      [&] { return replica->applied_epoch() >= leader.kb.epoch(); }, 30000);
  run.catchup_ms = catchup.ms();
  done.store(true);
  sampler.join();
  run.applied_records = replica->applied_records();
  replica->Stop();
  return run;
}

// --------------------------------------------- ride-through reading

struct RideThroughRun {
  double calm_qps = 0;
  double ride_qps = 0;
  uint64_t ride_reads = 0;
  uint64_t errors = 0;  ///< client-visible failures or wrong row counts
  int shapes_on_stalled = 0;
  int num_clients = 0;
};

/// One tier (leader + `num_replicas` followers + router), 8 pinned
/// closed-loop reader threads, a calm window, then a window with two
/// exclusive-lock stalls on the first follower.
RideThroughRun RunRideThrough(int num_replicas, uint64_t preload,
                              double calm_ms, const std::string& tag) {
  // A lazy shipper poll: the tier is idle after preload, and on a
  // one-core runner per-session wakeups are pure overhead that would
  // penalize the larger tier.
  Leader leader(TempDir("ride_leader_" + tag), /*poll_interval_ms=*/20);
  std::vector<std::unique_ptr<Follower>> followers;
  for (int r = 0; r < num_replicas; ++r) {
    followers.push_back(std::make_unique<Follower>(
        leader.shipper->port(),
        TempDir("ride_follower_" + tag + "_" + std::to_string(r))));
  }
  leader.Insert(0, preload);
  for (auto& follower : followers) {
    if (!WaitFor(
            [&] {
              return follower->replica->applied_epoch() >= leader.kb.epoch();
            },
            30000)) {
      fprintf(stderr, "follower never caught up\n");
      exit(1);
    }
  }

  replication::Router::Options router_options;
  router_options.leader_port = leader.server->port();
  for (auto& follower : followers) {
    router_options.replica_ports.push_back(follower->server->port());
  }
  router_options.num_workers = 10;
  router_options.queue_depth = 64;
  router_options.backend_timeout_ms = 300;
  router_options.health_interval_ms = 50;
  router_options.probe_interval_ms = 50;
  router_options.fail_threshold = 3;
  router_options.failover.max_attempts = 4;
  router_options.failover.base_backoff_ms = 5;
  router_options.failover.max_backoff_ms = 50;
  replication::Router router(router_options);
  if (!router.Start().ok()) {
    fprintf(stderr, "router start failed\n");
    exit(1);
  }

  // Pick the 8 client query shapes. The ring pins each shape to one
  // replica; with two replicas we deliberately pick 4 shapes per owner
  // so the stall leaves half the clients on the healthy arc (the same
  // ring and names the router builds, so the mapping is exact).
  const std::string stalled_name =
      "replica:" + std::to_string(followers[0]->server->port());
  replication::HashRing ring(router_options.virtual_nodes);
  for (int port : router_options.replica_ports) {
    ring.Add("replica:" + std::to_string(port));
  }
  std::vector<int> on_stalled, on_healthy;
  for (int c = 0; c < kCompanies; ++c) {
    (ring.NodeFor(MemberQuery(c)) == stalled_name ? on_stalled : on_healthy)
        .push_back(c);
  }
  std::vector<int> shapes;
  for (int i = 0; shapes.size() < 8 && i < kCompanies; ++i) {
    if (i < static_cast<int>(on_stalled.size()) && shapes.size() < 8) {
      shapes.push_back(on_stalled[i]);
    }
    if (i < static_cast<int>(on_healthy.size()) && shapes.size() < 8) {
      shapes.push_back(on_healthy[i]);
    }
  }

  RideThroughRun run;
  run.num_clients = static_cast<int>(shapes.size());
  for (int c : shapes) {
    if (ring.NodeFor(MemberQuery(c)) == stalled_name) {
      ++run.shapes_on_stalled;
    }
  }

  const size_t expected_rows = preload / kCompanies;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_reads{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> clients;
  for (int c : shapes) {
    clients.emplace_back([&, c] {
      server::ClientOptions copts;
      copts.timeout_ms = 10000;  // outlive a full failover walk
      server::KbClient client(copts);
      if (!client.Connect(router.port()).ok()) {
        errors.fetch_add(1);
        return;
      }
      const std::string sparql = MemberQuery(c);
      while (!stop.load(std::memory_order_acquire)) {
        // no_cache: a cached hit never touches the KB lock, so it
        // would sail through the stall this phase exists to measure.
        auto result = client.Query(sparql, /*deadline_ms=*/-1,
                                   /*max_rows=*/-1, /*no_cache=*/true);
        if (result.ok() && result->rows.size() == expected_rows) {
          ok_reads.fetch_add(1, std::memory_order_acq_rel);
        } else {
          errors.fetch_add(1, std::memory_order_acq_rel);
          client.Close();
          if (!client.Connect(router.port()).ok()) return;
        }
      }
    });
  }

  // Calm window: no faults, steady-state cached reads.
  kbbench::Timer calm;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(calm_ms));
  const uint64_t calm_reads = ok_reads.load();
  run.calm_qps = static_cast<double>(calm_reads) / calm.seconds();

  // Ride-through window: two 1.5s stalls on followers[0], held via the
  // server's own exclusive KB lock (the replay/compaction stall seam).
  // Identical schedule for every replica count.
  const auto t0 = std::chrono::steady_clock::now();
  auto at = [&](int ms) { return t0 + std::chrono::milliseconds(ms); };
  std::thread staller([&] {
    for (int start : {500, 3500}) {
      std::this_thread::sleep_until(at(start));
      followers[0]->server->WithWriteLock(
          [&] { std::this_thread::sleep_until(at(start + 1500)); });
    }
  });
  std::this_thread::sleep_until(at(5800));
  const uint64_t ride_end = ok_reads.load();
  run.ride_reads = ride_end - calm_reads;
  run.ride_qps = static_cast<double>(run.ride_reads) / 5.8;
  staller.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  run.errors = errors.load();

  router.Stop();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E16: replicated serving tier — staleness and ride-through",
      "WAL shipping keeps follower staleness bounded by the shipper "
      "poll interval, and extra replicas keep reads flowing while one "
      "replica stalls (failover absorbs the fault, clients see none)",
      "catch-up completes after a write burst at every poll interval; "
      "two replicas serve strictly more reads than one through an "
      "identical stall schedule, with zero client-visible errors");

  bool ok = true;

  // --- staleness vs. replication lag ------------------------------
  const uint64_t stale_facts = args.Scaled(4000, 1000);
  kbbench::Row("%-12s %10s %14s %12s", "poll_ms", "facts", "max_lag_epochs",
               "catchup_ms");
  for (double poll : {2.0, 25.0}) {
    std::string w = "poll" + std::to_string(static_cast<int>(poll));
    StalenessRun run = RunStaleness(poll, stale_facts, w);
    kbbench::Row("%-12.0f %10llu %14llu %12.1f", poll,
                 static_cast<unsigned long long>(stale_facts),
                 static_cast<unsigned long long>(run.max_lag_epochs),
                 run.catchup_ms);
    kbbench::Report("e16_replication", "staleness_max_lag_epochs",
                    static_cast<double>(run.max_lag_epochs), w);
    kbbench::Report("e16_replication", "staleness_catchup_ms",
                    run.catchup_ms, w);
    if (!run.caught_up || run.applied_records < stale_facts) {
      fprintf(stderr,
              "FAIL: follower at poll=%.0fms applied %llu/%llu records "
              "(caught_up=%d)\n",
              poll, static_cast<unsigned long long>(run.applied_records),
              static_cast<unsigned long long>(stale_facts), run.caught_up);
      ok = false;
    }
  }

  // --- ride-through read throughput vs. replica count -------------
  const uint64_t preload = args.Scaled(4800, 1600);
  const double calm_ms = args.Scaled(2500, 1200);
  kbbench::Row("%-10s %8s %12s %12s %12s %7s", "replicas", "stalled",
               "calm_qps", "ride_qps", "ride_reads", "errors");
  RideThroughRun runs[2];
  int idx = 0;
  for (int replicas : {1, 2}) {
    std::string w = "r" + std::to_string(replicas);
    RideThroughRun run = RunRideThrough(replicas, preload,
                                        static_cast<double>(calm_ms), w);
    kbbench::Row("%-10d %d/%-6d %12.0f %12.0f %12llu %7llu", replicas,
                 run.shapes_on_stalled, run.num_clients, run.calm_qps,
                 run.ride_qps,
                 static_cast<unsigned long long>(run.ride_reads),
                 static_cast<unsigned long long>(run.errors));
    kbbench::Report("e16_replication", "throughput_calm", run.calm_qps, w);
    kbbench::Report("e16_replication", "throughput_ridethrough",
                    run.ride_qps, w);
    kbbench::Report("e16_replication", "errors_ridethrough",
                    static_cast<double>(run.errors), w);
    if (run.errors != 0) {
      fprintf(stderr, "FAIL: %llu client-visible errors with %d replicas\n",
              static_cast<unsigned long long>(run.errors), replicas);
      ok = false;
    }
    runs[idx++] = run;
  }
  kbbench::Report("e16_replication", "ridethrough_gain",
                  runs[0].ride_qps > 0 ? runs[1].ride_qps / runs[0].ride_qps
                                       : 0.0);

  // The tier-level scaling claim: through an identical stall schedule
  // the two-replica tier must serve strictly more reads, because only
  // the shapes hashed to the stalled arc pay the failover price.
  if (args.smoke) {
    if (runs[1].ride_reads <= runs[0].ride_reads) {
      fprintf(stderr,
              "SMOKE FAIL: 2 replicas served %llu reads <= 1 replica's "
              "%llu through the same stall schedule\n",
              static_cast<unsigned long long>(runs[1].ride_reads),
              static_cast<unsigned long long>(runs[0].ride_reads));
      ok = false;
    }
    if (ok) {
      kbbench::Row("smoke assertions passed: catch-up at every poll "
                   "interval, 2-replica ride-through %.2fx the 1-replica "
                   "tier, zero client-visible errors",
                   runs[0].ride_reads > 0
                       ? static_cast<double>(runs[1].ride_reads) /
                             static_cast<double>(runs[0].ride_reads)
                       : 0.0);
    }
  }
  return ok ? 0 : 1;
}
