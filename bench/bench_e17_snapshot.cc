// E17 — Frame-store snapshots and instant start. The frame-store
// refactor packs the KB into one mmap-able artifact (arena strings,
// fixed-width id-triples in three sorted runs, packed fact metadata).
// We measure the two claims that motivated it:
//
//   (a) cold start: booting a server by mapping a snapshot is >= 10x
//       faster than replaying the equivalent WAL/delta state, and the
//       gap widens with KB size (mmap is O(taxonomy), replay is O(KB));
//   (b) id-native execution: scan+join on bare uint32 ids beats the
//       term-object path (the materialize_terms ablation drags all
//       three Terms of every visited triple off the heap).
//
// Plus a micro comparison of FrameStore id scans vs term-object
// matching, and the snapshot artifact size per triple.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/harvester.h"
#include "core/kb_snapshot.h"
#include "core/knowledge_base.h"
#include "query/engine.h"
#include "rdf/namespaces.h"
#include "storage/env.h"

using namespace kb;

namespace {

std::string TempDir(const std::string& name) {
  std::string path =
      (std::filesystem::temp_directory_path() / ("kbforge_bench_" + name))
          .string();
  std::filesystem::remove_all(path);
  return path;
}

core::KnowledgeBase HarvestKb(size_t persons) {
  corpus::WorldOptions world_options;
  world_options.seed = 4242;
  world_options.num_persons = persons;
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 4243;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  core::Harvester harvester;
  return std::move(harvester.Harvest(corpus).kb);
}

/// Most frequent predicate whose objects are typed entities — gives
/// the join query {?x p ?y . ?y rdf:type ?c} a fat, productive scan
/// without hardcoding the harvester's relation inventory. (Predicates
/// with literal objects, like rdfs:label, can never join on ?y.)
rdf::TermId BusiestPredicate(const core::KnowledgeBase& kb) {
  rdf::TermId type_id =
      kb.store().dict().Lookup(rdf::Term::Iri(std::string(rdf::kRdfType)));
  std::set<rdf::TermId> typed;
  for (auto it = kb.store().NewScan(
           rdf::TriplePattern{rdf::kAnyTerm, type_id, rdf::kAnyTerm});
       it->Valid(); it->Next()) {
    typed.insert(it->Value().s);
  }
  std::map<rdf::TermId, size_t> counts;
  for (auto it = kb.store().NewScan(rdf::TriplePattern{}); it->Valid();
       it->Next()) {
    if (typed.count(it->Value().o) > 0) ++counts[it->Value().p];
  }
  rdf::TermId best = rdf::kInvalidTermId;
  size_t best_count = 0;
  for (const auto& [p, count] : counts) {
    if (p != type_id && count > best_count) {
      best = p;
      best_count = count;
    }
  }
  return best;
}

double MedianOf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E17: frame-store snapshots and id-native execution",
      "mapping one arena-packed snapshot cold-starts the KB >= 10x "
      "faster than delta replay, and joining on bare uint32 ids beats "
      "materializing term objects per visited triple",
      "snapshot load is milliseconds regardless of replay cost; the "
      "term-object ablation pays per-triple heap traffic the id path "
      "never sees");

  // The smoke corpus stays big enough that replay time dwarfs the
  // snapshot path's fixed costs (mmap + CRC + taxonomy rebuild) — the
  // >= 10x claim is about asymptotics, and a toy KB hides them.
  const size_t persons = args.Scaled(2000, 800);
  core::KnowledgeBase kb = HarvestKb(persons);
  printf("harvested KB: %zu triples, %zu entities, %zu classes\n\n",
         kb.NumTriples(), kb.NumEntities(), kb.NumClasses());
  kbbench::Report("e17_snapshot", "kb_triples",
                  static_cast<double>(kb.NumTriples()));

  // --- (a) cold start: delta replay vs snapshot mmap ----------------
  // Same content both ways: generation 0 holds the whole KB as a
  // replayable delta (the legacy boot path); Checkpoint folds it into
  // a frame-store snapshot (the instant-start path).
  std::string dir = TempDir("e17_volume");
  auto volume = core::KbVolume::Open(nullptr, dir);
  if (!volume.ok()) return 1;
  if (!(*volume)->SaveDelta(kb).ok()) return 1;

  constexpr int kLoadRounds = 3;
  std::vector<double> replay_samples;
  size_t replay_triples = 0;
  for (int i = 0; i < kLoadRounds; ++i) {
    kbbench::Timer timer;
    auto loaded = (*volume)->Load();
    if (!loaded.ok() || loaded->from_snapshot) return 1;
    replay_samples.push_back(timer.ms());
    replay_triples = loaded->kb->NumTriples();
  }

  if (!(*volume)->Checkpoint(&kb).ok()) return 1;
  std::vector<double> snapshot_samples;
  for (int i = 0; i < kLoadRounds; ++i) {
    kbbench::Timer timer;
    auto loaded = (*volume)->Load();
    if (!loaded.ok() || !loaded->from_snapshot) return 1;
    snapshot_samples.push_back(timer.ms());
    if (loaded->kb->NumTriples() != replay_triples) {
      printf("FAIL: snapshot KB has %zu triples, replay had %zu\n",
             loaded->kb->NumTriples(), replay_triples);
      return 1;
    }
  }

  const double replay_ms = MedianOf(replay_samples);
  const double snapshot_ms = MedianOf(snapshot_samples);
  const double speedup = replay_ms / snapshot_ms;
  auto snapshot_size = storage::FileSize((*volume)->SnapshotPath(1));
  if (!snapshot_size.ok()) return 1;

  kbbench::Row("%-32s %12.2f", "delta replay load ms (median)", replay_ms);
  kbbench::Row("%-32s %12.2f", "snapshot mmap load ms (median)",
               snapshot_ms);
  kbbench::Row("%-32s %12.1fx", "cold-start speedup", speedup);
  kbbench::Row("%-32s %12.1f", "snapshot bytes/triple",
               static_cast<double>(*snapshot_size) /
                   static_cast<double>(replay_triples));
  kbbench::Report("e17_snapshot", "load_replay_ms", replay_ms);
  kbbench::Report("e17_snapshot", "load_snapshot_ms", snapshot_ms);
  kbbench::Report("e17_snapshot", "cold_start_speedup", speedup);
  kbbench::Report("e17_snapshot", "snapshot_bytes",
                  static_cast<double>(*snapshot_size));
  if (speedup < 10.0) {
    printf("FAIL: snapshot cold start only %.1fx faster than replay "
           "(claim: >= 10x)\n", speedup);
    return 1;
  }

  // --- (b) id-native scan+join vs term-object ablation --------------
  // One fat two-pattern join, repeated; the only difference between
  // the runs is ExecutionOptions::materialize_terms.
  rdf::TermId busiest = BusiestPredicate(kb);
  rdf::TermId type_id =
      kb.store().dict().Lookup(rdf::Term::Iri(std::string(rdf::kRdfType)));
  if (busiest == rdf::kInvalidTermId || type_id == rdf::kInvalidTermId) {
    printf("FAIL: harvested KB lacks a usable predicate\n");
    return 1;
  }
  // An unselective three-pattern join: the full-scan head makes the
  // executor visit every triple, so the ablation's per-visited-triple
  // materialization cost dominates over timer jitter.
  query::SelectQuery join;
  join.where.push_back({query::QueryTerm::Var("x"),
                        query::QueryTerm::Var("p"),
                        query::QueryTerm::Var("y")});
  join.where.push_back({query::QueryTerm::Var("x"),
                        query::QueryTerm::Bound(busiest),
                        query::QueryTerm::Var("y")});
  join.where.push_back({query::QueryTerm::Var("y"),
                        query::QueryTerm::Bound(type_id),
                        query::QueryTerm::Var("c")});
  query::QueryEngine engine(&kb.store());
  const int rounds = static_cast<int>(args.Scaled(60, 30));
  query::ExecutionOptions id_native;
  id_native.reorder_patterns = false;  // keep the fat scan first
  query::ExecutionOptions term_objects;
  term_objects.reorder_patterns = false;
  term_objects.materialize_terms = &kb.store().dict();

  auto time_query = [&](const query::ExecutionOptions& options,
                        query::QueryStats* stats) {
    engine.Execute(join, options, stats);  // warm (plan cache, pages)
    std::vector<double> samples;
    size_t rows = 0;
    for (int i = 0; i < rounds; ++i) {
      kbbench::Timer timer;
      rows = engine.Execute(join, options, stats).size();
      samples.push_back(timer.ms());
    }
    printf("  rows per execution: %zu\n", rows);
    return MedianOf(samples);
  };

  printf("\n");
  query::QueryStats id_stats, term_stats;
  const double id_ms = time_query(id_native, &id_stats);
  const double term_ms = time_query(term_objects, &term_stats);
  kbbench::Row("%-32s %12.3f", "id-native join ms (median)", id_ms);
  kbbench::Row("%-32s %12.3f", "term-object join ms (median)", term_ms);
  kbbench::Row("%-32s %12.1fx", "id-native advantage", term_ms / id_ms);
  kbbench::Row("%-32s %12llu", "terms materialized / exec",
               static_cast<unsigned long long>(
                   term_stats.terms_materialized));
  kbbench::Report("e17_snapshot", "join_id_native_ms", id_ms);
  kbbench::Report("e17_snapshot", "join_term_object_ms", term_ms);
  kbbench::Report("e17_snapshot", "id_native_advantage", term_ms / id_ms);
  if (id_ms >= term_ms) {
    printf("FAIL: id-native join (%.3f ms) not faster than term-object "
           "path (%.3f ms)\n", id_ms, term_ms);
    return 1;
  }

  // --- frame-store micro: id scans vs term-object matching ----------
  // Per-subject lookups straight against the mapped FrameStore.
  const auto& base = kb.store().base();
  if (base == nullptr) return 1;
  std::vector<rdf::TermId> subjects;
  for (auto it = base->NewScan(rdf::TriplePattern{}); it->Valid();
       it->Next()) {
    if (subjects.empty() || subjects.back() != it->Value().s) {
      subjects.push_back(it->Value().s);
    }
  }
  const int micro_rounds = static_cast<int>(args.Scaled(20, 5));
  size_t checksum_ids = 0, checksum_terms = 0;
  kbbench::Timer id_timer;
  for (int r = 0; r < micro_rounds; ++r) {
    for (rdf::TermId s : subjects) {
      checksum_ids += base->MatchFullScan(
          rdf::TriplePattern{s, rdf::kAnyTerm, rdf::kAnyTerm}).size();
    }
  }
  const double id_scan_ms = id_timer.ms();
  kbbench::Timer term_timer;
  for (int r = 0; r < micro_rounds; ++r) {
    for (rdf::TermId s : subjects) {
      rdf::Term subject = base->MaterializeTerm(s);
      checksum_terms += base->MatchTermObjects(&subject, nullptr,
                                               nullptr).size();
    }
  }
  const double term_scan_ms = term_timer.ms();
  if (checksum_ids != checksum_terms) {
    printf("FAIL: id scans saw %zu triples, term scans %zu\n",
           checksum_ids, checksum_terms);
    return 1;
  }
  printf("\n");
  kbbench::Row("%-32s %12.2f", "id per-subject scans ms", id_scan_ms);
  kbbench::Row("%-32s %12.2f", "term-object scans ms", term_scan_ms);
  kbbench::Report("e17_snapshot", "scan_id_ms", id_scan_ms);
  kbbench::Report("e17_snapshot", "scan_term_object_ms", term_scan_ms);

  printf("\nE17 OK: %.1fx cold start, %.1fx id-native join advantage\n",
         speedup, term_ms / id_ms);
  return 0;
}
