// E18: many held-open connections against few workers — the workload
// the epoll event core exists for.
//
// A thread-per-connection server binds one worker to one connection
// for the connection's whole life, so its concurrency ceiling is
// num_workers + queue_depth no matter how idle each connection is.
// The event core decouples the two: a couple of I/O threads hold
// every fd in epoll and only parsed *requests* occupy the bounded
// admission queue. This bench drives one open-loop schedule spread
// thinly across C connections (each carries a rate/C trickle — the
// shape of thousands of modest clients) at C >= 20x the worker count
// and compares the event core against the threaded ablation
// (Options::threaded_core) at equal worker count. The threaded core
// serves its first workers+queue connections and sheds the rest; the
// event core must sustain the whole schedule.
//
// A second phase overdrives both cores far past worker capacity on an
// expensive full-relation scan to check that PR 5's request shedding
// survived the refactor: the admission queue stays bounded (sheds
// observed, retry hints sent) and the p99 of completed ops does not
// silently grow past the threaded baseline's.

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/harvester.h"
#include "loadgen/held_open.h"
#include "rdf/namespaces.h"
#include "server/json.h"
#include "server/kb_server.h"
#include "util/metrics_registry.h"

using namespace kb;

namespace {

/// Lifts the open-files soft limit toward the hard limit so the
/// full-size run (2k connections, both ends in-process) does not trip
/// the usual 1024 default. Best effort: the smoke sizes fit anyway.
void RaiseFdLimit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    setrlimit(RLIMIT_NOFILE, &lim);
  }
}

std::string QueryPayload(const std::string& sparql, bool no_cache) {
  server::Json request = server::Json::Object();
  request.Set("op", server::Json::Str("query"));
  request.Set("sparql", server::Json::Str(sparql));
  if (no_cache) request.Set("no_cache", server::Json::Bool(true));
  return request.Dump();
}

struct RunOut {
  loadgen::HeldOpenResult held;
  HistogramSnapshot latency;
};

RunOut Drive(int port, size_t conns, double rate, uint64_t ops,
             size_t pipeline, const std::vector<std::string>& payloads,
             const std::string& label) {
  Histogram& latency =
      MetricsRegistry::Named("loadgen").histogram("e18." + label);
  latency.Reset();

  loadgen::HeldOpenOptions options;
  options.port = port;
  options.num_connections = conns;
  options.target_ops_per_sec = rate;
  options.num_ops = ops;
  options.num_threads = 4;
  options.max_pipeline = pipeline;
  options.drain_timeout_ms = 3000;
  options.make_request = [&payloads](uint64_t op) {
    return payloads[op % payloads.size()];
  };

  RunOut out;
  out.held = loadgen::RunHeldOpen(options, &latency);
  MetricsSnapshot snap = MetricsRegistry::Named("loadgen").Snapshot();
  const HistogramSnapshot* hist = snap.histogram("e18." + label);
  if (hist != nullptr) out.latency = *hist;
  return out;
}

void PrintRun(const char* label, const RunOut& run) {
  kbbench::Row("%-18s %8llu %8llu %6llu %6llu %5llu %9.0f %9.3f %9.3f",
               label, static_cast<unsigned long long>(run.held.completed),
               static_cast<unsigned long long>(run.held.lost),
               static_cast<unsigned long long>(run.held.sheds),
               static_cast<unsigned long long>(run.held.dead_connections),
               static_cast<unsigned long long>(run.held.errors -
                                               run.held.sheds),
               run.held.achieved_ops_per_sec(), run.latency.p50,
               run.latency.p99);
}

}  // namespace

int main(int argc, char** argv) {
  kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E18: held-open connection scaling, event core vs thread-per-conn",
      "an epoll event core serves thousands of mostly-idle connections "
      "with a fixed worker pool, where a thread-per-connection core "
      "caps out at workers + queue_depth and sheds the rest",
      "at >= 20x connections per worker the event core sustains >= 3x "
      "the threaded throughput; overdriven, both shed at admission and "
      "the event p99 stays within the threaded baseline's envelope");

  RaiseFdLimit();

  corpus::WorldOptions world_options;
  world_options.seed = 1818;
  world_options.num_persons = args.Scaled(600, 200);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 1819;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  core::Harvester harvester;
  core::HarvestResult harvest = harvester.Harvest(corpus);
  core::KnowledgeBase& kb = harvest.kb;
  kbbench::Row("KB: %zu triples, %zu entities", kb.NumTriples(),
               kb.NumEntities());

  // Per-company member lists for the scaling phase, served hot from
  // the result cache (the point there is connection count, not query
  // execution — worker cost must stay far under the schedule rate)...
  std::vector<std::string> cheap;
  for (uint32_t id : corpus.world.ByKind(corpus::EntityKind::kCompany)) {
    const corpus::Entity& company = corpus.world.entity(id);
    cheap.push_back(QueryPayload("SELECT ?p WHERE { ?p <" +
                                     rdf::PropertyIri("worksFor") + "> <" +
                                     rdf::EntityIri(company.canonical) +
                                     "> . }",
                                 /*no_cache=*/false));
    if (cheap.size() >= 8) break;
  }
  // ...and the uncacheable full-relation scan for the overload phase.
  std::vector<std::string> heavy = {QueryPayload(
      "SELECT ?p ?c WHERE { ?p <" + rdf::PropertyIri("worksFor") +
          "> ?c . }",
      /*no_cache=*/true)};

  const int kWorkers = 8;
  // The claim under test is connection *count*, not aggregate rate:
  // each connection carries a thin trickle, far under worker
  // capacity, so every lost op is a concurrency failure rather than
  // an overload artifact (the overload phase below probes that).
  const size_t kConns = args.Scaled(2000, 160);
  const double kRate = args.Scaled(4000, 2000);
  const uint64_t kOps = args.Scaled(20000, 4000);
  kbbench::Row("scaling phase: %zu conns / %d workers (%.0fx), "
               "%.0f ops/s total (%.1f per conn)",
               kConns, kWorkers, static_cast<double>(kConns) / kWorkers,
               kRate, kRate / static_cast<double>(kConns));
  kbbench::Row("%-18s %8s %8s %6s %6s %5s %9s %9s %9s", "config", "ok",
               "lost", "sheds", "dead", "errs", "req/s", "p50ms", "p99ms");

  MetricsSnapshot before = MetricsRegistry::Default().Snapshot();

  // Event core: the request queue bounds *requests* (the 2k-conn
  // connect storm parses into a burst, so it gets real depth) and the
  // connection cap is an explicit knob sized for the storm.
  RunOut event_run;
  {
    server::KbServer::Options options;
    options.num_workers = kWorkers;
    options.queue_depth = 256;
    options.max_connections = kConns * 2;
    server::KbServer server(&kb, options);
    if (!server.Start().ok()) {
      fprintf(stderr, "event server start failed\n");
      return 1;
    }
    event_run = Drive(server.port(), kConns, kRate, kOps, 8, cheap, "event");
    server.Stop();
  }
  PrintRun("event", event_run);

  MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  const double wakeups =
      static_cast<double>(after.counter("server.epoll_wakeups") -
                          before.counter("server.epoll_wakeups"));
  const double pipelined =
      static_cast<double>(after.counter("server.pipelined_frames") -
                          before.counter("server.pipelined_frames"));
  kbbench::Row("event core: %.0f epoll wakeups (%.1f frames/wakeup), "
               "%.0f pipelined frames",
               wakeups,
               wakeups > 0 ? static_cast<double>(event_run.held.issued) /
                                 wakeups
                           : 0.0,
               pipelined);

  // Threaded ablation: same workers, same admission queue size — but
  // here queue_depth counts queued *connections*, so its whole
  // serving envelope is workers + queue_depth connections.
  RunOut threaded_run;
  {
    server::KbServer::Options options;
    options.num_workers = kWorkers;
    options.queue_depth = 64;
    options.threaded_core = true;
    server::KbServer server(&kb, options);
    if (!server.Start().ok()) {
      fprintf(stderr, "threaded server start failed\n");
      return 1;
    }
    threaded_run =
        Drive(server.port(), kConns, kRate, kOps, 8, cheap, "threaded");
    server.Stop();
  }
  PrintRun("threaded", threaded_run);

  bool ok = true;
  const double event_tput = event_run.held.achieved_ops_per_sec();
  const double threaded_tput = threaded_run.held.achieved_ops_per_sec();
  const double advantage =
      threaded_tput > 0 ? event_tput / threaded_tput : event_tput;
  kbbench::Row("event advantage: %.1fx throughput at %.0fx conns/worker",
               advantage, static_cast<double>(kConns) / kWorkers);
  if (kConns < static_cast<size_t>(20 * kWorkers)) {
    fprintf(stderr, "FAIL: %zu conns is under 20x %d workers\n", kConns,
            kWorkers);
    ok = false;
  }
  if (event_tput < 3.0 * threaded_tput) {
    fprintf(stderr,
            "FAIL: event core %.0f req/s is under 3x threaded %.0f req/s\n",
            event_tput, threaded_tput);
    ok = false;
  }
  if (event_run.held.dead_connections > 0) {
    fprintf(stderr, "FAIL: event core dropped %llu of %zu connections\n",
            static_cast<unsigned long long>(event_run.held.dead_connections),
            kConns);
    ok = false;
  }

  // Overload phase: conns = workers (inside even the threaded core's
  // envelope), rate far past scan capacity, deep client pipelines.
  const size_t kOverConns = static_cast<size_t>(kWorkers);
  const double kOverRate = args.Scaled(60000, 30000);
  const uint64_t kOverOps = args.Scaled(60000, 8000);
  kbbench::Row("overload phase: %zu conns, %.0f ops/s of full-relation "
               "scans",
               kOverConns, kOverRate);

  RunOut over_event;
  {
    server::KbServer::Options options;
    options.num_workers = kWorkers;
    options.queue_depth = 16;
    server::KbServer server(&kb, options);
    if (!server.Start().ok()) {
      fprintf(stderr, "event server start failed\n");
      return 1;
    }
    over_event = Drive(server.port(), kOverConns, kOverRate, kOverOps, 32,
                       heavy, "overload_event");
    server.Stop();
  }
  PrintRun("overload event", over_event);

  RunOut over_threaded;
  {
    server::KbServer::Options options;
    options.num_workers = kWorkers;
    options.queue_depth = 16;
    options.threaded_core = true;
    server::KbServer server(&kb, options);
    if (!server.Start().ok()) {
      fprintf(stderr, "threaded server start failed\n");
      return 1;
    }
    over_threaded = Drive(server.port(), kOverConns, kOverRate, kOverOps, 32,
                          heavy, "overload_threaded");
    server.Stop();
  }
  PrintRun("overload threaded", over_threaded);

  if (over_event.held.sheds == 0) {
    fprintf(stderr,
            "FAIL: overdriven event core never shed — queue growing "
            "silently?\n");
    ok = false;
  }
  // "Within tolerance of the PR 5 shedding behavior": the bounded
  // admission queue must keep completed-op latency from drifting past
  // the threaded baseline's. The absolute leg absorbs tiny-baseline
  // jitter on shared runners.
  const double p99_bound =
      std::max(4.0 * over_threaded.latency.p99, 750.0);
  if (over_event.latency.p99 > p99_bound) {
    fprintf(stderr,
            "FAIL: overdriven event p99 %.1fms exceeds bound %.1fms "
            "(threaded baseline %.1fms)\n",
            over_event.latency.p99, p99_bound, over_threaded.latency.p99);
    ok = false;
  }

  kbbench::Report("e18_concurrency", "conns_per_worker",
                  static_cast<double>(kConns) / kWorkers);
  kbbench::Report("e18_concurrency", "throughput_event", event_tput);
  kbbench::Report("e18_concurrency", "threaded_ops_s", threaded_tput);
  kbbench::Report("e18_concurrency", "event_vs_threaded_x", advantage);
  kbbench::Report("e18_concurrency", "ok_event",
                  static_cast<double>(event_run.held.completed));
  kbbench::Report("e18_concurrency", "ok_threaded",
                  static_cast<double>(threaded_run.held.completed));
  kbbench::Report("e18_concurrency", "pipelined_frames", pipelined);
  kbbench::Report("e18_concurrency", "epoll_wakeups", wakeups);
  kbbench::Report("e18_concurrency", "p50_ms_event", event_run.latency.p50);
  kbbench::Report("e18_concurrency", "p99_ms_event", event_run.latency.p99);
  kbbench::Report("e18_concurrency", "p99_ms_overload_event",
                  over_event.latency.p99);
  kbbench::Report("e18_concurrency", "p99_ms_overload_threaded",
                  over_threaded.latency.p99);
  kbbench::Report("e18_concurrency", "sheds_overload_event",
                  static_cast<double>(over_event.held.sheds));

  if (!ok) return 1;
  printf("OK\n");
  return 0;
}
