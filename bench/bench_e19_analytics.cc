// E19: analytics over the served KB — aggregation executors and
// offline graph jobs.
//
// Two claims ride this bench. First, the vector-at-a-time batch
// executor with its Bloom semijoin prefilter beats the Volcano
// row-at-a-time ablation on the canonical dashboard shape — a
// join-heavy GROUP BY count — because it amortizes operator dispatch
// over whole id-column chunks and skips index probes for outer rows
// whose join key cannot match. Both modes run the same written-order
// plan (reorder_patterns off), so the delta is the executor, not the
// join order. Second, the offline jobs (PageRank over the entity link
// graph, class-distribution rollups over taxonomy subsumption) run
// id-native against the store and parallelize across a shared
// ThreadPool, and their results serve from the epoch-invalidated
// result cache when reached through the server's analytics endpoint —
// the dashboard-refresh path is a cache hit, not a recompute.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analytics/class_stats.h"
#include "analytics/pagerank.h"
#include "bench_util.h"
#include "core/harvester.h"
#include "query/engine.h"
#include "rdf/namespaces.h"
#include "server/kb_client.h"
#include "server/kb_server.h"
#include "util/thread_pool.h"

using namespace kb;

namespace {

/// Best-of-N wall time for `reps` back-to-back executions: the
/// repeated minimum is the least jitter-prone point estimate a shared
/// CI runner can produce.
double BestOf(int rounds, int reps, const std::function<void()>& fn) {
  double best = 1e18;
  for (int round = 0; round < rounds; ++round) {
    kbbench::Timer timer;
    for (int rep = 0; rep < reps; ++rep) fn();
    best = std::min(best, timer.ms());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E19: analytics execution — batched aggregates and graph jobs",
      "dashboard aggregates run vectorized with a Bloom semijoin "
      "prefilter, and offline graph analytics (PageRank, class "
      "rollups) run id-native on a shared thread pool behind the "
      "server's cached analytics endpoint",
      "batch+Bloom beats row-at-a-time on a join-heavy GROUP BY; "
      "PageRank parallelizes without changing its fixpoint; the warm "
      "dashboard call is a cache hit");

  corpus::WorldOptions world_options;
  world_options.seed = 1919;
  world_options.num_persons = args.Scaled(4000, 600);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 1920;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  core::Harvester harvester;
  core::HarvestResult harvest = harvester.Harvest(corpus);
  core::KnowledgeBase& kb = harvest.kb;
  kbbench::Row("KB: %zu triples, %zu entities, %zu classes",
               kb.NumTriples(), kb.NumEntities(), kb.NumClasses());
  kbbench::Report("e19_analytics", "kb_triples",
                  static_cast<double>(kb.NumTriples()));

  bool ok = true;

  // ---- Phase 1: join-heavy aggregate, row vs batch+Bloom ----------
  //
  // Employees per company headquartered in one city: the unselective
  // worksFor relation joins into a city-bound headquarteredIn level,
  // so the Bloom filter holds only that city's few company keys —
  // nearly every outer row is eliminated by a couple of bit probes
  // instead of an index lookup. The city with the most headquarters
  // is chosen so the aggregate still has several groups.
  const rdf::TermId hq_predicate = kb.store().dict().Lookup(
      rdf::Term::Iri(rdf::PropertyIri("headquarteredIn")));
  std::map<rdf::TermId, size_t> hq_cities;
  for (const rdf::Triple& t :
       kb.store().MatchFullScan({rdf::kAnyTerm, hq_predicate,
                                 rdf::kAnyTerm})) {
    ++hq_cities[t.o];
  }
  rdf::TermId top_city = 0;
  size_t top_city_count = 0;
  for (const auto& [city, count] : hq_cities) {
    if (count > top_city_count) {
      top_city = city;
      top_city_count = count;
    }
  }
  if (top_city == 0) {
    fprintf(stderr, "no headquarteredIn facts harvested\n");
    return 1;
  }
  const std::string city_iri(kb.store().dict().term(top_city).value());
  kbbench::Row("hq filter: %s hosts %zu company HQs (%zu cities total)",
               rdf::Abbreviate(city_iri).c_str(), top_city_count,
               hq_cities.size());
  const std::string agg_sparql =
      "SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p <" +
      rdf::PropertyIri("worksFor") + "> ?c . ?c <" +
      rdf::PropertyIri("headquarteredIn") + "> <" + city_iri +
      "> . } GROUP BY ?c";
  auto parsed = kb.ParseQuery(agg_sparql);
  if (!parsed.ok()) {
    fprintf(stderr, "parse failed: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  query::ExecutionOptions row_opts;
  row_opts.reorder_patterns = false;  // identical plans: executor A/B only
  query::ExecutionOptions batch_opts = row_opts;
  batch_opts.batch_size = 1024;

  query::QueryStats row_stats, batch_stats;
  auto row_rows = kb.Execute(*parsed, row_opts, &row_stats);
  auto batch_rows = kb.Execute(*parsed, batch_opts, &batch_stats);
  if (row_rows.size() != batch_rows.size() || row_rows.empty()) {
    fprintf(stderr, "FAIL: row mode %zu groups, batch mode %zu\n",
            row_rows.size(), batch_rows.size());
    ok = false;
  }

  const int kRounds = 5;
  const int kReps = static_cast<int>(args.Scaled(50, 30));
  double row_ms = BestOf(kRounds, kReps, [&] {
    query::QueryStats stats;
    kb.Execute(*parsed, row_opts, &stats);
  });
  double batch_ms = BestOf(kRounds, kReps, [&] {
    query::QueryStats stats;
    kb.Execute(*parsed, batch_opts, &stats);
  });
  double batch_x = batch_ms > 0 ? row_ms / batch_ms : 0;
  double bloom_hit_rate =
      batch_stats.bloom_probes > 0
          ? static_cast<double>(batch_stats.bloom_hits) /
                static_cast<double>(batch_stats.bloom_probes)
          : 1.0;
  kbbench::Row("aggregate (%zu groups): row %.2f ms, batch+bloom %.2f ms "
               "(%.2fx), %llu bloom probes at %.0f%% pass rate",
               row_rows.size(), row_ms / kReps, batch_ms / kReps, batch_x,
               static_cast<unsigned long long>(batch_stats.bloom_probes),
               bloom_hit_rate * 100);
  if (batch_ms > row_ms) {
    fprintf(stderr,
            "FAIL: batch+bloom %.2f ms is slower than row-at-a-time "
            "%.2f ms on the join-heavy aggregate\n",
            batch_ms, row_ms);
    ok = false;
  }
  kbbench::Report("e19_analytics", "agg_groups",
                  static_cast<double>(row_rows.size()));
  kbbench::Report("e19_analytics", "agg_row_ms", row_ms / kReps);
  kbbench::Report("e19_analytics", "agg_batch_ms", batch_ms / kReps);
  kbbench::Report("e19_analytics", "agg_batch_vs_row_x", batch_x);
  kbbench::Report("e19_analytics", "bloom_probes",
                  static_cast<double>(batch_stats.bloom_probes));
  kbbench::Report("e19_analytics", "bloom_pass_rate", bloom_hit_rate);

  // ---- Phase 2: PageRank, serial vs shared-pool parallel ----------
  analytics::PageRankOptions pr_options;
  pr_options.max_iterations = 20;
  pr_options.tolerance = 0;  // fixed work: serial/parallel comparable
  pr_options.iri_objects_only = &kb.store().dict();
  for (std::string_view iri : {rdf::kRdfType, rdf::kRdfsSubClassOf,
                               rdf::kRdfsLabel, rdf::kOwlSameAs}) {
    rdf::TermId id = kb.store().dict().Lookup(rdf::Term::Iri(std::string(iri)));
    if (id != rdf::kInvalidTermId) pr_options.exclude_predicates.push_back(id);
  }

  analytics::PageRankResult serial_pr;
  double pr_serial_ms = BestOf(3, 1, [&] {
    serial_pr = analytics::ComputePageRank(kb.store(), pr_options, nullptr);
  });
  unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  ThreadPool pool(static_cast<int>(std::min(hw, 8u)));
  analytics::PageRankResult parallel_pr;
  double pr_parallel_ms = BestOf(3, 1, [&] {
    parallel_pr = analytics::ComputePageRank(kb.store(), pr_options, &pool);
  });
  if (parallel_pr.nodes != serial_pr.nodes ||
      parallel_pr.iterations != serial_pr.iterations) {
    fprintf(stderr, "FAIL: parallel PageRank diverged from serial\n");
    ok = false;
  }
  double iters_per_s =
      pr_parallel_ms > 0 ? serial_pr.iterations * 1000.0 / pr_parallel_ms : 0;
  kbbench::Row("pagerank: %zu nodes, %zu edges, %d iterations; serial "
               "%.1f ms, %d threads %.1f ms (%.2fx, %.0f iters/s)",
               serial_pr.nodes.size(), serial_pr.num_edges,
               serial_pr.iterations, pr_serial_ms, pool.num_threads(),
               pr_parallel_ms,
               pr_parallel_ms > 0 ? pr_serial_ms / pr_parallel_ms : 0,
               iters_per_s);
  kbbench::Report("e19_analytics", "pagerank_edges",
                  static_cast<double>(serial_pr.num_edges));
  kbbench::Report("e19_analytics", "pagerank_serial_ms", pr_serial_ms);
  kbbench::Report("e19_analytics", "pagerank_parallel_ms", pr_parallel_ms);
  kbbench::Report("e19_analytics", "pagerank_iters_per_s", iters_per_s);

  // Class rollup on the same pool.
  analytics::ClassStatsOptions cs_options;
  cs_options.type_predicate =
      kb.store().dict().Lookup(rdf::Term::Iri(std::string(rdf::kRdfType)));
  cs_options.subclass_predicate = kb.store().dict().Lookup(
      rdf::Term::Iri(std::string(rdf::kRdfsSubClassOf)));
  analytics::ClassStatsResult class_stats;
  double cs_ms = BestOf(3, 1, [&] {
    class_stats = analytics::ComputeClassStats(kb.store(), cs_options, &pool);
  });
  kbbench::Row("class_stats: %zu typed entities across %zu classes in "
               "%.1f ms",
               class_stats.num_entities, class_stats.num_classes, cs_ms);
  kbbench::Report("e19_analytics", "class_entities",
                  static_cast<double>(class_stats.num_entities));
  kbbench::Report("e19_analytics", "class_classes",
                  static_cast<double>(class_stats.num_classes));
  kbbench::Report("e19_analytics", "class_stats_ms", cs_ms);

  // ---- Phase 3: the dashboard path — cached analytics endpoint ----
  {
    server::KbServer::Options options;
    options.num_workers = 4;
    server::KbServer server(&kb, options);
    if (!server.Start().ok()) {
      fprintf(stderr, "server start failed\n");
      return 1;
    }
    server::KbClient client;
    if (!client.Connect(server.port()).ok()) {
      fprintf(stderr, "connect failed\n");
      return 1;
    }
    kbbench::Timer cold_timer;
    auto cold = client.Analytics("pagerank", /*top_k=*/10);
    double cold_ms = cold_timer.ms();
    kbbench::Timer warm_timer;
    auto warm = client.Analytics("pagerank", /*top_k=*/10);
    double warm_ms = warm_timer.ms();
    bool warm_cached = warm.ok() && warm->GetBool("cached");
    if (!cold.ok() || !warm.ok()) {
      fprintf(stderr, "FAIL: analytics endpoint errored: %s / %s\n",
              cold.status().ToString().c_str(),
              warm.status().ToString().c_str());
      ok = false;
    } else if (!warm_cached) {
      fprintf(stderr, "FAIL: warm dashboard call missed the result cache\n");
      ok = false;
    }
    kbbench::Row("dashboard: cold %.2f ms (full PageRank), warm %.3f ms "
                 "(%s), %.0fx",
                 cold_ms, warm_ms, warm_cached ? "cache hit" : "MISS",
                 warm_ms > 0 ? cold_ms / warm_ms : 0);
    kbbench::Report("e19_analytics", "dashboard_cold_ms", cold_ms);
    kbbench::Report("e19_analytics", "dashboard_warm_ms", warm_ms);
    kbbench::Report("e19_analytics", "dashboard_warm_cached",
                    warm_cached ? 1 : 0);
    server.Stop();
  }

  if (!ok) {
    fprintf(stderr, "E19 FAILED\n");
    return 1;
  }
  printf("E19 ok\n");
  return 0;
}
