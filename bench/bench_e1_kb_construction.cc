// E1 — Automatic KB construction at scale (tutorial §1: automatically
// constructed KBs "contain millions of entities and billions of facts"
// with high accuracy; YAGO reports ~95%). We sweep the world size and
// report entity/class/fact counts, construction throughput, and
// accuracy, with consistency reasoning on and off.

#include <cstdio>

#include "bench_util.h"
#include "core/harvester.h"
#include "extraction/evaluation.h"

using namespace kb;

namespace {

struct ScalePoint {
  const char* label;
  size_t persons;
  size_t cities;
  size_t companies;
  size_t news;
};

void RunPoint(const ScalePoint& point, bool reasoning,
              bool gold_mentions = true) {
  corpus::WorldOptions world_options;
  world_options.seed = 1;
  world_options.num_persons = point.persons;
  world_options.num_cities = point.cities;
  world_options.num_companies = point.companies;
  world_options.num_bands = point.persons / 8;
  world_options.num_albums = point.persons / 4;
  world_options.num_films = point.persons / 5;
  world_options.num_universities = point.cities / 3;
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 2;
  corpus_options.news_docs = point.news;

  kbbench::Timer total;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  core::HarvestOptions options;
  options.use_reasoning = reasoning;
  options.use_gold_mentions = gold_mentions;
  core::Harvester harvester(options);
  core::HarvestResult result = harvester.Harvest(corpus);
  double seconds = total.seconds();

  auto base = extraction::ExpressedFacts(corpus.docs);
  PrecisionRecall pr =
      extraction::EvaluateFacts(corpus.world, result.accepted, base);
  kbbench::Row("%-6s %-9s %-8s %8zu %8zu %8zu %8zu %9.1f%% %8.1f%% %8.2fs",
               point.label, reasoning ? "on" : "off",
               gold_mentions ? "gold" : "detected",
               corpus.world.entities().size(), result.kb.NumEntities(),
               result.kb.NumClasses(), result.kb.NumTriples(),
               100 * pr.precision(), 100 * pr.recall(), seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E1: end-to-end KB construction (scale sweep)",
      "automatic KB construction yields large, accurate KBs (YAGO ~95% "
      "accuracy); counts grow linearly with source size",
      "accuracy >=90% with reasoning on, and higher than with reasoning "
      "off; triples scale ~linearly; runtime stays laptop-scale");

  kbbench::Row("%-6s %-9s %-8s %8s %8s %8s %8s %10s %9s %9s", "scale",
               "reasoning", "mentions", "gold-ent", "kb-ent", "classes",
               "triples", "precision", "recall", "time");
  if (args.smoke) {
    ScalePoint tiny = {"XS", 30, 10, 10, 30};
    RunPoint(tiny, true);
    RunPoint(tiny, false);
    return 0;
  }
  ScalePoint points[] = {
      {"S", 100, 25, 25, 100},
      {"M", 300, 60, 80, 250},
      {"L", 700, 120, 160, 500},
  };
  for (const ScalePoint& point : points) {
    RunPoint(point, true);
  }
  // Reasoning ablation at the middle scale.
  RunPoint(points[1], false);
  // End-to-end realism ablation: detected + disambiguated mentions
  // instead of gold spans (dictionary NER + joint NED feeding IE).
  RunPoint(points[1], true, /*gold_mentions=*/false);
  printf("\n(reasoning off keeps corrupted assertions: precision drops; "
         "the 'off' row\n sits below every 'on' row, the SOFIE shape)\n");
  return 0;
}
