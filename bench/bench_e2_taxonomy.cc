// E2 — Taxonomy induction from the category system (tutorial §2;
// WikiTaxonomy reports ~88% precision deriving a class taxonomy from
// Wikipedia categories). We measure the category-classification
// decisions against gold, entity-typing precision, and ablate the
// relational-category and administrative-filter heuristics.

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "corpus/generator.h"
#include "taxonomy/category_induction.h"
#include "util/metrics.h"

using namespace kb;

namespace {

/// Gold notion: a category string is conceptual iff the world's own
/// category generator produced it as a kind/occupation category (not
/// "... births", not admin, not the "Music" topical tag).
bool GoldConceptual(const std::string& category) {
  if (category.find(" births") != std::string::npos) return false;
  if (category == "Music") return false;
  for (const char* admin :
       {"Articles", "stubs", "Pages", "Wikipedia", "unsourced"}) {
    if (category.find(admin) != std::string::npos) return false;
  }
  return true;
}

void Evaluate(const corpus::Corpus& corpus,
              const taxonomy::InductionOptions& options, const char* label) {
  taxonomy::InducedTaxonomy induced =
      taxonomy::InduceFromCategories(corpus.docs, options);
  // Decision quality: precision/recall of "conceptual".
  PrecisionRecall decisions;
  for (const auto& [category, decision] : induced.decisions) {
    bool predicted =
        decision == taxonomy::CategoryDecision::kConceptual;
    bool gold = GoldConceptual(category);
    if (predicted && gold) decisions.AddTP();
    if (predicted && !gold) decisions.AddFP();
    if (!predicted && gold) decisions.AddFN();
  }
  // Entity typing precision over general classes.
  size_t typed_correct = 0, typed_total = 0;
  for (const auto& [entity, classes] : induced.entity_classes) {
    const corpus::Entity& e = corpus.world.entity(entity);
    for (const std::string& cls : classes) {
      if (cls.find(' ') != std::string::npos) continue;
      ++typed_total;
      bool ok = cls == corpus::EntityKindName(e.kind) ||
                (e.kind == corpus::EntityKind::kBand && cls == "group") ||
                (e.kind == corpus::EntityKind::kAlbum && cls == "album") ||
                (e.kind == corpus::EntityKind::kFilm && cls == "film");
      for (const std::string& occ : e.occupations) ok = ok || cls == occ;
      if (ok) ++typed_correct;
    }
  }
  kbbench::Row("%-28s %6zu %6zu %9.1f%% %8.1f%% %11.1f%% %8zu",
               label, induced.decisions.size(), induced.taxonomy.size(),
               100 * decisions.precision(), 100 * decisions.recall(),
               typed_total == 0
                   ? 0.0
                   : 100.0 * typed_correct / typed_total,
               induced.birth_years.size());
}

}  // namespace

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E2: class taxonomy from the category system",
      "analyzing the category system yields a class taxonomy "
      "(WikiTaxonomy ~88% precision); special-purpose heuristics "
      "(relational categories, admin filter) are what buy the precision",
      "full heuristics reach high-80s..90s%% typing precision; each "
      "ablation costs precision; 'births' handling converts errors into "
      "birthDate facts");

  corpus::WorldOptions world_options;
  world_options.seed = 3;
  world_options.num_persons = args.Scaled(400, 60);
  world_options.num_cities = args.Scaled(80, 15);
  world_options.num_companies = args.Scaled(100, 15);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 4;
  corpus_options.news_docs = 20;
  corpus_options.admin_category_rate = 0.35;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);

  kbbench::Row("%-28s %6s %6s %10s %9s %12s %8s", "configuration", "cats",
               "classes", "decisionP", "decisionR", "typing-prec",
               "birthyrs");
  taxonomy::InductionOptions full;
  Evaluate(corpus, full, "full heuristics");
  taxonomy::InductionOptions no_relational;
  no_relational.relational_categories = false;
  Evaluate(corpus, no_relational, "- relational categories");
  taxonomy::InductionOptions no_admin;
  no_admin.admin_filter = false;
  Evaluate(corpus, no_admin, "- administrative filter");
  taxonomy::InductionOptions bare;
  bare.relational_categories = false;
  bare.admin_filter = false;
  Evaluate(corpus, bare, "plural-head rule only");
  return 0;
}
