// E3 — The spectrum of relational fact extraction (tutorial §3):
// pattern matching -> statistical learning -> logical consistency
// reasoning. We run each extractor configuration on the same corpus
// and report precision/recall/F1; the expected shape is rising recall
// along the spectrum and a precision jump when MaxSat reasoning prunes
// conflicting hypotheses (SOFIE).

#include <cstdio>

#include "bench_util.h"
#include "corpus/generator.h"
#include "extraction/bootstrap.h"
#include "extraction/distant_supervision.h"
#include "extraction/evaluation.h"
#include "extraction/infobox_extractor.h"
#include "extraction/pattern_extractor.h"
#include "reasoning/consistency.h"

using namespace kb;

namespace {

void Report(const char* label, const corpus::Corpus& corpus,
            const std::vector<extraction::ExtractedFact>& facts,
            const std::set<uint32_t>& base) {
  PrecisionRecall pr = extraction::EvaluateFacts(corpus.world, facts, base);
  kbbench::Row("%-26s %8zu %10.1f%% %9.1f%% %8.3f", label,
               extraction::DeduplicateFacts(facts).size(),
               100 * pr.precision(), 100 * pr.recall(), pr.f1());
}

}  // namespace

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E3: the extraction spectrum + consistency reasoning",
      "methods span patterns, statistics and logical consistency "
      "reasoning (weighted MaxSat); reasoning trades little recall for a "
      "large precision gain",
      "recall: patterns < +bootstrap < +statistical; precision of the "
      "combined extractor jumps when reasoning is added");

  corpus::WorldOptions world_options;
  world_options.seed = 5;
  world_options.num_persons = args.Scaled(250, 50);
  world_options.num_cities = args.Scaled(50, 12);
  world_options.num_companies = args.Scaled(70, 15);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 6;
  corpus_options.news_docs = args.Scaled(300, 40);
  corpus_options.fact_error_rate = 0.08;  // enough noise to matter
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);

  nlp::PosTagger tagger;
  auto sentences =
      extraction::AnnotateDocuments(corpus.world, corpus.docs, tagger);
  auto base = extraction::ExpressedFacts(corpus.docs);

  std::unordered_map<std::string, uint32_t> by_canonical;
  for (const corpus::Entity& e : corpus.world.entities()) {
    by_canonical[e.canonical] = e.id;
  }
  extraction::InfoboxExtractor infobox(by_canonical);
  auto infobox_facts = infobox.Extract(corpus.docs);

  kbbench::Row("%-26s %8s %11s %10s %8s", "extractor", "facts",
               "precision", "recall", "F1");

  // 1. Hand-written patterns only.
  extraction::PatternExtractor patterns(extraction::DefaultPatterns());
  auto pattern_facts = patterns.Extract(sentences);
  Report("patterns", corpus, pattern_facts, base);

  // 2. + bootstrapped patterns (Snowball), seeded by infoboxes.
  auto with_bootstrap = pattern_facts;
  {
    extraction::Bootstrapper bootstrapper;
    for (int r = 0; r < corpus::kNumRelations; ++r) {
      auto boot = bootstrapper.Run(static_cast<corpus::Relation>(r),
                                   infobox_facts, sentences);
      with_bootstrap.insert(with_bootstrap.end(), boot.facts.begin(),
                            boot.facts.end());
    }
  }
  Report("patterns+bootstrap", corpus, with_bootstrap, base);

  // 3. + distant-supervision statistical extractor.
  auto with_statistical = with_bootstrap;
  {
    extraction::RelationClassifier classifier;
    classifier.Train(sentences, infobox_facts);
    auto ds = classifier.Extract(sentences, 0.7);
    with_statistical.insert(with_statistical.end(), ds.begin(), ds.end());
  }
  Report("patterns+boot+statistical", corpus, with_statistical, base);

  // 4. Everything + infoboxes, without reasoning.
  auto combined = with_statistical;
  combined.insert(combined.end(), infobox_facts.begin(),
                  infobox_facts.end());
  Report("all extractors (no reasoning)", corpus, combined, base);

  // 5. Everything + MaxSat consistency reasoning.
  reasoning::ConsistencyResult reasoned =
      reasoning::ReasonOverFacts(combined);
  Report("all + MaxSat reasoning", corpus, reasoned.accepted, base);
  kbbench::Row("%-26s %8zu", "  (rejected by reasoning)",
               reasoned.rejected.size());

  // 5b. The DeepDive-style alternative: factor graph + Gibbs marginals.
  reasoning::ConsistencyResult gibbs =
      reasoning::ReasonOverFactsProbabilistic(combined);
  Report("all + Gibbs marginals", corpus, gibbs.accepted, base);

  // 6. Constraint-family ablation.
  printf("\nconstraint ablation (all extractors):\n");
  kbbench::Row("%-26s %8s %11s %10s %8s", "constraints", "facts",
               "precision", "recall", "F1");
  for (int mask = 0; mask < 2; ++mask) {
    reasoning::ConsistencyOptions options;
    options.inverse_functionality = mask == 0;
    options.temporal_conflicts = mask == 0;
    auto partial = reasoning::ReasonOverFacts(combined, options);
    Report(mask == 0 ? "functional+invfunc+temporal" : "functional only",
           corpus, partial.accepted, base);
  }
  return 0;
}
