// E4 — Open information extraction vs. closed IE (tutorial §3): open
// IE "aggressively taps into noun phrases ... and verbal phrases",
// harvesting arbitrary SPO triples. We compare yield and (entity-
// alignment) precision against the closed-inventory extractor and
// trace ReVerb's confidence/precision trade-off.

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "corpus/generator.h"
#include "extraction/evaluation.h"
#include "extraction/pattern_extractor.h"
#include "openie/reverb.h"

using namespace kb;

namespace {

/// An open triple counts as correct when both arguments align to gold
/// entity mentions AND that entity pair participates in some gold fact
/// (either direction) — the human-judgment proxy our gold world allows.
bool TripleCorrect(const corpus::World& world, const openie::OpenTriple& t) {
  if (t.arg1_entity == UINT32_MAX || t.arg2_entity == UINT32_MAX) {
    return false;
  }
  for (const corpus::GoldFact& f : world.facts()) {
    if (corpus::GetRelationInfo(f.relation).literal_object) continue;
    if ((f.subject == t.arg1_entity && f.object == t.arg2_entity) ||
        (f.subject == t.arg2_entity && f.object == t.arg1_entity)) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E4: open IE vs closed IE",
      "open IE harvests arbitrary SPO triples at far higher yield than a "
      "closed relation inventory, at lower precision; confidence "
      "thresholds trade yield for precision (ReVerb)",
      "open yield >> closed yield; distinct open relations >> inventory "
      "size; precision rises monotonically with the confidence cutoff");

  corpus::WorldOptions world_options;
  world_options.seed = 7;
  world_options.num_persons = args.Scaled(200, 40);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 8;
  corpus_options.news_docs = args.Scaled(250, 40);
  corpus_options.web_docs = args.Scaled(60, 10);
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  nlp::PosTagger tagger;
  auto sentences =
      extraction::AnnotateDocuments(corpus.world, corpus.docs, tagger);

  // Closed IE baseline.
  extraction::PatternExtractor closed(extraction::DefaultPatterns());
  auto closed_facts =
      extraction::DeduplicateFacts(closed.Extract(sentences));
  printf("closed IE: %zu facts over %d relations in the inventory\n\n",
         closed_facts.size(), corpus::kNumRelations);

  // Open IE.
  openie::OpenIEExtractor open;
  auto triples = open.Extract(sentences);
  std::set<std::string> open_relations;
  for (const auto& t : triples) open_relations.insert(t.normalized_relation);
  printf("open IE:   %zu triples over %zu distinct relation phrases\n",
         triples.size(), open_relations.size());
  printf("yield ratio open/closed: %.1fx\n\n",
         static_cast<double>(triples.size()) /
             static_cast<double>(closed_facts.size()));

  // Confidence / precision curve.
  kbbench::Row("%-12s %8s %12s %10s", "conf >=", "triples",
               "precision*", "rel-phrases");
  for (double threshold : {0.0, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    size_t kept = 0, correct = 0;
    std::set<std::string> relations;
    for (const auto& t : triples) {
      if (t.confidence < threshold) continue;
      ++kept;
      relations.insert(t.normalized_relation);
      if (TripleCorrect(corpus.world, t)) ++correct;
    }
    kbbench::Row("%-12.1f %8zu %11.1f%% %10zu", threshold, kept,
                 kept == 0 ? 0.0 : 100.0 * correct / kept,
                 relations.size());
  }
  printf("(*correct = both arguments align to gold entities that share a "
         "gold fact)\n\n");

  // Lexical-constraint ablation.
  kbbench::Row("%-24s %8s %12s", "lexical constraint", "triples",
               "precision*");
  for (int support : {1, 3, 5, 10}) {
    openie::OpenIEOptions options;
    options.min_relation_support = support;
    openie::OpenIEExtractor extractor(options);
    auto constrained = extractor.Extract(sentences);
    size_t correct = 0;
    for (const auto& t : constrained) {
      if (TripleCorrect(corpus.world, t)) ++correct;
    }
    kbbench::Row("min %2d arg-pairs %15zu %11.1f%%", support,
                 constrained.size(),
                 constrained.empty() ? 0.0
                                     : 100.0 * correct / constrained.size());
  }
  return 0;
}
