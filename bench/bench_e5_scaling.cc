// E5 — Scalability of knowledge harvesting (tutorial §1/§3: "scalable
// distributed algorithms for harvesting knowledge", map-reduce-style
// computation). We shard the annotation+extraction map phase across a
// worker pool and measure throughput and speedup vs. worker count.

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/harvester.h"

using namespace kb;

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E5: map-reduce-shaped harvesting scalability",
      "big-data techniques (sharded map-reduce processing) let "
      "knowledge harvesting scale",
      "near-linear speedup of the document-processing map phase until "
      "the physical core count; identical output at every worker count");

  corpus::WorldOptions world_options;
  world_options.seed = 9;
  world_options.num_persons = args.Scaled(500, 60);
  world_options.num_cities = args.Scaled(100, 15);
  world_options.num_companies = args.Scaled(120, 15);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 10;
  corpus_options.news_docs = args.Scaled(600, 60);
  corpus_options.web_docs = args.Scaled(150, 20);
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  printf("corpus: %zu documents; host reports %u hardware threads\n\n",
         corpus.docs.size(), std::thread::hardware_concurrency());

  kbbench::Row("%-8s %12s %12s %10s %10s %9s", "threads", "annotate-ms",
               "docs/sec", "speedup", "facts", "triples");
  double baseline_ms = 0;
  size_t reference_facts = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    core::HarvestOptions options;
    options.threads = threads;
    // Keep the measured phase the parallel one (sequential stages off
    // would change outputs; keep full pipeline, report map-phase time).
    core::Harvester harvester(options);
    core::HarvestResult result = harvester.Harvest(corpus);
    if (threads == 1) {
      baseline_ms = result.stats.annotate_ms;
      reference_facts = result.stats.accepted_facts;
    }
    double docs_per_sec = 1000.0 * static_cast<double>(corpus.docs.size()) /
                          result.stats.annotate_ms;
    kbbench::Row("%-8zu %12.1f %12.0f %9.2fx %10zu %9zu", threads,
                 result.stats.annotate_ms, docs_per_sec,
                 baseline_ms / result.stats.annotate_ms,
                 result.stats.accepted_facts, result.kb.NumTriples());
    if (result.stats.accepted_facts != reference_facts) {
      printf("WARNING: output changed with thread count!\n");
    }
  }
  printf("\n(sharding is deterministic: every worker count yields the "
         "same KB)\n");
  return 0;
}
