// E5 — Scalability of knowledge harvesting (tutorial §1/§3: "scalable
// distributed algorithms for harvesting knowledge", map-reduce-style
// computation). Two phases:
//  1. the annotation+extraction map phase sharded across a worker
//     pool (throughput and speedup vs. worker count), and
//  2. the storage engine under a mixed read/write load: K writer + K
//     reader threads against a ShardedKVStore, swept over shard count
//     and block-cache on/off, plus a group-commit measurement showing
//     WAL fsyncs amortizing across concurrent writers.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/harvester.h"
#include "storage/sharded_kv_store.h"
#include "util/metrics_registry.h"
#include "util/random.h"

using namespace kb;

namespace {

struct MixedLoad {
  int threads_per_role;      ///< K writers + K readers
  size_t preload_keys;       ///< table-resident working set for readers
  size_t writes_per_thread;
  size_t reads_per_thread;
};

struct MixedResult {
  double ops_per_sec;
  uint64_t cache_hits;  ///< kv.cache_hits delta across the timed phase
};

std::string PreloadKey(size_t i) { return "p" + std::to_string(i); }

/// K writer + K reader threads against one ShardedKVStore config.
/// sync_wal stays off: this measures lock/CPU contention (the fsync
/// bottleneck is measured separately by RunGroupCommit).
MixedResult RunMixed(const std::string& dir, int shards, bool cache_on,
                     const MixedLoad& load) {
  std::filesystem::remove_all(dir);
  storage::ShardedStoreOptions options;
  options.num_shards = shards;
  options.block_cache_bytes = cache_on ? (8u << 20) : 0;
  options.store.sync_wal = false;
  options.store.memtable_flush_bytes = 64 << 10;
  auto store = storage::ShardedKVStore::Open(options, dir);
  if (!store.ok()) {
    fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    exit(1);
  }
  const std::string value(100, 'v');
  for (size_t i = 0; i < load.preload_keys; ++i) {
    (*store)->Put(Slice(PreloadKey(i)), Slice(value));
  }
  (*store)->Flush();  // readers hit SSTables (and the cache), not memtables

  Counter& hits = MetricsRegistry::Default().counter("kv.cache_hits");
  const uint64_t hits_before = hits.value();
  kbbench::Timer timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < load.threads_per_role; ++t) {
    threads.emplace_back([&, t] {
      std::string prefix = "w" + std::to_string(t) + "-";
      for (size_t i = 0; i < load.writes_per_thread; ++i) {
        (*store)->Put(Slice(prefix + std::to_string(i)), Slice(value));
      }
    });
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      std::string out;
      for (size_t i = 0; i < load.reads_per_thread; ++i) {
        (*store)->Get(Slice(PreloadKey(rng.Uniform(load.preload_keys))),
                      &out);
      }
    });
  }
  for (auto& th : threads) th.join();
  double secs = timer.seconds();
  store->reset();  // drain background work before deleting the dir
  std::filesystem::remove_all(dir);
  size_t total_ops = static_cast<size_t>(load.threads_per_role) *
                     (load.writes_per_thread + load.reads_per_thread);
  return MixedResult{static_cast<double>(total_ops) / secs,
                     hits.value() - hits_before};
}

/// K concurrent writers on ONE shard with sync_wal on: group commit
/// lets a leader fsync once for a whole queued batch, so the fsync
/// count comes out well under the write count.
void RunGroupCommit(const std::string& dir, int writers,
                    size_t writes_per_thread, bool smoke) {
  std::filesystem::remove_all(dir);
  storage::ShardedStoreOptions options;
  options.num_shards = 1;
  options.store.sync_wal = true;
  auto store = storage::ShardedKVStore::Open(options, dir);
  if (!store.ok()) {
    fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    exit(1);
  }
  Counter& syncs = MetricsRegistry::Default().counter("kv.wal_syncs");
  const uint64_t syncs_before = syncs.value();
  kbbench::Timer timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      std::string prefix = "g" + std::to_string(t) + "-";
      for (size_t i = 0; i < writes_per_thread; ++i) {
        (*store)->Put(Slice(prefix + std::to_string(i)), Slice("v"));
      }
    });
  }
  for (auto& th : threads) th.join();
  double secs = timer.seconds();
  uint64_t total_writes =
      static_cast<uint64_t>(writers) * writes_per_thread;
  uint64_t sync_count = syncs.value() - syncs_before;
  store->reset();
  std::filesystem::remove_all(dir);
  kbbench::Row("%-22s %8d %10zu %10zu %10.0f", "group-commit(sync_wal)",
               writers, static_cast<size_t>(total_writes),
               static_cast<size_t>(sync_count),
               static_cast<double>(total_writes) / secs);
  kbbench::Report("e5.group_commit", "wal_syncs",
                  static_cast<double>(sync_count));
  kbbench::Report("e5.group_commit", "writes",
                  static_cast<double>(total_writes));
  if (smoke && sync_count >= total_writes) {
    printf("SMOKE FAIL: group commit did not amortize fsyncs "
           "(%zu syncs for %zu writes)\n",
           static_cast<size_t>(sync_count), static_cast<size_t>(total_writes));
    exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E5: map-reduce-shaped harvesting scalability",
      "big-data techniques (sharded map-reduce processing) let "
      "knowledge harvesting scale",
      "near-linear speedup of the document-processing map phase until "
      "the physical core count; identical output at every worker count");

  corpus::WorldOptions world_options;
  world_options.seed = 9;
  world_options.num_persons = args.Scaled(500, 60);
  world_options.num_cities = args.Scaled(100, 15);
  world_options.num_companies = args.Scaled(120, 15);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 10;
  corpus_options.news_docs = args.Scaled(600, 60);
  corpus_options.web_docs = args.Scaled(150, 20);
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  printf("corpus: %zu documents; host reports %u hardware threads\n\n",
         corpus.docs.size(), std::thread::hardware_concurrency());

  kbbench::Row("%-8s %12s %12s %10s %10s %9s", "threads", "annotate-ms",
               "docs/sec", "speedup", "facts", "triples");
  double baseline_ms = 0;
  size_t reference_facts = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    core::HarvestOptions options;
    options.threads = threads;
    // Keep the measured phase the parallel one (sequential stages off
    // would change outputs; keep full pipeline, report map-phase time).
    core::Harvester harvester(options);
    core::HarvestResult result = harvester.Harvest(corpus);
    if (threads == 1) {
      baseline_ms = result.stats.annotate_ms;
      reference_facts = result.stats.accepted_facts;
    }
    double docs_per_sec = 1000.0 * static_cast<double>(corpus.docs.size()) /
                          result.stats.annotate_ms;
    kbbench::Row("%-8zu %12.1f %12.0f %9.2fx %10zu %9zu", threads,
                 result.stats.annotate_ms, docs_per_sec,
                 baseline_ms / result.stats.annotate_ms,
                 result.stats.accepted_facts, result.kb.NumTriples());
    if (result.stats.accepted_facts != reference_facts) {
      printf("WARNING: output changed with thread count!\n");
    }
  }
  printf("\n(sharding is deterministic: every worker count yields the "
         "same KB)\n");

  // ---- Phase 2: storage engine under mixed read/write load ----------
  printf("\nstorage engine: %d writer + %d reader threads, shard count x "
         "block cache\n\n",
         4, 4);
  MixedLoad load;
  load.threads_per_role = 4;
  load.preload_keys = args.Scaled(20000, 4000);
  load.writes_per_thread = args.Scaled(30000, 4000);
  load.reads_per_thread = args.Scaled(60000, 8000);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kbforge_bench_e5_kv")
          .string();
  kbbench::Row("%-22s %8s %10s %12s", "config", "shards", "cache",
               "ops/sec");
  double baseline_ops = 0;   // 1 shard, cache off
  double best_ops = 0;       // 16 shards, cache on
  uint64_t best_hits = 0;
  for (int shards : {1, 4, 16}) {
    for (bool cache_on : {false, true}) {
      MixedResult r = RunMixed(dir, shards, cache_on, load);
      kbbench::Row("%-22s %8d %10s %12.0f", "mixed-rw", shards,
                   cache_on ? "on" : "off", r.ops_per_sec);
      std::string bench = "e5.mixed_rw.shards" + std::to_string(shards) +
                          (cache_on ? ".cache" : ".nocache");
      kbbench::Report(bench, "ops_per_sec", r.ops_per_sec);
      kbbench::Report(bench, "cache_hits", static_cast<double>(r.cache_hits));
      if (shards == 1 && !cache_on) baseline_ops = r.ops_per_sec;
      if (shards == 16 && cache_on) {
        best_ops = r.ops_per_sec;
        best_hits = r.cache_hits;
      }
    }
  }
  printf("\n");
  kbbench::Row("%-22s %8s %10s %10s %10s", "config", "writers", "writes",
               "fsyncs", "ops/sec");
  RunGroupCommit(dir, 4, args.Scaled(4000, 500), args.smoke);
  printf("\n(16 shards + cache vs 1 shard no cache: %.2fx)\n",
         best_ops / baseline_ops);
  if (args.smoke) {
    if (best_ops < baseline_ops) {
      printf("SMOKE FAIL: 16-shard+cache (%.0f ops/s) slower than "
             "1-shard/no-cache (%.0f ops/s)\n",
             best_ops, baseline_ops);
      return 1;
    }
    if (best_hits == 0) {
      printf("SMOKE FAIL: block cache saw no hits in the cached config\n");
      return 1;
    }
  }
  return 0;
}
