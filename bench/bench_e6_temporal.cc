// E6 — Temporal knowledge (tutorial §3): extracting temporal
// expressions and inferring the timespans during which facts hold. We
// measure timex normalization accuracy per expression kind and the
// begin/end-year accuracy of scoped facts against the gold spans.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "corpus/generator.h"
#include "extraction/pattern_extractor.h"
#include "temporal/scoping.h"

using namespace kb;

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E6: temporal expression extraction and fact scoping",
      "temporal expressions can be extracted and normalized, and fact "
      "validity timespans inferred from them",
      "explicit dates normalize near-perfectly; interval-bearing "
      "sentences give begin/end years with high accuracy; aggregation "
      "across redundant mentions narrows spans");

  corpus::WorldOptions world_options;
  world_options.seed = 11;
  world_options.num_persons = args.Scaled(300, 50);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 12;
  corpus_options.news_docs = args.Scaled(300, 40);
  corpus_options.fact_error_rate = 0.0;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  nlp::PosTagger tagger;
  auto sentences =
      extraction::AnnotateDocuments(corpus.world, corpus.docs, tagger);

  // Timex inventory across the corpus.
  std::map<temporal::TimexKind, size_t> kind_counts;
  for (const auto& as : sentences) {
    for (const temporal::Timex& t :
         temporal::ExtractTimexes(as.sentence)) {
      kind_counts[t.kind]++;
    }
  }
  kbbench::Row("%-14s %8s", "timex kind", "count");
  const char* kind_names[] = {"date", "interval", "since", "until"};
  for (const auto& [kind, count] : kind_counts) {
    kbbench::Row("%-14s %8zu", kind_names[static_cast<int>(kind)], count);
  }

  // Scoping accuracy per temporal relation.
  extraction::PatternExtractor patterns(extraction::DefaultPatterns());
  temporal::TemporalScoper scoper(&patterns);
  auto facts = scoper.ScopeSentences(sentences);

  printf("\n");
  kbbench::Row("%-12s %8s %10s %12s %12s", "relation", "scoped",
               "begin-acc", "end-acc", "spanless");
  for (corpus::Relation relation :
       {corpus::Relation::kMayorOf, corpus::Relation::kWorksFor,
        corpus::Relation::kMarriedTo}) {
    size_t scoped = 0, begin_ok = 0, end_checked = 0, end_ok = 0,
           spanless = 0;
    for (const auto& f : facts) {
      if (f.relation != relation) continue;
      const corpus::GoldFact* gold = nullptr;
      for (const corpus::GoldFact& g : corpus.world.facts()) {
        if (g.relation == relation && g.subject == f.subject &&
            g.object == f.object) {
          gold = &g;
          break;
        }
      }
      if (gold == nullptr) continue;
      if (!f.span.valid()) {
        ++spanless;
        continue;
      }
      ++scoped;
      if (f.span.begin.valid() && gold->span.begin.valid() &&
          f.span.begin.year == gold->span.begin.year) {
        ++begin_ok;
      }
      if (gold->span.end.valid()) {
        ++end_checked;
        if (f.span.end.valid() &&
            f.span.end.year == gold->span.end.year) {
          ++end_ok;
        }
      }
    }
    kbbench::Row("%-12s %8zu %9.1f%% %11.1f%% %12zu",
                 corpus::GetRelationInfo(relation).name.data(), scoped,
                 scoped == 0 ? 0.0 : 100.0 * begin_ok / scoped,
                 end_checked == 0 ? 0.0 : 100.0 * end_ok / end_checked,
                 spanless);
  }
  printf("\n(facts whose sentences never carried a timex stay spanless — "
         "the honest\n remainder real systems also leave unscoped)\n");
  return 0;
}
