// E7 — Named entity disambiguation (tutorial §4): "state-of-the-art
// NED methods combine context similarity ... with coherence measures
// for two or more entities co-occurring together" (the AIDA recipe).
// We ablate the signal stack and split accuracy by mention ambiguity.

#include <cstdio>

#include "bench_util.h"
#include "corpus/generator.h"
#include "ned/alias_index.h"
#include "ned/coherence.h"
#include "ned/context_model.h"
#include "ned/disambiguator.h"

using namespace kb;

namespace {

struct NedScores {
  double all = 0;
  double ambiguous = 0;
  size_t total = 0;
  size_t ambiguous_total = 0;
};

NedScores Score(const corpus::Corpus& corpus, const ned::AliasIndex& aliases,
                const ned::ContextModel& context,
                const ned::CoherenceModel& coherence, ned::NedMode mode) {
  ned::NedOptions options;
  options.mode = mode;
  ned::Disambiguator disambiguator(&aliases, &context, &coherence, options);
  size_t correct = 0, total = 0, amb_correct = 0, amb_total = 0;
  for (const corpus::Document& doc : corpus.docs) {
    if (doc.kind != corpus::DocKind::kNews) continue;
    for (const ned::Disambiguation& d :
         disambiguator.DisambiguateDocument(doc)) {
      bool ok = d.predicted == doc.mentions[d.mention_index].entity;
      ++total;
      correct += ok;
      if (d.num_candidates >= 2) {
        ++amb_total;
        amb_correct += ok;
      }
    }
  }
  NedScores scores;
  scores.total = total;
  scores.ambiguous_total = amb_total;
  scores.all = total == 0 ? 0 : static_cast<double>(correct) / total;
  scores.ambiguous =
      amb_total == 0 ? 0 : static_cast<double>(amb_correct) / amb_total;
  return scores;
}

}  // namespace

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E7: named entity disambiguation ablation",
      "NED = context similarity + coherence of co-occurring entities; "
      "each signal adds accuracy, with the largest gains on ambiguous "
      "mentions (AIDA shape)",
      "accuracy: prior < +context < +coherence; the gap widens on the "
      "ambiguous-mention subset");

  kbbench::Row("%-12s %-10s %10s %12s", "ambiguity", "mode", "accuracy",
               "ambig-only");
  for (double ambiguity : {0.2, 0.45, 0.7}) {
    corpus::WorldOptions world_options;
    world_options.seed = 13;
    world_options.num_persons = args.Scaled(250, 50);
    world_options.surname_reuse = 0.55;
    corpus::CorpusOptions corpus_options;
    corpus_options.seed = 14;
    corpus_options.news_docs = args.Scaled(250, 40);
    corpus_options.mention_ambiguity = ambiguity;
    corpus::Corpus corpus =
        corpus::BuildCorpus(world_options, corpus_options);
    ned::AliasIndex aliases = ned::AliasIndex::Build(corpus.world);
    ned::ContextModel context =
        ned::ContextModel::Build(corpus.world, corpus.docs);
    ned::CoherenceModel coherence =
        ned::CoherenceModel::Build(corpus.world, corpus.docs);

    const char* mode_names[] = {"prior", "+context", "+coherence"};
    for (ned::NedMode mode : {ned::NedMode::kPrior, ned::NedMode::kContext,
                              ned::NedMode::kCoherence}) {
      NedScores s = Score(corpus, aliases, context, coherence, mode);
      kbbench::Row("%-12.2f %-10s %9.1f%% %11.1f%%", ambiguity,
                   mode_names[static_cast<int>(mode)], 100 * s.all,
                   100 * s.ambiguous);
    }
    printf("\n");
  }

  // --- Emerging entities: hold persons out of the alias dictionary;
  // their mentions must map to NIL, known entities must not.
  {
    corpus::WorldOptions world_options;
    world_options.seed = 13;
    world_options.num_persons = args.Scaled(250, 50);
    corpus::CorpusOptions corpus_options;
    corpus_options.seed = 14;
    corpus_options.news_docs = args.Scaled(250, 40);
    corpus::Corpus corpus =
        corpus::BuildCorpus(world_options, corpus_options);
    std::set<uint32_t> holdout;
    const auto& persons = corpus.world.ByKind(corpus::EntityKind::kPerson);
    for (size_t i = 0; i < persons.size(); i += 10) {
      holdout.insert(persons[i]);  // 10% emerging
    }
    ned::AliasIndex aliases = ned::AliasIndex::Build(corpus.world,
                                                     &holdout);
    ned::ContextModel context =
        ned::ContextModel::Build(corpus.world, corpus.docs);
    ned::CoherenceModel coherence =
        ned::CoherenceModel::Build(corpus.world, corpus.docs);
    ned::NedOptions options;
    ned::Disambiguator d(&aliases, &context, &coherence, options);
    size_t nil_correct = 0, nil_gold = 0, nil_predicted = 0;
    for (const corpus::Document& doc : corpus.docs) {
      if (doc.kind != corpus::DocKind::kNews) continue;
      for (const ned::Disambiguation& dec : d.DisambiguateDocument(doc)) {
        bool gold_nil =
            holdout.count(doc.mentions[dec.mention_index].entity) > 0;
        bool predicted_nil = dec.predicted == UINT32_MAX;
        nil_gold += gold_nil;
        nil_predicted += predicted_nil;
        nil_correct += gold_nil && predicted_nil;
      }
    }
    printf("emerging entities (10%% of persons unknown to the KB):\n");
    printf("  NIL precision %.1f%%, NIL recall %.1f%% over %zu "
           "out-of-KB mentions\n",
           nil_predicted == 0 ? 0.0 : 100.0 * nil_correct / nil_predicted,
           nil_gold == 0 ? 0.0 : 100.0 * nil_correct / nil_gold, nil_gold);
    printf("  (mentions whose surface is exclusively held-out map to "
           "NIL; shared\n   surfaces like bare surnames fall back to a "
           "known namesake — the\n   coverage challenge the tutorial "
           "names for NED)\n");
  }
  return 0;
}
