// E8 — Entity linkage (tutorial §4): matching two knowledge resources'
// records into owl:sameAs links, "covering statistical learning
// approaches and graph algorithms", with blocking as the scalability
// lever. We compare threshold / logistic / graph matchers and block-
// ing strategies on two noisy copies of the gold world.

#include <cstdio>

#include "bench_util.h"
#include "corpus/world.h"
#include "linkage/blocking.h"
#include "linkage/graph_linker.h"
#include "linkage/matcher.h"
#include "linkage/record.h"

using namespace kb;

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E8: entity linkage across knowledge resources",
      "entity linkage via statistical learning and graph algorithms; "
      "blocking cuts candidate pairs by orders of magnitude at little "
      "recall cost",
      "F1: threshold < logistic < graph-refined; blocking reduction "
      ">= 10x with pairs-completeness near 1");

  corpus::WorldOptions world_options;
  world_options.seed = 15;
  world_options.num_persons = args.Scaled(400, 60);
  world_options.num_companies = args.Scaled(100, 15);
  corpus::World world = corpus::World::Generate(world_options);
  linkage::NoisyCopyOptions a_options;
  a_options.seed = 21;
  linkage::NoisyCopyOptions b_options;
  b_options.seed = 22;
  auto a = linkage::MakeNoisyRecords(world, a_options);
  auto b = linkage::MakeNoisyRecords(world, b_options);
  printf("resources: %zu and %zu records (noisy copies of one world)\n\n",
         a.size(), b.size());

  // --- Blocking comparison.
  kbbench::Row("%-22s %10s %11s %14s %10s", "blocking", "pairs",
               "reduction", "completeness", "time-ms");
  std::vector<linkage::CandidatePair> standard_pairs;
  size_t cross = a.size() * b.size();
  for (auto strategy : {linkage::BlockingStrategy::kNone,
                        linkage::BlockingStrategy::kStandard,
                        linkage::BlockingStrategy::kSortedNeighborhood}) {
    linkage::BlockingOptions options;
    options.strategy = strategy;
    kbbench::Timer timer;
    auto pairs = linkage::GenerateCandidates(a, b, options);
    double ms = timer.ms();
    double completeness = linkage::PairsCompleteness(a, b, pairs);
    const char* names[] = {"cross product", "standard key",
                           "sorted neighborhood"};
    kbbench::Row("%-22s %10zu %10.1fx %13.1f%% %10.2f",
                 names[static_cast<int>(strategy)], pairs.size(),
                 static_cast<double>(cross) /
                     static_cast<double>(pairs.size()),
                 100 * completeness, ms);
    if (strategy == linkage::BlockingStrategy::kStandard) {
      standard_pairs = std::move(pairs);
    }
  }

  // --- Matcher comparison on the standard-blocked candidates.
  printf("\n");
  kbbench::Row("%-22s %8s %11s %9s %8s", "matcher", "links", "precision",
               "recall", "F1");
  auto report = [&](const char* label,
                    const std::vector<linkage::Match>& matches) {
    auto q = linkage::EvaluateMatches(a, b, matches);
    kbbench::Row("%-22s %8zu %10.1f%% %8.1f%% %8.3f", label,
                 matches.size(), 100 * q.precision, 100 * q.recall, q.f1);
  };
  for (double threshold : {0.85, 0.92}) {
    char label[64];
    snprintf(label, sizeof(label), "JW threshold %.2f", threshold);
    report(label, linkage::ThresholdMatch(a, b, standard_pairs, threshold));
  }
  linkage::LogisticMatcher matcher;
  matcher.Train(a, b, standard_pairs);
  report("logistic regression",
         matcher.MatchPairs(a, b, standard_pairs, 0.5));
  linkage::GraphLinker linker;
  report("graph (1-1+propagate)",
         linker.Link(a, b, standard_pairs, matcher));
  printf("\n(the graph algorithm inherits the logistic scores, then "
         "one-to-one\n assignment and neighbor propagation prune "
         "spurious links)\n");
  return 0;
}
