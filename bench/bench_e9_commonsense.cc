// E9 — Commonsense knowledge (tutorial §3): properties of concepts
// ("apples can be red, green, juicy ... but not fast or funny"),
// partOf/hasShape assertions, and commonsense rules. We sweep the
// typicality threshold for property mining and check that AMIE-style
// rule mining recovers the rules planted in the world.

#include <cstdio>

#include "bench_util.h"
#include "commonsense/property_miner.h"
#include "commonsense/rule_application.h"
#include "commonsense/rule_miner.h"
#include "corpus/generator.h"

using namespace kb;

int main(int argc, char** argv) {
  const kbbench::BenchArgs args = kbbench::ParseArgs(argc, argv);
  kbbench::Banner(
      "E9: commonsense properties and rules",
      "commonsense (concept properties, partOf, shapes, rules) can be "
      "mined from text/KB statistics; thresholding separates truth from "
      "noise; planted rules are recovered with calibrated confidence",
      "precision rises with the typicality threshold while yield falls; "
      "both planted rules appear near the top of the mined-rule list");

  corpus::WorldOptions world_options;
  world_options.seed = 17;
  world_options.num_persons = args.Scaled(200, 40);
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 18;
  corpus_options.web_docs = args.Scaled(500, 80);
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  nlp::PosTagger tagger;

  commonsense::PropertyMiner miner(&tagger);
  auto mined = miner.Mine(corpus.docs);
  printf("mined %zu distinct assertions from %zu web documents\n\n",
         mined.size(), corpus_options.web_docs);

  kbbench::Row("%-14s %8s %10s %12s", "typicality>=", "kept",
               "precision", "truth-recall");
  size_t gold_truthful = 0;
  for (const auto& g : corpus.world.commonsense()) {
    if (g.truthful) ++gold_truthful;
  }
  for (double threshold : {0.0, 0.3, 0.5, 0.7, 1.0}) {
    size_t kept = 0, correct = 0, recalled = 0;
    for (const auto& a : mined) {
      if (a.typicality < threshold) continue;
      ++kept;
      for (const auto& g : corpus.world.commonsense()) {
        if (g.noun == a.concept_noun && g.relation == a.relation &&
            g.value == a.value) {
          if (g.truthful) {
            ++correct;
            ++recalled;
          }
          break;
        }
      }
    }
    kbbench::Row("%-14.1f %8zu %9.1f%% %11.1f%%", threshold, kept,
                 kept == 0 ? 0.0 : 100.0 * correct / kept,
                 100.0 * recalled / gold_truthful);
  }

  // Rule mining over the gold facts (the KB the pipeline would build).
  std::vector<extraction::ExtractedFact> facts;
  for (const corpus::GoldFact& f : corpus.world.facts()) {
    if (corpus::GetRelationInfo(f.relation).literal_object) continue;
    extraction::ExtractedFact e;
    e.subject = f.subject;
    e.relation = f.relation;
    e.object = f.object;
    facts.push_back(e);
  }
  commonsense::RuleMinerOptions rule_options;
  rule_options.min_support = 5;
  rule_options.min_confidence = 0.4;
  auto rules = commonsense::MineRules(facts, rule_options);
  printf("\nmined rules (support>=%d, confidence>=%.1f):\n",
         rule_options.min_support, rule_options.min_confidence);
  kbbench::Row("%-55s %8s %11s %7s", "rule", "support", "confidence",
               "gold?");
  for (const auto& rule : rules) {
    bool planted = false;
    for (const corpus::GoldRule& gold : corpus.world.gold_rules()) {
      if (gold.head == rule.head && gold.body1 == rule.body1 &&
          gold.body2 == rule.body2) {
        planted = true;
      }
    }
    kbbench::Row("%-55s %8d %10.1f%% %7s", rule.ToString().c_str(),
                 rule.support, 100 * rule.confidence,
                 planted ? "YES" : "");
  }

  // Rule-based KB completion: drop a third of citizenOf, re-derive.
  std::vector<extraction::ExtractedFact> partial, dropped;
  int counter = 0;
  for (const auto& f : facts) {
    if (f.relation == corpus::Relation::kCitizenOf && ++counter % 3 == 0) {
      dropped.push_back(f);
    } else {
      partial.push_back(f);
    }
  }
  auto partial_rules = commonsense::MineRules(partial, rule_options);
  auto completion = commonsense::ApplyRules(partial, partial_rules);
  size_t recovered = 0, correct = 0;
  for (const auto& inf : completion.inferred) {
    bool is_gold = false;
    for (const auto& g : facts) {
      if (inf.SameStatement(g)) is_gold = true;
    }
    if (is_gold) ++correct;
    for (const auto& g : dropped) {
      if (inf.SameStatement(g)) ++recovered;
    }
  }
  printf("\nrule-based completion: dropped %zu citizenOf facts; rules "
         "inferred %zu new facts,\n  %.1f%% of inferences correct, "
         "recovering %.1f%% of the dropped facts\n",
         dropped.size(), completion.inferred.size(),
         completion.inferred.empty()
             ? 0.0
             : 100.0 * correct / completion.inferred.size(),
         dropped.empty() ? 0.0 : 100.0 * recovered / dropped.size());
  return 0;
}
