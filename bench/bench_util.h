#ifndef KBFORGE_BENCH_BENCH_UTIL_H_
#define KBFORGE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace kbbench {

/// Options shared by the hand-rolled experiment runners. `--smoke`
/// switches to tiny corpora so CI can execute every experiment binary
/// end-to-end in seconds (a liveness check and a perf-trajectory seed,
/// not a measurement). `--json=<path>` additionally writes every
/// Report()ed metric as JSON rows, so CI can archive machine-readable
/// results next to the human-readable logs.
struct BenchArgs {
  bool smoke = false;

  /// `full` in a real run, `tiny` under --smoke.
  size_t Scaled(size_t full, size_t tiny) const { return smoke ? tiny : full; }
};

namespace internal {
struct JsonRow {
  std::string bench;
  std::string metric;
  double value;
};

/// Process-wide sink for Report() rows; flushed by WriteJsonAtExit.
struct JsonSink {
  std::string path;
  std::vector<JsonRow> rows;
  static JsonSink& Get() {
    static JsonSink* sink = new JsonSink();
    return *sink;
  }
};

inline void WriteJsonAtExit() {
  JsonSink& sink = JsonSink::Get();
  if (sink.path.empty()) return;
  FILE* f = fopen(sink.path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "bench: cannot write %s\n", sink.path.c_str());
    return;
  }
  fprintf(f, "[\n");
  for (size_t i = 0; i < sink.rows.size(); ++i) {
    const JsonRow& r = sink.rows[i];
    fprintf(f, "  {\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.17g}%s\n",
            r.bench.c_str(), r.metric.c_str(), r.value,
            i + 1 < sink.rows.size() ? "," : "");
  }
  fprintf(f, "]\n");
  fclose(f);
}
}  // namespace internal

/// Records one measured value. Printed rows stay the human-readable
/// record; Report() is the machine-readable one (written to the
/// --json=<path> file at process exit, dropped otherwise).
inline void Report(const std::string& bench, const std::string& metric,
                   double value) {
  internal::JsonSink::Get().rows.push_back({bench, metric, value});
}

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) args.smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      internal::JsonSink::Get().path = argv[i] + 7;
      std::atexit(internal::WriteJsonAtExit);
    }
  }
  if (args.smoke) printf("[--smoke: tiny corpus sizes, timings meaningless]\n");
  return args;
}

/// Prints the experiment banner (id, claim, expected shape).
inline void Banner(const char* id, const char* claim,
                   const char* expected) {
  printf("================================================================\n");
  printf("%s\n", id);
  printf("claim:    %s\n", claim);
  printf("expected: %s\n", expected);
  printf("================================================================\n");
}

/// printf-style row with aligned output left to the caller's format.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vprintf(fmt, args);
  va_end(args);
  printf("\n");
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double seconds() const { return ms() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace kbbench

#endif  // KBFORGE_BENCH_BENCH_UTIL_H_
