#ifndef KBFORGE_BENCH_BENCH_UTIL_H_
#define KBFORGE_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace kbbench {

/// Options shared by the hand-rolled experiment runners. `--smoke`
/// switches to tiny corpora so CI can execute every experiment binary
/// end-to-end in seconds (a liveness check and a perf-trajectory seed,
/// not a measurement). `--json=<path>` additionally writes every
/// Report()ed metric as JSON rows, so CI can archive machine-readable
/// results next to the human-readable logs and scripts/bench_check.py
/// can gate them against bench/baselines/.
struct BenchArgs {
  bool smoke = false;

  /// `full` in a real run, `tiny` under --smoke.
  size_t Scaled(size_t full, size_t tiny) const { return smoke ? tiny : full; }
};

namespace internal {
struct JsonRow {
  std::string bench;
  std::string metric;
  double value;
  std::string workload;  ///< optional run context ("A".."E"); may be empty
};

/// Process-wide sink for Report() rows; flushed by WriteJsonAtExit.
/// `smoke` and `git_sha` are stamped onto every row so a trajectory
/// file is self-describing: a baseline row records which mode produced
/// it and from which commit.
struct JsonSink {
  /// Bumped whenever row fields change meaning; bench_check.py refuses
  /// rows from a schema it does not understand.
  static constexpr int kSchemaVersion = 2;

  std::string path;
  std::vector<JsonRow> rows;
  bool smoke = false;
  std::string git_sha;

  static JsonSink& Get() {
    static JsonSink* sink = new JsonSink();
    return *sink;
  }
};

/// Minimal JSON string escaping for the fields we emit (metric names
/// carry dots and user-ish labels; don't let a quote corrupt the row).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Flushes the sink. A bench that was asked for --json output but
/// cannot produce it must not look green to CI, so any IO failure here
/// terminates the process with a nonzero status (we are already inside
/// exit(), hence _Exit).
inline void WriteJsonAtExit() {
  JsonSink& sink = JsonSink::Get();
  if (sink.path.empty()) return;
  FILE* f = fopen(sink.path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "bench: cannot write %s: %s\n", sink.path.c_str(),
            strerror(errno));
    std::_Exit(1);
  }
  fprintf(f, "[\n");
  for (size_t i = 0; i < sink.rows.size(); ++i) {
    const JsonRow& r = sink.rows[i];
    fprintf(f,
            "  {\"schema_version\": %d, \"bench\": \"%s\", "
            "\"metric\": \"%s\", \"value\": %.17g, \"smoke\": %s, "
            "\"git_sha\": \"%s\"",
            JsonSink::kSchemaVersion, JsonEscape(r.bench).c_str(),
            JsonEscape(r.metric).c_str(), r.value,
            sink.smoke ? "true" : "false", JsonEscape(sink.git_sha).c_str());
    if (!r.workload.empty()) {
      fprintf(f, ", \"workload\": \"%s\"", JsonEscape(r.workload).c_str());
    }
    fprintf(f, "}%s\n", i + 1 < sink.rows.size() ? "," : "");
  }
  fprintf(f, "]\n");
  if (ferror(f) != 0 || fclose(f) != 0) {
    fprintf(stderr, "bench: short write to %s\n", sink.path.c_str());
    std::_Exit(1);
  }
}
}  // namespace internal

/// Records one measured value. Printed rows stay the human-readable
/// record; Report() is the machine-readable one (written to the
/// --json=<path> file at process exit, dropped otherwise). `workload`
/// tags rows from a YCSB-style sweep with the workload letter.
inline void Report(const std::string& bench, const std::string& metric,
                   double value, const std::string& workload = "") {
  internal::JsonSink::Get().rows.push_back({bench, metric, value, workload});
}

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) args.smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      internal::JsonSink::Get().path = argv[i] + 7;
      std::atexit(internal::WriteJsonAtExit);
    }
  }
  internal::JsonSink& sink = internal::JsonSink::Get();
  sink.smoke = args.smoke;
  // CI exports the commit being measured; local runs fall back to the
  // KBFORGE_GIT_SHA the Makefile-less workflow sets by hand, then to
  // "unknown" (rows stay comparable, provenance is just absent).
  const char* sha = std::getenv("KBFORGE_GIT_SHA");
  if (sha == nullptr) sha = std::getenv("GITHUB_SHA");
  sink.git_sha = sha != nullptr ? sha : "unknown";
  if (args.smoke) printf("[--smoke: tiny corpus sizes, timings meaningless]\n");
  return args;
}

/// Prints the experiment banner (id, claim, expected shape).
inline void Banner(const char* id, const char* claim, const char* expected) {
  printf("================================================================\n");
  printf("%s\n", id);
  printf("claim:    %s\n", claim);
  printf("expected: %s\n", expected);
  printf("================================================================\n");
}

/// printf-style row with aligned output left to the caller's format.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vprintf(fmt, args);
  va_end(args);
  printf("\n");
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double seconds() const { return ms() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace kbbench

#endif  // KBFORGE_BENCH_BENCH_UTIL_H_
