#ifndef KBFORGE_BENCH_BENCH_UTIL_H_
#define KBFORGE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace kbbench {

/// Prints the experiment banner (id, claim, expected shape).
inline void Banner(const char* id, const char* claim,
                   const char* expected) {
  printf("================================================================\n");
  printf("%s\n", id);
  printf("claim:    %s\n", claim);
  printf("expected: %s\n", expected);
  printf("================================================================\n");
}

/// printf-style row with aligned output left to the caller's format.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vprintf(fmt, args);
  va_end(args);
  printf("\n");
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double seconds() const { return ms() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace kbbench

#endif  // KBFORGE_BENCH_BENCH_UTIL_H_
