#ifndef KBFORGE_BENCH_BENCH_UTIL_H_
#define KBFORGE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>

namespace kbbench {

/// Options shared by the hand-rolled experiment runners. `--smoke`
/// switches to tiny corpora so CI can execute every experiment binary
/// end-to-end in seconds (a liveness check and a perf-trajectory seed,
/// not a measurement).
struct BenchArgs {
  bool smoke = false;

  /// `full` in a real run, `tiny` under --smoke.
  size_t Scaled(size_t full, size_t tiny) const { return smoke ? tiny : full; }
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) args.smoke = true;
  }
  if (args.smoke) printf("[--smoke: tiny corpus sizes, timings meaningless]\n");
  return args;
}

/// Prints the experiment banner (id, claim, expected shape).
inline void Banner(const char* id, const char* claim,
                   const char* expected) {
  printf("================================================================\n");
  printf("%s\n", id);
  printf("claim:    %s\n", claim);
  printf("expected: %s\n", expected);
  printf("================================================================\n");
}

/// printf-style row with aligned output left to the caller's format.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vprintf(fmt, args);
  va_end(args);
  printf("\n");
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double seconds() const { return ms() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace kbbench

#endif  // KBFORGE_BENCH_BENCH_UTIL_H_
