file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_query_storage.dir/bench_e10_query_storage.cc.o"
  "CMakeFiles/bench_e10_query_storage.dir/bench_e10_query_storage.cc.o.d"
  "bench_e10_query_storage"
  "bench_e10_query_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_query_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
