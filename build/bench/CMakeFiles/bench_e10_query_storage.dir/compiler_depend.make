# Empty compiler generated dependencies file for bench_e10_query_storage.
# This may be replaced when dependencies are built.
