file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_multilingual.dir/bench_e11_multilingual.cc.o"
  "CMakeFiles/bench_e11_multilingual.dir/bench_e11_multilingual.cc.o.d"
  "bench_e11_multilingual"
  "bench_e11_multilingual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_multilingual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
