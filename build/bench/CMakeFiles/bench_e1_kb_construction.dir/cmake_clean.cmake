file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_kb_construction.dir/bench_e1_kb_construction.cc.o"
  "CMakeFiles/bench_e1_kb_construction.dir/bench_e1_kb_construction.cc.o.d"
  "bench_e1_kb_construction"
  "bench_e1_kb_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_kb_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
