# Empty compiler generated dependencies file for bench_e1_kb_construction.
# This may be replaced when dependencies are built.
