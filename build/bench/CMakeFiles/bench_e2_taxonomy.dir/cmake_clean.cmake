file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_taxonomy.dir/bench_e2_taxonomy.cc.o"
  "CMakeFiles/bench_e2_taxonomy.dir/bench_e2_taxonomy.cc.o.d"
  "bench_e2_taxonomy"
  "bench_e2_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
