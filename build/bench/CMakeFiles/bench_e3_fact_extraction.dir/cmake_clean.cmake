file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_fact_extraction.dir/bench_e3_fact_extraction.cc.o"
  "CMakeFiles/bench_e3_fact_extraction.dir/bench_e3_fact_extraction.cc.o.d"
  "bench_e3_fact_extraction"
  "bench_e3_fact_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_fact_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
