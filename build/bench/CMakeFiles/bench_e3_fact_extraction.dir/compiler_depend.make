# Empty compiler generated dependencies file for bench_e3_fact_extraction.
# This may be replaced when dependencies are built.
