file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_openie.dir/bench_e4_openie.cc.o"
  "CMakeFiles/bench_e4_openie.dir/bench_e4_openie.cc.o.d"
  "bench_e4_openie"
  "bench_e4_openie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_openie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
