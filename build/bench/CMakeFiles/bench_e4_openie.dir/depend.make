# Empty dependencies file for bench_e4_openie.
# This may be replaced when dependencies are built.
