file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_temporal.dir/bench_e6_temporal.cc.o"
  "CMakeFiles/bench_e6_temporal.dir/bench_e6_temporal.cc.o.d"
  "bench_e6_temporal"
  "bench_e6_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
