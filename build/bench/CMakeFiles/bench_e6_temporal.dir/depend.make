# Empty dependencies file for bench_e6_temporal.
# This may be replaced when dependencies are built.
