file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_ned.dir/bench_e7_ned.cc.o"
  "CMakeFiles/bench_e7_ned.dir/bench_e7_ned.cc.o.d"
  "bench_e7_ned"
  "bench_e7_ned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_ned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
