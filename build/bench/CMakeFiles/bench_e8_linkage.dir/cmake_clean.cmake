file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_linkage.dir/bench_e8_linkage.cc.o"
  "CMakeFiles/bench_e8_linkage.dir/bench_e8_linkage.cc.o.d"
  "bench_e8_linkage"
  "bench_e8_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
