# Empty dependencies file for bench_e8_linkage.
# This may be replaced when dependencies are built.
