file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_commonsense.dir/bench_e9_commonsense.cc.o"
  "CMakeFiles/bench_e9_commonsense.dir/bench_e9_commonsense.cc.o.d"
  "bench_e9_commonsense"
  "bench_e9_commonsense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_commonsense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
