# Empty dependencies file for bench_e9_commonsense.
# This may be replaced when dependencies are built.
