file(REMOVE_RECURSE
  "CMakeFiles/entity_tracking.dir/entity_tracking.cpp.o"
  "CMakeFiles/entity_tracking.dir/entity_tracking.cpp.o.d"
  "entity_tracking"
  "entity_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entity_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
