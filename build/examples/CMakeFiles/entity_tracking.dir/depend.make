# Empty dependencies file for entity_tracking.
# This may be replaced when dependencies are built.
