file(REMOVE_RECURSE
  "CMakeFiles/kb_fusion.dir/kb_fusion.cpp.o"
  "CMakeFiles/kb_fusion.dir/kb_fusion.cpp.o.d"
  "kb_fusion"
  "kb_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
