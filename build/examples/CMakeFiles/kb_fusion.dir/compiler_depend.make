# Empty compiler generated dependencies file for kb_fusion.
# This may be replaced when dependencies are built.
