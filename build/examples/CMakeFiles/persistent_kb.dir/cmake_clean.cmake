file(REMOVE_RECURSE
  "CMakeFiles/persistent_kb.dir/persistent_kb.cpp.o"
  "CMakeFiles/persistent_kb.dir/persistent_kb.cpp.o.d"
  "persistent_kb"
  "persistent_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
