# Empty compiler generated dependencies file for persistent_kb.
# This may be replaced when dependencies are built.
