file(REMOVE_RECURSE
  "CMakeFiles/kb_commonsense.dir/commonsense/property_miner.cc.o"
  "CMakeFiles/kb_commonsense.dir/commonsense/property_miner.cc.o.d"
  "CMakeFiles/kb_commonsense.dir/commonsense/rule_application.cc.o"
  "CMakeFiles/kb_commonsense.dir/commonsense/rule_application.cc.o.d"
  "CMakeFiles/kb_commonsense.dir/commonsense/rule_miner.cc.o"
  "CMakeFiles/kb_commonsense.dir/commonsense/rule_miner.cc.o.d"
  "libkb_commonsense.a"
  "libkb_commonsense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_commonsense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
