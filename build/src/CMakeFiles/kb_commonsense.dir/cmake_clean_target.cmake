file(REMOVE_RECURSE
  "libkb_commonsense.a"
)
