# Empty dependencies file for kb_commonsense.
# This may be replaced when dependencies are built.
