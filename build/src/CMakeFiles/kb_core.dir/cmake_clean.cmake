file(REMOVE_RECURSE
  "CMakeFiles/kb_core.dir/core/entity_card.cc.o"
  "CMakeFiles/kb_core.dir/core/entity_card.cc.o.d"
  "CMakeFiles/kb_core.dir/core/harvester.cc.o"
  "CMakeFiles/kb_core.dir/core/harvester.cc.o.d"
  "CMakeFiles/kb_core.dir/core/knowledge_base.cc.o"
  "CMakeFiles/kb_core.dir/core/knowledge_base.cc.o.d"
  "CMakeFiles/kb_core.dir/core/persistence.cc.o"
  "CMakeFiles/kb_core.dir/core/persistence.cc.o.d"
  "libkb_core.a"
  "libkb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
