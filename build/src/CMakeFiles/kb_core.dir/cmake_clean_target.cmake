file(REMOVE_RECURSE
  "libkb_core.a"
)
