# Empty compiler generated dependencies file for kb_core.
# This may be replaced when dependencies are built.
