file(REMOVE_RECURSE
  "CMakeFiles/kb_corpus.dir/corpus/generator.cc.o"
  "CMakeFiles/kb_corpus.dir/corpus/generator.cc.o.d"
  "CMakeFiles/kb_corpus.dir/corpus/names.cc.o"
  "CMakeFiles/kb_corpus.dir/corpus/names.cc.o.d"
  "CMakeFiles/kb_corpus.dir/corpus/relations.cc.o"
  "CMakeFiles/kb_corpus.dir/corpus/relations.cc.o.d"
  "CMakeFiles/kb_corpus.dir/corpus/world.cc.o"
  "CMakeFiles/kb_corpus.dir/corpus/world.cc.o.d"
  "libkb_corpus.a"
  "libkb_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
