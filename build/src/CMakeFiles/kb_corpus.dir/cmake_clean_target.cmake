file(REMOVE_RECURSE
  "libkb_corpus.a"
)
