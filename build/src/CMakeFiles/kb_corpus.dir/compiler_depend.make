# Empty compiler generated dependencies file for kb_corpus.
# This may be replaced when dependencies are built.
