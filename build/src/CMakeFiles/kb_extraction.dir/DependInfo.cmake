
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extraction/annotation.cc" "src/CMakeFiles/kb_extraction.dir/extraction/annotation.cc.o" "gcc" "src/CMakeFiles/kb_extraction.dir/extraction/annotation.cc.o.d"
  "/root/repo/src/extraction/bootstrap.cc" "src/CMakeFiles/kb_extraction.dir/extraction/bootstrap.cc.o" "gcc" "src/CMakeFiles/kb_extraction.dir/extraction/bootstrap.cc.o.d"
  "/root/repo/src/extraction/distant_supervision.cc" "src/CMakeFiles/kb_extraction.dir/extraction/distant_supervision.cc.o" "gcc" "src/CMakeFiles/kb_extraction.dir/extraction/distant_supervision.cc.o.d"
  "/root/repo/src/extraction/evaluation.cc" "src/CMakeFiles/kb_extraction.dir/extraction/evaluation.cc.o" "gcc" "src/CMakeFiles/kb_extraction.dir/extraction/evaluation.cc.o.d"
  "/root/repo/src/extraction/infobox_extractor.cc" "src/CMakeFiles/kb_extraction.dir/extraction/infobox_extractor.cc.o" "gcc" "src/CMakeFiles/kb_extraction.dir/extraction/infobox_extractor.cc.o.d"
  "/root/repo/src/extraction/pattern_extractor.cc" "src/CMakeFiles/kb_extraction.dir/extraction/pattern_extractor.cc.o" "gcc" "src/CMakeFiles/kb_extraction.dir/extraction/pattern_extractor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kb_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
