file(REMOVE_RECURSE
  "CMakeFiles/kb_extraction.dir/extraction/annotation.cc.o"
  "CMakeFiles/kb_extraction.dir/extraction/annotation.cc.o.d"
  "CMakeFiles/kb_extraction.dir/extraction/bootstrap.cc.o"
  "CMakeFiles/kb_extraction.dir/extraction/bootstrap.cc.o.d"
  "CMakeFiles/kb_extraction.dir/extraction/distant_supervision.cc.o"
  "CMakeFiles/kb_extraction.dir/extraction/distant_supervision.cc.o.d"
  "CMakeFiles/kb_extraction.dir/extraction/evaluation.cc.o"
  "CMakeFiles/kb_extraction.dir/extraction/evaluation.cc.o.d"
  "CMakeFiles/kb_extraction.dir/extraction/infobox_extractor.cc.o"
  "CMakeFiles/kb_extraction.dir/extraction/infobox_extractor.cc.o.d"
  "CMakeFiles/kb_extraction.dir/extraction/pattern_extractor.cc.o"
  "CMakeFiles/kb_extraction.dir/extraction/pattern_extractor.cc.o.d"
  "libkb_extraction.a"
  "libkb_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
