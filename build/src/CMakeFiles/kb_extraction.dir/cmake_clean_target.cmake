file(REMOVE_RECURSE
  "libkb_extraction.a"
)
