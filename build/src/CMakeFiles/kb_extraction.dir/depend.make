# Empty dependencies file for kb_extraction.
# This may be replaced when dependencies are built.
