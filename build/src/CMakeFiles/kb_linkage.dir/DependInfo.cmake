
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linkage/blocking.cc" "src/CMakeFiles/kb_linkage.dir/linkage/blocking.cc.o" "gcc" "src/CMakeFiles/kb_linkage.dir/linkage/blocking.cc.o.d"
  "/root/repo/src/linkage/clustering.cc" "src/CMakeFiles/kb_linkage.dir/linkage/clustering.cc.o" "gcc" "src/CMakeFiles/kb_linkage.dir/linkage/clustering.cc.o.d"
  "/root/repo/src/linkage/graph_linker.cc" "src/CMakeFiles/kb_linkage.dir/linkage/graph_linker.cc.o" "gcc" "src/CMakeFiles/kb_linkage.dir/linkage/graph_linker.cc.o.d"
  "/root/repo/src/linkage/matcher.cc" "src/CMakeFiles/kb_linkage.dir/linkage/matcher.cc.o" "gcc" "src/CMakeFiles/kb_linkage.dir/linkage/matcher.cc.o.d"
  "/root/repo/src/linkage/record.cc" "src/CMakeFiles/kb_linkage.dir/linkage/record.cc.o" "gcc" "src/CMakeFiles/kb_linkage.dir/linkage/record.cc.o.d"
  "/root/repo/src/linkage/similarity.cc" "src/CMakeFiles/kb_linkage.dir/linkage/similarity.cc.o" "gcc" "src/CMakeFiles/kb_linkage.dir/linkage/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kb_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_corpus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
