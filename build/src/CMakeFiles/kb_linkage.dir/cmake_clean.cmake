file(REMOVE_RECURSE
  "CMakeFiles/kb_linkage.dir/linkage/blocking.cc.o"
  "CMakeFiles/kb_linkage.dir/linkage/blocking.cc.o.d"
  "CMakeFiles/kb_linkage.dir/linkage/clustering.cc.o"
  "CMakeFiles/kb_linkage.dir/linkage/clustering.cc.o.d"
  "CMakeFiles/kb_linkage.dir/linkage/graph_linker.cc.o"
  "CMakeFiles/kb_linkage.dir/linkage/graph_linker.cc.o.d"
  "CMakeFiles/kb_linkage.dir/linkage/matcher.cc.o"
  "CMakeFiles/kb_linkage.dir/linkage/matcher.cc.o.d"
  "CMakeFiles/kb_linkage.dir/linkage/record.cc.o"
  "CMakeFiles/kb_linkage.dir/linkage/record.cc.o.d"
  "CMakeFiles/kb_linkage.dir/linkage/similarity.cc.o"
  "CMakeFiles/kb_linkage.dir/linkage/similarity.cc.o.d"
  "libkb_linkage.a"
  "libkb_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
