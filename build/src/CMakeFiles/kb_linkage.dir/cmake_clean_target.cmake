file(REMOVE_RECURSE
  "libkb_linkage.a"
)
