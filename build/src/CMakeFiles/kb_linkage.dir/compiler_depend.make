# Empty compiler generated dependencies file for kb_linkage.
# This may be replaced when dependencies are built.
