file(REMOVE_RECURSE
  "CMakeFiles/kb_multilingual.dir/multilingual/aligner.cc.o"
  "CMakeFiles/kb_multilingual.dir/multilingual/aligner.cc.o.d"
  "CMakeFiles/kb_multilingual.dir/multilingual/interwiki.cc.o"
  "CMakeFiles/kb_multilingual.dir/multilingual/interwiki.cc.o.d"
  "libkb_multilingual.a"
  "libkb_multilingual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_multilingual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
