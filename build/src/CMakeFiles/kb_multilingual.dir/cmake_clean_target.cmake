file(REMOVE_RECURSE
  "libkb_multilingual.a"
)
