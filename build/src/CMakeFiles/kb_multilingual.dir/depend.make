# Empty dependencies file for kb_multilingual.
# This may be replaced when dependencies are built.
