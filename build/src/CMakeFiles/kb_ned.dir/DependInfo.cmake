
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ned/alias_index.cc" "src/CMakeFiles/kb_ned.dir/ned/alias_index.cc.o" "gcc" "src/CMakeFiles/kb_ned.dir/ned/alias_index.cc.o.d"
  "/root/repo/src/ned/coherence.cc" "src/CMakeFiles/kb_ned.dir/ned/coherence.cc.o" "gcc" "src/CMakeFiles/kb_ned.dir/ned/coherence.cc.o.d"
  "/root/repo/src/ned/context_model.cc" "src/CMakeFiles/kb_ned.dir/ned/context_model.cc.o" "gcc" "src/CMakeFiles/kb_ned.dir/ned/context_model.cc.o.d"
  "/root/repo/src/ned/disambiguator.cc" "src/CMakeFiles/kb_ned.dir/ned/disambiguator.cc.o" "gcc" "src/CMakeFiles/kb_ned.dir/ned/disambiguator.cc.o.d"
  "/root/repo/src/ned/mention_detector.cc" "src/CMakeFiles/kb_ned.dir/ned/mention_detector.cc.o" "gcc" "src/CMakeFiles/kb_ned.dir/ned/mention_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kb_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
