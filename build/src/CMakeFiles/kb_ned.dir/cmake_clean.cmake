file(REMOVE_RECURSE
  "CMakeFiles/kb_ned.dir/ned/alias_index.cc.o"
  "CMakeFiles/kb_ned.dir/ned/alias_index.cc.o.d"
  "CMakeFiles/kb_ned.dir/ned/coherence.cc.o"
  "CMakeFiles/kb_ned.dir/ned/coherence.cc.o.d"
  "CMakeFiles/kb_ned.dir/ned/context_model.cc.o"
  "CMakeFiles/kb_ned.dir/ned/context_model.cc.o.d"
  "CMakeFiles/kb_ned.dir/ned/disambiguator.cc.o"
  "CMakeFiles/kb_ned.dir/ned/disambiguator.cc.o.d"
  "CMakeFiles/kb_ned.dir/ned/mention_detector.cc.o"
  "CMakeFiles/kb_ned.dir/ned/mention_detector.cc.o.d"
  "libkb_ned.a"
  "libkb_ned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_ned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
