file(REMOVE_RECURSE
  "libkb_ned.a"
)
