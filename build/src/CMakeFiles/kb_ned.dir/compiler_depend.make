# Empty compiler generated dependencies file for kb_ned.
# This may be replaced when dependencies are built.
