
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/chunker.cc" "src/CMakeFiles/kb_nlp.dir/nlp/chunker.cc.o" "gcc" "src/CMakeFiles/kb_nlp.dir/nlp/chunker.cc.o.d"
  "/root/repo/src/nlp/pos_tagger.cc" "src/CMakeFiles/kb_nlp.dir/nlp/pos_tagger.cc.o" "gcc" "src/CMakeFiles/kb_nlp.dir/nlp/pos_tagger.cc.o.d"
  "/root/repo/src/nlp/stemmer.cc" "src/CMakeFiles/kb_nlp.dir/nlp/stemmer.cc.o" "gcc" "src/CMakeFiles/kb_nlp.dir/nlp/stemmer.cc.o.d"
  "/root/repo/src/nlp/stopwords.cc" "src/CMakeFiles/kb_nlp.dir/nlp/stopwords.cc.o" "gcc" "src/CMakeFiles/kb_nlp.dir/nlp/stopwords.cc.o.d"
  "/root/repo/src/nlp/tfidf.cc" "src/CMakeFiles/kb_nlp.dir/nlp/tfidf.cc.o" "gcc" "src/CMakeFiles/kb_nlp.dir/nlp/tfidf.cc.o.d"
  "/root/repo/src/nlp/tokenizer.cc" "src/CMakeFiles/kb_nlp.dir/nlp/tokenizer.cc.o" "gcc" "src/CMakeFiles/kb_nlp.dir/nlp/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
