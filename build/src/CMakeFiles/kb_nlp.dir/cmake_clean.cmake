file(REMOVE_RECURSE
  "CMakeFiles/kb_nlp.dir/nlp/chunker.cc.o"
  "CMakeFiles/kb_nlp.dir/nlp/chunker.cc.o.d"
  "CMakeFiles/kb_nlp.dir/nlp/pos_tagger.cc.o"
  "CMakeFiles/kb_nlp.dir/nlp/pos_tagger.cc.o.d"
  "CMakeFiles/kb_nlp.dir/nlp/stemmer.cc.o"
  "CMakeFiles/kb_nlp.dir/nlp/stemmer.cc.o.d"
  "CMakeFiles/kb_nlp.dir/nlp/stopwords.cc.o"
  "CMakeFiles/kb_nlp.dir/nlp/stopwords.cc.o.d"
  "CMakeFiles/kb_nlp.dir/nlp/tfidf.cc.o"
  "CMakeFiles/kb_nlp.dir/nlp/tfidf.cc.o.d"
  "CMakeFiles/kb_nlp.dir/nlp/tokenizer.cc.o"
  "CMakeFiles/kb_nlp.dir/nlp/tokenizer.cc.o.d"
  "libkb_nlp.a"
  "libkb_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
