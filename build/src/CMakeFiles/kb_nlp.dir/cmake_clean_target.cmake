file(REMOVE_RECURSE
  "libkb_nlp.a"
)
