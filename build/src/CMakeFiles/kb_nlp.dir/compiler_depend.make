# Empty compiler generated dependencies file for kb_nlp.
# This may be replaced when dependencies are built.
