file(REMOVE_RECURSE
  "CMakeFiles/kb_openie.dir/openie/reverb.cc.o"
  "CMakeFiles/kb_openie.dir/openie/reverb.cc.o.d"
  "libkb_openie.a"
  "libkb_openie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_openie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
