file(REMOVE_RECURSE
  "libkb_openie.a"
)
