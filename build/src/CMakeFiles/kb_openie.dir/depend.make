# Empty dependencies file for kb_openie.
# This may be replaced when dependencies are built.
