file(REMOVE_RECURSE
  "CMakeFiles/kb_query.dir/query/engine.cc.o"
  "CMakeFiles/kb_query.dir/query/engine.cc.o.d"
  "libkb_query.a"
  "libkb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
