file(REMOVE_RECURSE
  "libkb_query.a"
)
