# Empty compiler generated dependencies file for kb_query.
# This may be replaced when dependencies are built.
