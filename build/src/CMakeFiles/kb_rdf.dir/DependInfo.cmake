
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dictionary.cc" "src/CMakeFiles/kb_rdf.dir/rdf/dictionary.cc.o" "gcc" "src/CMakeFiles/kb_rdf.dir/rdf/dictionary.cc.o.d"
  "/root/repo/src/rdf/namespaces.cc" "src/CMakeFiles/kb_rdf.dir/rdf/namespaces.cc.o" "gcc" "src/CMakeFiles/kb_rdf.dir/rdf/namespaces.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/CMakeFiles/kb_rdf.dir/rdf/ntriples.cc.o" "gcc" "src/CMakeFiles/kb_rdf.dir/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/CMakeFiles/kb_rdf.dir/rdf/term.cc.o" "gcc" "src/CMakeFiles/kb_rdf.dir/rdf/term.cc.o.d"
  "/root/repo/src/rdf/triple_store.cc" "src/CMakeFiles/kb_rdf.dir/rdf/triple_store.cc.o" "gcc" "src/CMakeFiles/kb_rdf.dir/rdf/triple_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
