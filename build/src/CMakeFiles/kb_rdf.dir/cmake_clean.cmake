file(REMOVE_RECURSE
  "CMakeFiles/kb_rdf.dir/rdf/dictionary.cc.o"
  "CMakeFiles/kb_rdf.dir/rdf/dictionary.cc.o.d"
  "CMakeFiles/kb_rdf.dir/rdf/namespaces.cc.o"
  "CMakeFiles/kb_rdf.dir/rdf/namespaces.cc.o.d"
  "CMakeFiles/kb_rdf.dir/rdf/ntriples.cc.o"
  "CMakeFiles/kb_rdf.dir/rdf/ntriples.cc.o.d"
  "CMakeFiles/kb_rdf.dir/rdf/term.cc.o"
  "CMakeFiles/kb_rdf.dir/rdf/term.cc.o.d"
  "CMakeFiles/kb_rdf.dir/rdf/triple_store.cc.o"
  "CMakeFiles/kb_rdf.dir/rdf/triple_store.cc.o.d"
  "libkb_rdf.a"
  "libkb_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
