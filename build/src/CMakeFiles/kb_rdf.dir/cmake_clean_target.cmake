file(REMOVE_RECURSE
  "libkb_rdf.a"
)
