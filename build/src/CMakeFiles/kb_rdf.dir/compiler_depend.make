# Empty compiler generated dependencies file for kb_rdf.
# This may be replaced when dependencies are built.
