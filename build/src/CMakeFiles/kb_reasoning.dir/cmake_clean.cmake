file(REMOVE_RECURSE
  "CMakeFiles/kb_reasoning.dir/reasoning/consistency.cc.o"
  "CMakeFiles/kb_reasoning.dir/reasoning/consistency.cc.o.d"
  "CMakeFiles/kb_reasoning.dir/reasoning/factor_graph.cc.o"
  "CMakeFiles/kb_reasoning.dir/reasoning/factor_graph.cc.o.d"
  "CMakeFiles/kb_reasoning.dir/reasoning/maxsat.cc.o"
  "CMakeFiles/kb_reasoning.dir/reasoning/maxsat.cc.o.d"
  "libkb_reasoning.a"
  "libkb_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
