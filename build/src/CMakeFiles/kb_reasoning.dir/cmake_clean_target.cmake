file(REMOVE_RECURSE
  "libkb_reasoning.a"
)
