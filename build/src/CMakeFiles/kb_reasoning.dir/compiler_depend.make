# Empty compiler generated dependencies file for kb_reasoning.
# This may be replaced when dependencies are built.
