
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block.cc" "src/CMakeFiles/kb_storage.dir/storage/block.cc.o" "gcc" "src/CMakeFiles/kb_storage.dir/storage/block.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/CMakeFiles/kb_storage.dir/storage/env.cc.o" "gcc" "src/CMakeFiles/kb_storage.dir/storage/env.cc.o.d"
  "/root/repo/src/storage/kv_store.cc" "src/CMakeFiles/kb_storage.dir/storage/kv_store.cc.o" "gcc" "src/CMakeFiles/kb_storage.dir/storage/kv_store.cc.o.d"
  "/root/repo/src/storage/memtable.cc" "src/CMakeFiles/kb_storage.dir/storage/memtable.cc.o" "gcc" "src/CMakeFiles/kb_storage.dir/storage/memtable.cc.o.d"
  "/root/repo/src/storage/sstable.cc" "src/CMakeFiles/kb_storage.dir/storage/sstable.cc.o" "gcc" "src/CMakeFiles/kb_storage.dir/storage/sstable.cc.o.d"
  "/root/repo/src/storage/triple_codec.cc" "src/CMakeFiles/kb_storage.dir/storage/triple_codec.cc.o" "gcc" "src/CMakeFiles/kb_storage.dir/storage/triple_codec.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/kb_storage.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/kb_storage.dir/storage/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
