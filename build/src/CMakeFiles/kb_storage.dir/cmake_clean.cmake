file(REMOVE_RECURSE
  "CMakeFiles/kb_storage.dir/storage/block.cc.o"
  "CMakeFiles/kb_storage.dir/storage/block.cc.o.d"
  "CMakeFiles/kb_storage.dir/storage/env.cc.o"
  "CMakeFiles/kb_storage.dir/storage/env.cc.o.d"
  "CMakeFiles/kb_storage.dir/storage/kv_store.cc.o"
  "CMakeFiles/kb_storage.dir/storage/kv_store.cc.o.d"
  "CMakeFiles/kb_storage.dir/storage/memtable.cc.o"
  "CMakeFiles/kb_storage.dir/storage/memtable.cc.o.d"
  "CMakeFiles/kb_storage.dir/storage/sstable.cc.o"
  "CMakeFiles/kb_storage.dir/storage/sstable.cc.o.d"
  "CMakeFiles/kb_storage.dir/storage/triple_codec.cc.o"
  "CMakeFiles/kb_storage.dir/storage/triple_codec.cc.o.d"
  "CMakeFiles/kb_storage.dir/storage/wal.cc.o"
  "CMakeFiles/kb_storage.dir/storage/wal.cc.o.d"
  "libkb_storage.a"
  "libkb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
