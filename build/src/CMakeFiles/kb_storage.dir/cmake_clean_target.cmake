file(REMOVE_RECURSE
  "libkb_storage.a"
)
