# Empty compiler generated dependencies file for kb_storage.
# This may be replaced when dependencies are built.
