
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxonomy/category_induction.cc" "src/CMakeFiles/kb_taxonomy.dir/taxonomy/category_induction.cc.o" "gcc" "src/CMakeFiles/kb_taxonomy.dir/taxonomy/category_induction.cc.o.d"
  "/root/repo/src/taxonomy/set_expansion.cc" "src/CMakeFiles/kb_taxonomy.dir/taxonomy/set_expansion.cc.o" "gcc" "src/CMakeFiles/kb_taxonomy.dir/taxonomy/set_expansion.cc.o.d"
  "/root/repo/src/taxonomy/taxonomy.cc" "src/CMakeFiles/kb_taxonomy.dir/taxonomy/taxonomy.cc.o" "gcc" "src/CMakeFiles/kb_taxonomy.dir/taxonomy/taxonomy.cc.o.d"
  "/root/repo/src/taxonomy/type_inference.cc" "src/CMakeFiles/kb_taxonomy.dir/taxonomy/type_inference.cc.o" "gcc" "src/CMakeFiles/kb_taxonomy.dir/taxonomy/type_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kb_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
