file(REMOVE_RECURSE
  "CMakeFiles/kb_taxonomy.dir/taxonomy/category_induction.cc.o"
  "CMakeFiles/kb_taxonomy.dir/taxonomy/category_induction.cc.o.d"
  "CMakeFiles/kb_taxonomy.dir/taxonomy/set_expansion.cc.o"
  "CMakeFiles/kb_taxonomy.dir/taxonomy/set_expansion.cc.o.d"
  "CMakeFiles/kb_taxonomy.dir/taxonomy/taxonomy.cc.o"
  "CMakeFiles/kb_taxonomy.dir/taxonomy/taxonomy.cc.o.d"
  "CMakeFiles/kb_taxonomy.dir/taxonomy/type_inference.cc.o"
  "CMakeFiles/kb_taxonomy.dir/taxonomy/type_inference.cc.o.d"
  "libkb_taxonomy.a"
  "libkb_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
