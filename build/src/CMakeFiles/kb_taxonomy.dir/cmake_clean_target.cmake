file(REMOVE_RECURSE
  "libkb_taxonomy.a"
)
