# Empty compiler generated dependencies file for kb_taxonomy.
# This may be replaced when dependencies are built.
