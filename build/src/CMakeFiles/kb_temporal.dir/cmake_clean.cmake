file(REMOVE_RECURSE
  "CMakeFiles/kb_temporal.dir/temporal/scoping.cc.o"
  "CMakeFiles/kb_temporal.dir/temporal/scoping.cc.o.d"
  "CMakeFiles/kb_temporal.dir/temporal/timex.cc.o"
  "CMakeFiles/kb_temporal.dir/temporal/timex.cc.o.d"
  "libkb_temporal.a"
  "libkb_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
