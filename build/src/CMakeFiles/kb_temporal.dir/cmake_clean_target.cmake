file(REMOVE_RECURSE
  "libkb_temporal.a"
)
