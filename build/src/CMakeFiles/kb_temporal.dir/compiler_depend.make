# Empty compiler generated dependencies file for kb_temporal.
# This may be replaced when dependencies are built.
