file(REMOVE_RECURSE
  "CMakeFiles/kb_util.dir/util/arena.cc.o"
  "CMakeFiles/kb_util.dir/util/arena.cc.o.d"
  "CMakeFiles/kb_util.dir/util/bloom_filter.cc.o"
  "CMakeFiles/kb_util.dir/util/bloom_filter.cc.o.d"
  "CMakeFiles/kb_util.dir/util/date.cc.o"
  "CMakeFiles/kb_util.dir/util/date.cc.o.d"
  "CMakeFiles/kb_util.dir/util/hash.cc.o"
  "CMakeFiles/kb_util.dir/util/hash.cc.o.d"
  "CMakeFiles/kb_util.dir/util/logging.cc.o"
  "CMakeFiles/kb_util.dir/util/logging.cc.o.d"
  "CMakeFiles/kb_util.dir/util/random.cc.o"
  "CMakeFiles/kb_util.dir/util/random.cc.o.d"
  "CMakeFiles/kb_util.dir/util/status.cc.o"
  "CMakeFiles/kb_util.dir/util/status.cc.o.d"
  "CMakeFiles/kb_util.dir/util/string_util.cc.o"
  "CMakeFiles/kb_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/kb_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/kb_util.dir/util/thread_pool.cc.o.d"
  "CMakeFiles/kb_util.dir/util/varint.cc.o"
  "CMakeFiles/kb_util.dir/util/varint.cc.o.d"
  "libkb_util.a"
  "libkb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
