file(REMOVE_RECURSE
  "libkb_util.a"
)
