# Empty compiler generated dependencies file for kb_util.
# This may be replaced when dependencies are built.
