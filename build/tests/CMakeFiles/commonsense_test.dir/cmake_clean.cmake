file(REMOVE_RECURSE
  "CMakeFiles/commonsense_test.dir/commonsense_test.cc.o"
  "CMakeFiles/commonsense_test.dir/commonsense_test.cc.o.d"
  "commonsense_test"
  "commonsense_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commonsense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
