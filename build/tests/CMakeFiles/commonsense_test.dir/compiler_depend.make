# Empty compiler generated dependencies file for commonsense_test.
# This may be replaced when dependencies are built.
