file(REMOVE_RECURSE
  "CMakeFiles/multilingual_test.dir/multilingual_test.cc.o"
  "CMakeFiles/multilingual_test.dir/multilingual_test.cc.o.d"
  "multilingual_test"
  "multilingual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilingual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
