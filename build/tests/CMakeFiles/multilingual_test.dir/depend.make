# Empty dependencies file for multilingual_test.
# This may be replaced when dependencies are built.
