file(REMOVE_RECURSE
  "CMakeFiles/ned_test.dir/ned_test.cc.o"
  "CMakeFiles/ned_test.dir/ned_test.cc.o.d"
  "ned_test"
  "ned_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
