# Empty dependencies file for ned_test.
# This may be replaced when dependencies are built.
