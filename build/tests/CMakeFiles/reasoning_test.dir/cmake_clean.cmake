file(REMOVE_RECURSE
  "CMakeFiles/reasoning_test.dir/reasoning_test.cc.o"
  "CMakeFiles/reasoning_test.dir/reasoning_test.cc.o.d"
  "reasoning_test"
  "reasoning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reasoning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
