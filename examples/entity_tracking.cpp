// Entity tracking: the tutorial's motivating analytics example —
// "track and compare two entities in social media over an extended
// timespan (e.g., the Apple iPhone vs Samsung Galaxy families)".
//
// Here a stream of news/web documents is disambiguated against the
// harvested KB with full NED (prior + context + coherence); we then
// compare the mention share of two rival companies over stream time.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "ned/alias_index.h"
#include "ned/coherence.h"
#include "ned/context_model.h"
#include "ned/disambiguator.h"

int main() {
  using namespace kb;

  corpus::WorldOptions world_options;
  world_options.seed = 99;
  world_options.num_companies = 40;
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 17;
  corpus_options.news_docs = 400;  // the "social media stream"
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);

  // NED models built from the knowledge base side (articles).
  ned::AliasIndex aliases = ned::AliasIndex::Build(corpus.world);
  ned::ContextModel context =
      ned::ContextModel::Build(corpus.world, corpus.docs);
  ned::CoherenceModel coherence =
      ned::CoherenceModel::Build(corpus.world, corpus.docs);
  ned::Disambiguator disambiguator(&aliases, &context, &coherence,
                                   ned::NedOptions());

  // Pick the two most-mentioned companies as our rivals.
  std::map<uint32_t, size_t> company_mentions;
  for (const corpus::Document& doc : corpus.docs) {
    if (doc.kind != corpus::DocKind::kNews) continue;
    for (const corpus::Mention& m : doc.mentions) {
      if (corpus.world.entity(m.entity).kind ==
          corpus::EntityKind::kCompany) {
        company_mentions[m.entity]++;
      }
    }
  }
  std::vector<std::pair<size_t, uint32_t>> ranked;
  for (auto& [entity, count] : company_mentions) {
    ranked.push_back({count, entity});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  if (ranked.size() < 2) {
    printf("not enough company mentions generated\n");
    return 1;
  }
  uint32_t rival_a = ranked[0].second;
  uint32_t rival_b = ranked[1].second;
  printf("tracking %s vs %s across %zu stream documents\n\n",
         corpus.world.entity(rival_a).full_name.c_str(),
         corpus.world.entity(rival_b).full_name.c_str(),
         corpus_options.news_docs);

  // Disambiguate the stream, bucket by stream position.
  constexpr int kBuckets = 8;
  size_t counts[kBuckets][2] = {};
  size_t correct = 0, total = 0;
  std::vector<const corpus::Document*> stream;
  for (const corpus::Document& doc : corpus.docs) {
    if (doc.kind == corpus::DocKind::kNews) stream.push_back(&doc);
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    const corpus::Document& doc = *stream[i];
    int bucket = static_cast<int>(i * kBuckets / stream.size());
    for (const ned::Disambiguation& d :
         disambiguator.DisambiguateDocument(doc)) {
      ++total;
      if (d.predicted == doc.mentions[d.mention_index].entity) ++correct;
      if (d.predicted == rival_a) counts[bucket][0]++;
      if (d.predicted == rival_b) counts[bucket][1]++;
    }
  }

  printf("%-8s %-10s %-10s\n", "epoch", "rival A", "rival B");
  for (int b = 0; b < kBuckets; ++b) {
    std::string bar_a(counts[b][0], '#');
    std::string bar_b(counts[b][1], '*');
    printf("%-8d %-10zu %-10zu  %s%s\n", b, counts[b][0], counts[b][1],
           bar_a.c_str(), bar_b.c_str());
  }
  printf("\nNED accuracy on the stream: %.1f%% of %zu mentions\n",
         100.0 * static_cast<double>(correct) / static_cast<double>(total),
         total);
  printf("(this is why 'knowledge about entities is a key asset': without\n"
         " the KB the surface strings would conflate namesakes)\n");
  return 0;
}
