// Knowledge-base fusion: link the entities of two independently
// curated knowledge resources (tutorial §4 "Entity Linkage": generate
// and maintain owl:sameAs information across knowledge resources), and
// emit the sameAs links as Linked Data.

#include <cstdio>

#include "corpus/world.h"
#include "linkage/blocking.h"
#include "linkage/graph_linker.h"
#include "linkage/matcher.h"
#include "rdf/namespaces.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "util/string_util.h"

int main() {
  using namespace kb;

  // Two noisy views of the same underlying world: different typos,
  // aliases, missing attributes, and each missing ~10% of entities.
  corpus::WorldOptions world_options;
  world_options.seed = 77;
  world_options.num_persons = 250;
  world_options.num_companies = 60;
  corpus::World world = corpus::World::Generate(world_options);
  linkage::NoisyCopyOptions a_options;
  a_options.seed = 1;
  linkage::NoisyCopyOptions b_options;
  b_options.seed = 2;
  auto resource_a = linkage::MakeNoisyRecords(world, a_options);
  auto resource_b = linkage::MakeNoisyRecords(world, b_options);
  printf("resource A: %zu records, resource B: %zu records\n",
         resource_a.size(), resource_b.size());

  // Blocking first: candidate pairs, not the cross product.
  linkage::BlockingOptions blocking;
  auto pairs = linkage::GenerateCandidates(resource_a, resource_b, blocking);
  printf("blocking: %zu candidate pairs (vs %zu cross product), "
         "completeness %.1f%%\n",
         pairs.size(), resource_a.size() * resource_b.size(),
         100 * linkage::PairsCompleteness(resource_a, resource_b, pairs));

  // Learned matcher + graph refinement.
  linkage::LogisticMatcher matcher;
  matcher.Train(resource_a, resource_b, pairs);
  linkage::GraphLinker linker;
  auto matches = linker.Link(resource_a, resource_b, pairs, matcher);
  auto quality = linkage::EvaluateMatches(resource_a, resource_b, matches);
  printf("linkage: %zu sameAs links, precision %.1f%%, recall %.1f%%, "
         "F1 %.1f%%\n",
         matches.size(), 100 * quality.precision, 100 * quality.recall,
         100 * quality.f1);

  // Emit owl:sameAs triples.
  rdf::TripleStore sameas;
  for (const linkage::Match& m : matches) {
    sameas.AddTerms(
        rdf::Term::Iri(rdf::EntityIri(
            "A/" + ReplaceAll(resource_a[m.a].name, " ", "_"))),
        rdf::Term::Iri(std::string(rdf::kOwlSameAs)),
        rdf::Term::Iri(rdf::EntityIri(
            "B/" + ReplaceAll(resource_b[m.b].name, " ", "_"))));
  }
  std::string dump = rdf::WriteNTriples(sameas);
  printf("\nfirst sameAs links:\n%s",
         dump.substr(0, std::min<size_t>(dump.size(), 400)).c_str());
  printf("...\n");
  return 0;
}
