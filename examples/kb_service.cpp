// The KB as a service: a KbServer and a KbClient in one process.
//
// The tutorial's §1 framing is that big-data-era KBs power *services* —
// knowledge panels, QA backends — not batch jobs. This example stands
// up the serving layer over a freshly harvested KB and walks the
// service surface a frontend would use:
//
//   1. health + metrics introspection,
//   2. a SPARQL query, repeated to show the result cache hitting,
//   3. a knowledge-panel entity card fetched over the wire,
//   4. a live write (insert_facts) that invalidates the cached query
//      by bumping the KB epoch — the next read sees the new fact,
//   5. a deadline-bounded query and an over-capacity burst, showing
//      the server failing *politely* (deadline_exceeded / overloaded).

#include <cstdio>
#include <string>
#include <vector>

#include "core/harvester.h"
#include "rdf/namespaces.h"
#include "server/kb_client.h"
#include "server/kb_server.h"

using namespace kb;

namespace {

void PrintRows(const server::QueryResult& result, size_t limit = 5) {
  printf("   cached=%s, %zu rows\n", result.cached ? "yes" : "no",
         result.rows.size());
  for (size_t i = 0; i < result.rows.size() && i < limit; ++i) {
    printf("   ");
    for (size_t c = 0; c < result.columns.size(); ++c) {
      printf("%s%s=%s", c > 0 ? "  " : "", result.columns[c].c_str(),
             result.rows[i][c].c_str());
    }
    printf("\n");
  }
  if (result.rows.size() > limit) {
    printf("   ... (%zu more)\n", result.rows.size() - limit);
  }
}

}  // namespace

int main() {
  // Harvest a KB from the synthetic corpus, as the pipeline examples do.
  corpus::WorldOptions world_options;
  world_options.seed = 7;
  world_options.num_persons = 120;
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 8;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  core::Harvester harvester;
  core::HarvestResult harvest = harvester.Harvest(corpus);
  printf("harvested KB: %zu triples, %zu entities\n\n",
         harvest.kb.NumTriples(), harvest.kb.NumEntities());

  server::KbServer::Options options;
  options.num_workers = 2;
  server::KbServer server(&harvest.kb, options);
  Status status = server.Start();
  if (!status.ok()) {
    fprintf(stderr, "server start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  printf("serving on 127.0.0.1:%d\n\n", server.port());

  server::KbClient client;
  if (!client.Connect(server.port()).ok()) return 1;

  // 1. Health check.
  auto health = client.Health();
  if (health.ok()) {
    printf("1. health: epoch=%lld, triples=%.0f, uptime=%.1fms\n\n",
           static_cast<long long>(health->GetNumber("epoch")),
           health->GetNumber("triples"), health->GetNumber("uptime_ms"));
  }

  // 2. A hot query, twice: the second round-trip is a cache hit.
  const std::string employer_query =
      "SELECT ?p ?c WHERE { ?p <" + rdf::PropertyIri("worksFor") +
      "> ?c . }";
  printf("2. query (cold):\n");
  auto cold = client.Query(employer_query);
  if (!cold.ok()) return 1;
  PrintRows(*cold, 3);
  printf("   query again (hot):\n");
  auto hot = client.Query(employer_query);
  if (!hot.ok()) return 1;
  PrintRows(*hot, 0);

  // 3. A knowledge panel over the wire.
  const corpus::Entity& company = corpus.world.entity(
      corpus.world.ByKind(corpus::EntityKind::kCompany)[0]);
  printf("\n3. entity card for %s:\n", company.canonical.c_str());
  auto card = client.EntityCard(company.canonical, 4);
  if (card.ok()) {
    printf("%s", card->GetString("text").c_str());
  }

  // 4. Live write: the insert bumps the KB epoch, so the cached query
  // from step 2 is stale by construction and re-executes.
  printf("\n4. insert a fact and re-run the cached query:\n");
  server::WireFact fact;
  fact.s = "Example_Hire";
  fact.p = "worksFor";
  fact.o = company.canonical;
  fact.confidence = 0.99;
  auto inserted = client.InsertFacts({fact});
  if (inserted.ok()) {
    printf("   inserted %lld fact(s); epoch now %lld\n",
           static_cast<long long>(*inserted),
           static_cast<long long>(
               client.last_response().GetNumber("epoch")));
  }
  auto fresh = client.Query(employer_query);
  if (!fresh.ok()) return 1;
  printf("   re-query: cached=%s (stale entry dropped), %zu rows (+1)\n",
         fresh->cached ? "yes" : "no", fresh->rows.size());

  // 5a. Deadline-bounded query: an already-expired budget fails fast
  // with a partial-free error instead of returning truncated rows.
  printf("\n5. bounded failure modes:\n");
  auto expired = client.Query(employer_query, /*deadline_ms=*/0,
                              /*max_rows=*/-1, /*no_cache=*/true);
  printf("   deadline_ms=0  -> %s\n", expired.status().ToString().c_str());

  // 5b. Overload: park the only worker of a tiny server behind slow
  // clients and watch admission control shed the rest with a retry
  // hint rather than queueing them forever.
  server::KbServer::Options tiny;
  tiny.num_workers = 1;
  tiny.queue_depth = 1;
  tiny.retry_after_ms = 25;
  server::KbServer small_server(&harvest.kb, tiny);
  if (!small_server.Start().ok()) return 1;
  server::KbClient holder;     // occupies the worker
  server::KbClient waiter;     // occupies the queue slot
  (void)holder.Connect(small_server.port());
  (void)holder.Health();
  (void)waiter.Connect(small_server.port());
  server::KbClient shed;
  (void)shed.Connect(small_server.port());
  auto overloaded = shed.Health();
  printf("   over capacity  -> %s (retry after %dms)\n",
         overloaded.status().ToString().c_str(), shed.retry_after_ms());
  small_server.Stop();

  // Server-side view of everything above.
  auto metrics = client.MetricsText();
  if (metrics.ok()) {
    printf("\nserver metrics snapshot (excerpt):\n");
    size_t pos = 0, shown = 0;
    while (shown < 12 && pos < metrics->size()) {
      size_t end = metrics->find('\n', pos);
      if (end == std::string::npos) end = metrics->size();
      std::string line = metrics->substr(pos, end - pos);
      if (line.find("server.") != std::string::npos) {
        printf("  %s\n", line.c_str());
        ++shown;
      }
      pos = end + 1;
    }
  }

  server.Stop();
  printf("\ndone.\n");
  return 0;
}
