// Persistent knowledge base: harvest once, store on disk (the LSM
// engine under src/storage), reopen later and query — the lifecycle a
// production KB service needs ("building, maintaining, and using
// knowledge bases", as the tutorial's industrial examples do).

#include <cstdio>
#include <filesystem>

#include "core/harvester.h"
#include "core/persistence.h"
#include "rdf/namespaces.h"

int main() {
  using namespace kb;
  std::string dir =
      (std::filesystem::temp_directory_path() / "kbforge_demo_kb").string();
  std::filesystem::remove_all(dir);

  // --- Session 1: harvest and persist.
  {
    corpus::WorldOptions world_options;
    world_options.seed = 321;
    world_options.num_persons = 100;
    corpus::CorpusOptions corpus_options;
    corpus_options.seed = 322;
    corpus_options.news_docs = 120;
    corpus::Corpus corpus =
        corpus::BuildCorpus(world_options, corpus_options);
    core::Harvester harvester;
    core::HarvestResult result = harvester.Harvest(corpus);
    printf("[session 1] harvested %zu triples\n", result.kb.NumTriples());

    auto storage = core::KbStorage::Open(dir);
    if (!storage.ok()) {
      fprintf(stderr, "open failed: %s\n",
              storage.status().ToString().c_str());
      return 1;
    }
    if (Status s = (*storage)->Save(result.kb); !s.ok()) {
      fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    (*storage)->Compact().ok();
    printf("[session 1] saved to %s (%zu SSTables after compaction)\n",
           dir.c_str(), (*storage)->store()->num_tables());
  }

  // --- Session 2: a fresh process would start here.
  {
    auto storage = core::KbStorage::Open(dir);
    if (!storage.ok()) return 1;
    auto kb = (*storage)->Load();
    if (!kb.ok()) {
      fprintf(stderr, "load failed: %s\n", kb.status().ToString().c_str());
      return 1;
    }
    printf("[session 2] reopened KB: %zu triples, %zu entities, "
           "%zu classes\n",
           (*kb)->NumTriples(), (*kb)->NumEntities(), (*kb)->NumClasses());

    auto rows = (*kb)->Query("SELECT ?p ?c WHERE { ?p <" +
                             rdf::PropertyIri("bornIn") + "> ?c . }");
    if (!rows.ok()) return 1;
    printf("[session 2] bornIn facts on disk: %zu; sample:\n",
           rows->size());
    int shown = 0;
    for (const query::Binding& row : *rows) {
      if (shown++ >= 3) break;
      printf("  %s -> %s\n",
             rdf::Abbreviate(
                 (*kb)->store().dict().term(row.at("p")).value())
                 .c_str(),
             rdf::Abbreviate(
                 (*kb)->store().dict().term(row.at("c")).value())
                 .c_str());
    }
    // Provenance survives too.
    size_t with_meta = 0, with_span = 0;
    for (const auto& [triple, meta] : (*kb)->meta_map()) {
      ++with_meta;
      if (meta.valid_time.valid()) ++with_span;
    }
    printf("[session 2] %zu facts carry provenance, %zu carry "
           "timespans\n",
           with_meta, with_span);
  }
  return 0;
}
