// Quickstart: build a knowledge base from a synthetic wiki corpus and
// ask it questions.
//
//   $ ./quickstart
//
// This walks the full KBForge loop the VLDB'14 tutorial describes:
// generate a corpus (the Wikipedia/Web substitute), harvest a KB from
// it (information extraction + consistency reasoning), then run
// entity-centric analytics on the result.

#include <cstdio>
#include <iostream>

#include "core/harvester.h"
#include "extraction/evaluation.h"
#include "rdf/namespaces.h"
#include "util/metrics_registry.h"

int main() {
  using namespace kb;

  // 1. A small world and its documents.
  corpus::WorldOptions world_options;
  world_options.seed = 2014;
  world_options.num_persons = 120;
  world_options.num_companies = 30;
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 7;
  corpus_options.news_docs = 150;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  printf("corpus: %zu documents about %zu entities\n", corpus.docs.size(),
         corpus.world.entities().size());

  // 2. Harvest: extraction + reasoning + taxonomy + assembly.
  core::Harvester harvester;
  core::HarvestResult result = harvester.Harvest(corpus);
  printf("harvest: %zu sentences -> %zu candidate facts -> %zu accepted\n",
         result.stats.sentences, result.stats.candidate_facts,
         result.stats.accepted_facts);
  printf("kb: %zu triples, %zu entities, %zu classes\n",
         result.kb.NumTriples(), result.kb.NumEntities(),
         result.kb.NumClasses());

  // 3. How good is it? (Only possible because the world is synthetic.)
  auto base = extraction::ExpressedFacts(corpus.docs);
  PrecisionRecall pr =
      extraction::EvaluateFacts(corpus.world, result.accepted, base);
  printf("quality: precision %.1f%%, recall %.1f%% of expressed facts\n",
         100 * pr.precision(), 100 * pr.recall());

  // 4. Entity-centric analytics: who founded companies, and where?
  auto rows = result.kb.Query(
      "SELECT ?person ?company WHERE { ?person <" +
      rdf::PropertyIri("founded") + "> ?company . }");
  if (!rows.ok()) {
    std::cerr << "query failed: " << rows.status() << "\n";
    return 1;
  }
  printf("\nfounders (%zu results, first 5):\n", rows->size());
  int shown = 0;
  for (const query::Binding& row : *rows) {
    if (shown++ >= 5) break;
    printf("  %s founded %s\n",
           rdf::Abbreviate(
               result.kb.store().dict().term(row.at("person")).value())
               .c_str(),
           rdf::Abbreviate(
               result.kb.store().dict().term(row.at("company")).value())
               .c_str());
  }

  // 5. Export as Linked Data.
  std::string ntriples = result.kb.ExportNTriples();
  printf("\nexport: %zu bytes of N-Triples, e.g.\n", ntriples.size());
  printf("%s\n", ntriples.substr(0, ntriples.find('\n')).c_str());

  // 6. Where did the time go? Every subsystem records into the
  // process-wide metrics registry; snapshot it after the run.
  MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  printf("\nruntime metrics (excerpt of %zu counters, %zu histograms):\n",
         snap.counters.size(), snap.histograms.size());
  for (const char* name :
       {"harvest.stage.annotate_ms", "harvest.stage.extract_ms",
        "harvest.stage.reason_ms", "harvest.stage.assemble_ms"}) {
    const HistogramSnapshot* h = snap.histogram(name);
    if (h == nullptr) continue;
    printf("  %-28s mean %7.2f ms  p99 %7.2f ms\n", name, h->mean, h->p99);
  }
  printf("  %-28s %zu\n", "extraction.pattern.facts",
         static_cast<size_t>(snap.counter("extraction.pattern.facts")));
  printf("  %-28s %zu\n", "harvest.facts.accepted",
         static_cast<size_t>(snap.counter("harvest.facts.accepted")));
  return 0;
}
