// Semantic search / deep question answering over the harvested KB —
// the "knowledge-centric services" of the tutorial's §1 (Watson-style
// QA, Knowledge-Graph-style entity answers instead of page links).
//
// A tiny question grammar maps natural-language questions to SPARQL
// over the KB: "who founded <X>", "where was <X> born",
// "list <class>", "when was <X> founded".

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/entity_card.h"
#include "core/harvester.h"
#include "core/persistence.h"
#include "query/engine.h"
#include "rdf/namespaces.h"
#include "util/string_util.h"

namespace {

using namespace kb;

/// Resolves a display name to a canonical IRI via rdfs:label.
std::string IriForName(const core::KnowledgeBase& kb,
                       const std::string& name) {
  auto rows = kb.Query(
      "SELECT ?e WHERE { ?e <http://www.w3.org/2000/01/rdf-schema#label> "
      "\"" + name + "\"@en . }");
  if (!rows.ok() || rows->empty()) return "";
  return kb.store().dict().term(rows->begin()->at("e")).value();
}

/// Answers one question; returns display strings.
std::vector<std::string> Answer(const core::KnowledgeBase& kb,
                                const std::string& question) {
  std::vector<std::string> out;
  std::string q = std::string(StripWhitespace(ToLower(question)));
  auto run = [&](const std::string& sparql, const std::string& var) {
    auto rows = kb.Query(sparql);
    if (!rows.ok()) return;
    for (const query::Binding& row : *rows) {
      auto it = row.find(var);
      if (it == row.end()) continue;
      out.push_back(rdf::Abbreviate(kb.store().dict().term(it->second)
                                        .value()));
    }
  };
  if (StartsWith(q, "who founded ")) {
    std::string entity = IriForName(
        kb, std::string(StripWhitespace(question.substr(12))));
    if (entity.empty()) return out;
    run("SELECT ?p WHERE { ?p <" + rdf::PropertyIri("founded") + "> <" +
            entity + "> . }",
        "p");
  } else if (StartsWith(q, "where was ") && EndsWith(q, " born")) {
    std::string name(StripWhitespace(
        question.substr(10, question.size() - 10 - 5)));
    std::string entity = IriForName(kb, name);
    if (entity.empty()) return out;
    run("SELECT ?c WHERE { <" + entity + "> <" +
            rdf::PropertyIri("bornIn") + "> ?c . }",
        "c");
  } else if (StartsWith(q, "list ")) {
    std::string cls = Singularize(StripWhitespace(q.substr(5)));
    run("SELECT ?e WHERE { ?e "
        "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <" +
            rdf::ClassIri(cls) + "> . }",
        "e");
  } else if (StartsWith(q, "who works for ")) {
    std::string entity = IriForName(
        kb, std::string(StripWhitespace(question.substr(14))));
    if (entity.empty()) return out;
    run("SELECT ?p WHERE { ?p <" + rdf::PropertyIri("worksFor") + "> <" +
            entity + "> . }",
        "p");
  }
  return out;
}

}  // namespace

int main() {
  using namespace kb;
  corpus::WorldOptions world_options;
  world_options.seed = 4242;
  world_options.num_persons = 150;
  corpus::CorpusOptions corpus_options;
  corpus_options.seed = 11;
  corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
  core::Harvester harvester;
  core::HarvestResult result = harvester.Harvest(corpus);
  printf("KB ready: %zu triples\n\n", result.kb.NumTriples());

  // Build a demo question set from the gold world so the demo always
  // has answerable questions.
  std::vector<std::string> questions;
  for (uint32_t company :
       corpus.world.ByKind(corpus::EntityKind::kCompany)) {
    questions.push_back("who founded " +
                        corpus.world.entity(company).full_name);
    if (questions.size() >= 2) break;
  }
  for (uint32_t person : corpus.world.ByKind(corpus::EntityKind::kPerson)) {
    questions.push_back("where was " +
                        corpus.world.entity(person).full_name + " born");
    if (questions.size() >= 4) break;
  }
  questions.push_back("list singers");
  questions.push_back("who works for " +
                      corpus.world
                          .entity(corpus.world.ByKind(
                              corpus::EntityKind::kCompany)[0])
                          .full_name);

  for (const std::string& question : questions) {
    printf("Q: %s\n", question.c_str());
    auto answers = Answer(result.kb, question);
    if (answers.empty()) {
      printf("A: (no answer in the KB)\n\n");
      continue;
    }
    size_t shown = 0;
    printf("A: ");
    for (const std::string& a : answers) {
      if (shown++ >= 5) {
        printf("... (%zu total)", answers.size());
        break;
      }
      printf("%s%s", shown > 1 ? ", " : "", a.c_str());
    }
    printf("\n\n");
  }

  // Knowledge panel for the first company (the Knowledge-Graph-style
  // "things, not strings" answer surface).
  const corpus::Entity& company = corpus.world.entity(
      corpus.world.ByKind(corpus::EntityKind::kCompany)[0]);
  auto card = core::BuildEntityCard(result.kb, company.canonical);
  if (card.ok()) {
    printf("knowledge panel:\n%s", core::RenderEntityCard(*card).c_str());
  }

  // Persist the KB and stream a LIMIT query straight off the LSM
  // store: LoadDictionary + NewTripleSource skip rebuilding the
  // in-memory KB entirely, and the pull cursor stops the pipeline
  // after three rows instead of enumerating every binding.
  std::string dir = (std::filesystem::temp_directory_path() /
                     "kbforge_semantic_search")
                        .string();
  std::filesystem::remove_all(dir);
  auto storage = core::KbStorage::Open(dir);
  if (storage.ok() && (*storage)->Save(result.kb).ok()) {
    auto dict = (*storage)->LoadDictionary();
    auto source = (*storage)->NewTripleSource();
    auto parsed = dict.ok()
                      ? query::ParseSparql(
                            "SELECT ?p ?c WHERE { ?p <" +
                                rdf::PropertyIri("worksFor") + "> ?c . } "
                                "LIMIT 3",
                            *dict)
                      : dict.status();
    if (parsed.ok()) {
      query::QueryEngine engine(source.get());
      query::Cursor cursor = engine.Open(*parsed);
      printf("\nstreamed off disk (LIMIT 3):\n");
      query::Row row;
      while (cursor.Next(&row)) {
        printf("  %s worksFor %s\n",
               rdf::Abbreviate(dict->term(row[0]).value()).c_str(),
               rdf::Abbreviate(dict->term(row[1]).value()).c_str());
      }
      printf("  (touched %llu of %zu stored triples before stopping)\n",
             static_cast<unsigned long long>(
                 cursor.stats().intermediate_rows),
             result.kb.NumTriples());
    }
  }
  std::filesystem::remove_all(dir);
  return 0;
}
