#!/usr/bin/env python3
"""Gate benchmark smoke rows against the committed trajectory.

Compares freshly produced ``BENCH_*.json`` row files (bench_util.h's
``--json=`` output, schema v2) against the baselines committed under
``bench/baselines/``, applying per-metric tolerance bands from
``bench/baselines/tolerances.json``. Exits nonzero when a gated metric
regresses beyond its band, when a baselined metric disappears, or when
a required bench produced no rows at all — so CI notices a broken or
silently-skipped bench, not just a slow one.

Policy (see DESIGN.md "Load generation & benchmark trajectory"):
deterministic metrics (completed op counts, error counts) gate
tightly; throughput/latency metrics gate with wide bands plus an
absolute floor, because smoke runs on shared CI runners measure
liveness and order-of-magnitude, not microseconds. Everything else is
tracked as informational trajectory data.

Usage:
  bench_check.py --fresh DIR [--baselines DIR] [--tolerances FILE]
  bench_check.py --fresh DIR --update   # refresh the committed baselines
"""

import argparse
import glob
import json
import os
import re
import shutil
import sys

SCHEMA_VERSION = 2


def load_rows(directory, errors):
    """Maps (bench, workload, metric) -> row dict for every BENCH_*.json.

    File-level problems (unparseable JSON, stale schema_version) are
    appended to ``errors`` instead of aborting, so one truncated row
    file cannot hide every other regression in the run: the full diff
    is reported before the nonzero exit.
    """
    rows = {}
    files = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    for path in files:
        with open(path) as f:
            try:
                data = json.load(f)
            except json.JSONDecodeError as e:
                errors.append(f"{path}: not valid JSON: {e}")
                continue
        for row in data:
            version = row.get("schema_version")
            if version != SCHEMA_VERSION:
                errors.append(
                    f"{path}: row schema_version {version!r} != "
                    f"{SCHEMA_VERSION}; regenerate with current bench_util.h"
                )
                break  # every row in a file shares one schema version
            key = (row["bench"], row.get("workload", ""), row["metric"])
            rows[key] = row
    return rows, files


def load_tolerances(path):
    with open(path) as f:
        config = json.load(f)
    rules = []
    for rule in config.get("rules", []):
        rules.append((re.compile(rule["pattern"]), rule))
    return rules


def rule_for(rules, bench, metric):
    """First matching rule wins; None means informational."""
    name = f"{bench}.{metric}"
    for pattern, rule in rules:
        if pattern.search(name):
            return rule
    return None


def check_row(rule, baseline, fresh):
    """Returns an error string, or None if the fresh value is in band."""
    base, new = baseline["value"], fresh["value"]
    direction = rule["direction"]
    rel_tol = rule.get("rel_tol", 0.0)
    abs_floor = rule.get("abs_floor", 0.0)
    if direction == "exact":
        if new != base:
            return f"expected exactly {base:g}, got {new:g}"
    elif direction == "higher_better":
        bound = base * (1.0 - rel_tol)
        if new < bound and (abs_floor == 0.0 or new < abs_floor):
            return f"{new:g} below band [{bound:g}, inf) (baseline {base:g})"
    elif direction == "lower_better":
        # The effective ceiling is whichever is larger: the relative
        # band or the absolute floor (which shields tiny baselines).
        bound = max(base * (1.0 + rel_tol), abs_floor)
        if new > bound:
            return f"{new:g} above band (-inf, {bound:g}] (baseline {base:g})"
    else:
        return f"unknown direction {direction!r} in tolerances"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory with committed baseline BENCH_*.json")
    parser.add_argument("--tolerances", default=None,
                        help="tolerance rules (default: "
                             "<baselines>/tolerances.json)")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh rows over the committed baselines "
                             "instead of checking")
    args = parser.parse_args()

    if args.update:
        fresh_files = sorted(glob.glob(os.path.join(args.fresh,
                                                    "BENCH_*.json")))
        if not fresh_files:
            sys.exit(f"bench_check: no BENCH_*.json under {args.fresh}")
        os.makedirs(args.baselines, exist_ok=True)
        for path in fresh_files:
            dest = os.path.join(args.baselines, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"updated {dest}")
        return

    tolerances = args.tolerances or os.path.join(args.baselines,
                                                 "tolerances.json")
    rules = load_tolerances(tolerances)
    failures = []
    baseline_rows, baseline_files = load_rows(args.baselines, failures)
    fresh_rows, fresh_files = load_rows(args.fresh, failures)
    if not fresh_rows and not failures:
        sys.exit(f"bench_check: no fresh rows under {args.fresh}")
    if not baseline_rows and not failures:
        # A brand-new trajectory (first bench ever, or a fresh checkout
        # without baselines) is not a regression — there is nothing to
        # regress against. Warn and point at the adoption path.
        print(f"bench_check: WARNING: no baseline rows under "
              f"{args.baselines}; nothing gated. Adopt the fresh rows "
              f"with: bench_check.py --fresh {args.fresh} --update")
        return

    # Every baselined bench must have produced at least one fresh row;
    # a bench that stopped emitting is a broken trajectory, not a pass.
    baseline_benches = {b for (b, _, _) in baseline_rows}
    fresh_benches = {b for (b, _, _) in fresh_rows}
    for bench in sorted(baseline_benches - fresh_benches):
        failures.append(f"{bench}: no fresh rows (bench did not run?)")

    gated = informational = 0
    for key in sorted(baseline_rows):
        bench, workload, metric = key
        baseline = baseline_rows[key]
        rule = rule_for(rules, bench, metric)
        label = f"{bench}[{workload}].{metric}" if workload else \
            f"{bench}.{metric}"
        fresh = fresh_rows.get(key)
        if fresh is None:
            if bench in fresh_benches:
                failures.append(f"{label}: metric vanished from fresh rows")
            continue
        if bool(fresh.get("smoke")) != bool(baseline.get("smoke")):
            failures.append(
                f"{label}: smoke flag mismatch (baseline "
                f"{baseline.get('smoke')}, fresh {fresh.get('smoke')}) — "
                f"comparing smoke rows against full-run rows is meaningless")
            continue
        if rule is None:
            informational += 1
            continue
        gated += 1
        error = check_row(rule, baseline, fresh)
        if error:
            failures.append(f"{label}: {error}")

    # A bench that has fresh rows but no committed baseline at all is a
    # newly added experiment, not a regression: warn once per bench with
    # the adoption hint instead of failing (or spamming per-metric
    # notes) — the gate only tightens once its rows are committed.
    unbaselined = sorted(fresh_benches - baseline_benches)
    for bench in unbaselined:
        print(f"warning: bench {bench} has no committed baseline; "
              f"run bench_check.py --fresh {args.fresh} --update to adopt")

    new_keys = sorted(key for key in set(fresh_rows) - set(baseline_rows)
                      if key[0] not in unbaselined)
    for bench, workload, metric in new_keys:
        label = f"{bench}[{workload}].{metric}" if workload else \
            f"{bench}.{metric}"
        print(f"note: new metric not in baseline: {label} "
              f"(run --update to adopt)")

    print(f"bench_check: {gated} gated, {informational} informational, "
          f"{len(new_keys)} new, {len(baseline_files)} baseline / "
          f"{len(fresh_files)} fresh files")
    if failures:
        print(f"\n{len(failures)} problem(s):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        sys.exit(1)
    print("bench_check: OK")


if __name__ == "__main__":
    main()
