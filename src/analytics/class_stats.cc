#include "analytics/class_stats.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "rdf/term.h"
#include "util/metrics_registry.h"

namespace kb {
namespace analytics {
namespace {

struct ClassStatsMetrics {
  Counter& runs;
  Counter& entities;

  static ClassStatsMetrics& Get() {
    static ClassStatsMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new ClassStatsMetrics{r.counter("analytics.class_stats.runs"),
                                   r.counter("analytics.class_stats.entities")};
    }();
    return *m;
  }
};

/// Reflexive-transitive ancestor closures over the subclass edges,
/// memoized per class. Cycle-safe: a class on the current DFS path
/// contributes itself only.
class AncestorClosure {
 public:
  explicit AncestorClosure(
      std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> parents)
      : parents_(std::move(parents)) {}

  const std::vector<rdf::TermId>& Of(rdf::TermId cls) {
    auto it = closure_.find(cls);
    if (it != closure_.end()) return it->second;
    // Mark in-progress with an empty entry so cycles terminate.
    closure_.emplace(cls, std::vector<rdf::TermId>{});
    std::vector<rdf::TermId> out{cls};
    auto pit = parents_.find(cls);
    if (pit != parents_.end()) {
      for (rdf::TermId parent : pit->second) {
        const std::vector<rdf::TermId>& up = Of(parent);
        out.insert(out.end(), up.begin(), up.end());
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return closure_[cls] = std::move(out);
  }

 private:
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> parents_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> closure_;
};

}  // namespace

ClassStatsResult ComputeClassStats(const rdf::TripleSource& source,
                                   const ClassStatsOptions& options,
                                   ThreadPool* pool) {
  ClassStatsResult result;
  ClassStatsMetrics::Get().runs.Increment();
  if (options.type_predicate == 0 ||
      options.type_predicate == rdf::kAnyTerm) {
    return result;
  }

  // Pass 1: subclass edges -> memoized ancestor closures (sequential;
  // taxonomies are tiny next to the entity population).
  AncestorClosure closure = [&] {
    std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> parents;
    if (options.rollup && options.subclass_predicate != 0 &&
        options.subclass_predicate != rdf::kAnyTerm) {
      rdf::TriplePattern sub;
      sub.p = options.subclass_predicate;
      source.Scan(sub, [&](const rdf::Triple& t) {
        parents[t.s].push_back(t.o);
        return true;
      });
    }
    return AncestorClosure(std::move(parents));
  }();

  // Pass 2: type triples grouped by entity. The POS scan delivers
  // (type, class, entity) sorted by class then entity, so re-sort by
  // entity to recover per-entity runs.
  std::vector<std::pair<rdf::TermId, rdf::TermId>> typed;  // (entity, class)
  {
    rdf::TriplePattern type;
    type.p = options.type_predicate;
    source.Scan(type, [&](const rdf::Triple& t) {
      typed.emplace_back(t.s, t.o);
      return true;
    });
  }
  std::sort(typed.begin(), typed.end());
  typed.erase(std::unique(typed.begin(), typed.end()), typed.end());
  std::vector<size_t> entity_begin;  // run starts in `typed`
  for (size_t i = 0; i < typed.size(); ++i) {
    if (i == 0 || typed[i].first != typed[i - 1].first) {
      entity_begin.push_back(i);
    }
  }
  result.num_entities = entity_begin.size();
  ClassStatsMetrics::Get().entities.Increment(entity_begin.size());

  // Precompute every closure once (the closure cache is not
  // thread-safe; after this, shards only read it).
  for (const auto& [entity, cls] : typed) {
    (void)entity;
    (void)closure.Of(cls);
  }

  // Pass 3: per-shard distinct counting, merged at the end. Each
  // entity's direct classes expand to their ancestor union exactly
  // once, so an entity typed under two siblings counts once for the
  // shared superclass.
  size_t num_shards = pool != nullptr ? pool->num_threads() * 4 : 1;
  if (num_shards == 0 || num_shards > entity_begin.size()) {
    num_shards = std::max<size_t>(entity_begin.size(), 1);
  }
  if (pool == nullptr) num_shards = 1;
  std::vector<std::unordered_map<rdf::TermId, uint64_t>> shard_counts(
      num_shards);
  size_t per = (entity_begin.size() + num_shards - 1) / num_shards;
  auto count_range = [&](size_t begin_run, size_t end_run, size_t shard) {
    std::unordered_map<rdf::TermId, uint64_t>& counts = shard_counts[shard];
    std::vector<rdf::TermId> classes;
    for (size_t r = begin_run; r < end_run; ++r) {
      size_t lo = entity_begin[r];
      size_t hi =
          r + 1 < entity_begin.size() ? entity_begin[r + 1] : typed.size();
      classes.clear();
      for (size_t i = lo; i < hi; ++i) {
        if (options.rollup) {
          const std::vector<rdf::TermId>& up = closure.Of(typed[i].second);
          classes.insert(classes.end(), up.begin(), up.end());
        } else {
          classes.push_back(typed[i].second);
        }
      }
      std::sort(classes.begin(), classes.end());
      classes.erase(std::unique(classes.begin(), classes.end()),
                    classes.end());
      for (rdf::TermId cls : classes) ++counts[cls];
    }
  };
  if (pool != nullptr && num_shards > 1) {
    pool->ParallelFor(num_shards, [&](size_t shard) {
      size_t begin_run = shard * per;
      size_t end_run = std::min(entity_begin.size(), begin_run + per);
      if (begin_run < end_run) count_range(begin_run, end_run, shard);
    });
  } else {
    count_range(0, entity_begin.size(), 0);
  }

  std::unordered_map<rdf::TermId, uint64_t> merged;
  for (const auto& shard : shard_counts) {
    for (const auto& [cls, count] : shard) merged[cls] += count;
  }
  result.counts.assign(merged.begin(), merged.end());
  std::sort(result.counts.begin(), result.counts.end(),
            [](const std::pair<rdf::TermId, uint64_t>& a,
               const std::pair<rdf::TermId, uint64_t>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  result.num_classes = result.counts.size();
  return result;
}

size_t InsertClassStatsFacts(const ClassStatsResult& result,
                             const std::string& property,
                             core::KnowledgeBase* kb) {
  rdf::TermId p = kb->PropertyTerm(property);
  size_t inserted = 0;
  for (const auto& [cls, count] : result.counts) {
    rdf::TermId o = kb->store().dict().Intern(
        rdf::Term::IntLiteral(static_cast<int64_t>(count)));
    core::FactMeta meta;
    kb->AddTripleWithMeta(rdf::Triple{cls, p, o}, &meta);
    ++inserted;
  }
  return inserted;
}

}  // namespace analytics
}  // namespace kb
