#ifndef KBFORGE_ANALYTICS_CLASS_STATS_H_
#define KBFORGE_ANALYTICS_CLASS_STATS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/knowledge_base.h"
#include "rdf/triple_source.h"
#include "util/thread_pool.h"

namespace kb {
namespace analytics {

/// Class-distribution rollup over taxonomy subsumption: for every
/// class, the number of distinct entities that belong to it directly
/// OR through any chain of rdfs:subClassOf edges. Computed id-native
/// from two indexed scans of a TripleSource (type triples and
/// subclass triples), so it runs against a store snapshot like any
/// other analytics job.
struct ClassStatsOptions {
  /// TermId of the rdf:type predicate in the source's dictionary.
  rdf::TermId type_predicate = 0;
  /// TermId of rdfs:subClassOf; kAnyTerm/0 or rollup=false disables
  /// subsumption expansion (direct-type counts only).
  rdf::TermId subclass_predicate = 0;
  /// Expand each entity's direct classes to their full ancestor
  /// closure before counting (exact distinct counts per class).
  bool rollup = true;
};

struct ClassStatsResult {
  /// (class TermId, #distinct entities), count-descending (ties:
  /// smaller id first).
  std::vector<std::pair<rdf::TermId, uint64_t>> counts;
  size_t num_entities = 0;  ///< distinct typed entities seen
  size_t num_classes = 0;   ///< classes with a nonzero count
};

/// Runs the rollup over `source`; entity batches are sharded across
/// `pool` with per-shard partial counts merged at the end (nullptr =
/// single-threaded).
ClassStatsResult ComputeClassStats(const rdf::TripleSource& source,
                                   const ClassStatsOptions& options,
                                   ThreadPool* pool);

/// Writes the class counts back into the KB as
///   <class> kbp:<property> "count"^^xsd:integer
/// facts. Returns the number of facts asserted. Caller must have
/// writers quiesced (interns literal terms through the raw dictionary
/// handle).
size_t InsertClassStatsFacts(const ClassStatsResult& result,
                             const std::string& property,
                             core::KnowledgeBase* kb);

}  // namespace analytics
}  // namespace kb

#endif  // KBFORGE_ANALYTICS_CLASS_STATS_H_
