#include "analytics/pagerank.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "rdf/namespaces.h"
#include "util/metrics_registry.h"

namespace kb {
namespace analytics {
namespace {

struct PageRankMetrics {
  Counter& runs;
  Counter& iterations;
  Counter& edges;

  static PageRankMetrics& Get() {
    static PageRankMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new PageRankMetrics{r.counter("analytics.pagerank.runs"),
                                 r.counter("analytics.pagerank.iterations"),
                                 r.counter("analytics.pagerank.edges")};
    }();
    return *m;
  }
};

/// Splits [0, n) into roughly even chunks and runs `fn(begin, end,
/// chunk_index)` for each — on the pool when given, inline otherwise.
/// The per-chunk index lets callers keep partial reductions without
/// sharing.
template <typename Fn>
size_t ForChunks(ThreadPool* pool, size_t n, const Fn& fn) {
  size_t num_chunks = pool != nullptr ? pool->num_threads() * 4 : 1;
  if (num_chunks == 0) num_chunks = 1;
  if (num_chunks > n) num_chunks = n > 0 ? n : 1;
  size_t per = (n + num_chunks - 1) / num_chunks;
  if (pool == nullptr || num_chunks == 1) {
    fn(0, n, 0);
    return 1;
  }
  pool->ParallelFor(num_chunks, [&](size_t c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin < end) fn(begin, end, c);
  });
  return num_chunks;
}

}  // namespace

std::vector<std::pair<rdf::TermId, double>> PageRankResult::TopK(
    size_t k) const {
  std::vector<std::pair<rdf::TermId, double>> out;
  out.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    out.emplace_back(nodes[i], ranks[i]);
  }
  auto better = [](const std::pair<rdf::TermId, double>& a,
                   const std::pair<rdf::TermId, double>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (k < out.size()) {
    std::partial_sort(out.begin(), out.begin() + static_cast<long>(k),
                      out.end(), better);
    out.resize(k);
  } else {
    std::sort(out.begin(), out.end(), better);
  }
  return out;
}

PageRankResult ComputePageRank(const rdf::TripleSource& source,
                               const PageRankOptions& options,
                               ThreadPool* pool) {
  PageRankResult result;
  PageRankMetrics::Get().runs.Increment();

  // --- Graph build: one full scan, dense-renumbered edge list. ---
  std::vector<rdf::TermId> excluded = options.exclude_predicates;
  std::sort(excluded.begin(), excluded.end());
  std::unordered_map<rdf::TermId, uint32_t> index_of;
  std::vector<std::pair<uint32_t, uint32_t>> edges;  // (src, dst), dense
  auto dense = [&](rdf::TermId id) {
    auto [it, inserted] =
        index_of.emplace(id, static_cast<uint32_t>(result.nodes.size()));
    if (inserted) result.nodes.push_back(id);
    return it->second;
  };
  source.Scan({}, [&](const rdf::Triple& t) {
    if (std::binary_search(excluded.begin(), excluded.end(), t.p)) {
      return true;
    }
    if (options.iri_objects_only != nullptr &&
        !options.iri_objects_only->term(t.o).is_iri()) {
      return true;
    }
    edges.emplace_back(dense(t.s), dense(t.o));
    return true;
  });
  const size_t n = result.nodes.size();
  result.num_edges = edges.size();
  PageRankMetrics::Get().edges.Increment(edges.size());
  result.ranks.assign(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  if (n == 0 || edges.empty()) return result;

  // Out-degrees, then an incoming-edge CSR (dst-major) so each node's
  // next rank is an independent pull — the unit the pool shards.
  std::vector<uint32_t> out_degree(n, 0);
  std::vector<uint32_t> in_offset(n + 1, 0);
  for (const auto& [src, dst] : edges) {
    ++out_degree[src];
    ++in_offset[dst + 1];
  }
  for (size_t i = 0; i < n; ++i) in_offset[i + 1] += in_offset[i];
  std::vector<uint32_t> in_src(edges.size());
  {
    std::vector<uint32_t> cursor(in_offset.begin(), in_offset.end() - 1);
    for (const auto& [src, dst] : edges) in_src[cursor[dst]++] = src;
  }

  // --- Frontier-synchronized power iteration. ---
  const double d = options.damping;
  const double base = (1.0 - d) / static_cast<double>(n);
  std::vector<double> next(n, 0.0);
  size_t num_chunks = pool != nullptr ? pool->num_threads() * 4 : 1;
  std::vector<double> partial(std::max<size_t>(num_chunks, 1), 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Dangling mass: nodes with no out-edges leak rank; redistribute
    // it uniformly so ranks keep summing to 1.
    std::fill(partial.begin(), partial.end(), 0.0);
    ForChunks(pool, n, [&](size_t begin, size_t end, size_t c) {
      double sum = 0.0;
      for (size_t i = begin; i < end; ++i) {
        if (out_degree[i] == 0) sum += result.ranks[i];
      }
      partial[c] += sum;
    });
    double dangling = 0.0;
    for (double p : partial) dangling += p;
    const double redistribute = d * dangling / static_cast<double>(n);

    std::fill(partial.begin(), partial.end(), 0.0);
    ForChunks(pool, n, [&](size_t begin, size_t end, size_t c) {
      double delta = 0.0;
      for (size_t i = begin; i < end; ++i) {
        double in_sum = 0.0;
        for (uint32_t e = in_offset[i]; e < in_offset[i + 1]; ++e) {
          uint32_t src = in_src[e];
          in_sum += result.ranks[src] / out_degree[src];
        }
        next[i] = base + redistribute + d * in_sum;
        delta += std::fabs(next[i] - result.ranks[i]);
      }
      partial[c] += delta;
    });
    result.ranks.swap(next);
    result.last_delta = 0.0;
    for (double p : partial) result.last_delta += p;
    result.iterations = iter + 1;
    PageRankMetrics::Get().iterations.Increment();
    if (options.tolerance > 0 && result.last_delta < options.tolerance) {
      break;
    }
  }
  return result;
}

size_t InsertPageRankFacts(const PageRankResult& result, size_t top_k,
                           const std::string& property,
                           core::KnowledgeBase* kb) {
  static constexpr std::string_view kXsdDouble =
      "http://www.w3.org/2001/XMLSchema#double";
  rdf::TermId p = kb->PropertyTerm(property);
  size_t inserted = 0;
  for (const auto& [node, score] : result.TopK(top_k)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", score);
    rdf::TermId o = kb->store().dict().Intern(
        rdf::Term::TypedLiteral(buf, std::string(kXsdDouble)));
    core::FactMeta meta;
    meta.extractor = 0;
    kb->AddTripleWithMeta(rdf::Triple{node, p, o}, &meta);
    ++inserted;
  }
  return inserted;
}

}  // namespace analytics
}  // namespace kb
