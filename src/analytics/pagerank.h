#ifndef KBFORGE_ANALYTICS_PAGERANK_H_
#define KBFORGE_ANALYTICS_PAGERANK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/knowledge_base.h"
#include "rdf/dictionary.h"
#include "rdf/triple_source.h"
#include "util/thread_pool.h"

namespace kb {
namespace analytics {

/// Offline entity-importance analytics (the tutorial's §4 "big data
/// analytics over the KB" workload): PageRank power iteration over the
/// id-native entity link graph of a TripleSource. The graph is built
/// from one full scan — every non-excluded triple contributes an
/// s -> o edge — so the job runs against a store snapshot without
/// touching the dictionary, and ranks are keyed by the same TermIds
/// the serving tier renders.
struct PageRankOptions {
  double damping = 0.85;
  /// Hard iteration cap.
  int max_iterations = 20;
  /// Stop once the L1 rank delta of an iteration falls below this;
  /// 0 disables early convergence.
  double tolerance = 1e-9;
  /// Predicates whose triples contribute no edges (schema plumbing:
  /// rdf:type, rdfs:subClassOf, rdfs:label, ...).
  std::vector<rdf::TermId> exclude_predicates;
  /// When set, only triples whose object is an IRI contribute edges
  /// (literal-valued facts like years would otherwise become sink
  /// nodes). Must stay valid and quiesced for the duration.
  const rdf::Dictionary* iri_objects_only = nullptr;
};

struct PageRankResult {
  /// Graph nodes (every TermId seen as subject or object of a kept
  /// edge); ranks[i] is the score of nodes[i]. Ranks sum to ~1.
  std::vector<rdf::TermId> nodes;
  std::vector<double> ranks;
  int iterations = 0;      ///< power iterations actually run
  double last_delta = 0;   ///< L1 delta of the final iteration
  size_t num_edges = 0;

  /// The k highest-ranked nodes, score-descending (ties: smaller id
  /// first, so results are deterministic).
  std::vector<std::pair<rdf::TermId, double>> TopK(size_t k) const;
};

/// Runs PageRank over `source`. Each power iteration is sharded across
/// `pool` (frontier-synchronized: all of iteration i completes before
/// i+1 starts); pass nullptr to run single-threaded.
PageRankResult ComputePageRank(const rdf::TripleSource& source,
                               const PageRankOptions& options,
                               ThreadPool* pool);

/// Writes the top_k ranked entities back into the KB as
///   <entity> kbp:<property> "score"^^xsd:double
/// facts, making the analytics output queryable like any other fact.
/// Returns the number of facts asserted. Caller must have writers
/// quiesced (the helper interns literal terms through the raw
/// dictionary handle).
size_t InsertPageRankFacts(const PageRankResult& result, size_t top_k,
                           const std::string& property,
                           core::KnowledgeBase* kb);

}  // namespace analytics
}  // namespace kb

#endif  // KBFORGE_ANALYTICS_PAGERANK_H_
