#include "commonsense/property_miner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "nlp/tokenizer.h"
#include "util/string_util.h"

namespace kb {
namespace commonsense {

namespace {

bool IsShapeAdjective(const std::string& adj) {
  static const std::set<std::string>* kShapes = new std::set<std::string>{
      "round", "cylindrical", "square", "flat", "conical", "spherical"};
  return kShapes->count(adj) > 0;
}

struct Key {
  std::string concept_noun;
  std::string relation;
  std::string value;
  bool operator<(const Key& o) const {
    return std::tie(concept_noun, relation, value) <
           std::tie(o.concept_noun, o.relation, o.value);
  }
};

}  // namespace

std::vector<MinedAssertion> PropertyMiner::Mine(
    const std::vector<corpus::Document>& docs) const {
  std::map<Key, int> counts;
  std::map<std::string, int> concept_counts;
  std::map<std::string, int> value_counts;
  long long total = 0;

  auto record = [&](const std::string& concept_noun,
                    const std::string& relation, const std::string& value) {
    counts[{concept_noun, relation, value}]++;
    concept_counts[concept_noun]++;
    value_counts[value]++;
    ++total;
  };

  for (const corpus::Document& doc : docs) {
    if (doc.kind != corpus::DocKind::kWeb) continue;
    auto sentences = nlp::SplitSentences(doc.text);
    for (auto& s : sentences) {
      tagger_->Tag(&s.tokens);
      const auto& t = s.tokens;
      for (size_t i = 0; i + 2 < t.size(); ++i) {
        // "<Plural> are ADJ" / "<Plural> can be ADJ"
        if (LooksPlural(t[i].lower) &&
            (t[i].pos == nlp::Pos::kNoun ||
             t[i].pos == nlp::Pos::kProperNoun)) {
          size_t adj_pos = 0;
          if (t[i + 1].lower == "are") {
            adj_pos = i + 2;
          } else if (i + 3 < t.size() && t[i + 1].lower == "can" &&
                     t[i + 2].lower == "be") {
            adj_pos = i + 3;
          }
          if (adj_pos != 0 && adj_pos < t.size() &&
              t[adj_pos].pos == nlp::Pos::kAdjective) {
            record(Singularize(t[i].lower), "hasProperty",
                   t[adj_pos].lower);
            continue;
          }
        }
        // "The <noun> is <shape-adjective>"
        if (t[i].pos == nlp::Pos::kDeterminer && i + 3 < t.size() &&
            t[i + 1].pos == nlp::Pos::kNoun && t[i + 2].lower == "is" &&
            t[i + 3].pos == nlp::Pos::kAdjective) {
          if (IsShapeAdjective(t[i + 3].lower)) {
            record(t[i + 1].lower, "hasShape", t[i + 3].lower);
          } else {
            record(t[i + 1].lower, "hasProperty", t[i + 3].lower);
          }
          continue;
        }
        // "The <part> is part of a <whole>"
        if (t[i].pos == nlp::Pos::kNoun && i + 4 < t.size() &&
            t[i + 1].lower == "is" && t[i + 2].lower == "part" &&
            t[i + 3].lower == "of" &&
            (t[i + 4].pos == nlp::Pos::kDeterminer && i + 5 < t.size()
                 ? t[i + 5].pos == nlp::Pos::kNoun
                 : t[i + 4].pos == nlp::Pos::kNoun)) {
          const nlp::Token& whole =
              t[i + 4].pos == nlp::Pos::kDeterminer ? t[i + 5] : t[i + 4];
          record(t[i].lower, "partOf", whole.lower);
          continue;
        }
        // "Every <whole> has a <part>"
        if (t[i].lower == "every" && i + 4 < t.size() &&
            t[i + 1].pos == nlp::Pos::kNoun && t[i + 2].lower == "has" &&
            t[i + 3].pos == nlp::Pos::kDeterminer &&
            t[i + 4].pos == nlp::Pos::kNoun) {
          record(t[i + 4].lower, "partOf", t[i + 1].lower);
          continue;
        }
      }
    }
  }

  // Distinct value count per concept (for the typicality score).
  std::map<std::string, int> distinct_values;
  for (const auto& [key, support] : counts) {
    distinct_values[key.concept_noun]++;
  }

  std::vector<MinedAssertion> out;
  out.reserve(counts.size());
  for (const auto& [key, support] : counts) {
    MinedAssertion a;
    a.concept_noun = key.concept_noun;
    a.relation = key.relation;
    a.value = key.value;
    a.support = support;
    double joint = static_cast<double>(support) / total;
    double pc = static_cast<double>(concept_counts.at(key.concept_noun)) /
                total;
    double pv = static_cast<double>(value_counts.at(key.value)) / total;
    a.pmi = std::log(joint / (pc * pv));
    double mean_support =
        static_cast<double>(concept_counts.at(key.concept_noun)) /
        static_cast<double>(distinct_values.at(key.concept_noun));
    a.typicality = static_cast<double>(support) / mean_support;
    out.push_back(std::move(a));
  }
  std::sort(out.begin(), out.end(),
            [](const MinedAssertion& a, const MinedAssertion& b) {
              if (a.pmi != b.pmi) return a.pmi > b.pmi;
              if (a.support != b.support) return a.support > b.support;
              return std::tie(a.concept_noun, a.relation, a.value) <
                     std::tie(b.concept_noun, b.relation, b.value);
            });
  return out;
}

}  // namespace commonsense
}  // namespace kb
