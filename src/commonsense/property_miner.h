#ifndef KBFORGE_COMMONSENSE_PROPERTY_MINER_H_
#define KBFORGE_COMMONSENSE_PROPERTY_MINER_H_

#include <string>
#include <vector>

#include "corpus/document.h"
#include "nlp/pos_tagger.h"

namespace kb {
namespace commonsense {

/// A mined commonsense assertion with its corpus statistics.
struct MinedAssertion {
  std::string concept_noun;  ///< "apple" (singular)
  std::string relation;      ///< "hasProperty" | "partOf" | "hasShape"
  std::string value;         ///< "red" / "car" / "cylindrical"
  int support = 0;           ///< occurrence count
  double pmi = 0.0;          ///< pointwise mutual information score
  /// Support relative to the concept's average value support: >1 means
  /// the value is asserted more often than the concept's typical value
  /// (separates "apples are red" from rare noise "apples are funny"
  /// regardless of corpus size).
  double typicality = 0.0;
};

/// Mines commonsense knowledge from web text (tutorial §3
/// "Commonsense Knowledge"): properties of concepts ("apples can be
/// red, green, juicy ... but not fast or funny"), shapes, and partOf
/// assertions, scored by frequency and PMI so that rare spurious
/// statements can be thresholded away.
class PropertyMiner {
 public:
  explicit PropertyMiner(const nlp::PosTagger* tagger) : tagger_(tagger) {}

  /// Mines all documents; returns assertions sorted by descending PMI.
  std::vector<MinedAssertion> Mine(
      const std::vector<corpus::Document>& docs) const;

 private:
  const nlp::PosTagger* tagger_;
};

}  // namespace commonsense
}  // namespace kb

#endif  // KBFORGE_COMMONSENSE_PROPERTY_MINER_H_
