#include "commonsense/rule_application.h"

#include <map>
#include <set>

#include "rdf/triple.h"

namespace kb {
namespace commonsense {

using corpus::GetRelationInfo;
using corpus::kNumRelations;
using corpus::Relation;
using extraction::ExtractedFact;

CompletionResult ApplyRules(const std::vector<ExtractedFact>& facts,
                            const std::vector<MinedRule>& rules) {
  CompletionResult result;
  // Index the entity-object facts per relation.
  struct PairInfo {
    double confidence;
  };
  std::vector<std::map<std::pair<uint32_t, uint32_t>, PairInfo>> pairs(
      kNumRelations);
  std::vector<std::map<uint32_t, std::vector<std::pair<uint32_t, double>>>>
      by_subject(kNumRelations);
  std::vector<std::set<uint32_t>> subjects_with_value(kNumRelations);
  for (const ExtractedFact& f : facts) {
    if (f.relation == Relation::kNumRelations) continue;
    if (GetRelationInfo(f.relation).literal_object) continue;
    int r = static_cast<int>(f.relation);
    auto key = std::make_pair(f.subject, f.object);
    auto it = pairs[r].find(key);
    if (it == pairs[r].end()) {
      pairs[r].emplace(key, PairInfo{f.confidence});
      by_subject[r][f.subject].emplace_back(f.object, f.confidence);
      subjects_with_value[r].insert(f.subject);
    } else if (f.confidence > it->second.confidence) {
      it->second.confidence = f.confidence;
    }
  }

  std::set<std::tuple<int, uint32_t, uint32_t>> emitted;
  auto emit = [&](Relation head, uint32_t x, uint32_t z, double confidence) {
    int r = static_cast<int>(head);
    if (pairs[r].count({x, z}) > 0) return;  // already known
    // Do not contradict functional relations that already have a value.
    if (GetRelationInfo(head).functional &&
        subjects_with_value[r].count(x) > 0) {
      return;
    }
    if (!emitted.insert({r, x, z}).second) return;
    ExtractedFact f;
    f.subject = x;
    f.relation = head;
    f.object = z;
    f.confidence = confidence;
    f.extractor = rdf::kExtractorReasoner;
    result.inferred.push_back(f);
  };

  for (const MinedRule& rule : rules) {
    int b1 = static_cast<int>(rule.body1);
    if (!rule.is_chain()) {
      for (const auto& [pair, info] : pairs[b1]) {
        ++result.rule_instantiations;
        emit(rule.head, pair.first, pair.second,
             rule.confidence * info.confidence);
      }
      continue;
    }
    int b2 = static_cast<int>(rule.body2);
    for (const auto& [pair, info] : pairs[b1]) {
      auto it = by_subject[b2].find(pair.second);
      if (it == by_subject[b2].end()) continue;
      for (const auto& [z, z_confidence] : it->second) {
        ++result.rule_instantiations;
        emit(rule.head, pair.first, z,
             rule.confidence * std::min(info.confidence, z_confidence));
      }
    }
  }
  return result;
}

}  // namespace commonsense
}  // namespace kb
