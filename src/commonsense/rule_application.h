#ifndef KBFORGE_COMMONSENSE_RULE_APPLICATION_H_
#define KBFORGE_COMMONSENSE_RULE_APPLICATION_H_

#include <vector>

#include "commonsense/rule_miner.h"

namespace kb {
namespace commonsense {

/// Result of deductive KB completion.
struct CompletionResult {
  /// Newly inferred facts (absent from the input KB). Confidence =
  /// rule confidence x min(confidence of the body facts).
  std::vector<extraction::ExtractedFact> inferred;
  size_t rule_instantiations = 0;  ///< body matches considered
};

/// Applies mined Horn rules to a fact collection and derives the head
/// facts whose bodies hold but which the KB does not yet contain —
/// rule-based knowledge-base completion, the deductive complement of
/// extraction (the Knowledge-Vault direction of fusing priors with
/// extractions). Functional-relation heads are only inferred when the
/// subject has no value yet, so completion cannot contradict the KB.
CompletionResult ApplyRules(
    const std::vector<extraction::ExtractedFact>& facts,
    const std::vector<MinedRule>& rules);

}  // namespace commonsense
}  // namespace kb

#endif  // KBFORGE_COMMONSENSE_RULE_APPLICATION_H_
