#include "commonsense/rule_miner.h"

#include <algorithm>
#include <map>
#include <set>

namespace kb {
namespace commonsense {

using corpus::GetRelationInfo;
using corpus::kNumRelations;
using corpus::Relation;

std::string MinedRule::ToString() const {
  std::string out(GetRelationInfo(head).name);
  out += "(x,z) <= ";
  out += std::string(GetRelationInfo(body1).name);
  if (is_chain()) {
    out += "(x,y) AND " + std::string(GetRelationInfo(body2).name) +
           "(y,z)";
  } else {
    out += "(x,z)";
  }
  return out;
}

std::vector<MinedRule> MineRules(
    const std::vector<extraction::ExtractedFact>& facts,
    const RuleMinerOptions& options) {
  // Per-relation pair sets (entity-object relations only).
  std::vector<std::set<std::pair<uint32_t, uint32_t>>> pairs(kNumRelations);
  std::vector<std::map<uint32_t, std::vector<uint32_t>>> by_subject(
      kNumRelations);
  for (const extraction::ExtractedFact& f : facts) {
    if (f.relation == Relation::kNumRelations) continue;
    if (GetRelationInfo(f.relation).literal_object) continue;
    int r = static_cast<int>(f.relation);
    if (pairs[r].emplace(f.subject, f.object).second) {
      by_subject[r][f.subject].push_back(f.object);
    }
  }

  std::vector<MinedRule> out;

  // Shape 1: head(x,z) <= body(x,z).
  for (int body = 0; body < kNumRelations; ++body) {
    if (pairs[body].empty()) continue;
    for (int head = 0; head < kNumRelations; ++head) {
      if (head == body || pairs[head].empty()) continue;
      const auto& bi = GetRelationInfo(static_cast<Relation>(body));
      const auto& hi = GetRelationInfo(static_cast<Relation>(head));
      if (bi.subject_kind != hi.subject_kind ||
          bi.object_kind != hi.object_kind) {
        continue;
      }
      int support = 0;
      for (const auto& p : pairs[body]) {
        if (pairs[head].count(p) > 0) ++support;
      }
      int body_count = static_cast<int>(pairs[body].size());
      double confidence = static_cast<double>(support) / body_count;
      if (support >= options.min_support &&
          confidence >= options.min_confidence) {
        MinedRule rule;
        rule.head = static_cast<Relation>(head);
        rule.body1 = static_cast<Relation>(body);
        rule.support = support;
        rule.body_count = body_count;
        rule.confidence = confidence;
        out.push_back(rule);
      }
    }
  }

  // Shape 2: head(x,z) <= b1(x,y) AND b2(y,z).
  for (int b1 = 0; b1 < kNumRelations; ++b1) {
    if (pairs[b1].empty()) continue;
    const auto& i1 = GetRelationInfo(static_cast<Relation>(b1));
    for (int b2 = 0; b2 < kNumRelations; ++b2) {
      if (pairs[b2].empty()) continue;
      const auto& i2 = GetRelationInfo(static_cast<Relation>(b2));
      if (i2.subject_kind != i1.object_kind) continue;  // join type check
      for (int head = 0; head < kNumRelations; ++head) {
        if (pairs[head].empty()) continue;
        if (head == b1 || head == b2) continue;
        const auto& hi = GetRelationInfo(static_cast<Relation>(head));
        if (hi.subject_kind != i1.subject_kind ||
            hi.object_kind != i2.object_kind) {
          continue;
        }
        int support = 0, body_count = 0;
        for (const auto& [x, y] : pairs[b1]) {
          auto it = by_subject[b2].find(y);
          if (it == by_subject[b2].end()) continue;
          for (uint32_t z : it->second) {
            ++body_count;
            if (pairs[head].count({x, z}) > 0) ++support;
          }
        }
        if (body_count == 0) continue;
        double confidence = static_cast<double>(support) / body_count;
        if (support >= options.min_support &&
            confidence >= options.min_confidence) {
          MinedRule rule;
          rule.head = static_cast<Relation>(head);
          rule.body1 = static_cast<Relation>(b1);
          rule.body2 = static_cast<Relation>(b2);
          rule.support = support;
          rule.body_count = body_count;
          rule.confidence = confidence;
          out.push_back(rule);
        }
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const MinedRule& a,
                                       const MinedRule& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    return a.support > b.support;
  });
  return out;
}

}  // namespace commonsense
}  // namespace kb
