#ifndef KBFORGE_COMMONSENSE_RULE_MINER_H_
#define KBFORGE_COMMONSENSE_RULE_MINER_H_

#include <string>
#include <vector>

#include "extraction/annotation.h"

namespace kb {
namespace commonsense {

/// A mined Horn rule over the relation inventory. Two shapes:
///   head(x, z) <= body1(x, z)                       (body2 unset)
///   head(x, z) <= body1(x, y) AND body2(y, z)       (chain rule)
struct MinedRule {
  corpus::Relation head = corpus::Relation::kNumRelations;
  corpus::Relation body1 = corpus::Relation::kNumRelations;
  corpus::Relation body2 = corpus::Relation::kNumRelations;  ///< unset = 1-atom
  int support = 0;          ///< instantiations where head holds
  int body_count = 0;       ///< instantiations of the body
  double confidence = 0.0;  ///< support / body_count

  bool is_chain() const {
    return body2 != corpus::Relation::kNumRelations;
  }
  std::string ToString() const;
};

/// Mining thresholds.
struct RuleMinerOptions {
  int min_support = 5;
  double min_confidence = 0.3;
};

/// AMIE-style Horn-rule mining over a fact collection (the
/// "commonsense rules" of tutorial §3, e.g. that citizenship usually
/// follows the birth city's country). Confidence uses the standard
/// (closed-world) body-support denominator.
std::vector<MinedRule> MineRules(
    const std::vector<extraction::ExtractedFact>& facts,
    const RuleMinerOptions& options = RuleMinerOptions());

}  // namespace commonsense
}  // namespace kb

#endif  // KBFORGE_COMMONSENSE_RULE_MINER_H_
