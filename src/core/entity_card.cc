#include "core/entity_card.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace kb {
namespace core {

StatusOr<EntityCard> BuildEntityCard(const KnowledgeBase& kb,
                                     const std::string& canonical,
                                     const EntityCardOptions& options) {
  const rdf::TripleStore& store = kb.store();
  rdf::TermId subject =
      store.dict().Lookup(rdf::Term::Iri(rdf::EntityIri(canonical)));
  if (subject == rdf::kInvalidTermId) {
    return Status::NotFound("no entity " + canonical);
  }
  EntityCard card;
  card.canonical = canonical;
  card.display_name = canonical;

  rdf::TriplePattern all_of_subject;
  all_of_subject.s = subject;
  std::vector<CardFact> facts;
  store.Scan(all_of_subject, [&](const rdf::Triple& t) {
    const rdf::Term& predicate = store.dict().term(t.p);
    const rdf::Term& object = store.dict().term(t.o);
    if (predicate.value() == rdf::kRdfsLabel) {
      card.labels.emplace_back(object.language(), object.value());
      if (object.language() == "en") card.display_name = object.value();
      return true;
    }
    if (predicate.value() == rdf::kRdfType) {
      if (StartsWith(object.value(), rdf::kClassNs)) {
        card.types.push_back(
            object.value().substr(rdf::kClassNs.size()));
      }
      return true;
    }
    if (!StartsWith(predicate.value(), rdf::kPropertyNs)) return true;
    CardFact fact;
    fact.property = predicate.value().substr(rdf::kPropertyNs.size());
    fact.value = object.is_literal() ? object.value()
                                     : rdf::Abbreviate(object.value());
    const FactMeta* meta = kb.MetaOf(t);
    if (meta != nullptr) {
      fact.confidence = meta->confidence;
      fact.support = meta->support;
      fact.valid_time = meta->valid_time;
    }
    double salience =
        fact.confidence * (1.0 + std::log(static_cast<double>(fact.support)));
    if (options.downweight_common_properties) {
      rdf::TriplePattern by_property;
      by_property.p = t.p;
      size_t frequency = store.CountMatches(by_property);
      salience /= std::log(2.0 + static_cast<double>(frequency));
    }
    fact.salience = salience;
    facts.push_back(std::move(fact));
    return true;
  });

  // Types ordered most-specific first (deeper in the taxonomy = more
  // ancestors).
  const taxonomy::Taxonomy& tax = kb.taxonomy();
  std::stable_sort(card.types.begin(), card.types.end(),
                   [&](const std::string& a, const std::string& b) {
                     auto depth = [&](const std::string& name) {
                       taxonomy::ClassId id = tax.Lookup(name);
                       return id == taxonomy::kInvalidClassId
                                  ? size_t{0}
                                  : tax.Ancestors(id).size();
                     };
                     return depth(a) > depth(b);
                   });

  std::stable_sort(facts.begin(), facts.end(),
                   [](const CardFact& a, const CardFact& b) {
                     return a.salience > b.salience;
                   });
  if (facts.size() > options.max_facts) facts.resize(options.max_facts);
  card.facts = std::move(facts);
  return card;
}

std::string RenderEntityCard(const EntityCard& card) {
  std::string out = card.display_name + "\n";
  if (!card.types.empty()) {
    out += "  (" + Join(card.types, ", ") + ")\n";
  }
  for (const CardFact& fact : card.facts) {
    out += "  " + fact.property + ": " + fact.value;
    if (fact.valid_time.valid()) {
      out += " " + fact.valid_time.ToString();
    }
    out += "  [conf " + FormatDouble(fact.confidence, 2) + ", x" +
           std::to_string(fact.support) + "]\n";
  }
  for (const auto& [lang, label] : card.labels) {
    if (lang != "en") out += "  label@" + lang + ": " + label + "\n";
  }
  return out;
}

}  // namespace core
}  // namespace kb
