#ifndef KBFORGE_CORE_ENTITY_CARD_H_
#define KBFORGE_CORE_ENTITY_CARD_H_

#include <string>
#include <vector>

#include "core/knowledge_base.h"

namespace kb {
namespace core {

/// One fact line of an entity card.
struct CardFact {
  std::string property;   ///< local name, e.g. "bornIn"
  std::string value;      ///< abbreviated object ("kb:Northfield" / "1955")
  double confidence = 1.0;
  uint32_t support = 1;
  TimeSpan valid_time;
  double salience = 0.0;  ///< ranking score
};

/// A Knowledge-Graph-style entity summary ("things, not strings"): the
/// display name, types ordered most-specific-first, and the entity's
/// facts ranked by salience — the knowledge-centric service surface the
/// tutorial's §1 motivates (Google Knowledge Graph panels, Watson
/// evidence).
struct EntityCard {
  std::string canonical;
  std::string display_name;                 ///< en label if present
  std::vector<std::string> types;           ///< specific -> general
  std::vector<CardFact> facts;              ///< by descending salience
  std::vector<std::pair<std::string, std::string>> labels;  ///< lang,label
};

struct EntityCardOptions {
  size_t max_facts = 8;
  /// Salience = confidence * (1 + log(support)) / log(2 + property
  /// frequency): rare properties are more distinguishing.
  bool downweight_common_properties = true;
};

/// Builds the card for `canonical`, or NotFound if the KB has no such
/// entity.
StatusOr<EntityCard> BuildEntityCard(const KnowledgeBase& kb,
                                     const std::string& canonical,
                                     const EntityCardOptions& options = {});

/// Renders a card as plain text (for CLIs and the examples).
std::string RenderEntityCard(const EntityCard& card);

}  // namespace core
}  // namespace kb

#endif  // KBFORGE_CORE_ENTITY_CARD_H_
