#include "core/harvest_checkpoint.h"

#include <algorithm>
#include <cstring>

#include "core/persistence.h"
#include "util/metrics_registry.h"
#include "util/varint.h"

namespace kb {
namespace core {

namespace {

using extraction::ExtractedFact;

// Checkpoint keyspace inside the KbStorage directory. Disjoint from
// the KB prefixes ('D','S','P','O','X','M'), so the final Save can
// share the store.
constexpr char kFactPrefix = 'F';
constexpr char kCursorKey[] = "Ccursor";

struct CheckpointMetrics {
  Counter& batches;
  Counter& saved_facts;
  Counter& resumes;
  Counter& resumed_docs;

  static CheckpointMetrics& Get() {
    static CheckpointMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new CheckpointMetrics{
          r.counter("harvest.checkpoint.batches"),
          r.counter("harvest.checkpoint.saved_facts"),
          r.counter("harvest.checkpoint.resumes"),
          r.counter("harvest.checkpoint.resumed_docs"),
      };
    }();
    return *m;
  }
};

/// Key = statement identity: re-extracting the same statement in a
/// replayed batch overwrites rather than duplicates.
std::string FactKey(const ExtractedFact& f) {
  std::string key(1, kFactPrefix);
  PutVarint32(&key, f.subject);
  PutVarint32(&key, static_cast<uint32_t>(f.relation));
  PutVarint32(&key, f.object);
  PutFixed32(&key, static_cast<uint32_t>(f.literal_year));
  return key;
}

std::string EncodeFact(const ExtractedFact& f) {
  std::string out;
  PutVarint32(&out, f.subject);
  PutVarint32(&out, static_cast<uint32_t>(f.relation));
  PutVarint32(&out, f.object);
  PutFixed32(&out, static_cast<uint32_t>(f.literal_year));
  uint64_t confidence_bits = 0;
  memcpy(&confidence_bits, &f.confidence, sizeof(confidence_bits));
  PutFixed64(&out, confidence_bits);
  PutVarint32(&out, f.doc_id);
  PutVarint32(&out, f.extractor);
  auto put_date = [&out](const Date& d) {
    PutVarint32(&out, static_cast<uint32_t>(d.year));
    PutVarint32(&out, static_cast<uint32_t>(d.month));
    PutVarint32(&out, static_cast<uint32_t>(d.day));
  };
  put_date(f.span.begin);
  put_date(f.span.end);
  return out;
}

bool DecodeFact(Slice input, ExtractedFact* f) {
  uint32_t subject = 0, relation = 0, object = 0, year_bits = 0;
  if (!GetVarint32(&input, &subject) || !GetVarint32(&input, &relation) ||
      !GetVarint32(&input, &object) || !GetFixed32(&input, &year_bits)) {
    return false;
  }
  f->subject = subject;
  f->relation = static_cast<corpus::Relation>(relation);
  f->object = object;
  f->literal_year = static_cast<int32_t>(year_bits);
  uint64_t confidence_bits = 0;
  if (!GetFixed64(&input, &confidence_bits)) return false;
  memcpy(&f->confidence, &confidence_bits, sizeof(f->confidence));
  uint32_t doc_id = 0, extractor = 0;
  if (!GetVarint32(&input, &doc_id) || !GetVarint32(&input, &extractor)) {
    return false;
  }
  f->doc_id = doc_id;
  f->extractor = extractor;
  auto get_date = [&input](Date* d) {
    uint32_t year = 0, month = 0, day = 0;
    if (!GetVarint32(&input, &year) || !GetVarint32(&input, &month) ||
        !GetVarint32(&input, &day)) {
      return false;
    }
    d->year = static_cast<int32_t>(year);
    d->month = static_cast<int8_t>(month);
    d->day = static_cast<int8_t>(day);
    return true;
  };
  return get_date(&f->span.begin) && get_date(&f->span.end);
}

/// Merge-writes one accepted fact: an already-checkpointed copy of the
/// same statement survives unless the new one is more confident —
/// matching what DeduplicateFacts would keep in a single-shot run.
Status SaveFact(storage::ShardedKVStore* store, const ExtractedFact& f) {
  std::string key = FactKey(f);
  std::string existing;
  Status s = store->Get(Slice(key), &existing);
  if (s.ok()) {
    ExtractedFact old;
    if (DecodeFact(Slice(existing), &old) && old.confidence >= f.confidence) {
      return Status::OK();
    }
  } else if (!s.IsNotFound()) {
    return s;
  }
  CheckpointMetrics::Get().saved_facts.Increment();
  return store->Put(Slice(key), Slice(EncodeFact(f)));
}

StatusOr<uint64_t> LoadCursor(storage::ShardedKVStore* store) {
  std::string value;
  Status s = store->Get(Slice(kCursorKey), &value);
  if (s.IsNotFound()) return uint64_t{0};
  if (!s.ok()) return s;
  Slice input(value);
  uint64_t cursor = 0;
  if (!GetVarint64(&input, &cursor)) {
    return Status::Corruption("bad checkpoint cursor");
  }
  return cursor;
}

StatusOr<std::vector<ExtractedFact>> LoadFacts(storage::ShardedKVStore* store) {
  std::vector<ExtractedFact> facts;
  Status decode_status = Status::OK();
  std::string begin(1, kFactPrefix);
  std::string end(1, kFactPrefix + 1);
  KB_RETURN_IF_ERROR(store->Scan(
      Slice(begin), Slice(end), [&](const Slice&, const Slice& value) {
        ExtractedFact f;
        if (!DecodeFact(value, &f)) {
          decode_status = Status::Corruption("bad checkpointed fact");
          return false;
        }
        facts.push_back(f);
        return true;
      }));
  KB_RETURN_IF_ERROR(decode_status);
  return facts;
}

}  // namespace

StatusOr<CheckpointedHarvest> HarvestWithCheckpoints(
    const HarvestOptions& harvest_options, const corpus::Corpus& corpus,
    const std::string& checkpoint_dir, const CheckpointOptions& options) {
  CheckpointMetrics& metrics = CheckpointMetrics::Get();
  const size_t batch_docs = options.batch_docs > 0 ? options.batch_docs : 64;
  // Crash-tolerant open: a run killed mid-checkpoint leaves a torn WAL
  // tail or a half-written table, neither of which may brick the
  // harvest.
  auto storage = KbStorage::Recover(checkpoint_dir);
  if (!storage.ok()) return storage.status();
  storage::ShardedKVStore* store = (*storage)->store();

  CheckpointedHarvest out;
  auto cursor = LoadCursor(store);
  if (!cursor.ok()) return cursor.status();
  out.resumed_at_doc = static_cast<size_t>(*cursor);
  out.docs_processed = out.resumed_at_doc;
  if (out.resumed_at_doc > 0) {
    metrics.resumes.Increment();
    metrics.resumed_docs.Increment(out.resumed_at_doc);
  }

  Harvester harvester(harvest_options);
  while (out.docs_processed < corpus.docs.size()) {
    if (options.max_batches > 0 && out.batches_run >= options.max_batches) {
      return out;  // simulated kill; state is durable, resume later
    }
    size_t batch_end =
        std::min(out.docs_processed + batch_docs, corpus.docs.size());
    corpus::Corpus batch;
    batch.world = corpus.world;
    batch.options = corpus.options;
    batch.docs.assign(corpus.docs.begin() + out.docs_processed,
                      corpus.docs.begin() + batch_end);
    HarvestResult harvested = harvester.Harvest(batch);
    if (!harvested.status.ok()) return harvested.status;
    for (const ExtractedFact& f : harvested.accepted) {
      KB_RETURN_IF_ERROR(SaveFact(store, f));
    }
    // Cursor last: if we die before this lands, the whole batch is
    // re-run and its facts overwrite themselves by identity.
    std::string cursor_value;
    PutVarint64(&cursor_value, batch_end);
    KB_RETURN_IF_ERROR(store->Put(Slice(kCursorKey), Slice(cursor_value)));
    KB_RETURN_IF_ERROR(store->Flush());  // durable checkpoint boundary
    out.docs_processed = batch_end;
    ++out.batches_run;
    metrics.batches.Increment();
  }

  // All batches done: global reasoning + assembly over the accumulated
  // facts, then persist the finished KB beside the checkpoint state.
  auto facts = LoadFacts(store);
  if (!facts.ok()) return facts.status();
  out.result = harvester.AssembleFromFacts(corpus, std::move(*facts));
  if (!out.result.status.ok()) return out.result.status;
  KB_RETURN_IF_ERROR((*storage)->Save(out.result.kb));
  out.completed = true;
  return out;
}

}  // namespace core
}  // namespace kb
