#ifndef KBFORGE_CORE_HARVEST_CHECKPOINT_H_
#define KBFORGE_CORE_HARVEST_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "core/harvester.h"
#include "util/statusor.h"

namespace kb {
namespace core {

/// Knobs for the checkpointed harvest driver.
struct CheckpointOptions {
  /// Documents per batch; a durable checkpoint is written after each.
  /// Resume restarts at the last completed batch boundary, so the
  /// batch schedule (and thus the extraction result) is identical
  /// whether or not the harvest was interrupted.
  size_t batch_docs = 64;
  /// Stop this call after N batches even if documents remain (0 =
  /// run to completion). Test hook: simulates the process dying
  /// mid-harvest so a follow-up call can exercise resume.
  size_t max_batches = 0;
};

/// Outcome of one HarvestWithCheckpoints call.
struct CheckpointedHarvest {
  HarvestResult result;        ///< populated only when `completed`
  bool completed = false;      ///< all documents processed + KB saved
  size_t docs_processed = 0;   ///< cumulative, including prior runs
  size_t batches_run = 0;      ///< batches executed by this call
  size_t resumed_at_doc = 0;   ///< cursor found when the dir was opened
};

/// Runs the harvest in document batches, persisting accumulated
/// accepted facts and a progress cursor to `checkpoint_dir` (a
/// KbStorage directory, opened crash-tolerantly via KbStorage::Recover)
/// after every batch. If a previous run died mid-harvest, the next
/// call resumes from the last durable checkpoint: completed batches
/// are not re-extracted, re-processed batches overwrite their own
/// facts by statement identity (idempotent), so nothing is duplicated
/// and nothing durable is lost. On completion the final KB (assembled
/// from all checkpointed facts) is also saved into `checkpoint_dir`.
StatusOr<CheckpointedHarvest> HarvestWithCheckpoints(
    const HarvestOptions& harvest_options, const corpus::Corpus& corpus,
    const std::string& checkpoint_dir,
    const CheckpointOptions& options = CheckpointOptions());

}  // namespace core
}  // namespace kb

#endif  // KBFORGE_CORE_HARVEST_CHECKPOINT_H_
