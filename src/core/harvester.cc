#include "core/harvester.h"

#include <atomic>
#include <exception>
#include <unordered_map>

#include "extraction/bootstrap.h"
#include "extraction/distant_supervision.h"
#include "extraction/infobox_extractor.h"
#include "extraction/pattern_extractor.h"
#include "multilingual/interwiki.h"
#include "ned/coherence.h"
#include "ned/context_model.h"
#include "ned/disambiguator.h"
#include "ned/mention_detector.h"
#include "reasoning/consistency.h"
#include "taxonomy/type_inference.h"
#include "temporal/scoping.h"
#include "util/metrics_registry.h"
#include "util/thread_pool.h"

namespace kb {
namespace core {

using extraction::AnnotatedSentence;
using extraction::ExtractedFact;

namespace {

/// Pipeline instruments, resolved once. Stage timers live in the
/// default registry so a Snapshot() after any harvest shows where the
/// wall-clock went; the per-document instruments are updated from the
/// map-phase workers and must stay lock-free.
struct HarvestMetrics {
  Counter& runs;
  Counter& documents;
  Counter& documents_failed;  ///< skipped by graceful degradation
  Counter& aborts;            ///< circuit-breaker trips
  Counter& sentences;
  Counter& map_docs;  ///< incremented per document by map workers
  Counter& infobox_facts;
  Counter& pattern_facts;
  Counter& bootstrap_facts;
  Counter& statistical_facts;
  Counter& candidate_facts;
  Counter& accepted_facts;
  Counter& rejected_facts;
  Histogram& annotate_doc_ms;  ///< per-document, observed by workers
  Histogram& annotate_ms;
  Histogram& extract_ms;
  Histogram& reason_ms;
  Histogram& assemble_ms;
  Histogram& total_ms;

  static HarvestMetrics& Get() {
    static HarvestMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new HarvestMetrics{
          r.counter("harvest.runs"),
          r.counter("harvest.documents"),
          r.counter("harvest.documents_failed"),
          r.counter("harvest.aborts"),
          r.counter("harvest.sentences"),
          r.counter("harvest.map.docs"),
          r.counter("harvest.facts.infobox"),
          r.counter("harvest.facts.pattern"),
          r.counter("harvest.facts.bootstrap"),
          r.counter("harvest.facts.statistical"),
          r.counter("harvest.facts.candidate"),
          r.counter("harvest.facts.accepted"),
          r.counter("harvest.facts.rejected"),
          r.histogram("harvest.map.annotate_doc_ms"),
          r.histogram("harvest.stage.annotate_ms"),
          r.histogram("harvest.stage.extract_ms"),
          r.histogram("harvest.stage.reason_ms"),
          r.histogram("harvest.stage.assemble_ms"),
          r.histogram("harvest.total_ms"),
      };
    }();
    return *m;
  }
};

}  // namespace

Harvester::Harvester(HarvestOptions options) : options_(options) {}

HarvestResult Harvester::Harvest(const corpus::Corpus& corpus) const {
  HarvestMetrics& metrics = HarvestMetrics::Get();
  metrics.runs.Increment();
  ScopedTimer total_timer(metrics.total_ms);
  HarvestResult result;
  const corpus::World& world = corpus.world;
  nlp::PosTagger tagger;
  result.stats.documents = corpus.docs.size();
  metrics.documents.Increment(corpus.docs.size());

  // ---- Map phase: annotate documents in parallel (the map-reduce
  // shape the tutorial's "big-data methods" call for).
  ScopedTimer annotate_timer(metrics.annotate_ms);
  // In no-gold mode, build the NED stack once and re-annotate every
  // document with detected + disambiguated mentions.
  std::unique_ptr<ned::AliasIndex> aliases;
  std::unique_ptr<ned::ContextModel> context;
  std::unique_ptr<ned::CoherenceModel> coherence;
  if (!options_.use_gold_mentions) {
    aliases = std::make_unique<ned::AliasIndex>(
        ned::AliasIndex::Build(world));
    context = std::make_unique<ned::ContextModel>(
        ned::ContextModel::Build(world, corpus.docs));
    coherence = std::make_unique<ned::CoherenceModel>(
        ned::CoherenceModel::Build(world, corpus.docs));
  }
  std::vector<std::vector<AnnotatedSentence>> per_doc(corpus.docs.size());
  std::atomic<size_t> failed_docs{0};
  {
    ThreadPool pool(options_.threads);
    pool.ParallelFor(corpus.docs.size(), [&](size_t i) {
      // Circuit breaker already tripped: don't burn cycles on a
      // harvest that will be aborted.
      if (failed_docs.load(std::memory_order_relaxed) >
          options_.max_document_failures) {
        return;
      }
      metrics.map_docs.Increment();
      ScopedTimer doc_timer(metrics.annotate_doc_ms);
      try {
        if (options_.document_fault_hook) options_.document_fault_hook(i);
        if (options_.use_gold_mentions) {
          per_doc[i] = extraction::AnnotateDocument(world, corpus.docs[i],
                                                    tagger);
          return;
        }
        // Detected-mention path: dictionary spans + joint NED.
        ned::MentionDetector detector(aliases.get());
        ned::Disambiguator disambiguator(aliases.get(), context.get(),
                                         coherence.get(), ned::NedOptions());
        corpus::Document redetected = corpus.docs[i];
        redetected.mentions.clear();
        for (const ned::DetectedMention& m :
             detector.Detect(corpus.docs[i].text)) {
          corpus::Mention mention;
          mention.begin = m.begin;
          mention.end = m.end;
          mention.entity = UINT32_MAX;
          redetected.mentions.push_back(mention);
        }
        auto decisions = disambiguator.DisambiguateDocument(redetected);
        std::vector<corpus::Mention> resolved;
        for (const ned::Disambiguation& d : decisions) {
          if (d.predicted == UINT32_MAX) continue;  // NIL
          corpus::Mention mention = redetected.mentions[d.mention_index];
          mention.entity = d.predicted;
          resolved.push_back(mention);
        }
        redetected.mentions = std::move(resolved);
        per_doc[i] = extraction::AnnotateDocument(world, redetected, tagger);
      } catch (...) {
        // One bad document must not sink the harvest: count it, drop
        // its sentences, keep going.
        per_doc[i].clear();
        failed_docs.fetch_add(1, std::memory_order_relaxed);
        metrics.documents_failed.Increment();
      }
    });
  }
  result.stats.failed_documents = failed_docs.load();
  if (result.stats.failed_documents > options_.max_document_failures) {
    metrics.aborts.Increment();
    result.status = Status::Aborted(
        "harvest aborted: " + std::to_string(result.stats.failed_documents) +
        " document failures exceed max_document_failures=" +
        std::to_string(options_.max_document_failures));
    return result;
  }
  std::vector<AnnotatedSentence> sentences;
  for (auto& doc_sentences : per_doc) {
    sentences.insert(sentences.end(),
                     std::make_move_iterator(doc_sentences.begin()),
                     std::make_move_iterator(doc_sentences.end()));
  }
  result.stats.sentences = sentences.size();
  metrics.sentences.Increment(sentences.size());
  result.stats.annotate_ms = annotate_timer.Stop();

  // ---- Extraction stages.
  ScopedTimer extract_timer(metrics.extract_ms);
  std::vector<ExtractedFact> all_facts;
  std::vector<ExtractedFact> infobox_facts;
  if (options_.use_infobox) {
    std::unordered_map<std::string, uint32_t> by_canonical;
    for (const corpus::Entity& e : world.entities()) {
      by_canonical[e.canonical] = e.id;
    }
    extraction::InfoboxExtractor infobox(std::move(by_canonical));
    infobox_facts = infobox.Extract(corpus.docs);
    result.stats.infobox_facts = infobox_facts.size();
    metrics.infobox_facts.Increment(infobox_facts.size());
    all_facts.insert(all_facts.end(), infobox_facts.begin(),
                     infobox_facts.end());
  }
  extraction::PatternExtractor patterns(extraction::DefaultPatterns());
  if (options_.use_patterns) {
    std::vector<ExtractedFact> fact_list;
    if (options_.use_temporal) {
      temporal::TemporalScoper scoper(&patterns);
      fact_list = scoper.ScopeSentences(sentences);
    } else {
      fact_list = patterns.Extract(sentences);
    }
    result.stats.pattern_facts = fact_list.size();
    metrics.pattern_facts.Increment(fact_list.size());
    all_facts.insert(all_facts.end(), fact_list.begin(), fact_list.end());
  }
  if (options_.use_bootstrap && !infobox_facts.empty()) {
    extraction::Bootstrapper bootstrapper;
    // Bootstrap each relation independently (shard-parallel).
    std::vector<std::vector<ExtractedFact>> per_relation(
        corpus::kNumRelations);
    ThreadPool pool(options_.threads);
    pool.ParallelFor(corpus::kNumRelations, [&](size_t r) {
      auto boot = bootstrapper.Run(static_cast<corpus::Relation>(r),
                                   infobox_facts, sentences);
      per_relation[r] = std::move(boot.facts);
    });
    for (auto& facts : per_relation) {
      result.stats.bootstrap_facts += facts.size();
      metrics.bootstrap_facts.Increment(facts.size());
      all_facts.insert(all_facts.end(), facts.begin(), facts.end());
    }
  }
  if (options_.use_statistical && !infobox_facts.empty()) {
    extraction::RelationClassifier classifier;
    classifier.Train(sentences, infobox_facts);
    auto ds_facts =
        classifier.Extract(sentences, options_.statistical_min_confidence);
    result.stats.statistical_facts = ds_facts.size();
    metrics.statistical_facts.Increment(ds_facts.size());
    all_facts.insert(all_facts.end(), ds_facts.begin(), ds_facts.end());
  }
  result.stats.extract_ms = extract_timer.Stop();

  ReasonAndAssemble(corpus, std::move(all_facts), &result);
  return result;
}

HarvestResult Harvester::AssembleFromFacts(
    const corpus::Corpus& corpus,
    std::vector<ExtractedFact> candidates) const {
  HarvestResult result;
  result.stats.documents = corpus.docs.size();
  ReasonAndAssemble(corpus, std::move(candidates), &result);
  return result;
}

void Harvester::ReasonAndAssemble(const corpus::Corpus& corpus,
                                  std::vector<ExtractedFact> all_facts,
                                  HarvestResult* result_out) const {
  HarvestMetrics& metrics = HarvestMetrics::Get();
  HarvestResult& result = *result_out;
  const corpus::World& world = corpus.world;
  nlp::PosTagger tagger;

  // ---- Consistency reasoning.
  ScopedTimer reason_timer(metrics.reason_ms);
  if (options_.use_reasoning) {
    reasoning::ConsistencyResult reasoned =
        reasoning::ReasonOverFacts(all_facts);
    result.accepted = std::move(reasoned.accepted);
    result.stats.rejected_facts = reasoned.rejected.size();
  } else {
    result.accepted = extraction::DeduplicateFacts(all_facts);
  }
  result.stats.candidate_facts =
      extraction::DeduplicateFacts(all_facts).size();
  result.stats.accepted_facts = result.accepted.size();
  metrics.candidate_facts.Increment(result.stats.candidate_facts);
  metrics.accepted_facts.Increment(result.stats.accepted_facts);
  metrics.rejected_facts.Increment(result.stats.rejected_facts);
  result.stats.reason_ms = reason_timer.Stop();

  // ---- Taxonomy + types + assembly.
  ScopedTimer assemble_timer(metrics.assemble_ms);
  result.induced = taxonomy::InduceFromCategories(
      corpus.docs, taxonomy::InductionOptions());
  taxonomy::EntityTypes types =
      taxonomy::InferTypes(corpus.docs, result.induced, tagger);

  KnowledgeBase& kb = result.kb;
  for (const auto& [sub, super] : taxonomy::BackboneEdges()) {
    kb.AssertSubclass(sub, super);
  }
  // Induced subclass edges.
  const taxonomy::Taxonomy& induced_tax = result.induced.taxonomy;
  for (taxonomy::ClassId c = 0; c < induced_tax.size(); ++c) {
    for (taxonomy::ClassId super : induced_tax.Superclasses(c)) {
      kb.AssertSubclass(induced_tax.name(c), induced_tax.name(super));
    }
  }
  for (const auto& [entity, classes] : types.types) {
    for (const std::string& cls : classes) {
      kb.AssertType(world.entity(entity).canonical, cls);
    }
  }
  // Relational category yield: birth years.
  for (const auto& [entity, year] : result.induced.birth_years) {
    FactMeta meta;
    meta.extractor = rdf::kExtractorCategory;
    kb.AssertYearFact(world.entity(entity).canonical, "birthDate", year,
                      meta);
  }
  // Accepted relational facts.
  for (const ExtractedFact& f : result.accepted) {
    const corpus::RelationInfo& info = corpus::GetRelationInfo(f.relation);
    FactMeta meta;
    meta.confidence = f.confidence;
    meta.extractor = f.extractor;
    meta.valid_time = f.span;
    if (info.literal_object) {
      kb.AssertYearFact(world.entity(f.subject).canonical,
                        std::string(info.name), f.literal_year, meta);
    } else {
      kb.AssertFact(world.entity(f.subject).canonical,
                    std::string(info.name),
                    world.entity(f.object).canonical, meta);
    }
  }
  // Multilingual labels from interwiki links, plus English labels.
  for (const auto& label :
       multilingual::HarvestInterwikiLabels(corpus.docs)) {
    kb.AssertLabel(world.entity(label.entity).canonical, label.label,
                   label.lang);
  }
  for (const corpus::Entity& e : world.entities()) {
    kb.AssertLabel(e.canonical, e.full_name, "en");
  }
  result.stats.assemble_ms = assemble_timer.Stop();
}

}  // namespace core
}  // namespace kb
