#include "core/harvester.h"

#include <chrono>
#include <mutex>
#include <unordered_map>

#include "extraction/bootstrap.h"
#include "extraction/distant_supervision.h"
#include "extraction/infobox_extractor.h"
#include "extraction/pattern_extractor.h"
#include "multilingual/interwiki.h"
#include "ned/coherence.h"
#include "ned/context_model.h"
#include "ned/disambiguator.h"
#include "ned/mention_detector.h"
#include "reasoning/consistency.h"
#include "taxonomy/type_inference.h"
#include "temporal/scoping.h"
#include "util/thread_pool.h"

namespace kb {
namespace core {

using extraction::AnnotatedSentence;
using extraction::ExtractedFact;

namespace {
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

Harvester::Harvester(HarvestOptions options) : options_(options) {}

HarvestResult Harvester::Harvest(const corpus::Corpus& corpus) const {
  HarvestResult result;
  const corpus::World& world = corpus.world;
  nlp::PosTagger tagger;
  result.stats.documents = corpus.docs.size();

  // ---- Map phase: annotate documents in parallel (the map-reduce
  // shape the tutorial's "big-data methods" call for).
  auto t0 = std::chrono::steady_clock::now();
  // In no-gold mode, build the NED stack once and re-annotate every
  // document with detected + disambiguated mentions.
  std::unique_ptr<ned::AliasIndex> aliases;
  std::unique_ptr<ned::ContextModel> context;
  std::unique_ptr<ned::CoherenceModel> coherence;
  if (!options_.use_gold_mentions) {
    aliases = std::make_unique<ned::AliasIndex>(
        ned::AliasIndex::Build(world));
    context = std::make_unique<ned::ContextModel>(
        ned::ContextModel::Build(world, corpus.docs));
    coherence = std::make_unique<ned::CoherenceModel>(
        ned::CoherenceModel::Build(world, corpus.docs));
  }
  std::vector<std::vector<AnnotatedSentence>> per_doc(corpus.docs.size());
  {
    ThreadPool pool(options_.threads);
    pool.ParallelFor(corpus.docs.size(), [&](size_t i) {
      if (options_.use_gold_mentions) {
        per_doc[i] = extraction::AnnotateDocument(world, corpus.docs[i],
                                                  tagger);
        return;
      }
      // Detected-mention path: dictionary spans + joint NED.
      ned::MentionDetector detector(aliases.get());
      ned::Disambiguator disambiguator(aliases.get(), context.get(),
                                       coherence.get(), ned::NedOptions());
      corpus::Document redetected = corpus.docs[i];
      redetected.mentions.clear();
      for (const ned::DetectedMention& m :
           detector.Detect(corpus.docs[i].text)) {
        corpus::Mention mention;
        mention.begin = m.begin;
        mention.end = m.end;
        mention.entity = UINT32_MAX;
        redetected.mentions.push_back(mention);
      }
      auto decisions = disambiguator.DisambiguateDocument(redetected);
      std::vector<corpus::Mention> resolved;
      for (const ned::Disambiguation& d : decisions) {
        if (d.predicted == UINT32_MAX) continue;  // NIL
        corpus::Mention mention = redetected.mentions[d.mention_index];
        mention.entity = d.predicted;
        resolved.push_back(mention);
      }
      redetected.mentions = std::move(resolved);
      per_doc[i] = extraction::AnnotateDocument(world, redetected, tagger);
    });
  }
  std::vector<AnnotatedSentence> sentences;
  for (auto& doc_sentences : per_doc) {
    sentences.insert(sentences.end(),
                     std::make_move_iterator(doc_sentences.begin()),
                     std::make_move_iterator(doc_sentences.end()));
  }
  result.stats.sentences = sentences.size();
  result.stats.annotate_ms = MsSince(t0);

  // ---- Extraction stages.
  t0 = std::chrono::steady_clock::now();
  std::vector<ExtractedFact> all_facts;
  std::vector<ExtractedFact> infobox_facts;
  if (options_.use_infobox) {
    std::unordered_map<std::string, uint32_t> by_canonical;
    for (const corpus::Entity& e : world.entities()) {
      by_canonical[e.canonical] = e.id;
    }
    extraction::InfoboxExtractor infobox(std::move(by_canonical));
    infobox_facts = infobox.Extract(corpus.docs);
    result.stats.infobox_facts = infobox_facts.size();
    all_facts.insert(all_facts.end(), infobox_facts.begin(),
                     infobox_facts.end());
  }
  extraction::PatternExtractor patterns(extraction::DefaultPatterns());
  if (options_.use_patterns) {
    std::vector<ExtractedFact> fact_list;
    if (options_.use_temporal) {
      temporal::TemporalScoper scoper(&patterns);
      fact_list = scoper.ScopeSentences(sentences);
    } else {
      fact_list = patterns.Extract(sentences);
    }
    result.stats.pattern_facts = fact_list.size();
    all_facts.insert(all_facts.end(), fact_list.begin(), fact_list.end());
  }
  if (options_.use_bootstrap && !infobox_facts.empty()) {
    extraction::Bootstrapper bootstrapper;
    // Bootstrap each relation independently (shard-parallel).
    std::vector<std::vector<ExtractedFact>> per_relation(
        corpus::kNumRelations);
    ThreadPool pool(options_.threads);
    pool.ParallelFor(corpus::kNumRelations, [&](size_t r) {
      auto boot = bootstrapper.Run(static_cast<corpus::Relation>(r),
                                   infobox_facts, sentences);
      per_relation[r] = std::move(boot.facts);
    });
    for (auto& facts : per_relation) {
      result.stats.bootstrap_facts += facts.size();
      all_facts.insert(all_facts.end(), facts.begin(), facts.end());
    }
  }
  if (options_.use_statistical && !infobox_facts.empty()) {
    extraction::RelationClassifier classifier;
    classifier.Train(sentences, infobox_facts);
    auto ds_facts =
        classifier.Extract(sentences, options_.statistical_min_confidence);
    result.stats.statistical_facts = ds_facts.size();
    all_facts.insert(all_facts.end(), ds_facts.begin(), ds_facts.end());
  }
  result.stats.extract_ms = MsSince(t0);

  // ---- Consistency reasoning.
  t0 = std::chrono::steady_clock::now();
  if (options_.use_reasoning) {
    reasoning::ConsistencyResult reasoned =
        reasoning::ReasonOverFacts(all_facts);
    result.accepted = std::move(reasoned.accepted);
    result.stats.rejected_facts = reasoned.rejected.size();
  } else {
    result.accepted = extraction::DeduplicateFacts(all_facts);
  }
  result.stats.candidate_facts =
      extraction::DeduplicateFacts(all_facts).size();
  result.stats.accepted_facts = result.accepted.size();
  result.stats.reason_ms = MsSince(t0);

  // ---- Taxonomy + types + assembly.
  t0 = std::chrono::steady_clock::now();
  result.induced = taxonomy::InduceFromCategories(
      corpus.docs, taxonomy::InductionOptions());
  taxonomy::EntityTypes types =
      taxonomy::InferTypes(corpus.docs, result.induced, tagger);

  KnowledgeBase& kb = result.kb;
  for (const auto& [sub, super] : taxonomy::BackboneEdges()) {
    kb.AssertSubclass(sub, super);
  }
  // Induced subclass edges.
  const taxonomy::Taxonomy& induced_tax = result.induced.taxonomy;
  for (taxonomy::ClassId c = 0; c < induced_tax.size(); ++c) {
    for (taxonomy::ClassId super : induced_tax.Superclasses(c)) {
      kb.AssertSubclass(induced_tax.name(c), induced_tax.name(super));
    }
  }
  for (const auto& [entity, classes] : types.types) {
    for (const std::string& cls : classes) {
      kb.AssertType(world.entity(entity).canonical, cls);
    }
  }
  // Relational category yield: birth years.
  for (const auto& [entity, year] : result.induced.birth_years) {
    FactMeta meta;
    meta.extractor = rdf::kExtractorCategory;
    kb.AssertYearFact(world.entity(entity).canonical, "birthDate", year,
                      meta);
  }
  // Accepted relational facts.
  for (const ExtractedFact& f : result.accepted) {
    const corpus::RelationInfo& info = corpus::GetRelationInfo(f.relation);
    FactMeta meta;
    meta.confidence = f.confidence;
    meta.extractor = f.extractor;
    meta.valid_time = f.span;
    if (info.literal_object) {
      kb.AssertYearFact(world.entity(f.subject).canonical,
                        std::string(info.name), f.literal_year, meta);
    } else {
      kb.AssertFact(world.entity(f.subject).canonical,
                    std::string(info.name),
                    world.entity(f.object).canonical, meta);
    }
  }
  // Multilingual labels from interwiki links, plus English labels.
  for (const auto& label :
       multilingual::HarvestInterwikiLabels(corpus.docs)) {
    kb.AssertLabel(world.entity(label.entity).canonical, label.label,
                   label.lang);
  }
  for (const corpus::Entity& e : world.entities()) {
    kb.AssertLabel(e.canonical, e.full_name, "en");
  }
  result.stats.assemble_ms = MsSince(t0);
  return result;
}

}  // namespace core
}  // namespace kb
