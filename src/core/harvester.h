#ifndef KBFORGE_CORE_HARVESTER_H_
#define KBFORGE_CORE_HARVESTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/knowledge_base.h"
#include "corpus/generator.h"
#include "extraction/annotation.h"
#include "taxonomy/category_induction.h"
#include "util/status.h"

namespace kb {
namespace core {

/// Pipeline configuration (stage toggles are the E1/E3 ablations).
struct HarvestOptions {
  size_t threads = 4;             ///< map-phase worker count
  /// true: extractors see the corpus' gold mention spans (perfect-NER
  /// setting). false: spans come from dictionary detection and the
  /// referents from full NED — the end-to-end no-gold pipeline.
  bool use_gold_mentions = true;
  bool use_infobox = true;        ///< semi-structured extraction
  bool use_patterns = true;       ///< hand-written surface patterns
  bool use_bootstrap = true;      ///< Snowball-style pattern induction
  bool use_statistical = true;    ///< distant-supervision classifier
  bool use_temporal = true;       ///< timespan attachment
  bool use_reasoning = true;      ///< MaxSat consistency filtering
  double statistical_min_confidence = 0.7;
  /// Graceful degradation: a document whose annotation throws is
  /// counted in HarvestStats::failed_documents and skipped — one bad
  /// page must not sink a million-document harvest. When *more* than
  /// this many documents fail, the circuit breaker trips and Harvest
  /// returns early with HarvestResult::status == Aborted (the input is
  /// systematically broken, not merely noisy). Default: never trip.
  size_t max_document_failures = SIZE_MAX;
  /// Test hook, invoked at the start of each document's map step with
  /// the document index; throw to inject a per-document failure. Must
  /// be thread-safe (map workers call it concurrently).
  std::function<void(size_t)> document_fault_hook;
};

/// Per-stage wall-clock and yield accounting.
struct HarvestStats {
  size_t documents = 0;
  size_t failed_documents = 0;  ///< skipped by graceful degradation
  size_t sentences = 0;
  size_t infobox_facts = 0;
  size_t pattern_facts = 0;
  size_t bootstrap_facts = 0;
  size_t statistical_facts = 0;
  size_t candidate_facts = 0;   ///< after merge + dedup
  size_t accepted_facts = 0;    ///< after reasoning
  size_t rejected_facts = 0;
  double annotate_ms = 0;
  double extract_ms = 0;
  double reason_ms = 0;
  double assemble_ms = 0;
};

/// The harvest product: the RDF knowledge base plus the accepted facts
/// in gold-world id space (for evaluation against the generator).
struct HarvestResult {
  KnowledgeBase kb;
  std::vector<extraction::ExtractedFact> accepted;
  taxonomy::InducedTaxonomy induced;
  HarvestStats stats;
  /// OK for a complete harvest (even with skipped documents); Aborted
  /// when the max_document_failures circuit breaker tripped, in which
  /// case kb/accepted are partial and should not be trusted.
  Status status = Status::OK();
};

/// The end-to-end knowledge harvesting pipeline (the tutorial's §2+§3
/// stack): map-reduce-shaped parallel document processing feeding
/// semi-structured + pattern + bootstrapped + statistical extraction,
/// temporal scoping, MaxSat consistency reasoning, taxonomy induction,
/// and finally RDF assembly with provenance and multilingual labels.
class Harvester {
 public:
  explicit Harvester(HarvestOptions options = HarvestOptions());

  /// Runs the full pipeline over a corpus.
  HarvestResult Harvest(const corpus::Corpus& corpus) const;

  /// Runs only the back half of the pipeline — consistency reasoning,
  /// taxonomy induction and RDF assembly — over already-extracted
  /// candidate facts. Used by the checkpointed harvest to build the
  /// final KB from facts accumulated across batches.
  HarvestResult AssembleFromFacts(
      const corpus::Corpus& corpus,
      std::vector<extraction::ExtractedFact> candidates) const;

 private:
  void ReasonAndAssemble(const corpus::Corpus& corpus,
                         std::vector<extraction::ExtractedFact> all_facts,
                         HarvestResult* result) const;

  HarvestOptions options_;
};

}  // namespace core
}  // namespace kb

#endif  // KBFORGE_CORE_HARVESTER_H_
