#include "core/kb_snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/persistence.h"
#include "util/string_util.h"
#include "util/varint.h"

namespace kb {
namespace core {

namespace {

constexpr char kCurrentName[] = "CURRENT";
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".kbsnap";
constexpr char kDeltaPrefix[] = "delta-";

std::string GenName(const char* prefix, uint64_t gen, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", prefix,
                static_cast<unsigned long long>(gen), suffix);
  return buf;
}

bool ParseGenName(const std::string& name, const std::string& prefix,
                  const std::string& suffix, uint64_t* gen) {
  if (name.size() != prefix.size() + 6 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (!suffix.empty() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 6; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *gen = v;
  return true;
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

rdf::Triple RecordTriple(const char* rec) {
  return rdf::Triple(LoadU32(rec), LoadU32(rec + 4), LoadU32(rec + 8));
}

void RecordMeta(const char* rec, FactMeta* out) {
  uint64_t bits;
  std::memcpy(&bits, rec + 12, sizeof(bits));
  std::memcpy(&out->confidence, &bits, sizeof(out->confidence));
  out->support = LoadU32(rec + 20);
  out->extractor = LoadU32(rec + 24);
  auto date = [](const char* p, Date* d) {
    d->year = static_cast<int32_t>(LoadU32(p));
    d->month = static_cast<int8_t>(p[4]);
    d->day = static_cast<int8_t>(p[5]);
  };
  date(rec + 28, &out->valid_time.begin);
  date(rec + 34, &out->valid_time.end);
}

}  // namespace

std::string EncodePackedMeta(const std::map<rdf::Triple, FactMeta>& metas) {
  // std::map iterates in Triple order (s, p, o) — exactly the sort the
  // binary search in LookupPackedMeta relies on.
  std::string out;
  out.reserve(metas.size() * kPackedMetaRecordSize);
  for (const auto& [t, meta] : metas) {
    PutFixed32(&out, t.s);
    PutFixed32(&out, t.p);
    PutFixed32(&out, t.o);
    uint64_t bits = 0;
    std::memcpy(&bits, &meta.confidence, sizeof(bits));
    PutFixed64(&out, bits);
    PutFixed32(&out, meta.support);
    PutFixed32(&out, meta.extractor);
    auto put_date = [&out](const Date& d) {
      PutFixed32(&out, static_cast<uint32_t>(d.year));
      out.push_back(static_cast<char>(d.month));
      out.push_back(static_cast<char>(d.day));
    };
    put_date(meta.valid_time.begin);
    put_date(meta.valid_time.end);
  }
  return out;
}

bool LookupPackedMeta(std::string_view section, const rdf::Triple& t,
                      FactMeta* out) {
  if (section.size() % kPackedMetaRecordSize != 0) return false;
  const size_t n = section.size() / kPackedMetaRecordSize;
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (RecordTriple(section.data() + mid * kPackedMetaRecordSize) < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == n) return false;
  const char* rec = section.data() + lo * kPackedMetaRecordSize;
  if (!(RecordTriple(rec) == t)) return false;
  RecordMeta(rec, out);
  return true;
}

void DecodeAllPackedMeta(std::string_view section,
                         std::map<rdf::Triple, FactMeta>* out) {
  if (section.size() % kPackedMetaRecordSize != 0) return;
  for (size_t off = 0; off + kPackedMetaRecordSize <= section.size();
       off += kPackedMetaRecordSize) {
    const char* rec = section.data() + off;
    FactMeta meta;
    RecordMeta(rec, &meta);
    (*out)[RecordTriple(rec)] = meta;
  }
}

StatusOr<std::string> SerializeKbSnapshot(const KnowledgeBase& kb) {
  const rdf::Dictionary& dict = kb.store().dict();
  rdf::FrameStoreBuilder builder;
  uint64_t entities = 0;
  for (rdf::TermId id = 1; id <= dict.size(); ++id) {
    const rdf::Term& term = dict.term(id);
    builder.AddTerm(term);
    if (term.is_iri() && StartsWith(term.value(), rdf::kEntityNs)) {
      ++entities;
    }
  }
  rdf::TriplePattern all;
  kb.store().Scan(all, [&](const rdf::Triple& t) {
    builder.AddTriple(t);
    return true;
  });
  // Metadata: the base snapshot's packed section (if any) overlaid
  // with the in-memory dirty map, so merged support/confidence from
  // this generation's writes survives the compaction.
  std::map<rdf::Triple, FactMeta> metas;
  if (kb.store().base() != nullptr) {
    std::string_view base_meta;
    if (kb.store().base()->section(rdf::FrameStore::kSectionFactMeta,
                                   &base_meta)) {
      DecodeAllPackedMeta(base_meta, &metas);
    }
  }
  for (const auto& [t, meta] : kb.meta_map()) metas[t] = meta;
  if (!metas.empty()) {
    builder.SetSection(rdf::FrameStore::kSectionFactMeta,
                       EncodePackedMeta(metas));
  }
  builder.SetEpoch(kb.epoch());
  builder.SetNumEntities(entities);
  return builder.Serialize();
}

Status WriteKbSnapshot(storage::Env* env, const std::string& path,
                       const KnowledgeBase& kb) {
  if (env == nullptr) env = storage::Env::Default();
  auto bytes = SerializeKbSnapshot(kb);
  if (!bytes.ok()) return bytes.status();
  const std::string tmp = path + ".tmp";
  KB_RETURN_IF_ERROR(env->WriteStringToFile(tmp, *bytes));  // synced
  return env->RenameFile(tmp, path);
}

StatusOr<std::shared_ptr<const rdf::FrameStore>> OpenKbSnapshot(
    storage::Env* env, const std::string& path,
    const SnapshotOpenOptions& options) {
  if (env == nullptr) env = storage::Env::Default();
  auto region = env->MapReadOnly(path);
  if (!region.ok()) return region.status();
  std::shared_ptr<storage::MappedRegion> owner(std::move(*region));
  const char* data = owner->data();
  const size_t size = owner->size();
  auto store = rdf::FrameStore::Attach(data, size, owner, options.attach);
  if (!store.ok()) return store.status();
  return std::shared_ptr<const rdf::FrameStore>(std::move(*store));
}

StatusOr<std::unique_ptr<KbVolume>> KbVolume::Open(storage::Env* env,
                                                   const std::string& dir) {
  if (env == nullptr) env = storage::Env::Default();
  KB_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
  std::unique_ptr<KbVolume> volume(new KbVolume(env, dir));
  // Current generation: CURRENT is authoritative; the directory
  // listing covers a crash between snapshot write and CURRENT update
  // (the orphan snapshot claims its number so it is never reused).
  uint64_t gen = 0;
  const std::string current_path = dir + "/" + kCurrentName;
  if (env->FileExists(current_path)) {
    auto text = env->ReadFileToString(current_path);
    if (!text.ok()) return text.status();
    uint64_t v = 0;
    bool any = false;
    for (char c : *text) {
      if (c < '0' || c > '9') break;
      v = v * 10 + static_cast<uint64_t>(c - '0');
      any = true;
    }
    if (!any) return Status::Corruption("bad CURRENT file: " + current_path);
    gen = v;
  }
  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  for (const auto& name : *names) {
    uint64_t g = 0;
    if (ParseGenName(name, kSnapshotPrefix, kSnapshotSuffix, &g) ||
        ParseGenName(name, kDeltaPrefix, "", &g)) {
      gen = std::max(gen, g);
    }
  }
  volume->current_gen_ = gen;
  return volume;
}

std::string KbVolume::SnapshotPath(uint64_t gen) const {
  return dir_ + "/" + GenName(kSnapshotPrefix, gen, kSnapshotSuffix);
}

std::string KbVolume::DeltaDir(uint64_t gen) const {
  return dir_ + "/" + GenName(kDeltaPrefix, gen, "");
}

StatusOr<KbVolume::LoadResult> KbVolume::Load(
    const SnapshotOpenOptions& options) {
  auto names = env_->ListDir(dir_);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> snapshot_gens;
  std::vector<uint64_t> delta_gens;
  for (const auto& name : *names) {
    uint64_t g = 0;
    if (ParseGenName(name, kSnapshotPrefix, kSnapshotSuffix, &g)) {
      snapshot_gens.push_back(g);
    } else if (ParseGenName(name, kDeltaPrefix, "", &g)) {
      delta_gens.push_back(g);
    }
  }
  std::sort(snapshot_gens.begin(), snapshot_gens.end(),
            std::greater<uint64_t>());
  snapshot_gens.push_back(0);  // the implicit empty base: pure replay
  std::sort(delta_gens.begin(), delta_gens.end());

  LoadResult result;
  for (uint64_t g : snapshot_gens) {
    std::unique_ptr<KnowledgeBase> kb;
    if (g > 0) {
      auto snap = OpenKbSnapshot(env_, SnapshotPath(g), options);
      if (!snap.ok()) {
        result.refused.push_back(SnapshotPath(g) + ": " +
                                 snap.status().ToString());
        continue;
      }
      kb = KnowledgeBase::FromSnapshot(std::move(*snap));
    } else {
      kb = std::make_unique<KnowledgeBase>();
    }
    // Deltas written while generation >= g was current, oldest first:
    // later generations carry the further-merged metadata, so they
    // overwrite earlier replays.
    for (uint64_t dg : delta_gens) {
      if (dg < g) continue;
      KB_RETURN_IF_ERROR(ApplyDelta(dg, kb.get()));
    }
    if (g > 0) {
      kb->RebuildTaxonomy();
    } else {
      kb->RebuildDerivedIndexes();
    }
    result.kb = std::move(kb);
    result.generation = g;
    result.from_snapshot = g > 0;
    return result;
  }
  return Status::Corruption("kb volume has no usable generation: " + dir_);
}

Status KbVolume::ApplyDelta(uint64_t gen, KnowledgeBase* kb) const {
  const std::string path = DeltaDir(gen);
  if (!env_->FileExists(path)) return Status::OK();
  storage::ShardedStoreOptions options;
  options.store.sync_wal = false;
  options.store.env = env_;
  auto storage = KbStorage::Open(path, options);
  if (!storage.ok()) return storage.status();
  return (*storage)->ApplyInto(kb);
}

Status KbVolume::SaveDelta(const KnowledgeBase& kb) {
  storage::ShardedStoreOptions options;
  options.store.sync_wal = false;
  options.store.env = env_;
  auto storage = KbStorage::Open(DeltaDir(current_gen_), options);
  if (!storage.ok()) return storage.status();
  return (*storage)->SaveOverlay(kb);
}

StatusOr<uint64_t> KbVolume::Checkpoint(KnowledgeBase* kb) {
  const uint64_t gen = current_gen_ + 1;
  KB_RETURN_IF_ERROR(WriteKbSnapshot(env_, SnapshotPath(gen), *kb));
  // Re-open what was just written BEFORE publishing: a snapshot that
  // does not verify never becomes CURRENT.
  auto snap = OpenKbSnapshot(env_, SnapshotPath(gen));
  if (!snap.ok()) return snap.status();
  KB_RETURN_IF_ERROR(PublishCurrent(gen));
  *kb = std::move(*KnowledgeBase::FromSnapshot(std::move(*snap)));
  current_gen_ = gen;
  return gen;
}

Status KbVolume::PublishCurrent(uint64_t gen) {
  const std::string path = dir_ + "/" + kCurrentName;
  const std::string tmp = path + ".tmp";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06llu\n",
                static_cast<unsigned long long>(gen));
  KB_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, buf));
  return env_->RenameFile(tmp, path);
}

}  // namespace core
}  // namespace kb
