#ifndef KBFORGE_CORE_KB_SNAPSHOT_H_
#define KBFORGE_CORE_KB_SNAPSHOT_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/knowledge_base.h"
#include "rdf/frame_store.h"
#include "storage/env.h"

namespace kb {
namespace core {

/// Options for attaching a snapshot file (checksum/structure checks
/// forwarded to FrameStore::Attach).
struct SnapshotOpenOptions {
  rdf::FrameStore::AttachOptions attach;
};

/// Serializes the KB's full merged view (snapshot base + delta) into
/// one FrameStore blob: dictionary terms in id order, triples from the
/// three permutation indexes, fact metadata packed into section 16 and
/// the write epoch/entity count in the header. The KB must be
/// quiesced — serialization reads store()/meta_map() outside the KB
/// lock, like KbStorage::Save.
StatusOr<std::string> SerializeKbSnapshot(const KnowledgeBase& kb);

/// SerializeKbSnapshot + atomic publish: bytes go to `path + ".tmp"`
/// (synced) and are renamed into place, so a crash mid-write leaves
/// either the old snapshot or a temp file that is never opened.
Status WriteKbSnapshot(storage::Env* env, const std::string& path,
                       const KnowledgeBase& kb);

/// Maps `path` through the Env seam and attaches a FrameStore to the
/// bytes (the mapping is owned by the returned store). Corrupt, torn
/// or truncated files are refused with Corruption/InvalidArgument —
/// never partially attached.
StatusOr<std::shared_ptr<const rdf::FrameStore>> OpenKbSnapshot(
    storage::Env* env, const std::string& path,
    const SnapshotOpenOptions& options);
inline StatusOr<std::shared_ptr<const rdf::FrameStore>> OpenKbSnapshot(
    storage::Env* env, const std::string& path) {
  return OpenKbSnapshot(env, path, SnapshotOpenOptions());
}

/// A KB home directory combining snapshot generations with LSM deltas:
///
///   <dir>/CURRENT                 "NNNNNN\n" — newest published gen
///   <dir>/snapshot-NNNNNN.kbsnap  FrameStore snapshot (gen >= 1)
///   <dir>/delta-NNNNNN/           KbStorage holding writes made while
///                                 generation N was current
///
/// Generation 0 is the implicit empty base: a volume that has never
/// checkpointed keeps its whole KB in delta-000000 and Load()
/// degenerates to the legacy WAL-replay path (the cold-start baseline
/// E17 measures against). Checkpoint() compacts base+delta into
/// snapshot generation N+1 and publishes it via temp-file + rename, so
/// the publish is atomic; old generations are kept, which is what
/// makes corruption fallback possible.
///
/// Load() walks generations newest-first: a snapshot that fails
/// checksum/structure verification (torn write, bit flip) is recorded
/// in LoadResult::refused and the next older generation is tried,
/// down to generation 0 (pure replay). Deltas with index >= the booted
/// generation are replayed in ascending order — they are
/// self-describing and idempotent, so replaying a delta that was
/// already compacted into the booted snapshot is harmless.
class KbVolume {
 public:
  struct LoadResult {
    std::unique_ptr<KnowledgeBase> kb;
    /// Generation actually booted from (0 = pure replay).
    uint64_t generation = 0;
    bool from_snapshot = false;
    /// Snapshot files refused as corrupt, with the refusal reason.
    std::vector<std::string> refused;
  };

  /// Opens (or creates) the volume directory. `env` may be null for
  /// Env::Default(); it must outlive the volume.
  static StatusOr<std::unique_ptr<KbVolume>> Open(storage::Env* env,
                                                  const std::string& dir);

  /// Boots a KB: newest valid snapshot + delta replay (see class doc).
  StatusOr<LoadResult> Load(const SnapshotOpenOptions& options);
  StatusOr<LoadResult> Load() { return Load(SnapshotOpenOptions()); }

  /// Persists the KB's current delta into this generation's delta
  /// store (KbStorage::SaveOverlay). The KB must be quiesced.
  Status SaveDelta(const KnowledgeBase& kb);

  /// Compacts the KB's base+delta into snapshot generation N+1,
  /// publishes it, and swaps `*kb` onto the new base (the delta is
  /// emptied; epoch and content are preserved, so result caches keyed
  /// by epoch stay valid). Returns the new generation number. On
  /// error the old generation stays current and `*kb` is untouched.
  StatusOr<uint64_t> Checkpoint(KnowledgeBase* kb);

  uint64_t current_generation() const { return current_gen_; }
  const std::string& dir() const { return dir_; }
  std::string SnapshotPath(uint64_t gen) const;
  std::string DeltaDir(uint64_t gen) const;

 private:
  KbVolume(storage::Env* env, std::string dir)
      : env_(env), dir_(std::move(dir)) {}

  Status PublishCurrent(uint64_t gen);
  Status ApplyDelta(uint64_t gen, KnowledgeBase* kb) const;

  storage::Env* env_;
  std::string dir_;
  uint64_t current_gen_ = 0;
};

/// Packed fact-metadata codec for FrameStore section 16: fixed-width
/// 40-byte records sorted by (s, p, o) — {s,p,o: u32, confidence
/// bits: u64, support: u32, extractor: u32, begin/end dates: i32 year
/// + u8 month + u8 day each} — so one triple's metadata is a binary
/// search away from the mapped bytes, no deserialization up front.
constexpr size_t kPackedMetaRecordSize = 40;

std::string EncodePackedMeta(const std::map<rdf::Triple, FactMeta>& metas);
bool LookupPackedMeta(std::string_view section, const rdf::Triple& t,
                      FactMeta* out);
void DecodeAllPackedMeta(std::string_view section,
                         std::map<rdf::Triple, FactMeta>* out);

}  // namespace core
}  // namespace kb

#endif  // KBFORGE_CORE_KB_SNAPSHOT_H_
