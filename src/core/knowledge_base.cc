#include "core/knowledge_base.h"

#include "util/string_util.h"

namespace kb {
namespace core {

using rdf::Term;
using rdf::TermId;

KnowledgeBase::KnowledgeBase() {
  rdf_type_ = store_.dict().InternIri(std::string(rdf::kRdfType));
  rdfs_subclass_ = store_.dict().InternIri(std::string(rdf::kRdfsSubClassOf));
  rdfs_label_ = store_.dict().InternIri(std::string(rdf::kRdfsLabel));
}

TermId KnowledgeBase::EntityTerm(const std::string& canonical) {
  auto it = entity_terms_.find(canonical);
  if (it != entity_terms_.end()) return it->second;
  TermId id = store_.dict().InternIri(rdf::EntityIri(canonical));
  entity_terms_.emplace(canonical, id);
  return id;
}

TermId KnowledgeBase::PropertyTerm(const std::string& local_name) {
  return store_.dict().InternIri(rdf::PropertyIri(local_name));
}

TermId KnowledgeBase::ClassTerm(const std::string& class_name) {
  return store_.dict().InternIri(rdf::ClassIri(class_name));
}

void KnowledgeBase::AssertType(const std::string& canonical,
                               const std::string& cls) {
  taxonomy_.Intern(cls);
  store_.Add(rdf::Triple(EntityTerm(canonical), rdf_type_, ClassTerm(cls)));
}

void KnowledgeBase::AssertSubclass(const std::string& sub,
                                   const std::string& super) {
  taxonomy_.AddSubclass(taxonomy_.Intern(sub), taxonomy_.Intern(super));
  store_.Add(rdf::Triple(ClassTerm(sub), rdfs_subclass_, ClassTerm(super)));
}

bool KnowledgeBase::AssertFact(const std::string& subject,
                               const std::string& property,
                               const std::string& object,
                               const FactMeta& meta) {
  rdf::Triple t(EntityTerm(subject), PropertyTerm(property),
                EntityTerm(object));
  bool fresh = store_.Add(t);
  auto [it, inserted] = meta_.emplace(t, meta);
  if (!inserted) {
    it->second.confidence = std::max(it->second.confidence, meta.confidence);
    it->second.support += meta.support;
    if (!it->second.valid_time.valid() && meta.valid_time.valid()) {
      it->second.valid_time = meta.valid_time;
    }
  }
  return fresh;
}

bool KnowledgeBase::AssertYearFact(const std::string& subject,
                                   const std::string& property, int32_t year,
                                   const FactMeta& meta) {
  rdf::Triple t(EntityTerm(subject), PropertyTerm(property),
                store_.dict().Intern(Term::IntLiteral(year)));
  bool fresh = store_.Add(t);
  auto [it, inserted] = meta_.emplace(t, meta);
  if (!inserted) {
    it->second.confidence = std::max(it->second.confidence, meta.confidence);
    it->second.support += meta.support;
  }
  return fresh;
}

void KnowledgeBase::AssertLabel(const std::string& canonical,
                                const std::string& label,
                                const std::string& lang) {
  store_.Add(rdf::Triple(EntityTerm(canonical), rdfs_label_,
                         store_.dict().Intern(Term::LangLiteral(label,
                                                                lang))));
}

const FactMeta* KnowledgeBase::MetaOf(const rdf::Triple& triple) const {
  auto it = meta_.find(triple);
  return it == meta_.end() ? nullptr : &it->second;
}

void KnowledgeBase::AddTripleWithMeta(const rdf::Triple& triple,
                                      const FactMeta* meta) {
  store_.Add(triple);
  if (meta != nullptr) meta_[triple] = *meta;
}

void KnowledgeBase::RebuildDerivedIndexes() {
  // Entity IRIs from the dictionary.
  for (rdf::TermId id = 1; id <= store_.dict().size(); ++id) {
    const rdf::Term& term = store_.dict().term(id);
    if (term.is_iri() && StartsWith(term.value(), rdf::kEntityNs)) {
      entity_terms_[term.value().substr(rdf::kEntityNs.size())] = id;
    }
  }
  auto class_name = [&](rdf::TermId id) -> std::string {
    const rdf::Term& term = store_.dict().term(id);
    if (!term.is_iri() || !StartsWith(term.value(), rdf::kClassNs)) {
      return "";
    }
    return term.value().substr(rdf::kClassNs.size());
  };
  // Classes from rdf:type objects.
  rdf::TriplePattern types;
  types.p = rdf_type_;
  store_.Scan(types, [&](const rdf::Triple& t) {
    std::string cls = class_name(t.o);
    if (!cls.empty()) taxonomy_.Intern(cls);
    return true;
  });
  // Subclass edges from rdfs:subClassOf triples.
  rdf::TriplePattern subclass;
  subclass.p = rdfs_subclass_;
  store_.Scan(subclass, [&](const rdf::Triple& t) {
    std::string sub = class_name(t.s);
    std::string super = class_name(t.o);
    if (!sub.empty() && !super.empty()) {
      taxonomy_.AddSubclass(taxonomy_.Intern(sub), taxonomy_.Intern(super));
    }
    return true;
  });
}

StatusOr<std::vector<query::Binding>> KnowledgeBase::Query(
    std::string_view sparql) const {
  auto parsed = query::ParseSparql(sparql, store_.dict());
  if (!parsed.ok()) return parsed.status();
  query::QueryEngine engine(&store_);
  return engine.Execute(*parsed);
}

}  // namespace core
}  // namespace kb
