#include "core/knowledge_base.h"

#include "core/kb_snapshot.h"
#include "util/string_util.h"

namespace kb {
namespace core {

using rdf::Term;
using rdf::TermId;

KnowledgeBase::KnowledgeBase() {
  rdf_type_ = store_.dict().InternIri(std::string(rdf::kRdfType));
  rdfs_subclass_ = store_.dict().InternIri(std::string(rdf::kRdfsSubClassOf));
  rdfs_label_ = store_.dict().InternIri(std::string(rdf::kRdfsLabel));
}

KnowledgeBase::KnowledgeBase(std::shared_ptr<const rdf::FrameStore> base)
    : store_(base), base_(std::move(base)) {
  epoch_.store(base_->epoch(), std::memory_order_release);
  base_entity_count_ = base_->num_entities();
  std::string_view meta_section;
  if (base_->section(rdf::FrameStore::kSectionFactMeta, &meta_section)) {
    base_meta_ = meta_section;
  }
  // The builtins are in every non-trivial snapshot, so these hit the
  // base catalog instead of growing the overlay.
  rdf_type_ = store_.dict().InternIri(std::string(rdf::kRdfType));
  rdfs_subclass_ = store_.dict().InternIri(std::string(rdf::kRdfsSubClassOf));
  rdfs_label_ = store_.dict().InternIri(std::string(rdf::kRdfsLabel));
  RebuildTaxonomyLocked();  // construction: no concurrent access yet
}

std::unique_ptr<KnowledgeBase> KnowledgeBase::FromSnapshot(
    std::shared_ptr<const rdf::FrameStore> base) {
  return std::unique_ptr<KnowledgeBase>(new KnowledgeBase(std::move(base)));
}

KnowledgeBase::KnowledgeBase(KnowledgeBase&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  epoch_.store(other.epoch_.load(std::memory_order_acquire),
               std::memory_order_release);
  store_ = std::move(other.store_);
  taxonomy_ = std::move(other.taxonomy_);
  entity_terms_ = std::move(other.entity_terms_);
  meta_ = std::move(other.meta_);
  rdf_type_ = other.rdf_type_;
  rdfs_subclass_ = other.rdfs_subclass_;
  rdfs_label_ = other.rdfs_label_;
  base_ = std::move(other.base_);
  base_meta_ = other.base_meta_;
  base_entity_count_ = other.base_entity_count_;
  new_entity_count_ = other.new_entity_count_;
  base_meta_cache_ = std::move(other.base_meta_cache_);
}

KnowledgeBase& KnowledgeBase::operator=(KnowledgeBase&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  epoch_.store(other.epoch_.load(std::memory_order_acquire),
               std::memory_order_release);
  store_ = std::move(other.store_);
  taxonomy_ = std::move(other.taxonomy_);
  entity_terms_ = std::move(other.entity_terms_);
  meta_ = std::move(other.meta_);
  rdf_type_ = other.rdf_type_;
  rdfs_subclass_ = other.rdfs_subclass_;
  rdfs_label_ = other.rdfs_label_;
  base_ = std::move(other.base_);
  base_meta_ = other.base_meta_;
  other.base_meta_ = std::string_view();
  base_entity_count_ = other.base_entity_count_;
  new_entity_count_ = other.new_entity_count_;
  base_meta_cache_ = std::move(other.base_meta_cache_);
  return *this;
}

TermId KnowledgeBase::EntityTermLocked(const std::string& canonical) {
  auto it = entity_terms_.find(canonical);
  if (it != entity_terms_.end()) return it->second;
  TermId id = store_.dict().InternIri(rdf::EntityIri(canonical));
  entity_terms_.emplace(canonical, id);
  // Over a snapshot base, entity_terms_ is a lazy cache rather than the
  // full roster, so new entities are counted as they first appear.
  if (base_ != nullptr && id > store_.dict().base_size()) ++new_entity_count_;
  return id;
}

TermId KnowledgeBase::PropertyTermLocked(const std::string& local_name) {
  return store_.dict().InternIri(rdf::PropertyIri(local_name));
}

TermId KnowledgeBase::ClassTermLocked(const std::string& class_name) {
  return store_.dict().InternIri(rdf::ClassIri(class_name));
}

TermId KnowledgeBase::EntityTerm(const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mu_);
  return EntityTermLocked(canonical);
}

TermId KnowledgeBase::PropertyTerm(const std::string& local_name) {
  std::lock_guard<std::mutex> lock(mu_);
  return PropertyTermLocked(local_name);
}

TermId KnowledgeBase::ClassTerm(const std::string& class_name) {
  std::lock_guard<std::mutex> lock(mu_);
  return ClassTermLocked(class_name);
}

void KnowledgeBase::AssertType(const std::string& canonical,
                               const std::string& cls) {
  std::lock_guard<std::mutex> lock(mu_);
  taxonomy_.Intern(cls);
  store_.Add(rdf::Triple(EntityTermLocked(canonical), rdf_type_,
                         ClassTermLocked(cls)));
  BumpEpoch();
}

void KnowledgeBase::AssertSubclass(const std::string& sub,
                                   const std::string& super) {
  std::lock_guard<std::mutex> lock(mu_);
  taxonomy_.AddSubclass(taxonomy_.Intern(sub), taxonomy_.Intern(super));
  store_.Add(rdf::Triple(ClassTermLocked(sub), rdfs_subclass_,
                         ClassTermLocked(super)));
  BumpEpoch();
}

bool KnowledgeBase::InsertMetaLocked(const rdf::Triple& t,
                                     const FactMeta& meta,
                                     bool merge_valid_time) {
  // A re-asserted snapshot fact merges into its packed base metadata,
  // not a blank slate: seed the in-memory entry from the base first.
  if (meta_.find(t) == meta_.end()) {
    if (const FactMeta* inherited = BaseMetaLocked(t)) {
      meta_.emplace(t, *inherited);
    }
  }
  auto [it, inserted] = meta_.emplace(t, meta);
  if (!inserted) {
    it->second.confidence = std::max(it->second.confidence, meta.confidence);
    it->second.support += meta.support;
    if (merge_valid_time && !it->second.valid_time.valid() &&
        meta.valid_time.valid()) {
      it->second.valid_time = meta.valid_time;
    }
  }
  return inserted;
}

bool KnowledgeBase::AssertFact(const std::string& subject,
                               const std::string& property,
                               const std::string& object,
                               const FactMeta& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  rdf::Triple t(EntityTermLocked(subject), PropertyTermLocked(property),
                EntityTermLocked(object));
  bool fresh = store_.Add(t);
  InsertMetaLocked(t, meta, /*merge_valid_time=*/true);
  BumpEpoch();
  return fresh;
}

bool KnowledgeBase::AssertYearFact(const std::string& subject,
                                   const std::string& property, int32_t year,
                                   const FactMeta& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  rdf::Triple t(EntityTermLocked(subject), PropertyTermLocked(property),
                store_.dict().Intern(Term::IntLiteral(year)));
  bool fresh = store_.Add(t);
  InsertMetaLocked(t, meta, /*merge_valid_time=*/false);
  BumpEpoch();
  return fresh;
}

void KnowledgeBase::AssertLabel(const std::string& canonical,
                                const std::string& label,
                                const std::string& lang) {
  std::lock_guard<std::mutex> lock(mu_);
  store_.Add(rdf::Triple(EntityTermLocked(canonical), rdfs_label_,
                         store_.dict().Intern(Term::LangLiteral(label,
                                                                lang))));
  BumpEpoch();
}

const FactMeta* KnowledgeBase::MetaOf(const rdf::Triple& triple) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = meta_.find(triple);
  if (it != meta_.end()) return &it->second;
  return BaseMetaLocked(triple);
}

const FactMeta* KnowledgeBase::BaseMetaLocked(const rdf::Triple& t) const {
  if (base_meta_.empty()) return nullptr;
  auto it = base_meta_cache_.find(t);
  if (it != base_meta_cache_.end()) return &it->second;
  FactMeta meta;
  if (!LookupPackedMeta(base_meta_, t, &meta)) return nullptr;
  return &base_meta_cache_.emplace(t, meta).first->second;
}

void KnowledgeBase::AddTripleWithMeta(const rdf::Triple& triple,
                                      const FactMeta* meta) {
  std::lock_guard<std::mutex> lock(mu_);
  store_.Add(triple);
  if (meta != nullptr) meta_[triple] = *meta;
  BumpEpoch();
}

void KnowledgeBase::RebuildDerivedIndexes() {
  std::lock_guard<std::mutex> lock(mu_);
  // Entity IRIs from the dictionary.
  for (rdf::TermId id = 1; id <= store_.dict().size(); ++id) {
    const rdf::Term& term = store_.dict().term(id);
    if (term.is_iri() && StartsWith(term.value(), rdf::kEntityNs)) {
      entity_terms_[term.value().substr(rdf::kEntityNs.size())] = id;
    }
  }
  RebuildTaxonomyLocked();
}

void KnowledgeBase::RebuildTaxonomy() {
  std::lock_guard<std::mutex> lock(mu_);
  RebuildTaxonomyLocked();
}

void KnowledgeBase::RebuildTaxonomyLocked() {
  if (base_ != nullptr) {
    // Delta replay interns terms through the dictionary directly, so
    // recount overlay entities from the overlay id range (never the
    // base range — that would defeat the lazy cold-start).
    size_t overlay_entities = 0;
    for (rdf::TermId id = store_.dict().base_size() + 1;
         id <= store_.dict().size(); ++id) {
      const rdf::Term& term = store_.dict().term(id);
      if (term.is_iri() && StartsWith(term.value(), rdf::kEntityNs)) {
        entity_terms_[term.value().substr(rdf::kEntityNs.size())] = id;
        ++overlay_entities;
      }
    }
    new_entity_count_ = overlay_entities;
  }
  auto class_name = [&](rdf::TermId id) -> std::string {
    const rdf::Term& term = store_.dict().term(id);
    if (!term.is_iri() || !StartsWith(term.value(), rdf::kClassNs)) {
      return "";
    }
    return term.value().substr(rdf::kClassNs.size());
  };
  // Classes from rdf:type objects.
  rdf::TriplePattern types;
  types.p = rdf_type_;
  store_.Scan(types, [&](const rdf::Triple& t) {
    std::string cls = class_name(t.o);
    if (!cls.empty()) taxonomy_.Intern(cls);
    return true;
  });
  // Subclass edges from rdfs:subClassOf triples.
  rdf::TriplePattern subclass;
  subclass.p = rdfs_subclass_;
  store_.Scan(subclass, [&](const rdf::Triple& t) {
    std::string sub = class_name(t.s);
    std::string super = class_name(t.o);
    if (!sub.empty() && !super.empty()) {
      taxonomy_.AddSubclass(taxonomy_.Intern(sub), taxonomy_.Intern(super));
    }
    return true;
  });
}

StatusOr<std::vector<query::Binding>> KnowledgeBase::Query(
    std::string_view sparql) const {
  return Query(sparql, query::ExecutionOptions{});
}

StatusOr<std::vector<query::Binding>> KnowledgeBase::Query(
    std::string_view sparql, const query::ExecutionOptions& options,
    query::QueryStats* stats) const {
  // Parsing reads the dictionary, which races with concurrent
  // interning, so it stays under the KB lock. Execution does not: the
  // engine pins a store snapshot, so it runs lock-free while assert
  // workers keep appending.
  auto parsed = ParseQuery(sparql);
  if (!parsed.ok()) return parsed.status();
  return Execute(*parsed, options, stats);
}

StatusOr<query::SelectQuery> KnowledgeBase::ParseQuery(
    std::string_view sparql) const {
  std::lock_guard<std::mutex> lock(mu_);
  return query::ParseSparql(sparql, store_.dict());
}

std::vector<query::Binding> KnowledgeBase::Execute(
    const query::SelectQuery& parsed, const query::ExecutionOptions& options,
    query::QueryStats* stats) const {
  query::QueryEngine engine(&store_, &plan_cache_);
  return engine.Execute(parsed, options, stats);
}

}  // namespace core
}  // namespace kb
