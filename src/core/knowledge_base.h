#ifndef KBFORGE_CORE_KNOWLEDGE_BASE_H_
#define KBFORGE_CORE_KNOWLEDGE_BASE_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "query/engine.h"
#include "rdf/namespaces.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "taxonomy/taxonomy.h"
#include "util/date.h"
#include "util/status.h"

namespace kb {
namespace core {

/// Extraction metadata attached to an asserted fact.
struct FactMeta {
  double confidence = 1.0;
  uint32_t support = 1;     ///< number of supporting occurrences
  uint32_t extractor = 0;   ///< rdf::ExtractorId
  TimeSpan valid_time;
};

/// The assembled knowledge base: dictionary-encoded triples, a class
/// taxonomy, and per-fact confidence/provenance/temporal metadata —
/// the product the tutorial's §2-§3 pipeline builds and its §4
/// applications consume.
///
/// Concurrency: the Assert*/intern APIs and MetaOf are serialized by
/// one internal mutex, so reduce-phase workers may assert into a
/// shared KB concurrently. Query parses under that lock but executes
/// against an immutable store snapshot, so queries overlap each other
/// and in-flight asserts. Direct access to store(), taxonomy() and
/// meta_map() bypasses the lock — quiesce writers before using those
/// handles.
class KnowledgeBase {
 public:
  KnowledgeBase();

  /// Boots a KB directly over an immutable FrameStore snapshot — the
  /// instant-start path. The snapshot serves reads; asserts land in
  /// the in-memory delta (merged reads behind TripleSource); the epoch
  /// resumes from the snapshot's, so result caches keyed on it stay
  /// coherent. Cold-start cost is O(taxonomy), not O(KB): the taxonomy
  /// is re-derived from two indexed scans, entity terms materialize
  /// lazily, and fact metadata is decoded on first touch from the
  /// snapshot's packed meta section.
  static std::unique_ptr<KnowledgeBase> FromSnapshot(
      std::shared_ptr<const rdf::FrameStore> base);

  /// Movable (the mutex is not moved — the target gets a fresh one).
  /// Moving while another thread still uses the source is a race, as
  /// with any container.
  KnowledgeBase(KnowledgeBase&& other) noexcept;
  KnowledgeBase& operator=(KnowledgeBase&& other) noexcept;

  rdf::TripleStore& store() { return store_; }
  const rdf::TripleStore& store() const { return store_; }
  taxonomy::Taxonomy& taxonomy() { return taxonomy_; }
  const taxonomy::Taxonomy& taxonomy() const { return taxonomy_; }

  /// Interns (or returns) the IRI term for an entity canonical name.
  rdf::TermId EntityTerm(const std::string& canonical);

  /// Interns the property IRI for a relation local name.
  rdf::TermId PropertyTerm(const std::string& local_name);

  /// Interns the class IRI.
  rdf::TermId ClassTerm(const std::string& class_name);

  /// Asserts entity rdf:type class (also interning the class into the
  /// taxonomy).
  void AssertType(const std::string& canonical, const std::string& cls);

  /// Asserts a subClassOf axiom in both the taxonomy and the store.
  void AssertSubclass(const std::string& sub, const std::string& super);

  /// Asserts an entity-object fact with metadata. Returns false if the
  /// triple was already present (metadata is then merged: max
  /// confidence, summed support).
  bool AssertFact(const std::string& subject, const std::string& property,
                  const std::string& object, const FactMeta& meta);

  /// Asserts a literal-object fact (year).
  bool AssertYearFact(const std::string& subject, const std::string& property,
                      int32_t year, const FactMeta& meta);

  /// Asserts an rdfs:label in a language.
  void AssertLabel(const std::string& canonical, const std::string& label,
                   const std::string& lang);

  /// Metadata for a triple (nullptr if untracked).
  const FactMeta* MetaOf(const rdf::Triple& triple) const;

  /// All tracked fact metadata (used by persistence).
  const std::map<rdf::Triple, FactMeta>& meta_map() const { return meta_; }

  /// Bulk-load path for persistence: inserts a raw triple (ids must be
  /// valid in this KB's dictionary) with optional metadata, bypassing
  /// the canonical-name APIs.
  void AddTripleWithMeta(const rdf::Triple& triple, const FactMeta* meta);

  /// Rebuilds the entity-name map and taxonomy from the triple store
  /// (after a bulk load): entity IRIs, rdf:type classes and
  /// rdfs:subClassOf edges are re-derived.
  void RebuildDerivedIndexes();

  /// Re-derives only the taxonomy, from indexed rdf:type and
  /// rdfs:subClassOf scans — the cheap subset of RebuildDerivedIndexes
  /// used after a delta replay over a snapshot base (entity terms stay
  /// lazy there).
  void RebuildTaxonomy();

  /// Number of distinct entity IRIs typed or used as subjects.
  size_t NumEntities() const {
    return base_ != nullptr ? base_entity_count_ + new_entity_count_
                            : entity_terms_.size();
  }
  size_t NumTriples() const { return store_.size(); }
  size_t NumClasses() const { return taxonomy_.size(); }

  /// Runs a SPARQL-lite query against the store.
  StatusOr<std::vector<query::Binding>> Query(std::string_view sparql) const;

  /// Query with executor knobs (deadline, row caps, ablation toggles)
  /// and optional stats out-param — the serving layer's entry point.
  /// On a deadline the partial rows produced so far are returned and
  /// `stats->deadline_exceeded` is set; callers decide whether a
  /// prefix is acceptable.
  StatusOr<std::vector<query::Binding>> Query(
      std::string_view sparql, const query::ExecutionOptions& options,
      query::QueryStats* stats = nullptr) const;

  /// Parses without executing, under the KB lock (the dictionary races
  /// with concurrent interning otherwise). The serving layer parses
  /// first to derive its result-cache key from the normalized shape,
  /// then executes only on a miss.
  StatusOr<query::SelectQuery> ParseQuery(std::string_view sparql) const;

  /// Executes an already-parsed query through this KB's plan cache,
  /// against a store snapshot (safe alongside concurrent asserts).
  std::vector<query::Binding> Execute(const query::SelectQuery& parsed,
                                      const query::ExecutionOptions& options,
                                      query::QueryStats* stats = nullptr) const;

  /// Monotone write-version of this KB: bumped by every mutating call
  /// (asserts, bulk loads). Caches keyed by (query, epoch) — the
  /// serving layer's result cache — drop stale entries for free on the
  /// next write, without any explicit invalidation traffic.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Serializes all triples as N-Triples (Linked-Data export).
  std::string ExportNTriples() const { return rdf::WriteNTriples(store_); }

 private:
  explicit KnowledgeBase(std::shared_ptr<const rdf::FrameStore> base);

  rdf::TermId EntityTermLocked(const std::string& canonical);
  rdf::TermId PropertyTermLocked(const std::string& local_name);
  rdf::TermId ClassTermLocked(const std::string& class_name);
  bool InsertMetaLocked(const rdf::Triple& t, const FactMeta& meta,
                        bool merge_valid_time);
  const FactMeta* BaseMetaLocked(const rdf::Triple& t) const;
  void RebuildTaxonomyLocked();

  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  mutable std::mutex mu_;
  /// Compiled plans for repeated query shapes, keyed against this KB's
  /// dictionary ids. Internally synchronized; not moved with the KB
  /// (the target starts with a cold cache).
  mutable query::PlanCache plan_cache_;
  std::atomic<uint64_t> epoch_{0};
  rdf::TripleStore store_;
  taxonomy::Taxonomy taxonomy_;
  std::map<std::string, rdf::TermId> entity_terms_;
  std::map<rdf::Triple, FactMeta> meta_;
  rdf::TermId rdf_type_;
  rdf::TermId rdfs_subclass_;
  rdf::TermId rdfs_label_;

  /// Snapshot-boot state (null/empty for a plain KB). base_meta_ views
  /// the snapshot's packed meta section; decoded entries are cached in
  /// base_meta_cache_ under mu_ on first access.
  std::shared_ptr<const rdf::FrameStore> base_;
  std::string_view base_meta_;
  size_t base_entity_count_ = 0;
  size_t new_entity_count_ = 0;
  mutable std::map<rdf::Triple, FactMeta> base_meta_cache_;
};

}  // namespace core
}  // namespace kb

#endif  // KBFORGE_CORE_KNOWLEDGE_BASE_H_
