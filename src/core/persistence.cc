#include "core/persistence.h"

#include <cstring>
#include <map>
#include <set>

#include "rdf/term.h"
#include "storage/triple_codec.h"
#include "util/varint.h"

namespace kb {
namespace core {

namespace {

constexpr char kDictPrefix = 'D';

std::string DictKey(rdf::TermId id) {
  std::string key(1, kDictPrefix);
  PutVarint32(&key, id);
  return key;
}

std::string EncodeMeta(const FactMeta& meta) {
  std::string out;
  uint64_t confidence_bits = 0;
  memcpy(&confidence_bits, &meta.confidence, sizeof(confidence_bits));
  PutFixed64(&out, confidence_bits);
  PutVarint32(&out, meta.support);
  PutVarint32(&out, meta.extractor);
  auto put_date = [&out](const Date& d) {
    PutVarint32(&out, static_cast<uint32_t>(d.year));
    PutVarint32(&out, static_cast<uint32_t>(d.month));
    PutVarint32(&out, static_cast<uint32_t>(d.day));
  };
  put_date(meta.valid_time.begin);
  put_date(meta.valid_time.end);
  return out;
}

bool DecodeMeta(Slice input, FactMeta* meta) {
  uint64_t bits = 0;
  if (!GetFixed64(&input, &bits)) return false;
  memcpy(&meta->confidence, &bits, sizeof(meta->confidence));
  uint32_t support = 0, extractor = 0;
  if (!GetVarint32(&input, &support) || !GetVarint32(&input, &extractor)) {
    return false;
  }
  meta->support = support;
  meta->extractor = extractor;
  auto get_date = [&input](Date* d) {
    uint32_t year = 0, month = 0, day = 0;
    if (!GetVarint32(&input, &year) || !GetVarint32(&input, &month) ||
        !GetVarint32(&input, &day)) {
      return false;
    }
    d->year = static_cast<int32_t>(year);
    d->month = static_cast<int8_t>(month);
    d->day = static_cast<int8_t>(day);
    return true;
  };
  return get_date(&meta->valid_time.begin) && get_date(&meta->valid_time.end);
}

}  // namespace

namespace {
storage::ShardedStoreOptions DefaultKbStoreOptions() {
  storage::ShardedStoreOptions options;
  // Save is a bulk load ending in Flush; per-Put fsyncs would only
  // slow it down without adding durability to the final state.
  options.store.sync_wal = false;
  return options;
}
}  // namespace

StatusOr<std::unique_ptr<KbStorage>> KbStorage::Open(
    const std::string& path) {
  return Open(path, DefaultKbStoreOptions());
}

StatusOr<std::unique_ptr<KbStorage>> KbStorage::Open(
    const std::string& path, const storage::StoreOptions& options) {
  storage::ShardedStoreOptions sharded;
  sharded.store = options;
  return Open(path, sharded);
}

StatusOr<std::unique_ptr<KbStorage>> KbStorage::Open(
    const std::string& path, const storage::ShardedStoreOptions& options) {
  auto store = storage::ShardedKVStore::Open(options, path);
  if (!store.ok()) return store.status();
  return std::unique_ptr<KbStorage>(new KbStorage(std::move(*store)));
}

StatusOr<std::unique_ptr<KbStorage>> KbStorage::Recover(
    const std::string& path, storage::RecoveryReport* report) {
  auto store =
      storage::ShardedKVStore::Recover(DefaultKbStoreOptions(), path, report);
  if (!store.ok()) return store.status();
  return std::unique_ptr<KbStorage>(new KbStorage(std::move(*store)));
}

Status KbStorage::Save(const KnowledgeBase& kb) {
  const rdf::TripleStore& triples = kb.store();
  // Dictionary.
  for (rdf::TermId id = 1; id <= triples.dict().size(); ++id) {
    KB_RETURN_IF_ERROR(
        store_->Put(DictKey(id), triples.dict().term(id).ToString()));
  }
  // Triples in all three orders; metadata rides on the SPO copy.
  Status status = Status::OK();
  rdf::TriplePattern all;
  triples.Scan(all, [&](const rdf::Triple& t) {
    const FactMeta* meta = kb.MetaOf(t);
    std::string value = meta != nullptr ? EncodeMeta(*meta) : std::string();
    Status s = store_->Put(
        storage::EncodeTripleKey(storage::TripleOrder::kSpo, t), value);
    if (s.ok()) {
      s = store_->Put(
          storage::EncodeTripleKey(storage::TripleOrder::kPos, t), "");
    }
    if (s.ok()) {
      s = store_->Put(
          storage::EncodeTripleKey(storage::TripleOrder::kOsp, t), "");
    }
    if (!s.ok()) {
      status = s;
      return false;
    }
    return true;
  });
  KB_RETURN_IF_ERROR(status);
  return store_->Flush();
}

Status KbStorage::SaveOverlay(const KnowledgeBase& kb) {
  const rdf::Dictionary& dict = kb.store().dict();
  // Triples to persist: the in-memory delta, plus base triples whose
  // metadata was touched (meta_map holds exactly the dirty set).
  std::set<rdf::Triple> triples;
  auto delta = kb.store().Snapshot();  // delta-only on hybrid stores
  rdf::TriplePattern all;
  for (auto it = delta->NewScan(all); it->Valid(); it->Next()) {
    triples.insert(it->Value());
  }
  for (const auto& [t, meta] : kb.meta_map()) triples.insert(t);
  // Terms: every overlay id, plus every id the persisted triples
  // reference (base ids are stable against the same snapshot, and the
  // text makes the delta replayable without any snapshot at all).
  std::set<rdf::TermId> ids;
  for (rdf::TermId id = dict.base_size() + 1; id <= dict.size(); ++id) {
    ids.insert(id);
  }
  for (const auto& t : triples) {
    ids.insert(t.s);
    ids.insert(t.p);
    ids.insert(t.o);
  }
  for (rdf::TermId id : ids) {
    KB_RETURN_IF_ERROR(store_->Put(DictKey(id), dict.term(id).ToString()));
  }
  for (const auto& t : triples) {
    const FactMeta* meta = kb.MetaOf(t);
    std::string value = meta != nullptr ? EncodeMeta(*meta) : std::string();
    KB_RETURN_IF_ERROR(store_->Put(
        storage::EncodeTripleKey(storage::TripleOrder::kSpo, t), value));
    KB_RETURN_IF_ERROR(store_->Put(
        storage::EncodeTripleKey(storage::TripleOrder::kPos, t), ""));
    KB_RETURN_IF_ERROR(store_->Put(
        storage::EncodeTripleKey(storage::TripleOrder::kOsp, t), ""));
  }
  return store_->Flush();
}

StatusOr<std::unique_ptr<KnowledgeBase>> KbStorage::Load() {
  auto kb = std::make_unique<KnowledgeBase>();
  KB_RETURN_IF_ERROR(ApplyInto(kb.get()));
  kb->RebuildDerivedIndexes();
  return kb;
}

Status KbStorage::ApplyInto(KnowledgeBase* kb) {
  // 1. Dictionary: old id -> new id (interning preserves semantics even
  // if the receiving KB assigned its existing ids in another order).
  std::map<rdf::TermId, rdf::TermId> remap;
  Status status = Status::OK();
  std::string dict_end(1, kDictPrefix + 1);
  KB_RETURN_IF_ERROR(store_->Scan(
      Slice(std::string(1, kDictPrefix)), Slice(dict_end),
      [&](const Slice& key, const Slice& value) {
        Slice input = key;
        input.remove_prefix(1);
        uint32_t old_id = 0;
        if (!GetVarint32(&input, &old_id)) {
          status = Status::Corruption("bad dictionary key");
          return false;
        }
        auto term = rdf::Term::Parse(value.ToStringView());
        if (!term.ok()) {
          status = term.status();
          return false;
        }
        remap[old_id] = kb->store().dict().Intern(*term);
        return true;
      }));
  KB_RETURN_IF_ERROR(status);
  // 2. Triples + metadata from the SPO keyspace.
  std::string spo_begin(1, 'S');
  std::string spo_end(1, 'S' + 1);
  KB_RETURN_IF_ERROR(store_->Scan(
      Slice(spo_begin), Slice(spo_end),
      [&](const Slice& key, const Slice& value) {
        storage::TripleOrder order;
        rdf::Triple old_triple;
        if (!storage::DecodeTripleKey(key, &order, &old_triple)) {
          status = Status::Corruption("bad triple key");
          return false;
        }
        auto s = remap.find(old_triple.s);
        auto p = remap.find(old_triple.p);
        auto o = remap.find(old_triple.o);
        if (s == remap.end() || p == remap.end() || o == remap.end()) {
          status = Status::Corruption("triple references unknown term");
          return false;
        }
        rdf::Triple triple(s->second, p->second, o->second);
        if (value.empty()) {
          kb->AddTripleWithMeta(triple, nullptr);
        } else {
          FactMeta meta;
          if (!DecodeMeta(value, &meta)) {
            status = Status::Corruption("bad fact metadata");
            return false;
          }
          kb->AddTripleWithMeta(triple, &meta);
        }
        return true;
      }));
  KB_RETURN_IF_ERROR(status);
  return Status::OK();
}

StatusOr<rdf::Dictionary> KbStorage::LoadDictionary() {
  // Varint-encoded ids do not scan in numeric order, so collect first,
  // then intern in ascending id order to reproduce the on-disk ids.
  std::map<rdf::TermId, rdf::Term> terms;
  Status status = Status::OK();
  std::string dict_end(1, kDictPrefix + 1);
  KB_RETURN_IF_ERROR(store_->Scan(
      Slice(std::string(1, kDictPrefix)), Slice(dict_end),
      [&](const Slice& key, const Slice& value) {
        Slice input = key;
        input.remove_prefix(1);
        uint32_t id = 0;
        if (!GetVarint32(&input, &id)) {
          status = Status::Corruption("bad dictionary key");
          return false;
        }
        auto term = rdf::Term::Parse(value.ToStringView());
        if (!term.ok()) {
          status = term.status();
          return false;
        }
        terms.emplace(id, *term);
        return true;
      }));
  KB_RETURN_IF_ERROR(status);
  rdf::Dictionary dict;
  for (const auto& [id, term] : terms) {
    if (dict.Intern(term) != id) {
      return Status::Corruption("dictionary ids are not dense");
    }
  }
  return dict;
}

}  // namespace core
}  // namespace kb
