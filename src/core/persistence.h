#ifndef KBFORGE_CORE_PERSISTENCE_H_
#define KBFORGE_CORE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "core/knowledge_base.h"
#include "storage/sharded_kv_store.h"
#include "storage/stored_triple_source.h"

namespace kb {
namespace core {

/// Durable storage for knowledge bases on the LSM engine. Layout in
/// one KVStore keyspace:
///   'D' <varint term-id>          -> N-Triples term text
///   'S'/'P'/'O' triple keys       -> fact metadata (or empty)
///   'X' <class-pair>              -> "" (taxonomy subclass edges)
///   'M' "next_term"               -> varint high-water term id
/// Triples are stored in all three collation orders so a reopened KB
/// can range-scan any access path straight off disk. The checkpointed
/// harvest (core/harvest_checkpoint) stores its state under the
/// reserved prefixes 'F' (accepted facts by statement identity) and
/// 'C' (progress cursor) in the same keyspace.
///
/// Backed by a ShardedKVStore: keys hash-partition across independent
/// LSM shards (parallel harvest writers land on disjoint locks/WALs)
/// while Scan still yields one globally ordered stream, so the layout
/// above is unchanged from the single-store engine's point of view.
class KbStorage {
 public:
  /// Opens (or creates) the storage directory. The default options
  /// skip per-record WAL fsyncs: Save is a bulk load that ends in
  /// Flush, and the SSTable write itself syncs.
  static StatusOr<std::unique_ptr<KbStorage>> Open(const std::string& path);
  /// Convenience overload: per-shard engine options with the default
  /// shard layout.
  static StatusOr<std::unique_ptr<KbStorage>> Open(
      const std::string& path, const storage::StoreOptions& options);
  static StatusOr<std::unique_ptr<KbStorage>> Open(
      const std::string& path, const storage::ShardedStoreOptions& options);

  /// Crash-tolerant open: replays the WAL and quarantines corrupt
  /// SSTables instead of failing (see KVStore::Recover). Used by the
  /// harvest-checkpoint resume path, where a half-written checkpoint
  /// must not brick the whole harvest.
  static StatusOr<std::unique_ptr<KbStorage>> Recover(
      const std::string& path, storage::RecoveryReport* report = nullptr);

  /// Writes the whole KB. Existing content is logically replaced
  /// (same-key overwrites; stale keys from a previous, larger KB are
  /// not chased — use a fresh directory for snapshots).
  Status Save(const KnowledgeBase& kb);

  /// Writes only the KB's delta against its snapshot base: overlay
  /// dictionary terms, delta triples, and any triple whose metadata
  /// was touched (plus the terms those triples reference, so the delta
  /// stays self-describing — replayable onto an empty KB as well as
  /// onto the base it was written against). On a plain KB this
  /// degenerates to Save. The KbVolume delta-shipping path.
  Status SaveOverlay(const KnowledgeBase& kb);

  /// Reconstructs a KB from storage.
  StatusOr<std::unique_ptr<KnowledgeBase>> Load();

  /// Replays this storage's dictionary and SPO keyspace into an
  /// existing KB: terms are re-interned by text (ids remap), triples
  /// are added idempotently, stored metadata overwrites. Used by
  /// KbVolume to apply delta generations over a snapshot-booted KB;
  /// the caller rebuilds derived indexes afterwards.
  Status ApplyInto(KnowledgeBase* kb);

  /// Loads only the term dictionary, preserving the on-disk term ids.
  /// Pairs with NewTripleSource() to run queries straight off the LSM
  /// store without materializing the whole KB in memory.
  StatusOr<rdf::Dictionary> LoadDictionary();

  /// A TripleSource scanning this storage's triple keyspace directly.
  /// Term ids are the on-disk ids (use LoadDictionary for lookups).
  /// The source must not outlive this KbStorage.
  std::unique_ptr<storage::StoredTripleSource> NewTripleSource(
      size_t batch_size = 256) {
    return std::make_unique<storage::StoredTripleSource>(store_.get(),
                                                         batch_size);
  }

  /// Durability/compaction passthroughs.
  Status Flush() { return store_->Flush(); }
  Status Compact() { return store_->CompactAll(); }
  storage::ShardedKVStore* store() { return store_.get(); }

 private:
  explicit KbStorage(std::unique_ptr<storage::ShardedKVStore> store)
      : store_(std::move(store)) {}

  std::unique_ptr<storage::ShardedKVStore> store_;
};

}  // namespace core
}  // namespace kb

#endif  // KBFORGE_CORE_PERSISTENCE_H_
