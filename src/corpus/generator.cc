#include "corpus/generator.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace kb {
namespace corpus {

namespace {

/// Appends text to a document, tracking gold mention offsets.
class TextBuilder {
 public:
  explicit TextBuilder(Document* doc) : doc_(doc) {}

  void Append(std::string_view s) { doc_->text.append(s); }

  void AppendMention(uint32_t entity, std::string_view surface) {
    Mention m;
    m.begin = static_cast<uint32_t>(doc_->text.size());
    m.end = m.begin + static_cast<uint32_t>(surface.size());
    m.entity = entity;
    doc_->mentions.push_back(m);
    doc_->text.append(surface);
  }

 private:
  Document* doc_;
};

/// Chooses a surface form: the full name, or (with probability
/// `ambiguity`) one of the shorter/ambiguous aliases.
std::string SurfaceFor(const Entity& e, double ambiguity, Rng* rng) {
  if (!e.aliases.empty() && rng->Bernoulli(ambiguity)) {
    return rng->Choice(e.aliases);
  }
  return e.full_name;
}

std::string DateInWords(const Date& d) {
  std::string out(MonthName(d.month));
  out += " " + std::to_string(static_cast<int>(d.day)) + ", " +
         std::to_string(d.year);
  return out;
}

/// Context passed through sentence realization.
struct EmitContext {
  const World* world;
  Rng* rng;
  double ambiguity;
  TextBuilder* tb;
  Document* doc;
};

/// Realizes one gold fact as a natural-language sentence, recording
/// mentions. When `corrupt_object` is a valid entity id (or
/// `corrupt_year` nonzero for literal relations), that wrong value is
/// asserted instead and the fact is NOT recorded as expressed.
void EmitFactSentence(const EmitContext& ctx, const GoldFact& f,
                      uint32_t fact_id, uint32_t corrupt_object = UINT32_MAX,
                      int32_t corrupt_year = 0) {
  const World& w = *ctx.world;
  Rng* rng = ctx.rng;
  TextBuilder& tb = *ctx.tb;
  const Entity& subj = w.entity(f.subject);
  const bool corrupted = corrupt_object != UINT32_MAX || corrupt_year != 0;

  auto subj_surface = [&] { return SurfaceFor(subj, ctx.ambiguity, rng); };
  auto obj_entity = [&]() -> const Entity& {
    return w.entity(corrupt_object != UINT32_MAX ? corrupt_object : f.object);
  };
  auto obj_surface = [&] {
    return SurfaceFor(obj_entity(), ctx.ambiguity, rng);
  };
  auto emit_subj = [&] {
    tb.AppendMention(subj.id, subj_surface());
  };
  auto emit_obj = [&] {
    tb.AppendMention(obj_entity().id, obj_surface());
  };
  auto year_str = [&](int32_t y) { return std::to_string(y); };
  int32_t lit_year = corrupt_year != 0 ? corrupt_year : f.literal_year;
  int variant = static_cast<int>(rng->Uniform(3));

  switch (f.relation) {
    case Relation::kBornIn:
      if (variant == 0) {
        emit_subj();
        tb.Append(" was born in ");
        emit_obj();
        tb.Append(".");
      } else if (variant == 1) {
        emit_subj();
        tb.Append(", who was born in ");
        emit_obj();
        tb.Append(", became well known.");
      } else {
        tb.Append("Born in ");
        emit_obj();
        tb.Append(", ");
        emit_subj();
        tb.Append(" rose to prominence.");
      }
      break;
    case Relation::kBirthDate:
      emit_subj();
      if (variant == 0) {
        tb.Append(" was born on " +
                  DateInWords(corrupt_year != 0
                                  ? Date{corrupt_year, f.literal_date.month,
                                         f.literal_date.day}
                                  : f.literal_date) +
                  ".");
      } else {
        tb.Append(" was born in " + year_str(lit_year) + ".");
      }
      break;
    case Relation::kMarriedTo:
      emit_subj();
      if (f.span.end.valid() && variant != 2) {
        tb.Append(" was married to ");
        emit_obj();
        tb.Append(" from " + year_str(f.span.begin.year) + " to " +
                  year_str(f.span.end.year) + ".");
      } else if (variant == 0 && f.span.begin.valid()) {
        tb.Append(" married ");
        emit_obj();
        tb.Append(" in " + year_str(f.span.begin.year) + ".");
      } else {
        tb.Append(" is married to ");
        emit_obj();
        tb.Append(".");
      }
      break;
    case Relation::kWorksFor:
      emit_subj();
      if (f.span.end.valid() && variant == 0) {
        tb.Append(" worked for ");
        emit_obj();
        tb.Append(" from " + year_str(f.span.begin.year) + " to " +
                  year_str(f.span.end.year) + ".");
      } else if (variant == 1 && f.span.begin.valid()) {
        tb.Append(" joined ");
        emit_obj();
        tb.Append(" in " + year_str(f.span.begin.year) + ".");
      } else if (!f.span.end.valid() && f.span.begin.valid() &&
                 variant == 2) {
        tb.Append(" has worked for ");
        emit_obj();
        tb.Append(" since " + year_str(f.span.begin.year) + ".");
      } else {
        tb.Append(" works for ");
        emit_obj();
        tb.Append(".");
      }
      break;
    case Relation::kFounded:
      if (variant == 0) {
        emit_subj();
        tb.Append(" founded ");
        emit_obj();
        tb.Append(".");
      } else if (variant == 1) {
        emit_obj();
        tb.Append(" was founded by ");
        emit_subj();
        tb.Append(".");
      } else {
        emit_subj();
        tb.Append(" is the founder of ");
        emit_obj();
        tb.Append(".");
      }
      break;
    case Relation::kFoundedYear:
      emit_subj();
      tb.Append(" was founded in " + year_str(lit_year) + ".");
      break;
    case Relation::kHeadquarteredIn:
      emit_subj();
      if (variant == 0) {
        tb.Append(" is headquartered in ");
      } else {
        tb.Append(" has its headquarters in ");
      }
      emit_obj();
      tb.Append(".");
      break;
    case Relation::kLocatedIn:
      emit_subj();
      if (variant == 0) {
        tb.Append(" is a city in ");
      } else {
        tb.Append(" lies in ");
      }
      emit_obj();
      tb.Append(".");
      break;
    case Relation::kCapitalOf:
      emit_subj();
      tb.Append(" is the capital of ");
      emit_obj();
      tb.Append(".");
      break;
    case Relation::kStudiedAt:
      emit_subj();
      if (variant == 0) {
        tb.Append(" studied at ");
        emit_obj();
        tb.Append(".");
      } else {
        tb.Append(" graduated from ");
        emit_obj();
        tb.Append(".");
      }
      break;
    case Relation::kMemberOf:
      emit_subj();
      if (variant == 0) {
        tb.Append(" is a member of ");
      } else {
        tb.Append(" plays in ");
      }
      emit_obj();
      tb.Append(".");
      break;
    case Relation::kReleasedAlbum:
      if (variant == 0) {
        emit_subj();
        tb.Append(" released ");
        emit_obj();
        tb.Append(".");
      } else {
        emit_obj();
        tb.Append(" was recorded by ");
        emit_subj();
        tb.Append(".");
      }
      break;
    case Relation::kReleaseYear:
      emit_subj();
      tb.Append(" was released in " + year_str(lit_year) + ".");
      break;
    case Relation::kDirected:
      if (variant == 0) {
        emit_subj();
        tb.Append(" directed ");
        emit_obj();
        tb.Append(".");
      } else {
        emit_obj();
        tb.Append(" was directed by ");
        emit_subj();
        tb.Append(".");
      }
      break;
    case Relation::kActedIn:
      emit_subj();
      if (variant == 0) {
        tb.Append(" starred in ");
      } else {
        tb.Append(" appeared in ");
      }
      emit_obj();
      tb.Append(".");
      break;
    case Relation::kMayorOf:
      emit_subj();
      if (f.span.end.valid() && variant != 2) {
        tb.Append(variant == 0 ? " was the mayor of " : " served as mayor of ");
        emit_obj();
        tb.Append(" from " + year_str(f.span.begin.year) + " to " +
                  year_str(f.span.end.year) + ".");
      } else {
        tb.Append(" became mayor of ");
        emit_obj();
        tb.Append(f.span.begin.valid()
                      ? " in " + year_str(f.span.begin.year) + "."
                      : ".");
      }
      break;
    case Relation::kCitizenOf:
      emit_subj();
      tb.Append(" is a citizen of ");
      emit_obj();
      tb.Append(".");
      break;
    case Relation::kNumRelations:
      KB_CHECK(false) << "invalid relation";
  }
  tb.Append(" ");
  if (!corrupted) ctx.doc->fact_ids.push_back(fact_id);
}

/// Relation -> infobox key (the DBpedia-style mapping surface).
const char* InfoboxKeyFor(Relation r) {
  switch (r) {
    case Relation::kBornIn: return "birth_place";
    case Relation::kBirthDate: return "birth_date";
    case Relation::kMarriedTo: return "spouse";
    case Relation::kWorksFor: return "employer";
    case Relation::kFounded: return "founder";  // on the company page
    case Relation::kFoundedYear: return "founded_year";
    case Relation::kHeadquarteredIn: return "headquarters";
    case Relation::kLocatedIn: return "country";
    case Relation::kCapitalOf: return "capital_of";
    case Relation::kStudiedAt: return "alma_mater";
    case Relation::kMemberOf: return "member_of";
    case Relation::kReleasedAlbum: return "artist";  // on the album page
    case Relation::kReleaseYear: return "release_year";
    case Relation::kDirected: return "director";  // on the film page
    case Relation::kActedIn: return "starring";   // on the film page
    case Relation::kCitizenOf: return "citizenship";
    default: return nullptr;  // temporal-only relations stay in text
  }
}

/// Relations whose infobox slot lives on the *object's* page (the
/// page-subject is the fact object: founder on company page, etc.).
bool InfoboxOnObjectPage(Relation r) {
  return r == Relation::kFounded || r == Relation::kReleasedAlbum ||
         r == Relation::kDirected || r == Relation::kActedIn;
}

const char* kAdminCategories[] = {
    "Articles needing cleanup", "All article stubs",
    "Pages with dead links", "Wikipedia protected pages",
    "Articles with unsourced statements",
};

const char* kInfoboxTypeNames[] = {"person",     "settlement", "country",
                                   "company",    "university", "band",
                                   "album",      "film"};

/// Generates the encyclopedia article for entity `id`.
Document MakeArticle(const World& world, const CorpusOptions& options,
                     uint32_t id, const std::vector<uint32_t>& fact_index,
                     Rng* rng) {
  const Entity& e = world.entity(id);
  Document doc;
  doc.kind = DocKind::kArticle;
  doc.title = e.canonical;
  doc.subject = id;
  TextBuilder tb(&doc);
  EmitContext ctx{&world, rng, options.mention_ambiguity, &tb, &doc};

  // Title line.
  tb.AppendMention(id, e.full_name);
  tb.Append("\n\n");

  // Infobox markup + structured copy.
  tb.Append("{{Infobox ");
  tb.Append(kInfoboxTypeNames[static_cast<size_t>(e.kind)]);
  tb.Append("\n| name = " + e.full_name + "\n");
  for (uint32_t fact_id : fact_index) {
    const GoldFact& f = world.facts()[fact_id];
    const bool on_object_page = InfoboxOnObjectPage(f.relation);
    if ((on_object_page && f.object != id) ||
        (!on_object_page && f.subject != id)) {
      continue;
    }
    const char* key = InfoboxKeyFor(f.relation);
    if (key == nullptr) continue;
    if (!rng->Bernoulli(0.8)) continue;  // infobox coverage < 1
    const RelationInfo& info = GetRelationInfo(f.relation);
    InfoboxSlot slot;
    slot.key = key;
    if (info.literal_object) {
      slot.value = f.relation == Relation::kBirthDate
                       ? f.literal_date.ToString()
                       : std::to_string(f.literal_year);
    } else {
      uint32_t other = on_object_page ? f.subject : f.object;
      slot.value = world.entity(other).canonical;
    }
    if (rng->Bernoulli(options.infobox_noise)) {
      slot.corrupted = true;
      slot.value = "???" + slot.value;
    }
    tb.Append("| " + slot.key + " = ");
    if (info.literal_object || slot.corrupted) {
      tb.Append(slot.value);
    } else {
      tb.Append("[[" + slot.value + "]]");
    }
    tb.Append("\n");
    doc.infobox.push_back(std::move(slot));
  }
  tb.Append("}}\n\n");

  // Lead sentence: types.
  tb.AppendMention(id, e.full_name);
  if (e.kind == EntityKind::kPerson) {
    tb.Append(" is a ");
    if (!e.nationality.empty()) tb.Append(e.nationality + " ");
    tb.Append(e.occupations.empty() ? "person" : e.occupations[0]);
    for (size_t i = 1; i < e.occupations.size(); ++i) {
      tb.Append(" and " + e.occupations[i]);
    }
    tb.Append(". ");
  } else {
    static const char* kKindPhrase[] = {
        "person", "city",  "country", "company",
        "university", "band", "album", "film"};
    tb.Append(" is a ");
    tb.Append(kKindPhrase[static_cast<size_t>(e.kind)]);
    tb.Append(". ");
  }

  // Body: one sentence per fact with this entity as subject, plus a
  // capped number of incoming facts ("Keller Labs was founded by ...",
  // as Wikipedia articles describe notable incoming relations). The
  // incoming sentences give the entity link graph its density (NED
  // coherence feeds on it).
  int incoming_quota = 6;
  for (uint32_t fact_id : fact_index) {
    const GoldFact& f = world.facts()[fact_id];
    if (f.subject == id) {
      if (!rng->Bernoulli(0.9)) continue;  // textual coverage < 1
      EmitFactSentence(ctx, f, fact_id);
    } else if (f.object == id && incoming_quota > 0 &&
               !GetRelationInfo(f.relation).literal_object &&
               rng->Bernoulli(0.6)) {
      EmitFactSentence(ctx, f, fact_id);
      --incoming_quota;
    }
  }
  tb.Append("\n");

  // Categories.
  doc.categories = world.CategoriesOf(id);
  if (rng->Bernoulli(options.admin_category_rate)) {
    doc.categories.push_back(kAdminCategories[rng->Uniform(
        sizeof(kAdminCategories) / sizeof(kAdminCategories[0]))]);
  }
  if ((e.kind == EntityKind::kBand || e.kind == EntityKind::kAlbum) &&
      rng->Bernoulli(0.5)) {
    doc.categories.push_back("Music");  // topical (non-conceptual) noise
  }
  for (const std::string& cat : doc.categories) {
    tb.Append("[[Category:" + cat + "]]\n");
  }

  // Interwiki links.
  for (const auto& [lang, label] : e.labels) {
    if (lang == "en") continue;
    if (!rng->Bernoulli(options.interwiki_coverage)) continue;
    doc.interwiki.emplace_back(lang, label);
    tb.Append("[[" + lang + ":" + ReplaceAll(label, " ", "_") + "]]\n");
  }
  return doc;
}

Document MakeNewsDoc(const World& world, const CorpusOptions& options,
                     uint32_t index, Rng* rng) {
  Document doc;
  doc.kind = DocKind::kNews;
  doc.title = "Report_" + std::to_string(index);
  TextBuilder tb(&doc);
  EmitContext ctx{&world, rng, options.mention_ambiguity, &tb, &doc};
  const auto& facts = world.facts();
  for (int i = 0; i < options.facts_per_news_doc; ++i) {
    uint32_t fact_id = static_cast<uint32_t>(rng->Uniform(facts.size()));
    const GoldFact& f = facts[fact_id];
    const RelationInfo& info = GetRelationInfo(f.relation);
    if (rng->Bernoulli(options.fact_error_rate)) {
      // Corrupt the object: same-kind wrong entity or shifted year.
      if (info.literal_object) {
        int32_t wrong = f.literal_year +
                        static_cast<int32_t>(rng->UniformInt(1, 30));
        EmitFactSentence(ctx, f, fact_id, UINT32_MAX, wrong);
      } else {
        const auto& pool = world.ByKind(info.object_kind);
        uint32_t wrong = pool[rng->Uniform(pool.size())];
        if (wrong == f.object) {
          wrong = pool[(rng->Uniform(pool.size()) + 1) % pool.size()];
        }
        if (wrong != f.object) {
          EmitFactSentence(ctx, f, fact_id, wrong);
        }
      }
    } else {
      EmitFactSentence(ctx, f, fact_id);
    }
  }
  return doc;
}

Document MakeWebDoc(const World& world, const CorpusOptions& /*options*/,
                    uint32_t index, Rng* rng) {
  Document doc;
  doc.kind = DocKind::kWeb;
  doc.title = "Web_" + std::to_string(index);
  TextBuilder tb(&doc);

  // Commonsense assertions (both truthful and planted-false ones; the
  // truthful ones appear much more often, so PMI separates them).
  const auto& cs = world.commonsense();
  int n_cs = static_cast<int>(rng->UniformInt(2, 6));
  for (int i = 0; i < n_cs; ++i) {
    const CommonsenseAssertion& a = cs[rng->Uniform(cs.size())];
    if (!a.truthful && !rng->Bernoulli(0.25)) continue;  // rare noise
    if (a.relation == "hasProperty") {
      if (rng->Bernoulli(0.5)) {
        tb.Append(Capitalize(Pluralize(a.noun)) + " are " + a.value +
                  ". ");
      } else {
        tb.Append(Capitalize(Pluralize(a.noun)) + " can be " + a.value +
                  ". ");
      }
    } else if (a.relation == "hasShape") {
      tb.Append("The " + a.noun + " is " + a.value + ". ");
    } else if (a.relation == "partOf") {
      if (rng->Bernoulli(0.5)) {
        tb.Append("The " + a.noun + " is part of a " + a.value + ". ");
      } else {
        tb.Append("Every " + a.value + " has a " + a.noun + ". ");
      }
    }
  }

  // Hearst-style enumeration sentences over classes.
  if (rng->Bernoulli(0.7)) {
    struct HearstSource {
      EntityKind kind;
      const char* class_plural;
    };
    static const HearstSource kSources[] = {
        {EntityKind::kPerson, "singers"},
        {EntityKind::kCity, "cities"},
        {EntityKind::kCompany, "companies"},
        {EntityKind::kBand, "bands"},
    };
    const HearstSource& src = kSources[rng->Uniform(4)];
    const auto& pool = world.ByKind(src.kind);
    if (pool.size() >= 2) {
      // For persons, restrict to the advertised occupation.
      std::vector<uint32_t> filtered;
      for (uint32_t id : pool) {
        if (src.kind != EntityKind::kPerson) {
          filtered.push_back(id);
          continue;
        }
        const Entity& p = world.entity(id);
        if (std::find(p.occupations.begin(), p.occupations.end(),
                      "singer") != p.occupations.end()) {
          filtered.push_back(id);
        }
      }
      if (filtered.size() >= 2) {
        uint32_t a = filtered[rng->Uniform(filtered.size())];
        uint32_t b = filtered[rng->Uniform(filtered.size())];
        if (a != b) {
          tb.Append(Capitalize(src.class_plural) + " such as ");
          tb.AppendMention(a, world.entity(a).full_name);
          tb.Append(" and ");
          tb.AppendMention(b, world.entity(b).full_name);
          tb.Append(" attracted attention. ");
        }
      }
    }
  }

  // Distractor sentence.
  const auto& cities = world.ByKind(EntityKind::kCity);
  if (!cities.empty() && rng->Bernoulli(0.6)) {
    uint32_t c = cities[rng->Uniform(cities.size())];
    tb.Append("The weather in ");
    tb.AppendMention(c, world.entity(c).full_name);
    tb.Append(" was pleasant. ");
  }
  return doc;
}

}  // namespace

std::vector<Document> GenerateDocuments(const World& world,
                                        const CorpusOptions& options) {
  Rng rng(options.seed);
  std::vector<Document> docs;
  docs.reserve(world.entities().size() + options.news_docs +
               options.web_docs);

  // Per-subject fact index (facts of id, plus object-page facts).
  // Precompute: for each entity, facts where it is subject or the
  // object-page holder.
  std::vector<std::vector<uint32_t>> per_entity(world.entities().size());
  for (uint32_t i = 0; i < world.facts().size(); ++i) {
    const GoldFact& f = world.facts()[i];
    per_entity[f.subject].push_back(i);
    const RelationInfo& info = GetRelationInfo(f.relation);
    if (!info.literal_object) {
      per_entity[f.object].push_back(i);
    }
  }

  for (uint32_t id = 0; id < world.entities().size(); ++id) {
    Document doc = MakeArticle(world, options, id, per_entity[id], &rng);
    doc.id = static_cast<uint32_t>(docs.size());
    docs.push_back(std::move(doc));
  }
  for (size_t i = 0; i < options.news_docs; ++i) {
    Document doc = MakeNewsDoc(world, options, static_cast<uint32_t>(i),
                               &rng);
    doc.id = static_cast<uint32_t>(docs.size());
    docs.push_back(std::move(doc));
  }
  for (size_t i = 0; i < options.web_docs; ++i) {
    Document doc = MakeWebDoc(world, options, static_cast<uint32_t>(i),
                              &rng);
    doc.id = static_cast<uint32_t>(docs.size());
    docs.push_back(std::move(doc));
  }
  return docs;
}

Corpus BuildCorpus(const WorldOptions& world_options,
                   const CorpusOptions& corpus_options) {
  Corpus corpus;
  corpus.world = World::Generate(world_options);
  corpus.options = corpus_options;
  corpus.docs = GenerateDocuments(corpus.world, corpus_options);
  return corpus;
}

}  // namespace corpus
}  // namespace kb
