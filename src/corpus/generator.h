#ifndef KBFORGE_CORPUS_GENERATOR_H_
#define KBFORGE_CORPUS_GENERATOR_H_

#include <vector>

#include "corpus/document.h"
#include "corpus/world.h"

namespace kb {
namespace corpus {

/// Knobs of the document generator (the Wikipedia/Web substitution).
struct CorpusOptions {
  uint64_t seed = 7;
  /// Multi-entity news documents (each restates `facts_per_news_doc`
  /// random gold facts -> extraction redundancy).
  size_t news_docs = 200;
  int facts_per_news_doc = 5;
  /// Noisy web pages with commonsense assertions, Hearst lists and
  /// distractor sentences.
  size_t web_docs = 100;
  /// Probability a mention uses an ambiguous alias ("Jobs") instead of
  /// the full name.
  double mention_ambiguity = 0.35;
  /// Probability a news sentence asserts a corrupted fact (wrong
  /// object), exercising consistency reasoning.
  double fact_error_rate = 0.05;
  /// Probability an infobox slot is corrupted or malformed.
  double infobox_noise = 0.03;
  /// Probability an article carries an interwiki link per language.
  double interwiki_coverage = 0.7;
  /// Probability an article gets an administrative noise category.
  double admin_category_rate = 0.3;
};

/// The full synthetic corpus: the gold world plus its documents.
struct Corpus {
  World world;
  CorpusOptions options;
  std::vector<Document> docs;

  const Document& doc(uint32_t id) const { return docs[id]; }
};

/// Generates every document of the corpus for `world`. Articles come
/// first (doc id = position), then news, then web documents.
std::vector<Document> GenerateDocuments(const World& world,
                                        const CorpusOptions& options);

/// Convenience: world + documents in one call.
Corpus BuildCorpus(const WorldOptions& world_options,
                   const CorpusOptions& corpus_options);

}  // namespace corpus
}  // namespace kb

#endif  // KBFORGE_CORPUS_GENERATOR_H_
