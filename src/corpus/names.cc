#include "corpus/names.h"

#include "util/string_util.h"

namespace kb {
namespace corpus {

namespace {
const char* kGivenNames[] = {
    "Marcus",  "Elena",   "Viktor",  "Sofia",  "Adrian", "Clara",
    "Felix",   "Nadia",   "Oscar",   "Irene",  "Hugo",   "Lydia",
    "Bruno",   "Alma",    "Cedric",  "Vera",   "Damian", "Ruth",
    "Edgar",   "Paula",   "Gustav",  "Nina",   "Ivan",   "Greta",
    "Jonas",   "Hannah",  "Leo",     "Marta",  "Nils",   "Olivia",
    "Pavel",   "Rosa",    "Simon",   "Tessa",  "Anton",  "Wilma",
    "Emil",    "Astrid",  "Casper",  "Ingrid",
};

const char* kSurnames[] = {
    "Hallberg",  "Vance",    "Okonkwo",  "Lindqvist", "Marchetti",
    "Novak",     "Petrov",   "Sandoval", "Keller",    "Ashford",
    "Brandt",    "Castell",  "Drummond", "Eriksen",   "Falk",
    "Garrel",    "Hoffman",  "Ibsen",    "Jansson",   "Kovacs",
    "Lambert",   "Moreau",   "Nystrom",  "Olsen",     "Paquet",
    "Quiroga",   "Rustand",  "Soler",    "Thorne",    "Ulvaeus",
    "Vintner",   "Weiss",    "Ziegler",  "Bergen",    "Calloway",
    "Delacroix", "Eastwood", "Fairfax",  "Grimaldi",  "Holloway",
};

const char* kCityPrefixes[] = {
    "North", "East",  "South", "West",  "New",   "Old",
    "Spring", "River", "Lake",  "Stone", "Green", "Silver",
    "Iron",  "Gold",  "Clear", "Bright", "High",  "Fair",
};

const char* kCitySuffixes[] = {
    "field", "port",  "haven", "bridge", "ford",  "ton",
    "burg",  "stad",  "ville", "mouth",  "dale",  "crest",
};

const char* kCountries[] = {
    "Freedonia", "Sylvania",  "Veridia",   "Norlandia", "Aquitania",
    "Borduria",  "Zubrowka",  "Carpathia", "Meridiana", "Ostrovia",
    "Pelagonia", "Quorvania",
};

const char* kCompanySuffixes[] = {
    "Systems",   "Industries", "Labs",     "Dynamics", "Works",
    "Solutions", "Group",      "Software", "Motors",   "Media",
};

const char* kBandAdjectives[] = {
    "Velvet",  "Silent",  "Electric", "Crimson", "Midnight",
    "Golden",  "Broken",  "Wandering", "Hollow",  "Neon",
};

const char* kBandNouns[] = {
    "Owls",    "Harbors",  "Foxes",   "Mirrors", "Tigers",
    "Rivers",  "Shadows",  "Engines", "Comets",  "Lanterns",
};

const char* kTitleAdjectives[] = {
    "Last",    "Distant",  "Quiet",  "Burning", "Frozen",
    "Hidden",  "Endless",  "Broken", "Scarlet", "Pale",
};

const char* kTitleNouns[] = {
    "Harbor",  "Winter",  "Garden", "Signal",  "Voyage",
    "Empire",  "Horizon", "Letter", "Monument", "Echo",
};

template <size_t N>
const char* Pick(Rng* rng, const char* (&pool)[N]) {
  return pool[rng->Uniform(N)];
}
}  // namespace

std::string NameGenerator::GivenName() { return Pick(rng_, kGivenNames); }

std::string NameGenerator::Surname() { return Pick(rng_, kSurnames); }

std::string NameGenerator::CityName() {
  return std::string(Pick(rng_, kCityPrefixes)) + Pick(rng_, kCitySuffixes);
}

std::string NameGenerator::CountryName(size_t index) {
  return kCountries[index % (sizeof(kCountries) / sizeof(kCountries[0]))];
}

std::string NameGenerator::CompanyName(const std::string& founder_surname) {
  if (rng_->Bernoulli(0.6)) {
    return founder_surname + " " + Pick(rng_, kCompanySuffixes);
  }
  return std::string(Pick(rng_, kCityPrefixes)) +
         ToLower(Pick(rng_, kCitySuffixes)) + " " +
         Pick(rng_, kCompanySuffixes);
}

std::string NameGenerator::UniversityName(const std::string& city) {
  return "University of " + city;
}

std::string NameGenerator::BandName() {
  return std::string("The ") + Pick(rng_, kBandAdjectives) + " " +
         Pick(rng_, kBandNouns);
}

std::string NameGenerator::AlbumTitle() {
  return std::string(Pick(rng_, kTitleAdjectives)) + " " +
         Pick(rng_, kTitleNouns);
}

std::string NameGenerator::FilmTitle() {
  return std::string("The ") + Pick(rng_, kTitleAdjectives) + " " +
         Pick(rng_, kTitleNouns);
}

std::string NameGenerator::Localize(const std::string& label,
                                    const std::string& lang) {
  // Systematic, invertible-ish transformations: enough overlap for
  // string similarity to help, enough drift that it is not trivial.
  if (lang == "en") return label;
  std::string out = label;
  if (lang == "de") {
    out = ReplaceAll(out, "c", "k");
    out = ReplaceAll(out, "University of", "Universitaet");
    out += "en";
    return out;
  }
  if (lang == "fr") {
    out = ReplaceAll(out, "k", "que");
    out = ReplaceAll(out, "University of", "Universite de");
    out += "e";
    return out;
  }
  // Unknown language: reverse-ish mangle to simulate low overlap.
  return out + "_" + lang;
}

}  // namespace corpus
}  // namespace kb
