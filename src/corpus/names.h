#ifndef KBFORGE_CORPUS_NAMES_H_
#define KBFORGE_CORPUS_NAMES_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace kb {
namespace corpus {

/// Deterministic name factories for the synthetic world. All pools are
/// fixed string tables; generated names combine pool elements, so the
/// space is large while staying pronounceable and Latin-alphabet.
class NameGenerator {
 public:
  explicit NameGenerator(Rng* rng) : rng_(rng) {}

  /// "Marcus" — given names are shared across persons freely.
  std::string GivenName();

  /// "Hallberg" — surnames repeat with controlled probability, which is
  /// the ambiguity NED must resolve.
  std::string Surname();

  /// "Northfield", "Eastport" — city name from part pools.
  std::string CityName();

  /// "Freedonia" — from a fixed country pool (few, never ambiguous).
  std::string CountryName(size_t index);

  /// "Hallberg Systems" — companies often derive from a surname.
  std::string CompanyName(const std::string& founder_surname);

  /// "University of Northfield".
  std::string UniversityName(const std::string& city);

  /// "The Velvet Owls" — band name from adjective+animal pools.
  std::string BandName();

  /// "Silent Horizons" — album title.
  std::string AlbumTitle();

  /// "The Last Harbor" — film title.
  std::string FilmTitle();

  /// Multilingual variant of a label for language "de" or "fr"
  /// (systematic suffix/spelling transformation, so cross-lingual
  /// alignment has real but imperfect string similarity).
  static std::string Localize(const std::string& label,
                              const std::string& lang);

 private:
  Rng* rng_;
};

}  // namespace corpus
}  // namespace kb

#endif  // KBFORGE_CORPUS_NAMES_H_
