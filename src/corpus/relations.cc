#include "corpus/relations.h"

#include "util/logging.h"

namespace kb {
namespace corpus {

std::string_view EntityKindName(EntityKind kind) {
  switch (kind) {
    case EntityKind::kPerson: return "person";
    case EntityKind::kCity: return "city";
    case EntityKind::kCountry: return "country";
    case EntityKind::kCompany: return "company";
    case EntityKind::kUniversity: return "university";
    case EntityKind::kBand: return "band";
    case EntityKind::kAlbum: return "album";
    case EntityKind::kFilm: return "film";
    case EntityKind::kNumKinds: break;
  }
  return "?";
}

namespace {
constexpr RelationInfo kRelationTable[] = {
    {Relation::kBornIn, "bornIn", EntityKind::kPerson, EntityKind::kCity,
     false, true, false, false},
    {Relation::kBirthDate, "birthDate", EntityKind::kPerson,
     EntityKind::kPerson, true, true, false, false},
    {Relation::kMarriedTo, "marriedTo", EntityKind::kPerson,
     EntityKind::kPerson, false, false, false, true},
    {Relation::kWorksFor, "worksFor", EntityKind::kPerson,
     EntityKind::kCompany, false, false, false, true},
    {Relation::kFounded, "founded", EntityKind::kPerson,
     EntityKind::kCompany, false, false, false, false},
    {Relation::kFoundedYear, "foundedYear", EntityKind::kCompany,
     EntityKind::kCompany, true, true, false, false},
    {Relation::kHeadquarteredIn, "headquarteredIn", EntityKind::kCompany,
     EntityKind::kCity, false, true, false, false},
    {Relation::kLocatedIn, "locatedIn", EntityKind::kCity,
     EntityKind::kCountry, false, true, false, false},
    {Relation::kCapitalOf, "capitalOf", EntityKind::kCity,
     EntityKind::kCountry, false, true, true, false},
    {Relation::kStudiedAt, "studiedAt", EntityKind::kPerson,
     EntityKind::kUniversity, false, false, false, false},
    {Relation::kMemberOf, "memberOf", EntityKind::kPerson,
     EntityKind::kBand, false, false, false, false},
    {Relation::kReleasedAlbum, "releasedAlbum", EntityKind::kBand,
     EntityKind::kAlbum, false, false, true, false},
    {Relation::kReleaseYear, "releaseYear", EntityKind::kAlbum,
     EntityKind::kAlbum, true, true, false, false},
    {Relation::kDirected, "directed", EntityKind::kPerson,
     EntityKind::kFilm, false, false, true, false},
    {Relation::kActedIn, "actedIn", EntityKind::kPerson, EntityKind::kFilm,
     false, false, false, false},
    {Relation::kMayorOf, "mayorOf", EntityKind::kPerson, EntityKind::kCity,
     false, false, false, true},
    {Relation::kCitizenOf, "citizenOf", EntityKind::kPerson,
     EntityKind::kCountry, false, true, false, false},
};
static_assert(sizeof(kRelationTable) / sizeof(kRelationTable[0]) ==
                  static_cast<size_t>(Relation::kNumRelations),
              "relation table out of sync");
}  // namespace

const RelationInfo& GetRelationInfo(Relation r) {
  int index = static_cast<int>(r);
  KB_CHECK(index >= 0 && index < kNumRelations) << "bad relation";
  const RelationInfo& info = kRelationTable[index];
  KB_CHECK(info.relation == r) << "relation table out of order";
  return info;
}

Relation RelationByName(std::string_view name) {
  for (const RelationInfo& info : kRelationTable) {
    if (info.name == name) return info.relation;
  }
  return Relation::kNumRelations;
}

}  // namespace corpus
}  // namespace kb
