#ifndef KBFORGE_CORPUS_RELATIONS_H_
#define KBFORGE_CORPUS_RELATIONS_H_

#include <cstdint>
#include <string_view>

namespace kb {
namespace corpus {

/// Kinds of entities in the synthetic WikiWorld.
enum class EntityKind : uint8_t {
  kPerson = 0,
  kCity,
  kCountry,
  kCompany,
  kUniversity,
  kBand,
  kAlbum,
  kFilm,
  kNumKinds,
};

std::string_view EntityKindName(EntityKind kind);

/// The closed relation inventory of the gold world. Extractors that
/// work on a pre-specified relation set (tutorial §3 "Harvesting
/// Relational Facts") target these; open IE ignores the inventory.
enum class Relation : uint8_t {
  kBornIn = 0,        ///< person -> city
  kBirthDate,         ///< person -> date literal
  kMarriedTo,         ///< person -> person (temporal)
  kWorksFor,          ///< person -> company (temporal)
  kFounded,           ///< person -> company
  kFoundedYear,       ///< company -> year literal
  kHeadquarteredIn,   ///< company -> city
  kLocatedIn,         ///< city -> country
  kCapitalOf,         ///< city -> country
  kStudiedAt,         ///< person -> university
  kMemberOf,          ///< person -> band
  kReleasedAlbum,     ///< band -> album
  kReleaseYear,       ///< album -> year literal
  kDirected,          ///< person -> film
  kActedIn,           ///< person -> film
  kMayorOf,           ///< person -> city (temporal)
  kCitizenOf,         ///< person -> country
  kNumRelations,
};

inline constexpr int kNumRelations =
    static_cast<int>(Relation::kNumRelations);

/// Static metadata about a relation, used to type-check extractions
/// (consistency reasoning) and to map facts to RDF properties.
struct RelationInfo {
  Relation relation;
  std::string_view name;        ///< property local name, e.g. "bornIn"
  EntityKind subject_kind;
  EntityKind object_kind;       ///< ignored when literal_object
  bool literal_object;          ///< object is a year/date literal
  bool functional;              ///< at most one object per subject
  bool inverse_functional;      ///< at most one subject per object
  bool temporal;                ///< facts carry a validity timespan
};

/// Metadata for `r`. Aborts on kNumRelations.
const RelationInfo& GetRelationInfo(Relation r);

/// Looks up a relation by its property local name; returns
/// kNumRelations if unknown.
Relation RelationByName(std::string_view name);

}  // namespace corpus
}  // namespace kb

#endif  // KBFORGE_CORPUS_RELATIONS_H_
