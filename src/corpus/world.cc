#include "corpus/world.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "corpus/names.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kb {
namespace corpus {

namespace {

const char* kOccupations[] = {"singer",       "entrepreneur", "scientist",
                              "actor",        "politician",   "writer",
                              "musician"};

/// Gold commonsense assertions (plus planted false ones).
const CommonsenseAssertion kCommonsenseTable[] = {
    {"apple", "hasProperty", "red", true},
    {"apple", "hasProperty", "green", true},
    {"apple", "hasProperty", "juicy", true},
    {"apple", "hasProperty", "sweet", true},
    {"apple", "hasProperty", "sour", true},
    {"apple", "hasProperty", "fast", false},
    {"apple", "hasProperty", "funny", false},
    {"banana", "hasProperty", "yellow", true},
    {"banana", "hasProperty", "sweet", true},
    {"banana", "hasProperty", "soft", true},
    {"banana", "hasProperty", "loud", false},
    {"fire", "hasProperty", "hot", true},
    {"ice", "hasProperty", "cold", true},
    {"ice", "hasProperty", "funny", false},
    {"guitar", "hasProperty", "loud", true},
    {"guitar", "hasProperty", "wooden", true},
    {"clarinet", "hasShape", "cylindrical", true},
    {"wheel", "hasShape", "round", true},
    {"mouthpiece", "partOf", "clarinet", true},
    {"wheel", "partOf", "car", true},
    {"engine", "partOf", "car", true},
    {"string", "partOf", "guitar", true},
    {"string", "partOf", "car", false},
};

std::string MakeCanonical(const std::string& display,
                          std::unordered_set<std::string>* used) {
  std::string base = ReplaceAll(display, " ", "_");
  std::string candidate = base;
  int suffix = 1;
  while (used->count(candidate) > 0) {
    candidate = base + "_" + std::to_string(++suffix);
  }
  used->insert(candidate);
  return candidate;
}

}  // namespace

std::vector<std::string> World::AllClassNames() const {
  std::set<std::string> names;
  for (size_t k = 0; k < static_cast<size_t>(EntityKind::kNumKinds); ++k) {
    names.insert(std::string(EntityKindName(static_cast<EntityKind>(k))));
  }
  for (const char* occ : kOccupations) names.insert(occ);
  return std::vector<std::string>(names.begin(), names.end());
}

World World::Generate(const WorldOptions& options) {
  World world;
  world.options_ = options;
  world.by_kind_.resize(static_cast<size_t>(EntityKind::kNumKinds));
  Rng rng(options.seed);
  NameGenerator names(&rng);
  std::unordered_set<std::string> used_canonicals;

  auto new_entity = [&](EntityKind kind, const std::string& display)
      -> Entity& {
    Entity e;
    e.id = static_cast<uint32_t>(world.entities_.size());
    e.kind = kind;
    e.full_name = display;
    e.canonical = MakeCanonical(display, &used_canonicals);
    e.labels["en"] = display;
    e.labels["de"] = NameGenerator::Localize(display, "de");
    e.labels["fr"] = NameGenerator::Localize(display, "fr");
    e.popularity = static_cast<uint32_t>(1 + rng.Zipf(50, 1.1));
    world.entities_.push_back(std::move(e));
    Entity& ref = world.entities_.back();
    world.by_kind_[static_cast<size_t>(kind)].push_back(ref.id);
    return ref;
  };

  // ---- Countries ----------------------------------------------------
  for (size_t i = 0; i < options.num_countries; ++i) {
    Entity& country = new_entity(EntityKind::kCountry,
                                 names.CountryName(i));
    country.nationality = country.full_name + "n";
    country.aliases.push_back(country.full_name);
  }
  const auto& countries = world.by_kind_[
      static_cast<size_t>(EntityKind::kCountry)];

  // ---- Cities --------------------------------------------------------
  std::vector<std::string> city_names;
  for (size_t i = 0; i < options.num_cities; ++i) {
    std::string name;
    if (!city_names.empty() && rng.Bernoulli(options.city_name_reuse)) {
      name = rng.Choice(city_names);  // deliberate ambiguity
    } else {
      name = names.CityName();
    }
    city_names.push_back(name);
    Entity& city = new_entity(EntityKind::kCity, name);
    uint32_t country = countries[i < countries.size()
                                     ? i  // first city per country = capital
                                     : rng.Uniform(countries.size())];
    city.country = country;
    city.aliases.push_back(name);
    GoldFact located;
    located.subject = city.id;
    located.relation = Relation::kLocatedIn;
    located.object = country;
    world.AddFact(located);
    if (i < countries.size()) {
      GoldFact capital;
      capital.subject = city.id;
      capital.relation = Relation::kCapitalOf;
      capital.object = country;
      world.AddFact(capital);
    }
  }
  const auto& cities = world.by_kind_[static_cast<size_t>(EntityKind::kCity)];

  // ---- Universities ---------------------------------------------------
  for (size_t i = 0; i < options.num_universities; ++i) {
    uint32_t city = cities[rng.Uniform(cities.size())];
    Entity& uni = new_entity(
        EntityKind::kUniversity,
        names.UniversityName(world.entities_[city].full_name));
    uni.country = world.entities_[city].country;
    uni.aliases.push_back(uni.full_name);
  }
  const auto& universities =
      world.by_kind_[static_cast<size_t>(EntityKind::kUniversity)];

  // ---- Persons ---------------------------------------------------------
  std::vector<std::string> surnames_in_use;
  for (size_t i = 0; i < options.num_persons; ++i) {
    std::string given = names.GivenName();
    std::string surname;
    if (!surnames_in_use.empty() && rng.Bernoulli(options.surname_reuse)) {
      surname = rng.Choice(surnames_in_use);
    } else {
      surname = names.Surname();
    }
    surnames_in_use.push_back(surname);
    Entity& person = new_entity(EntityKind::kPerson, given + " " + surname);
    person.aliases.push_back(surname);                     // ambiguous
    person.aliases.push_back(given.substr(0, 1) + ". " + surname);
    person.birth_date.year = static_cast<int32_t>(rng.UniformInt(1940, 2000));
    person.birth_date.month = static_cast<int8_t>(rng.UniformInt(1, 12));
    person.birth_date.day = static_cast<int8_t>(rng.UniformInt(1, 28));
    int num_occupations = rng.Bernoulli(0.3) ? 2 : 1;
    for (int k = 0; k < num_occupations; ++k) {
      std::string occ = kOccupations[rng.Uniform(
          sizeof(kOccupations) / sizeof(kOccupations[0]))];
      if (std::find(person.occupations.begin(), person.occupations.end(),
                    occ) == person.occupations.end()) {
        person.occupations.push_back(occ);
      }
    }
    uint32_t birth_city = cities[rng.Uniform(cities.size())];
    person.country = world.entities_[birth_city].country;
    person.nationality = world.entities_[person.country].nationality;

    GoldFact born;
    born.subject = person.id;
    born.relation = Relation::kBornIn;
    born.object = birth_city;
    world.AddFact(born);

    GoldFact bdate;
    bdate.subject = person.id;
    bdate.relation = Relation::kBirthDate;
    bdate.literal_date = person.birth_date;
    bdate.literal_year = person.birth_date.year;
    world.AddFact(bdate);

    // Citizenship follows the birth city's country with p=0.9 (the
    // planted exception keeps rule R1's confidence below 1).
    GoldFact citizen;
    citizen.subject = person.id;
    citizen.relation = Relation::kCitizenOf;
    citizen.object = rng.Bernoulli(0.9)
                         ? person.country
                         : countries[rng.Uniform(countries.size())];
    world.AddFact(citizen);

    if (!universities.empty() && rng.Bernoulli(0.6)) {
      GoldFact studied;
      studied.subject = person.id;
      studied.relation = Relation::kStudiedAt;
      studied.object = universities[rng.Uniform(universities.size())];
      world.AddFact(studied);
    }
  }
  const auto& persons =
      world.by_kind_[static_cast<size_t>(EntityKind::kPerson)];

  // ---- Marriages (sequential for temporal scoping) ----------------------
  {
    std::vector<uint32_t> pool = persons;
    rng.Shuffle(&pool);
    for (size_t i = 0; i + 1 < pool.size() && i < pool.size() / 2; i += 2) {
      const Entity& a = world.entities_[pool[i]];
      const Entity& b = world.entities_[pool[i + 1]];
      int start = std::max(a.birth_date.year, b.birth_date.year) +
                  static_cast<int>(rng.UniformInt(20, 35));
      GoldFact marriage;
      marriage.subject = pool[i];
      marriage.relation = Relation::kMarriedTo;
      marriage.object = pool[i + 1];
      marriage.span.begin.year = start;
      if (rng.Bernoulli(0.3)) marriage.span.end.year =
          start + static_cast<int>(rng.UniformInt(2, 25));
      world.AddFact(marriage);
    }
  }

  // ---- Companies ---------------------------------------------------------
  for (size_t i = 0; i < options.num_companies; ++i) {
    uint32_t founder = persons[rng.Uniform(persons.size())];
    // Copy before new_entity: the push_back may reallocate entities_,
    // invalidating any reference into it.
    const std::string surname =
        Split(world.entities_[founder].full_name, ' ').back();
    const int founder_birth_year = world.entities_[founder].birth_date.year;
    Entity& company = new_entity(EntityKind::kCompany,
                                 names.CompanyName(surname));
    uint32_t hq = cities[rng.Uniform(cities.size())];
    company.country = world.entities_[hq].country;
    company.aliases.push_back(Split(company.full_name, ' ')[0]);
    int founded_year = std::max(founder_birth_year + 20,
                                1960 + static_cast<int>(rng.UniformInt(0, 50)));

    GoldFact founded;
    founded.subject = founder;
    founded.relation = Relation::kFounded;
    founded.object = company.id;
    world.AddFact(founded);
    if (rng.Bernoulli(0.3)) {  // co-founder
      uint32_t cofounder = persons[rng.Uniform(persons.size())];
      if (cofounder != founder) {
        GoldFact cf;
        cf.subject = cofounder;
        cf.relation = Relation::kFounded;
        cf.object = company.id;
        world.AddFact(cf);
      }
    }
    GoldFact fy;
    fy.subject = company.id;
    fy.relation = Relation::kFoundedYear;
    fy.literal_year = founded_year;
    world.AddFact(fy);
    GoldFact hqf;
    hqf.subject = company.id;
    hqf.relation = Relation::kHeadquarteredIn;
    hqf.object = hq;
    world.AddFact(hqf);
  }
  const auto& companies =
      world.by_kind_[static_cast<size_t>(EntityKind::kCompany)];

  // ---- Employment (temporal) ---------------------------------------------
  for (uint32_t person : persons) {
    if (!rng.Bernoulli(0.5) || companies.empty()) continue;
    const Entity& pe = world.entities_[person];
    int num_jobs = rng.Bernoulli(0.3) ? 2 : 1;
    int year = pe.birth_date.year + static_cast<int>(rng.UniformInt(20, 30));
    for (int j = 0; j < num_jobs; ++j) {
      GoldFact job;
      job.subject = person;
      job.relation = Relation::kWorksFor;
      job.object = companies[rng.Uniform(companies.size())];
      job.span.begin.year = year;
      int duration = static_cast<int>(rng.UniformInt(2, 15));
      if (j + 1 < num_jobs || rng.Bernoulli(0.5)) {
        job.span.end.year = year + duration;
      }
      year += duration + 1;
      world.AddFact(job);
    }
  }

  // ---- Mayors (temporal) ---------------------------------------------------
  for (uint32_t person : persons) {
    const Entity& pe = world.entities_[person];
    if (std::find(pe.occupations.begin(), pe.occupations.end(),
                  "politician") == pe.occupations.end()) {
      continue;
    }
    if (!rng.Bernoulli(0.5)) continue;
    GoldFact mayor;
    mayor.subject = person;
    mayor.relation = Relation::kMayorOf;
    mayor.object = cities[rng.Uniform(cities.size())];
    mayor.span.begin.year =
        pe.birth_date.year + static_cast<int>(rng.UniformInt(35, 50));
    mayor.span.end.year =
        mayor.span.begin.year + static_cast<int>(rng.UniformInt(4, 12));
    world.AddFact(mayor);
  }

  // ---- Bands, albums -----------------------------------------------------
  for (size_t i = 0; i < options.num_bands; ++i) {
    Entity& band = new_entity(EntityKind::kBand, names.BandName());
    band.aliases.push_back(band.full_name.substr(4));  // drop "The "
    int members = static_cast<int>(rng.UniformInt(2, 4));
    for (int m = 0; m < members; ++m) {
      GoldFact member;
      member.subject = persons[rng.Uniform(persons.size())];
      member.relation = Relation::kMemberOf;
      member.object = band.id;
      world.AddFact(member);
    }
  }
  const auto& bands = world.by_kind_[static_cast<size_t>(EntityKind::kBand)];
  for (size_t i = 0; i < options.num_albums && !bands.empty(); ++i) {
    Entity& album = new_entity(EntityKind::kAlbum, names.AlbumTitle());
    album.aliases.push_back(album.full_name);
    uint32_t band = bands[rng.Uniform(bands.size())];
    GoldFact rel;
    rel.subject = band;
    rel.relation = Relation::kReleasedAlbum;
    rel.object = album.id;
    world.AddFact(rel);
    GoldFact year;
    year.subject = album.id;
    year.relation = Relation::kReleaseYear;
    year.literal_year = static_cast<int32_t>(rng.UniformInt(1965, 2013));
    world.AddFact(year);
  }

  // ---- Films ---------------------------------------------------------------
  for (size_t i = 0; i < options.num_films; ++i) {
    Entity& film = new_entity(EntityKind::kFilm, names.FilmTitle());
    film.aliases.push_back(film.full_name);
    GoldFact directed;
    directed.subject = persons[rng.Uniform(persons.size())];
    directed.relation = Relation::kDirected;
    directed.object = film.id;
    world.AddFact(directed);
    int cast = static_cast<int>(rng.UniformInt(1, 3));
    for (int a = 0; a < cast; ++a) {
      GoldFact acted;
      acted.subject = persons[rng.Uniform(persons.size())];
      acted.relation = Relation::kActedIn;
      acted.object = film.id;
      world.AddFact(acted);
    }
  }

  // ---- Commonsense + rules ---------------------------------------------
  for (const CommonsenseAssertion& a : kCommonsenseTable) {
    world.commonsense_.push_back(a);
  }
  world.gold_rules_.push_back(
      {Relation::kCitizenOf, Relation::kBornIn, Relation::kLocatedIn,
       "citizenOf(x,z) <= bornIn(x,y) AND locatedIn(y,z)"});
  world.gold_rules_.push_back(
      {Relation::kLocatedIn, Relation::kCapitalOf, Relation::kNumRelations,
       "locatedIn(x,z) <= capitalOf(x,z)"});

  return world;
}

std::vector<std::string> World::CategoriesOf(uint32_t id) const {
  const Entity& e = entities_[id];
  std::vector<std::string> cats;
  auto country_name = [&](uint32_t c) {
    return c == UINT32_MAX ? std::string("Terra") : entities_[c].full_name;
  };
  switch (e.kind) {
    case EntityKind::kPerson: {
      for (const std::string& occ : e.occupations) {
        cats.push_back(e.nationality + " " + occ + "s");
      }
      cats.push_back(std::to_string(e.birth_date.year) + " births");
      break;
    }
    case EntityKind::kCity:
      cats.push_back("Cities in " + country_name(e.country));
      break;
    case EntityKind::kCountry:
      cats.push_back("Countries");
      break;
    case EntityKind::kCompany:
      cats.push_back("Companies of " + country_name(e.country));
      break;
    case EntityKind::kUniversity:
      cats.push_back("Universities in " + country_name(e.country));
      break;
    case EntityKind::kBand:
      cats.push_back("Musical groups");
      break;
    case EntityKind::kAlbum:
      cats.push_back("Albums");
      break;
    case EntityKind::kFilm:
      cats.push_back("Films");
      break;
    case EntityKind::kNumKinds:
      break;
  }
  return cats;
}

std::vector<const GoldFact*> World::FactsOf(uint32_t subject) const {
  std::vector<const GoldFact*> out;
  for (const GoldFact& f : facts_) {
    if (f.subject == subject) out.push_back(&f);
  }
  return out;
}

bool World::HasFact(uint32_t subject, Relation relation, uint32_t object,
                    int32_t literal_year) const {
  for (const GoldFact& f : facts_) {
    if (f.subject != subject || f.relation != relation) continue;
    if (GetRelationInfo(relation).literal_object) {
      if (f.literal_year == literal_year) return true;
    } else if (f.object == object) {
      return true;
    }
  }
  return false;
}

}  // namespace corpus
}  // namespace kb
