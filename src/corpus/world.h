#ifndef KBFORGE_CORPUS_WORLD_H_
#define KBFORGE_CORPUS_WORLD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "corpus/relations.h"
#include "util/date.h"
#include "util/random.h"

namespace kb {
namespace corpus {

/// One entity of the gold world.
struct Entity {
  uint32_t id = 0;
  EntityKind kind = EntityKind::kPerson;
  std::string canonical;   ///< unique page title, e.g. "Marcus_Hallberg_2"
  std::string full_name;   ///< display name, e.g. "Marcus Hallberg"
  std::vector<std::string> aliases;  ///< shorter/ambiguous surface forms
  std::map<std::string, std::string> labels;  ///< lang -> localized label
  std::vector<std::string> occupations;  ///< persons: "singer", ...
  std::string nationality;  ///< persons/companies: "Freedonian"
  uint32_t country = UINT32_MAX;  ///< home country entity id if any
  Date birth_date;          ///< persons only
  uint32_t popularity = 1;  ///< Zipf rank weight; higher = more mentions
};

/// One gold fact. Literal-object relations store the value in
/// `literal_year` / `literal_date` instead of `object`.
struct GoldFact {
  uint32_t subject = 0;
  Relation relation = Relation::kBornIn;
  uint32_t object = UINT32_MAX;
  int32_t literal_year = 0;
  Date literal_date;
  TimeSpan span;  ///< for temporal relations
};

/// Gold commonsense: concept -> property/part assertions with a truth
/// flag (false ones exist so that precision is measurable).
struct CommonsenseAssertion {
  std::string noun;       ///< "apple"
  std::string relation;   ///< "hasProperty" | "partOf" | "hasShape"
  std::string value;      ///< "red" / "car" / "cylindrical"
  bool truthful = true;
};

/// A gold commonsense Horn rule planted in the world (E9 checks that
/// rule mining recovers it). Encoded as: head(x, z) <= body1(x, y) AND
/// body2(y, z) over the closed relation inventory.
struct GoldRule {
  Relation head;
  Relation body1;
  Relation body2;
  std::string description;
};

/// Size and shape knobs of the generated world.
struct WorldOptions {
  uint64_t seed = 42;
  size_t num_persons = 300;
  size_t num_cities = 60;
  size_t num_countries = 6;
  size_t num_companies = 80;
  size_t num_universities = 20;
  size_t num_bands = 30;
  size_t num_albums = 60;
  size_t num_films = 50;
  /// Probability that a new person reuses an existing surname
  /// (drives NED ambiguity).
  double surname_reuse = 0.5;
  /// Probability that a new city reuses an existing city name in a
  /// different country.
  double city_name_reuse = 0.15;
};

/// The gold world: the ground truth every experiment measures against.
/// Deterministic in WorldOptions::seed.
class World {
 public:
  /// Generates a world.
  static World Generate(const WorldOptions& options);

  const WorldOptions& options() const { return options_; }
  const std::vector<Entity>& entities() const { return entities_; }
  const Entity& entity(uint32_t id) const { return entities_[id]; }
  const std::vector<GoldFact>& facts() const { return facts_; }
  const std::vector<CommonsenseAssertion>& commonsense() const {
    return commonsense_;
  }
  const std::vector<GoldRule>& gold_rules() const { return gold_rules_; }

  /// Entity ids of one kind.
  const std::vector<uint32_t>& ByKind(EntityKind kind) const {
    return by_kind_[static_cast<size_t>(kind)];
  }

  /// Gold categories of an entity (conceptual ones; the document
  /// generator adds administrative/topical noise categories on top).
  std::vector<std::string> CategoriesOf(uint32_t id) const;

  /// All facts with the given subject.
  std::vector<const GoldFact*> FactsOf(uint32_t subject) const;

  /// True if (subject, relation, object/literal) is a gold fact.
  bool HasFact(uint32_t subject, Relation relation, uint32_t object,
               int32_t literal_year = 0) const;

  /// The set of distinct conceptual class names used by this world
  /// ("singer", "city", ...), for taxonomy evaluation.
  std::vector<std::string> AllClassNames() const;

 private:
  void AddFact(GoldFact fact) { facts_.push_back(fact); }

  WorldOptions options_;
  std::vector<Entity> entities_;
  std::vector<GoldFact> facts_;
  std::vector<CommonsenseAssertion> commonsense_;
  std::vector<GoldRule> gold_rules_;
  std::vector<std::vector<uint32_t>> by_kind_;
};

}  // namespace corpus
}  // namespace kb

#endif  // KBFORGE_CORPUS_WORLD_H_
