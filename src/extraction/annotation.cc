#include "extraction/annotation.h"

#include <algorithm>
#include <map>

#include "nlp/tokenizer.h"

namespace kb {
namespace extraction {

namespace {
/// True if the sentence looks like markup rather than prose.
bool IsMarkupSentence(const nlp::Sentence& s, const std::string& text) {
  if (s.tokens.empty()) return true;
  std::string_view span(text.data() + s.begin, s.end - s.begin);
  return span.find("{{") != std::string_view::npos ||
         span.find("}}") != std::string_view::npos ||
         span.find("[[") != std::string_view::npos ||
         span.find("| ") != std::string_view::npos;
}
}  // namespace

std::vector<AnnotatedSentence> AnnotateDocument(
    const corpus::World& world, const corpus::Document& doc,
    const nlp::PosTagger& tagger) {
  std::vector<AnnotatedSentence> out;
  std::vector<nlp::Sentence> sentences = nlp::SplitSentences(doc.text);
  for (nlp::Sentence& s : sentences) {
    if (IsMarkupSentence(s, doc.text)) continue;
    tagger.Tag(&s.tokens);
    AnnotatedSentence annotated;
    annotated.doc_id = doc.id;
    // Align gold byte-span mentions to token spans.
    for (const corpus::Mention& m : doc.mentions) {
      if (m.begin < s.begin || m.end > s.end) continue;
      uint32_t token_begin = UINT32_MAX, token_end = UINT32_MAX;
      for (uint32_t t = 0; t < s.tokens.size(); ++t) {
        if (s.tokens[t].begin >= m.begin && token_begin == UINT32_MAX) {
          token_begin = t;
        }
        if (s.tokens[t].end <= m.end) token_end = t + 1;
      }
      if (token_begin == UINT32_MAX || token_end == UINT32_MAX ||
          token_end <= token_begin) {
        continue;
      }
      SentenceMention sm;
      sm.token_begin = token_begin;
      sm.token_end = token_end;
      sm.entity = m.entity;
      sm.kind = world.entity(m.entity).kind;
      annotated.mentions.push_back(sm);
    }
    annotated.sentence = std::move(s);
    out.push_back(std::move(annotated));
  }
  return out;
}

std::vector<AnnotatedSentence> AnnotateDocuments(
    const corpus::World& world, const std::vector<corpus::Document>& docs,
    const nlp::PosTagger& tagger) {
  std::vector<AnnotatedSentence> out;
  for (const corpus::Document& doc : docs) {
    auto sentences = AnnotateDocument(world, doc, tagger);
    out.insert(out.end(), std::make_move_iterator(sentences.begin()),
               std::make_move_iterator(sentences.end()));
  }
  return out;
}

std::vector<ExtractedFact> DeduplicateFacts(
    const std::vector<ExtractedFact>& facts, std::vector<int>* support) {
  std::map<std::tuple<uint32_t, int, uint32_t, int32_t>, size_t> index;
  std::vector<ExtractedFact> out;
  std::vector<int> counts;
  for (const ExtractedFact& f : facts) {
    auto key = std::make_tuple(f.subject, static_cast<int>(f.relation),
                               f.object, f.literal_year);
    auto it = index.find(key);
    if (it == index.end()) {
      index.emplace(key, out.size());
      out.push_back(f);
      counts.push_back(1);
    } else {
      counts[it->second]++;
      if (f.confidence > out[it->second].confidence) {
        out[it->second].confidence = f.confidence;
      }
    }
  }
  if (support != nullptr) *support = std::move(counts);
  return out;
}

}  // namespace extraction
}  // namespace kb
