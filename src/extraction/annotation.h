#ifndef KBFORGE_EXTRACTION_ANNOTATION_H_
#define KBFORGE_EXTRACTION_ANNOTATION_H_

#include <cstdint>
#include <vector>

#include "corpus/generator.h"
#include "nlp/pos_tagger.h"
#include "nlp/token.h"
#include "util/date.h"

namespace kb {
namespace extraction {

/// An entity mention aligned to token positions of one sentence.
struct SentenceMention {
  uint32_t token_begin = 0;  ///< first token index
  uint32_t token_end = 0;    ///< one past last token index
  uint32_t entity = UINT32_MAX;
  corpus::EntityKind kind = corpus::EntityKind::kPerson;
};

/// A tokenized, POS-tagged sentence with located entity mentions —
/// the unit every relational extractor consumes.
struct AnnotatedSentence {
  nlp::Sentence sentence;
  std::vector<SentenceMention> mentions;
  uint32_t doc_id = 0;
};

/// Tokenizes and tags the prose portions of every document, aligning
/// the documents' gold mention spans to token spans. Markup lines
/// (infobox, categories, interwiki) are skipped — extractors see prose
/// only. Gold mentions stand in for a perfect named-entity recognizer;
/// mention *disambiguation* quality is measured separately (E7).
std::vector<AnnotatedSentence> AnnotateDocuments(
    const corpus::World& world, const std::vector<corpus::Document>& docs,
    const nlp::PosTagger& tagger);

/// As above for one document.
std::vector<AnnotatedSentence> AnnotateDocument(
    const corpus::World& world, const corpus::Document& doc,
    const nlp::PosTagger& tagger);

/// An extracted relational fact over world entities (the id space the
/// gold standard uses; core/ maps these to RDF when assembling a KB).
struct ExtractedFact {
  uint32_t subject = UINT32_MAX;
  corpus::Relation relation = corpus::Relation::kNumRelations;
  uint32_t object = UINT32_MAX;  ///< entity object
  int32_t literal_year = 0;      ///< literal object (year relations)
  double confidence = 0.0;
  uint32_t doc_id = 0;
  uint32_t extractor = 0;  ///< rdf::ExtractorId
  TimeSpan span;           ///< validity interval, if temporally scoped

  /// Identity of the asserted statement (ignoring provenance).
  bool SameStatement(const ExtractedFact& o) const {
    return subject == o.subject && relation == o.relation &&
           object == o.object && literal_year == o.literal_year;
  }
};

/// Deduplicates facts by statement, keeping the highest confidence and
/// counting supporting occurrences into `support` (if non-null).
std::vector<ExtractedFact> DeduplicateFacts(
    const std::vector<ExtractedFact>& facts,
    std::vector<int>* support = nullptr);

}  // namespace extraction
}  // namespace kb

#endif  // KBFORGE_EXTRACTION_ANNOTATION_H_
