#include "extraction/bootstrap.h"

#include <map>
#include <set>

#include "extraction/extraction_metrics.h"
#include "rdf/triple.h"
#include "util/string_util.h"

namespace kb {
namespace extraction {

using corpus::GetRelationInfo;
using corpus::Relation;
using corpus::RelationInfo;

Bootstrapper::Bootstrapper(BootstrapOptions options) : options_(options) {}

namespace {

/// (subject, object-or-year) pair identifying a statement.
using Pair = std::pair<uint32_t, int64_t>;

Pair PairOf(const ExtractedFact& f, bool literal) {
  return {f.subject, literal ? static_cast<int64_t>(f.literal_year)
                             : static_cast<int64_t>(f.object)};
}

struct Occurrence {
  Pair pair;
  std::string context;   ///< lowercased gap tokens joined with ' '
  bool subject_first;
  uint32_t doc_id;
  std::vector<std::string> words;
};

}  // namespace

Bootstrapper::Result Bootstrapper::Run(
    Relation relation, const std::vector<ExtractedFact>& seeds,
    const std::vector<AnnotatedSentence>& sentences) const {
  const RelationInfo& info = GetRelationInfo(relation);
  Result result;

  // Enumerate every candidate occurrence once up front.
  std::vector<Occurrence> occurrences;
  for (const AnnotatedSentence& as : sentences) {
    const nlp::Sentence& s = as.sentence;
    auto gap_words = [&](uint32_t from, uint32_t to) {
      std::vector<std::string> words;
      for (uint32_t t = from; t < to; ++t) words.push_back(s.tokens[t].lower);
      return words;
    };
    if (info.literal_object) {
      for (const SentenceMention& subj : as.mentions) {
        if (subj.kind != info.subject_kind) continue;
        for (uint32_t t = subj.token_end;
             t < s.tokens.size() &&
             t - subj.token_end <= options_.max_gap;
             ++t) {
          int year = 0;
          if (!IsYearToken(s.tokens[t], &year)) continue;
          Occurrence occ;
          occ.pair = {subj.entity, year};
          occ.words = gap_words(subj.token_end, t);
          occ.context = Join(occ.words, " ");
          occ.subject_first = true;
          occ.doc_id = as.doc_id;
          occurrences.push_back(std::move(occ));
        }
      }
      continue;
    }
    for (const SentenceMention& first : as.mentions) {
      for (const SentenceMention& second : as.mentions) {
        if (&first == &second || second.token_begin < first.token_end) {
          continue;
        }
        if (second.token_begin - first.token_end > options_.max_gap) {
          continue;
        }
        for (bool subject_first : {true, false}) {
          const SentenceMention& subj = subject_first ? first : second;
          const SentenceMention& obj = subject_first ? second : first;
          if (subj.entity == obj.entity) continue;
          if (subj.kind != info.subject_kind ||
              obj.kind != info.object_kind) {
            continue;
          }
          Occurrence occ;
          occ.pair = {subj.entity, obj.entity};
          occ.words = gap_words(first.token_end, second.token_begin);
          occ.context = Join(occ.words, " ");
          occ.subject_first = subject_first;
          occ.doc_id = as.doc_id;
          occurrences.push_back(std::move(occ));
        }
      }
    }
  }

  // Seed statements and their subjects.
  std::set<Pair> known;
  std::set<uint32_t> known_subjects;
  for (const ExtractedFact& f : seeds) {
    if (f.relation != relation) continue;
    known.insert(PairOf(f, info.literal_object));
    known_subjects.insert(f.subject);
  }

  std::set<std::string> accepted_keys;
  std::vector<ExtractedFact> raw_facts;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    // Score contexts against the current seed set.
    struct Stats {
      int pos = 0;
      int neg = 0;
      const Occurrence* sample = nullptr;
    };
    std::map<std::string, Stats> stats;
    for (const Occurrence& occ : occurrences) {
      std::string key = occ.context + (occ.subject_first ? "|SF" : "|OF");
      Stats& st = stats[key];
      st.sample = &occ;
      if (known.count(occ.pair) > 0) {
        ++st.pos;
      } else if (known_subjects.count(occ.pair.first) > 0) {
        ++st.neg;  // contradicts what we believe about this subject
      }
    }
    // Accept new patterns.
    size_t before = accepted_keys.size();
    for (const auto& [key, st] : stats) {
      if (accepted_keys.count(key) > 0) continue;
      if (st.pos < options_.min_pattern_support) continue;
      double precision =
          static_cast<double>(st.pos) / static_cast<double>(st.pos + st.neg);
      if (precision < options_.min_pattern_precision) continue;
      if (st.sample->words.empty()) continue;  // adjacency is too generic
      accepted_keys.insert(key);
      SurfacePattern p;
      p.relation = relation;
      p.between = st.sample->words;
      p.subject_first = st.sample->subject_first;
      p.confidence = precision;
      result.learned_patterns.push_back(std::move(p));
    }
    if (accepted_keys.size() == before && iter > 0) break;  // converged

    // Apply all accepted patterns; grow the seed set.
    std::map<std::string, double> key_confidence;
    for (const SurfacePattern& p : result.learned_patterns) {
      key_confidence[Join(p.between, " ") + (p.subject_first ? "|SF" : "|OF")] =
          p.confidence;
    }
    for (const Occurrence& occ : occurrences) {
      std::string key = occ.context + (occ.subject_first ? "|SF" : "|OF");
      auto it = key_confidence.find(key);
      if (it == key_confidence.end()) continue;
      ExtractedFact f;
      f.subject = occ.pair.first;
      f.relation = relation;
      if (info.literal_object) {
        f.literal_year = static_cast<int32_t>(occ.pair.second);
      } else {
        f.object = static_cast<uint32_t>(occ.pair.second);
      }
      f.confidence = it->second;
      f.doc_id = occ.doc_id;
      f.extractor = rdf::kExtractorBootstrap;
      raw_facts.push_back(f);
      known.insert(occ.pair);
      known_subjects.insert(occ.pair.first);
    }
  }

  result.facts = DeduplicateFacts(raw_facts);
  RecordExtractorYield("bootstrap", result.facts);
  return result;
}

}  // namespace extraction
}  // namespace kb
