#ifndef KBFORGE_EXTRACTION_BOOTSTRAP_H_
#define KBFORGE_EXTRACTION_BOOTSTRAP_H_

#include <set>
#include <string>
#include <vector>

#include "extraction/pattern_extractor.h"

namespace kb {
namespace extraction {

/// Tuning of the DIPRE/Snowball-style pattern bootstrapper.
struct BootstrapOptions {
  int max_iterations = 3;
  /// Seed matches required before a context becomes a pattern.
  int min_pattern_support = 3;
  /// pos / (pos + neg) threshold, where neg counts matches that
  /// contradict the seed set on a seeded subject.
  double min_pattern_precision = 0.75;
  /// Longest between-mention token gap considered a pattern.
  size_t max_gap = 6;
};

/// Iterative pattern induction from seed facts (tutorial §3's
/// statistical middle ground): occurrences of seed pairs yield
/// between-text patterns; high-precision patterns yield new facts;
/// repeat. Closes the recall gap of the hand-written pattern set.
class Bootstrapper {
 public:
  explicit Bootstrapper(BootstrapOptions options = BootstrapOptions());

  struct Result {
    std::vector<SurfacePattern> learned_patterns;
    std::vector<ExtractedFact> facts;  ///< deduplicated
    int iterations_run = 0;
  };

  /// Bootstraps one relation from `seeds` over `sentences`.
  Result Run(corpus::Relation relation,
             const std::vector<ExtractedFact>& seeds,
             const std::vector<AnnotatedSentence>& sentences) const;

 private:
  BootstrapOptions options_;
};

}  // namespace extraction
}  // namespace kb

#endif  // KBFORGE_EXTRACTION_BOOTSTRAP_H_
