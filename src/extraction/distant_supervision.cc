#include "extraction/distant_supervision.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "extraction/extraction_metrics.h"
#include "extraction/pattern_extractor.h"
#include "rdf/triple.h"
#include "util/random.h"
#include "util/string_util.h"

namespace kb {
namespace extraction {

using corpus::EntityKind;
using corpus::GetRelationInfo;
using corpus::kNumRelations;
using corpus::Relation;

namespace {
constexpr int kNoneLabel = kNumRelations;

std::string KindName(EntityKind k) {
  return std::string(corpus::EntityKindName(k));
}
}  // namespace

RelationClassifier::RelationClassifier(ClassifierOptions options)
    : options_(options), weights_(kNumRelations + 1) {}

void RelationClassifier::CollectCandidates(const AnnotatedSentence& as,
                                           size_t max_gap,
                                           std::vector<Candidate>* out) {
  const nlp::Sentence& s = as.sentence;
  auto make_features = [&](uint32_t from, uint32_t to, bool subject_first,
                           EntityKind sk, EntityKind ok, bool literal) {
    std::vector<std::string> f;
    std::string joined;
    for (uint32_t t = from; t < to; ++t) {
      f.push_back("bw:" + s.tokens[t].lower);
      if (!joined.empty()) joined += ' ';
      joined += s.tokens[t].lower;
      if (t + 1 < to) {
        f.push_back("bg:" + s.tokens[t].lower + "_" + s.tokens[t + 1].lower);
      }
    }
    f.push_back("ctx:" + joined + (subject_first ? "|SF" : "|OF"));
    f.push_back("kinds:" + KindName(sk) + "-" +
                (literal ? std::string("year") : KindName(ok)) +
                (subject_first ? "|SF" : "|OF"));
    f.push_back("gap:" + std::to_string((to - from) / 2));
    f.push_back("bias");
    return f;
  };

  for (size_t i = 0; i < as.mentions.size(); ++i) {
    const SentenceMention& first = as.mentions[i];
    // Literal (year) candidates to the right of a mention.
    for (uint32_t t = first.token_end;
         t < s.tokens.size() && t - first.token_end <= max_gap; ++t) {
      int year = 0;
      if (!IsYearToken(s.tokens[t], &year)) continue;
      Candidate c;
      c.subject = first.entity;
      c.object = UINT32_MAX;
      c.literal_year = year;
      c.subject_kind = first.kind;
      c.object_kind = first.kind;
      c.literal = true;
      c.doc_id = as.doc_id;
      c.features = make_features(first.token_end, t, true, first.kind,
                                 first.kind, true);
      out->push_back(std::move(c));
    }
    for (size_t j = 0; j < as.mentions.size(); ++j) {
      if (i == j) continue;
      const SentenceMention& second = as.mentions[j];
      if (second.token_begin < first.token_end) continue;
      if (second.token_begin - first.token_end > max_gap) continue;
      if (first.entity == second.entity) continue;
      for (bool subject_first : {true, false}) {
        const SentenceMention& subj = subject_first ? first : second;
        const SentenceMention& obj = subject_first ? second : first;
        Candidate c;
        c.subject = subj.entity;
        c.object = obj.entity;
        c.literal_year = 0;
        c.subject_kind = subj.kind;
        c.object_kind = obj.kind;
        c.literal = false;
        c.doc_id = as.doc_id;
        c.features = make_features(first.token_end, second.token_begin,
                                   subject_first, subj.kind, obj.kind, false);
        out->push_back(std::move(c));
      }
    }
  }
}

double RelationClassifier::Score(const std::vector<std::string>& features,
                                 int label, bool averaged) const {
  const auto& table = weights_[label];
  double score = 0;
  for (const std::string& f : features) {
    auto it = table.find(f);
    if (it == table.end()) continue;
    if (averaged) {
      // Finalized average: acc already includes trailing updates.
      score += it->second.acc;
    } else {
      score += it->second.w;
    }
  }
  return score;
}

void RelationClassifier::Train(
    const std::vector<AnnotatedSentence>& sentences,
    const std::vector<ExtractedFact>& seed_facts) {
  // Index the seed KB.
  std::set<std::tuple<uint32_t, int, int64_t>> kb;
  for (const ExtractedFact& f : seed_facts) {
    const auto& info = GetRelationInfo(f.relation);
    kb.emplace(f.subject, static_cast<int>(f.relation),
               info.literal_object ? static_cast<int64_t>(f.literal_year)
                                   : static_cast<int64_t>(f.object));
  }
  auto label_of = [&](const Candidate& c) {
    for (int r = 0; r < kNumRelations; ++r) {
      const auto& info = GetRelationInfo(static_cast<Relation>(r));
      if (info.literal_object != c.literal) continue;
      if (info.subject_kind != c.subject_kind) continue;
      if (!c.literal && info.object_kind != c.object_kind) continue;
      int64_t obj = c.literal ? static_cast<int64_t>(c.literal_year)
                              : static_cast<int64_t>(c.object);
      if (kb.count({c.subject, r, obj}) > 0) return r;
    }
    return kNoneLabel;
  };

  // Build the training set (subsampling NONE).
  std::vector<Candidate> candidates;
  for (const AnnotatedSentence& as : sentences) {
    CollectCandidates(as, options_.max_gap, &candidates);
  }
  Rng rng(options_.seed);
  std::vector<std::pair<int, const Candidate*>> train;
  for (const Candidate& c : candidates) {
    int label = label_of(c);
    if (label == kNoneLabel && !rng.Bernoulli(options_.none_subsample)) {
      continue;
    }
    train.emplace_back(label, &c);
  }

  auto update = [&](int label, const std::string& feature, double delta) {
    Weight& weight = weights_[label][feature];
    weight.acc += weight.w * static_cast<double>(steps_ - weight.last);
    weight.last = steps_;
    weight.w += delta;
  };

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&train);
    for (const auto& [gold, candidate] : train) {
      ++steps_;
      int best = kNoneLabel;
      double best_score = -1e100;
      for (int label = 0; label <= kNoneLabel; ++label) {
        double score = Score(candidate->features, label, /*averaged=*/false);
        if (score > best_score) {
          best_score = score;
          best = label;
        }
      }
      if (best != gold) {
        for (const std::string& f : candidate->features) {
          update(gold, f, +1.0);
          update(best, f, -1.0);
        }
      }
    }
  }
  // Finalize averages.
  for (auto& table : weights_) {
    for (auto& [feature, weight] : table) {
      weight.acc += weight.w * static_cast<double>(steps_ - weight.last);
      weight.last = steps_;
      weight.acc /= std::max<long long>(1, steps_);
    }
  }
}

std::vector<ExtractedFact> RelationClassifier::Extract(
    const std::vector<AnnotatedSentence>& sentences,
    double min_confidence) const {
  std::vector<ExtractedFact> out;
  std::vector<Candidate> candidates;
  for (const AnnotatedSentence& as : sentences) {
    CollectCandidates(as, options_.max_gap, &candidates);
  }
  for (const Candidate& c : candidates) {
    int best = kNoneLabel;
    double best_score = -1e100, second = -1e100;
    for (int label = 0; label <= kNoneLabel; ++label) {
      double score = Score(c.features, label, /*averaged=*/true);
      if (score > best_score) {
        second = best_score;
        best_score = score;
        best = label;
      } else if (score > second) {
        second = score;
      }
    }
    if (best == kNoneLabel) continue;
    const auto& info = GetRelationInfo(static_cast<Relation>(best));
    if (info.literal_object != c.literal) continue;
    if (info.subject_kind != c.subject_kind) continue;
    if (!c.literal && info.object_kind != c.object_kind) continue;
    double confidence = 1.0 / (1.0 + std::exp(-(best_score - second)));
    if (confidence < min_confidence) continue;
    ExtractedFact f;
    f.subject = c.subject;
    f.relation = static_cast<Relation>(best);
    f.object = c.literal ? UINT32_MAX : c.object;
    f.literal_year = c.literal ? c.literal_year : 0;
    f.confidence = confidence;
    f.doc_id = c.doc_id;
    f.extractor = rdf::kExtractorStatistical;
    out.push_back(f);
  }
  std::vector<ExtractedFact> deduped = DeduplicateFacts(out);
  RecordExtractorYield("statistical", deduped);
  return deduped;
}

size_t RelationClassifier::num_features() const {
  size_t n = 0;
  for (const auto& table : weights_) n += table.size();
  return n;
}

}  // namespace extraction
}  // namespace kb
