#ifndef KBFORGE_EXTRACTION_DISTANT_SUPERVISION_H_
#define KBFORGE_EXTRACTION_DISTANT_SUPERVISION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "extraction/annotation.h"

namespace kb {
namespace extraction {

/// Options of the distant-supervision relation classifier.
struct ClassifierOptions {
  int epochs = 5;
  /// Fraction of NONE-labeled training pairs kept (class balancing).
  double none_subsample = 0.25;
  uint64_t seed = 31;
  size_t max_gap = 8;  ///< longest between-mention gap considered
};

/// The "statistical learning" tier of the extraction spectrum
/// (tutorial §3): a multiclass averaged perceptron over mention-pair
/// contexts, trained by *distant supervision* — sentence pairs are
/// labeled automatically by matching them against a seed knowledge
/// base (e.g. infobox-extracted facts), never by hand.
class RelationClassifier {
 public:
  explicit RelationClassifier(ClassifierOptions options = ClassifierOptions());

  /// Trains on `sentences`, using `seed_facts` as the distant labels.
  void Train(const std::vector<AnnotatedSentence>& sentences,
             const std::vector<ExtractedFact>& seed_facts);

  /// Classifies all candidate pairs; returns facts whose confidence
  /// (sigmoid of the perceptron margin) reaches `min_confidence`.
  std::vector<ExtractedFact> Extract(
      const std::vector<AnnotatedSentence>& sentences,
      double min_confidence = 0.5) const;

  size_t num_features() const;

 private:
  struct Candidate {
    uint32_t subject;
    uint32_t object;       ///< UINT32_MAX for literal candidates
    int32_t literal_year;  ///< 0 unless literal candidate
    corpus::EntityKind subject_kind;
    corpus::EntityKind object_kind;  ///< meaningless for literal
    bool literal;
    uint32_t doc_id;
    std::vector<std::string> features;
  };

  static void CollectCandidates(const AnnotatedSentence& sentence,
                                size_t max_gap,
                                std::vector<Candidate>* out);

  /// label in [0, kNumRelations] where kNumRelations = NONE.
  double Score(const std::vector<std::string>& features, int label,
               bool averaged) const;

  ClassifierOptions options_;
  // weights_[label][feature]: (current, accumulated, last update step)
  struct Weight {
    double w = 0;
    double acc = 0;
    long long last = 0;
  };
  std::vector<std::unordered_map<std::string, Weight>> weights_;
  long long steps_ = 0;
};

}  // namespace extraction
}  // namespace kb

#endif  // KBFORGE_EXTRACTION_DISTANT_SUPERVISION_H_
