#include "extraction/evaluation.h"

#include <map>

namespace kb {
namespace extraction {

using corpus::GetRelationInfo;
using corpus::Relation;

std::set<uint32_t> ExpressedFacts(const std::vector<corpus::Document>& docs) {
  std::set<uint32_t> out;
  for (const corpus::Document& doc : docs) {
    out.insert(doc.fact_ids.begin(), doc.fact_ids.end());
  }
  return out;
}

namespace {

/// Statement identity of a gold fact.
std::tuple<uint32_t, int, uint32_t, int32_t> GoldKey(
    const corpus::GoldFact& f) {
  const auto& info = GetRelationInfo(f.relation);
  if (info.literal_object) {
    return {f.subject, static_cast<int>(f.relation), UINT32_MAX,
            f.literal_year};
  }
  return {f.subject, static_cast<int>(f.relation), f.object, 0};
}

std::tuple<uint32_t, int, uint32_t, int32_t> PredKey(
    const ExtractedFact& f) {
  const auto& info = GetRelationInfo(f.relation);
  if (info.literal_object) {
    return {f.subject, static_cast<int>(f.relation), UINT32_MAX,
            f.literal_year};
  }
  return {f.subject, static_cast<int>(f.relation), f.object, 0};
}

}  // namespace

PrecisionRecall EvaluateFacts(const corpus::World& world,
                              const std::vector<ExtractedFact>& facts,
                              const std::set<uint32_t>& recall_base) {
  auto per_relation = EvaluateFactsPerRelation(world, facts, recall_base);
  PrecisionRecall total;
  for (const auto& [relation, pr] : per_relation) total.Merge(pr);
  return total;
}

std::vector<std::pair<Relation, PrecisionRecall>> EvaluateFactsPerRelation(
    const corpus::World& world, const std::vector<ExtractedFact>& facts,
    const std::set<uint32_t>& recall_base) {
  // Gold statement keys (all, and the recall base subset).
  std::set<std::tuple<uint32_t, int, uint32_t, int32_t>> gold_all;
  std::map<std::tuple<uint32_t, int, uint32_t, int32_t>, Relation> base;
  for (uint32_t i = 0; i < world.facts().size(); ++i) {
    const corpus::GoldFact& f = world.facts()[i];
    gold_all.insert(GoldKey(f));
    if (recall_base.count(i) > 0) base.emplace(GoldKey(f), f.relation);
  }

  std::map<Relation, PrecisionRecall> per_relation;
  std::set<std::tuple<uint32_t, int, uint32_t, int32_t>> predicted;
  for (const ExtractedFact& f : facts) {
    auto key = PredKey(f);
    if (!predicted.insert(key).second) continue;  // dedup
    if (gold_all.count(key) > 0) {
      per_relation[f.relation].AddTP();
    } else {
      per_relation[f.relation].AddFP();
    }
  }
  for (const auto& [key, relation] : base) {
    if (predicted.count(key) == 0) per_relation[relation].AddFN();
  }
  return std::vector<std::pair<Relation, PrecisionRecall>>(
      per_relation.begin(), per_relation.end());
}

}  // namespace extraction
}  // namespace kb
