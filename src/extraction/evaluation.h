#ifndef KBFORGE_EXTRACTION_EVALUATION_H_
#define KBFORGE_EXTRACTION_EVALUATION_H_

#include <set>
#include <vector>

#include "extraction/annotation.h"
#include "util/metrics.h"

namespace kb {
namespace extraction {

/// Scores extracted facts against the gold world. Precision counts a
/// predicted statement as correct iff it is a gold fact. Recall is
/// measured against `recall_base`: the gold fact ids the system could
/// possibly have found (normally: the facts expressed in the corpus
/// text, collected from Document::fact_ids). Duplicates are collapsed
/// before scoring.
PrecisionRecall EvaluateFacts(const corpus::World& world,
                              const std::vector<ExtractedFact>& facts,
                              const std::set<uint32_t>& recall_base);

/// Collects the ids of all facts expressed in the given documents.
std::set<uint32_t> ExpressedFacts(const std::vector<corpus::Document>& docs);

/// Per-relation breakdown of EvaluateFacts.
std::vector<std::pair<corpus::Relation, PrecisionRecall>>
EvaluateFactsPerRelation(const corpus::World& world,
                         const std::vector<ExtractedFact>& facts,
                         const std::set<uint32_t>& recall_base);

}  // namespace extraction
}  // namespace kb

#endif  // KBFORGE_EXTRACTION_EVALUATION_H_
