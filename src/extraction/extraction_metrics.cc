#include "extraction/extraction_metrics.h"

#include "util/metrics_registry.h"

namespace kb {
namespace extraction {

void RecordExtractorYield(const std::string& extractor,
                          const std::vector<ExtractedFact>& facts) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.counter("extraction." + extractor + ".batches").Increment();
  registry.counter("extraction." + extractor + ".facts")
      .Increment(facts.size());
  Histogram& confidence =
      registry.histogram("extraction." + extractor + ".confidence");
  for (const ExtractedFact& f : facts) confidence.Observe(f.confidence);
}

}  // namespace extraction
}  // namespace kb
