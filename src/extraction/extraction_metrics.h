#ifndef KBFORGE_EXTRACTION_EXTRACTION_METRICS_H_
#define KBFORGE_EXTRACTION_EXTRACTION_METRICS_H_

#include <string>
#include <vector>

#include "extraction/annotation.h"

namespace kb {
namespace extraction {

/// Records one extractor batch into the default metrics registry:
/// increments `extraction.<extractor>.facts` by facts.size(),
/// `extraction.<extractor>.batches` by one, and observes every fact's
/// confidence into `extraction.<extractor>.confidence`. Thread-safe —
/// extractors running on pool workers (bootstrap) may call this
/// concurrently.
void RecordExtractorYield(const std::string& extractor,
                          const std::vector<ExtractedFact>& facts);

}  // namespace extraction
}  // namespace kb

#endif  // KBFORGE_EXTRACTION_EXTRACTION_METRICS_H_
