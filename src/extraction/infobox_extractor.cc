#include "extraction/infobox_extractor.h"

#include "extraction/extraction_metrics.h"
#include "rdf/triple.h"
#include "util/string_util.h"

namespace kb {
namespace extraction {

using corpus::Relation;

namespace {

struct KeyMapping {
  const char* key;
  Relation relation;
  bool subject_is_page;  ///< false: the page entity is the fact's object
};

constexpr KeyMapping kKeyMap[] = {
    {"birth_place", Relation::kBornIn, true},
    {"birth_date", Relation::kBirthDate, true},
    {"spouse", Relation::kMarriedTo, true},
    {"employer", Relation::kWorksFor, true},
    {"founder", Relation::kFounded, false},
    {"founded_year", Relation::kFoundedYear, true},
    {"headquarters", Relation::kHeadquarteredIn, true},
    {"country", Relation::kLocatedIn, true},
    {"capital_of", Relation::kCapitalOf, true},
    {"alma_mater", Relation::kStudiedAt, true},
    {"member_of", Relation::kMemberOf, true},
    {"artist", Relation::kReleasedAlbum, false},
    {"release_year", Relation::kReleaseYear, true},
    {"director", Relation::kDirected, false},
    {"starring", Relation::kActedIn, false},
    {"citizenship", Relation::kCitizenOf, true},
};

const KeyMapping* FindMapping(std::string_view key) {
  for (const KeyMapping& m : kKeyMap) {
    if (key == m.key) return &m;
  }
  return nullptr;
}

}  // namespace

InfoboxExtractor::InfoboxExtractor(
    std::unordered_map<std::string, uint32_t> by_canonical)
    : by_canonical_(std::move(by_canonical)) {}

std::vector<ExtractedFact> InfoboxExtractor::ExtractFromArticle(
    const corpus::Document& doc) const {
  std::vector<ExtractedFact> out;
  if (doc.subject == UINT32_MAX) return out;
  size_t box_begin = doc.text.find("{{Infobox");
  if (box_begin == std::string::npos) return out;
  size_t box_end = doc.text.find("}}", box_begin);
  if (box_end == std::string::npos) return out;
  std::string_view box(doc.text.data() + box_begin, box_end - box_begin);

  size_t pos = 0;
  while (pos < box.size()) {
    size_t nl = box.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? box.substr(pos)
                                : box.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? box.size() : nl + 1;
    line = StripWhitespace(line);
    if (line.empty() || line.front() != '|') continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      ++malformed_slots_;
      continue;
    }
    std::string key(StripWhitespace(line.substr(1, eq - 1)));
    std::string value(StripWhitespace(line.substr(eq + 1)));
    const KeyMapping* mapping = FindMapping(key);
    if (mapping == nullptr) continue;  // e.g. "name"
    const corpus::RelationInfo& info = GetRelationInfo(mapping->relation);

    ExtractedFact f;
    f.relation = mapping->relation;
    f.confidence = 0.95;
    f.doc_id = doc.id;
    f.extractor = rdf::kExtractorInfobox;

    if (info.literal_object) {
      // "1955-02-24" or "1987".
      long long year = 0;
      std::string year_part = value.substr(0, value.find('-'));
      if (!ParseInt64(year_part, &year) || year < 1000 || year > 2100) {
        ++malformed_slots_;
        continue;
      }
      f.subject = doc.subject;
      f.literal_year = static_cast<int32_t>(year);
    } else {
      if (!StartsWith(value, "[[") || !EndsWith(value, "]]")) {
        ++malformed_slots_;  // corrupted or plain-text value
        continue;
      }
      std::string title = value.substr(2, value.size() - 4);
      auto it = by_canonical_.find(title);
      if (it == by_canonical_.end()) {
        ++malformed_slots_;
        continue;
      }
      if (mapping->subject_is_page) {
        f.subject = doc.subject;
        f.object = it->second;
      } else {
        f.subject = it->second;
        f.object = doc.subject;
      }
    }
    out.push_back(f);
  }
  return out;
}

std::vector<ExtractedFact> InfoboxExtractor::Extract(
    const std::vector<corpus::Document>& docs) const {
  std::vector<ExtractedFact> out;
  for (const corpus::Document& doc : docs) {
    if (doc.kind != corpus::DocKind::kArticle) continue;
    auto facts = ExtractFromArticle(doc);
    out.insert(out.end(), facts.begin(), facts.end());
  }
  RecordExtractorYield("infobox", out);
  return out;
}

}  // namespace extraction
}  // namespace kb
