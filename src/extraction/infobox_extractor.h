#ifndef KBFORGE_EXTRACTION_INFOBOX_EXTRACTOR_H_
#define KBFORGE_EXTRACTION_INFOBOX_EXTRACTOR_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "extraction/annotation.h"

namespace kb {
namespace extraction {

/// Harvests facts from the semi-structured infobox markup of articles
/// (the DBpedia approach, tutorial §2): parses "| key = value" lines in
/// the "{{Infobox ...}}" block and maps keys to relations. Entity
/// values are "[[Canonical_Title]]" wiki links, resolved through the
/// page-title index; unresolvable or malformed values are dropped.
class InfoboxExtractor {
 public:
  /// `by_canonical` maps page titles to entity ids (the page index a
  /// real wiki provides for free).
  explicit InfoboxExtractor(
      std::unordered_map<std::string, uint32_t> by_canonical);

  /// Extracts from one article document; `subject` is its entity.
  std::vector<ExtractedFact> ExtractFromArticle(
      const corpus::Document& doc) const;

  /// Extracts from every article in `docs`.
  std::vector<ExtractedFact> Extract(
      const std::vector<corpus::Document>& docs) const;

  /// Number of lines that looked like slots but failed to parse.
  size_t malformed_slots() const {
    return malformed_slots_.load(std::memory_order_relaxed);
  }

 private:
  std::unordered_map<std::string, uint32_t> by_canonical_;
  /// Atomic so one extractor can serve parallel per-document calls.
  mutable std::atomic<size_t> malformed_slots_{0};
};

}  // namespace extraction
}  // namespace kb

#endif  // KBFORGE_EXTRACTION_INFOBOX_EXTRACTOR_H_
