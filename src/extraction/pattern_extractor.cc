#include "extraction/pattern_extractor.h"

#include "extraction/extraction_metrics.h"
#include "rdf/triple.h"
#include "util/string_util.h"

namespace kb {
namespace extraction {

using corpus::EntityKind;
using corpus::GetRelationInfo;
using corpus::Relation;
using corpus::RelationInfo;

bool IsYearToken(const nlp::Token& token, int* year) {
  if (token.pos != nlp::Pos::kNumber) return false;
  long long v = 0;
  if (!ParseInt64(token.lower, &v)) return false;
  if (v < 1200 || v > 2100) return false;
  *year = static_cast<int>(v);
  return true;
}

const std::vector<SurfacePattern>& DefaultPatterns() {
  static const auto* kPatterns = new std::vector<SurfacePattern>{
      {Relation::kBornIn, {"was", "born", "in"}, true, 0.85},
      {Relation::kBirthDate, {"was", "born", "in"}, true, 0.85},
      {Relation::kMarriedTo, {"married"}, true, 0.80},
      {Relation::kMarriedTo, {"is", "married", "to"}, true, 0.85},
      {Relation::kMarriedTo, {"was", "married", "to"}, true, 0.85},
      {Relation::kWorksFor, {"works", "for"}, true, 0.85},
      {Relation::kWorksFor, {"worked", "for"}, true, 0.85},
      {Relation::kWorksFor, {"joined"}, true, 0.75},
      {Relation::kFounded, {"founded"}, true, 0.85},
      {Relation::kFounded, {"was", "founded", "by"}, false, 0.85},
      {Relation::kFoundedYear, {"was", "founded", "in"}, true, 0.85},
      {Relation::kHeadquarteredIn, {"is", "headquartered", "in"}, true, 0.9},
      {Relation::kLocatedIn, {"is", "a", "city", "in"}, true, 0.9},
      {Relation::kCapitalOf, {"is", "the", "capital", "of"}, true, 0.9},
      {Relation::kStudiedAt, {"studied", "at"}, true, 0.85},
      {Relation::kMemberOf, {"is", "a", "member", "of"}, true, 0.85},
      {Relation::kReleasedAlbum, {"released"}, true, 0.8},
      {Relation::kReleaseYear, {"was", "released", "in"}, true, 0.85},
      {Relation::kDirected, {"directed"}, true, 0.85},
      {Relation::kDirected, {"was", "directed", "by"}, false, 0.85},
      {Relation::kActedIn, {"starred", "in"}, true, 0.85},
      {Relation::kMayorOf, {"was", "the", "mayor", "of"}, true, 0.85},
      {Relation::kMayorOf, {"became", "mayor", "of"}, true, 0.8},
      {Relation::kCitizenOf, {"is", "a", "citizen", "of"}, true, 0.9},
  };
  return *kPatterns;
}

PatternExtractor::PatternExtractor(std::vector<SurfacePattern> patterns)
    : patterns_(std::move(patterns)) {}

namespace {

/// Checks that the tokens in (from, to) equal `words`.
bool GapMatches(const nlp::Sentence& s, uint32_t from, uint32_t to,
                const std::vector<std::string>& words) {
  if (to < from || to - from != words.size()) return false;
  for (size_t i = 0; i < words.size(); ++i) {
    if (s.tokens[from + i].lower != words[i]) return false;
  }
  return true;
}

}  // namespace

std::vector<ExtractedFact> PatternExtractor::ExtractFromSentence(
    const AnnotatedSentence& sentence) const {
  std::vector<ExtractedFact> out;
  const auto& mentions = sentence.mentions;
  const nlp::Sentence& s = sentence.sentence;

  for (const SurfacePattern& pattern : patterns_) {
    const RelationInfo& info = GetRelationInfo(pattern.relation);
    if (info.literal_object) {
      // subject mention ... pattern ... year token.
      for (const SentenceMention& subj : mentions) {
        if (subj.kind != info.subject_kind) continue;
        uint32_t start = subj.token_end;
        uint32_t year_pos = start + static_cast<uint32_t>(
                                        pattern.between.size());
        if (year_pos >= s.tokens.size()) continue;
        int year = 0;
        if (!IsYearToken(s.tokens[year_pos], &year)) continue;
        if (!GapMatches(s, start, year_pos, pattern.between)) continue;
        ExtractedFact f;
        f.subject = subj.entity;
        f.relation = pattern.relation;
        f.literal_year = year;
        f.confidence = pattern.confidence;
        f.doc_id = sentence.doc_id;
        f.extractor = rdf::kExtractorPattern;
        out.push_back(f);
      }
      continue;
    }
    for (const SentenceMention& first : mentions) {
      for (const SentenceMention& second : mentions) {
        if (&first == &second) continue;
        if (second.token_begin < first.token_end) continue;  // ordered
        const SentenceMention& subj = pattern.subject_first ? first : second;
        const SentenceMention& obj = pattern.subject_first ? second : first;
        if (subj.entity == obj.entity) continue;
        if (subj.kind != info.subject_kind || obj.kind != info.object_kind) {
          continue;
        }
        if (!GapMatches(s, first.token_end, second.token_begin,
                        pattern.between)) {
          continue;
        }
        ExtractedFact f;
        f.subject = subj.entity;
        f.relation = pattern.relation;
        f.object = obj.entity;
        f.confidence = pattern.confidence;
        f.doc_id = sentence.doc_id;
        f.extractor = rdf::kExtractorPattern;
        out.push_back(f);
      }
    }
  }
  return out;
}

std::vector<ExtractedFact> PatternExtractor::Extract(
    const std::vector<AnnotatedSentence>& sentences) const {
  std::vector<ExtractedFact> out;
  for (const AnnotatedSentence& s : sentences) {
    auto facts = ExtractFromSentence(s);
    out.insert(out.end(), facts.begin(), facts.end());
  }
  RecordExtractorYield("pattern", out);
  return out;
}

}  // namespace extraction
}  // namespace kb
