#ifndef KBFORGE_EXTRACTION_PATTERN_EXTRACTOR_H_
#define KBFORGE_EXTRACTION_PATTERN_EXTRACTOR_H_

#include <string>
#include <vector>

#include "extraction/annotation.h"

namespace kb {
namespace extraction {

/// A surface pattern: the exact (lowercased) token sequence that must
/// appear between a subject mention and an object mention. This is the
/// "pattern matching" tier of the extraction spectrum (tutorial §3).
struct SurfacePattern {
  corpus::Relation relation = corpus::Relation::kNumRelations;
  std::vector<std::string> between;  ///< lowercased tokens
  bool subject_first = true;         ///< subject mention precedes object
  double confidence = 0.8;           ///< prior precision of the pattern
};

/// The hand-written pattern inventory. Deliberately covers only the
/// most common verbalizations of each relation — the recall gap is what
/// bootstrapping (and statistical learning) close.
const std::vector<SurfacePattern>& DefaultPatterns();

/// Matches `patterns` against annotated sentences. For entity-object
/// relations both mentions must have the relation's signature kinds;
/// for literal relations the object is a 4-digit year token.
class PatternExtractor {
 public:
  explicit PatternExtractor(std::vector<SurfacePattern> patterns);

  /// Extraction over one sentence.
  std::vector<ExtractedFact> ExtractFromSentence(
      const AnnotatedSentence& sentence) const;

  /// Extraction over a collection.
  std::vector<ExtractedFact> Extract(
      const std::vector<AnnotatedSentence>& sentences) const;

  const std::vector<SurfacePattern>& patterns() const { return patterns_; }

 private:
  std::vector<SurfacePattern> patterns_;
};

/// True if `token` looks like a plausible year literal.
bool IsYearToken(const nlp::Token& token, int* year);

}  // namespace extraction
}  // namespace kb

#endif  // KBFORGE_EXTRACTION_PATTERN_EXTRACTOR_H_
