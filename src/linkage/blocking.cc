#include "linkage/blocking.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "util/string_util.h"

namespace kb {
namespace linkage {

namespace {
/// Multi-key standard blocking: one key per name token (kind + first
/// character), so "E. Holloway" and "Emil Holloway" and the bare alias
/// "Holloway" still share a block.
std::vector<std::string> StandardKeys(const Record& r) {
  std::vector<std::string> keys;
  for (const std::string& token : SplitWhitespace(ToLower(r.name))) {
    keys.push_back(r.kind + ":" + token.substr(0, 1));
  }
  if (keys.empty()) keys.push_back(r.kind + ":?");
  return keys;
}
}  // namespace

std::vector<CandidatePair> GenerateCandidates(
    const std::vector<Record>& a, const std::vector<Record>& b,
    const BlockingOptions& options) {
  std::vector<CandidatePair> out;
  switch (options.strategy) {
    case BlockingStrategy::kNone: {
      out.reserve(a.size() * b.size());
      for (uint32_t i = 0; i < a.size(); ++i) {
        for (uint32_t j = 0; j < b.size(); ++j) {
          out.emplace_back(i, j);
        }
      }
      return out;
    }
    case BlockingStrategy::kStandard: {
      std::map<std::string, std::vector<uint32_t>> blocks;
      for (uint32_t j = 0; j < b.size(); ++j) {
        for (const std::string& key : StandardKeys(b[j])) {
          blocks[key].push_back(j);
        }
      }
      std::set<CandidatePair> unique;
      for (uint32_t i = 0; i < a.size(); ++i) {
        for (const std::string& key : StandardKeys(a[i])) {
          auto it = blocks.find(key);
          if (it == blocks.end()) continue;
          for (uint32_t j : it->second) unique.emplace(i, j);
        }
      }
      out.assign(unique.begin(), unique.end());
      return out;
    }
    case BlockingStrategy::kSortedNeighborhood: {
      // Merge both sets, sort by (kind, lowercased name), slide a
      // window, and emit cross-set pairs inside it.
      struct Entry {
        std::string key;
        uint32_t index;
        bool from_a;
      };
      std::vector<Entry> entries;
      entries.reserve(a.size() + b.size());
      for (uint32_t i = 0; i < a.size(); ++i) {
        entries.push_back({a[i].kind + ":" + ToLower(a[i].name), i, true});
      }
      for (uint32_t j = 0; j < b.size(); ++j) {
        entries.push_back({b[j].kind + ":" + ToLower(b[j].name), j, false});
      }
      std::sort(entries.begin(), entries.end(),
                [](const Entry& x, const Entry& y) { return x.key < y.key; });
      std::set<CandidatePair> unique;
      for (size_t i = 0; i < entries.size(); ++i) {
        size_t hi = std::min(entries.size(), i + options.window);
        for (size_t j = i + 1; j < hi; ++j) {
          if (entries[i].from_a == entries[j].from_a) continue;
          const Entry& ea = entries[i].from_a ? entries[i] : entries[j];
          const Entry& eb = entries[i].from_a ? entries[j] : entries[i];
          unique.emplace(ea.index, eb.index);
        }
      }
      out.assign(unique.begin(), unique.end());
      return out;
    }
  }
  return out;
}

double PairsCompleteness(const std::vector<Record>& a,
                         const std::vector<Record>& b,
                         const std::vector<CandidatePair>& candidates) {
  std::set<std::pair<uint32_t, uint32_t>> gold;
  std::map<uint32_t, std::vector<uint32_t>> b_by_entity;
  for (const Record& r : b) b_by_entity[r.gold_entity].push_back(r.id);
  for (const Record& r : a) {
    auto it = b_by_entity.find(r.gold_entity);
    if (it == b_by_entity.end()) continue;
    for (uint32_t j : it->second) gold.emplace(r.id, j);
  }
  if (gold.empty()) return 1.0;
  size_t covered = 0;
  for (const CandidatePair& p : candidates) {
    if (gold.count(p) > 0) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(gold.size());
}

}  // namespace linkage
}  // namespace kb
