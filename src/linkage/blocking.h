#ifndef KBFORGE_LINKAGE_BLOCKING_H_
#define KBFORGE_LINKAGE_BLOCKING_H_

#include <cstdint>
#include <vector>

#include "linkage/record.h"

namespace kb {
namespace linkage {

/// A candidate record pair (index into set A, index into set B).
using CandidatePair = std::pair<uint32_t, uint32_t>;

/// Blocking strategies for candidate generation. Linkage cost is
/// dominated by the pair count; blocking trades a tiny recall loss for
/// orders of magnitude fewer comparisons (E8 ablation).
enum class BlockingStrategy : uint8_t {
  kNone = 0,              ///< full cross product
  kStandard,              ///< key = kind + first char of name
  kSortedNeighborhood,    ///< sliding window over name-sorted union
};

struct BlockingOptions {
  BlockingStrategy strategy = BlockingStrategy::kStandard;
  size_t window = 10;  ///< for sorted neighborhood
};

/// Generates candidate pairs between two record sets.
std::vector<CandidatePair> GenerateCandidates(
    const std::vector<Record>& a, const std::vector<Record>& b,
    const BlockingOptions& options);

/// Fraction of gold matches surviving blocking (pairs completeness),
/// given the candidate list.
double PairsCompleteness(const std::vector<Record>& a,
                         const std::vector<Record>& b,
                         const std::vector<CandidatePair>& candidates);

}  // namespace linkage
}  // namespace kb

#endif  // KBFORGE_LINKAGE_BLOCKING_H_
