#include "linkage/clustering.h"

#include <algorithm>
#include <map>
#include <set>

namespace kb {
namespace linkage {

namespace {

/// Union-find with per-root resource multiset for the one-per-resource
/// constraint.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), resources_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void SetResource(size_t x, uint32_t resource) {
    resources_[x].insert(resource);
  }

  /// Merges the clusters of a and b unless that would place two
  /// records of the same resource together (when enforced).
  bool Union(size_t a, size_t b, bool one_per_resource) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return true;
    if (one_per_resource) {
      for (uint32_t r : resources_[rb]) {
        if (resources_[ra].count(r) > 0) return false;
      }
    }
    if (resources_[ra].size() < resources_[rb].size()) std::swap(ra, rb);
    parent_[rb] = ra;
    resources_[ra].insert(resources_[rb].begin(), resources_[rb].end());
    resources_[rb].clear();
    return true;
  }

 private:
  std::vector<size_t> parent_;
  std::vector<std::multiset<uint32_t>> resources_;
};

}  // namespace

std::vector<SameAsCluster> ClusterSameAs(const std::vector<SameAsEdge>& edges,
                                         const ClusterOptions& options) {
  // Index the nodes.
  std::map<ResourceRecord, size_t> node_index;
  std::vector<ResourceRecord> nodes;
  auto intern = [&](const ResourceRecord& r) {
    auto it = node_index.find(r);
    if (it != node_index.end()) return it->second;
    size_t id = nodes.size();
    node_index.emplace(r, id);
    nodes.push_back(r);
    return id;
  };
  std::vector<std::tuple<double, size_t, size_t>> indexed_edges;
  for (const SameAsEdge& e : edges) {
    indexed_edges.emplace_back(e.score, intern(e.a), intern(e.b));
  }

  UnionFind uf(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    uf.SetResource(i, nodes[i].resource);
  }
  // Strongest edges first: a conflicting weak edge loses.
  std::sort(indexed_edges.rbegin(), indexed_edges.rend());
  for (const auto& [score, a, b] : indexed_edges) {
    uf.Union(a, b, options.one_per_resource);
  }

  std::map<size_t, SameAsCluster> clusters;
  for (size_t i = 0; i < nodes.size(); ++i) {
    clusters[uf.Find(i)].push_back(nodes[i]);
  }
  std::vector<SameAsCluster> out;
  out.reserve(clusters.size());
  for (auto& [root, members] : clusters) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace linkage
}  // namespace kb
