#ifndef KBFORGE_LINKAGE_CLUSTERING_H_
#define KBFORGE_LINKAGE_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "linkage/matcher.h"

namespace kb {
namespace linkage {

/// A node in the multi-resource sameAs graph: (resource id, record id).
struct ResourceRecord {
  uint32_t resource = 0;
  uint32_t record = 0;

  bool operator<(const ResourceRecord& o) const {
    return resource != o.resource ? resource < o.resource
                                  : record < o.record;
  }
  bool operator==(const ResourceRecord& o) const {
    return resource == o.resource && record == o.record;
  }
};

/// One entity cluster: the records (across resources) that denote the
/// same real-world entity.
using SameAsCluster = std::vector<ResourceRecord>;

/// A sameAs edge between two resources' records with its match score.
struct SameAsEdge {
  ResourceRecord a;
  ResourceRecord b;
  double score = 1.0;
};

struct ClusterOptions {
  /// Enforce that a cluster contains at most one record per resource
  /// (the well-curated-resource assumption). When merging two clusters
  /// would violate it, the edge is skipped — weakest edges are
  /// considered last, so the strongest consistent clustering wins.
  bool one_per_resource = true;
};

/// Clusters pairwise sameAs links into entity clusters by union-find
/// over edges in descending score order — how "generate and maintain
/// owl:sameAs information across knowledge resources" (tutorial §4)
/// turns pairwise matches into a coherent entity space.
std::vector<SameAsCluster> ClusterSameAs(const std::vector<SameAsEdge>& edges,
                                         const ClusterOptions& options = {});

}  // namespace linkage
}  // namespace kb

#endif  // KBFORGE_LINKAGE_CLUSTERING_H_
