#include "linkage/graph_linker.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/string_util.h"

namespace kb {
namespace linkage {

GraphLinker::GraphLinker(GraphLinkOptions options) : options_(options) {}

std::vector<Match> GraphLinker::Link(const std::vector<Record>& a,
                                     const std::vector<Record>& b,
                                     const std::vector<CandidatePair>& pairs,
                                     const LogisticMatcher& base) const {
  // Base scores.
  std::vector<Match> scored;
  scored.reserve(pairs.size());
  for (const CandidatePair& p : pairs) {
    double prob = base.Probability(a[p.first], b[p.second]);
    if (prob >= options_.accept_threshold * 0.5) {
      scored.push_back({p.first, p.second, prob});
    }
  }

  // Record graph: records sharing a place value are neighbors; a pair
  // (i, j) is supported when a currently-accepted pair exists between
  // neighbors of i and neighbors of j (here: identical place strings).
  auto place_key = [](const Record& r) { return ToLower(r.place); };
  for (int round = 0; round < options_.propagation_rounds; ++round) {
    // Current accepted set (above threshold).
    std::map<std::string, int> accepted_by_place;  // place -> #matches
    for (const Match& m : scored) {
      if (m.score < options_.accept_threshold) continue;
      std::string pa = place_key(a[m.a]);
      std::string pb = place_key(b[m.b]);
      if (!pa.empty() && pa == pb) accepted_by_place[pa]++;
    }
    for (Match& m : scored) {
      std::string pa = place_key(a[m.a]);
      std::string pb = place_key(b[m.b]);
      if (pa.empty() || pa != pb) continue;
      auto it = accepted_by_place.find(pa);
      if (it == accepted_by_place.end()) continue;
      // Subtract the pair's own contribution.
      int neighbors = it->second - (m.score >= options_.accept_threshold);
      if (neighbors > 0) {
        m.score = std::min(1.0, m.score + options_.neighbor_boost);
      }
    }
  }

  // Greedy one-to-one assignment by descending score.
  std::sort(scored.begin(), scored.end(),
            [](const Match& x, const Match& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  std::set<uint32_t> used_a, used_b;
  std::vector<Match> out;
  for (const Match& m : scored) {
    if (m.score < options_.accept_threshold) break;
    if (used_a.count(m.a) > 0 || used_b.count(m.b) > 0) continue;
    used_a.insert(m.a);
    used_b.insert(m.b);
    out.push_back(m);
  }
  return out;
}

}  // namespace linkage
}  // namespace kb
