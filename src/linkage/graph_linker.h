#ifndef KBFORGE_LINKAGE_GRAPH_LINKER_H_
#define KBFORGE_LINKAGE_GRAPH_LINKER_H_

#include <vector>

#include "linkage/matcher.h"

namespace kb {
namespace linkage {

/// Options of the graph-based linker.
struct GraphLinkOptions {
  double accept_threshold = 0.5;   ///< minimum pair probability
  double neighbor_boost = 0.15;    ///< score bonus per agreeing neighbor
  int propagation_rounds = 2;
};

/// Graph-algorithm entity linkage (tutorial §4's second family):
/// candidate pair scores from the base matcher are refined by
/// *similarity propagation* — a pair gains confidence when related
/// records (same `place` attribute = shared neighbor in the record
/// graph) are themselves matched — and the final sameAs set is made
/// one-to-one by greedy best-first selection, mirroring the constraint
/// that each entity appears once per well-curated resource.
class GraphLinker {
 public:
  explicit GraphLinker(GraphLinkOptions options = GraphLinkOptions());

  std::vector<Match> Link(const std::vector<Record>& a,
                          const std::vector<Record>& b,
                          const std::vector<CandidatePair>& pairs,
                          const LogisticMatcher& base) const;

 private:
  GraphLinkOptions options_;
};

}  // namespace linkage
}  // namespace kb

#endif  // KBFORGE_LINKAGE_GRAPH_LINKER_H_
