#include "linkage/matcher.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "linkage/similarity.h"
#include "util/random.h"
#include "util/string_util.h"

namespace kb {
namespace linkage {

PairFeatures ComputeFeatures(const Record& a, const Record& b) {
  PairFeatures f;
  std::string na = ToLower(a.name), nb = ToLower(b.name);
  f[0] = JaroWinkler(na, nb);
  f[1] = NgramJaccard(na, nb, 3);
  f[2] = TokenJaccard(a.name, b.name);
  if (a.year != 0 && b.year != 0) {
    f[3] = NumericSimilarity(a.year, b.year, 5.0);
  } else {
    f[3] = 0.5;  // missing year: uninformative
  }
  if (!a.place.empty() && !b.place.empty()) {
    f[4] = JaroWinkler(ToLower(a.place), ToLower(b.place));
  } else {
    f[4] = 0.5;
  }
  f[5] = a.kind == b.kind ? 1.0 : 0.0;
  return f;
}

std::vector<Match> ThresholdMatch(const std::vector<Record>& a,
                                  const std::vector<Record>& b,
                                  const std::vector<CandidatePair>& pairs,
                                  double threshold) {
  std::vector<Match> out;
  for (const CandidatePair& p : pairs) {
    double sim =
        JaroWinkler(ToLower(a[p.first].name), ToLower(b[p.second].name));
    if (sim >= threshold && a[p.first].kind == b[p.second].kind) {
      out.push_back({p.first, p.second, sim});
    }
  }
  return out;
}

void LogisticMatcher::Train(const std::vector<Record>& a,
                            const std::vector<Record>& b,
                            const std::vector<CandidatePair>& pairs,
                            const TrainOptions& options) {
  struct Example {
    PairFeatures features;
    double label;
  };
  std::vector<Example> examples;
  examples.reserve(pairs.size());
  size_t positives = 0;
  for (const CandidatePair& p : pairs) {
    Example ex;
    ex.features = ComputeFeatures(a[p.first], b[p.second]);
    ex.label =
        a[p.first].gold_entity == b[p.second].gold_entity ? 1.0 : 0.0;
    positives += ex.label > 0.5 ? 1 : 0;
    examples.push_back(ex);
  }
  if (examples.empty() || positives == 0) return;

  Rng rng(options.seed);
  weights_ = {};
  bias_ = 0;
  // Reweight classes so the rare positives matter — capped, or the
  // decision boundary drowns in recall bias.
  double pos_weight = std::min(
      4.0, static_cast<double>(examples.size() - positives) /
               static_cast<double>(positives));
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&examples);
    for (const Example& ex : examples) {
      double z = bias_;
      for (size_t i = 0; i < kNumPairFeatures; ++i) {
        z += weights_[i] * ex.features[i];
      }
      double p = 1.0 / (1.0 + std::exp(-z));
      double gradient = (ex.label - p) *
                        (ex.label > 0.5 ? pos_weight : 1.0);
      double lr = options.learning_rate;
      for (size_t i = 0; i < kNumPairFeatures; ++i) {
        weights_[i] += lr * (gradient * ex.features[i] -
                             options.l2 * weights_[i]);
      }
      bias_ += lr * gradient;
    }
  }
}

double LogisticMatcher::Probability(const Record& a, const Record& b) const {
  PairFeatures f = ComputeFeatures(a, b);
  double z = bias_;
  for (size_t i = 0; i < kNumPairFeatures; ++i) z += weights_[i] * f[i];
  return 1.0 / (1.0 + std::exp(-z));
}

std::vector<Match> LogisticMatcher::MatchPairs(
    const std::vector<Record>& a, const std::vector<Record>& b,
    const std::vector<CandidatePair>& pairs, double threshold) const {
  std::vector<Match> out;
  for (const CandidatePair& p : pairs) {
    double prob = Probability(a[p.first], b[p.second]);
    if (prob >= threshold) {
      out.push_back({p.first, p.second, prob});
    }
  }
  return out;
}

LinkageQuality EvaluateMatches(const std::vector<Record>& a,
                               const std::vector<Record>& b,
                               const std::vector<Match>& matches) {
  std::set<std::pair<uint32_t, uint32_t>> gold;
  std::map<uint32_t, std::vector<uint32_t>> b_by_entity;
  for (const Record& r : b) b_by_entity[r.gold_entity].push_back(r.id);
  for (const Record& r : a) {
    auto it = b_by_entity.find(r.gold_entity);
    if (it == b_by_entity.end()) continue;
    for (uint32_t j : it->second) gold.emplace(r.id, j);
  }
  std::set<std::pair<uint32_t, uint32_t>> predicted;
  for (const Match& m : matches) predicted.emplace(m.a, m.b);
  size_t tp = 0;
  for (const auto& p : predicted) {
    if (gold.count(p) > 0) ++tp;
  }
  LinkageQuality q;
  q.precision = predicted.empty()
                    ? 0.0
                    : static_cast<double>(tp) / predicted.size();
  q.recall = gold.empty() ? 0.0 : static_cast<double>(tp) / gold.size();
  q.f1 = (q.precision + q.recall) == 0
             ? 0.0
             : 2 * q.precision * q.recall / (q.precision + q.recall);
  return q;
}

}  // namespace linkage
}  // namespace kb
