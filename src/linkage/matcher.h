#ifndef KBFORGE_LINKAGE_MATCHER_H_
#define KBFORGE_LINKAGE_MATCHER_H_

#include <array>
#include <vector>

#include "linkage/blocking.h"
#include "linkage/record.h"

namespace kb {
namespace linkage {

/// The per-pair feature vector used by the learned matcher.
inline constexpr size_t kNumPairFeatures = 6;
using PairFeatures = std::array<double, kNumPairFeatures>;

/// Computes similarity features for one record pair: Jaro-Winkler and
/// trigram-Jaccard of the names, token Jaccard, year agreement, place
/// agreement, kind equality.
PairFeatures ComputeFeatures(const Record& a, const Record& b);

/// A decided match with its score.
struct Match {
  uint32_t a = 0;
  uint32_t b = 0;
  double score = 0.0;
};

/// Baseline matcher: name Jaro-Winkler above a threshold.
std::vector<Match> ThresholdMatch(const std::vector<Record>& a,
                                  const std::vector<Record>& b,
                                  const std::vector<CandidatePair>& pairs,
                                  double threshold);

/// Training hyperparameters of the logistic matcher.
struct TrainOptions {
  int epochs = 30;
  double learning_rate = 0.5;
  double l2 = 1e-4;
  uint64_t seed = 77;
};

/// Logistic-regression matcher trained on labeled pairs (the
/// "statistical learning approaches" to entity linkage of tutorial §4).
class LogisticMatcher {
 public:
  /// Trains on candidate pairs labeled by gold entity equality.
  void Train(const std::vector<Record>& a, const std::vector<Record>& b,
             const std::vector<CandidatePair>& pairs,
             const TrainOptions& options = TrainOptions());

  /// P(match) for one pair.
  double Probability(const Record& a, const Record& b) const;

  /// All pairs with P(match) >= threshold.
  std::vector<Match> MatchPairs(const std::vector<Record>& a,
                                const std::vector<Record>& b,
                                const std::vector<CandidatePair>& pairs,
                                double threshold = 0.5) const;

  const PairFeatures& weights() const { return weights_; }

 private:
  PairFeatures weights_ = {};
  double bias_ = 0.0;
};

/// Scores match quality against the gold record alignment.
/// A predicted pair is correct iff both records share a gold entity;
/// recall is over all co-present gold entity pairs.
struct LinkageQuality {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};
LinkageQuality EvaluateMatches(const std::vector<Record>& a,
                               const std::vector<Record>& b,
                               const std::vector<Match>& matches);

}  // namespace linkage
}  // namespace kb

#endif  // KBFORGE_LINKAGE_MATCHER_H_
