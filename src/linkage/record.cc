#include "linkage/record.h"

#include "util/random.h"

namespace kb {
namespace linkage {

namespace {
/// Applies one random character edit (substitute/delete/swap).
std::string Typo(const std::string& s, Rng* rng) {
  if (s.size() < 3) return s;
  std::string out = s;
  size_t pos = 1 + rng->Uniform(out.size() - 2);
  switch (rng->Uniform(3)) {
    case 0:  // substitute
      out[pos] = static_cast<char>('a' + rng->Uniform(26));
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    default:  // swap
      std::swap(out[pos], out[pos - 1]);
      break;
  }
  return out;
}
}  // namespace

std::vector<Record> MakeNoisyRecords(const corpus::World& world,
                                     const NoisyCopyOptions& options) {
  Rng rng(options.seed);
  std::vector<Record> out;
  auto add_kind = [&](corpus::EntityKind kind) {
    for (uint32_t id : world.ByKind(kind)) {
      if (rng.Bernoulli(options.drop_rate)) continue;
      const corpus::Entity& e = world.entity(id);
      Record r;
      r.id = static_cast<uint32_t>(out.size());
      r.gold_entity = id;
      r.kind = std::string(corpus::EntityKindName(kind));
      r.name = e.full_name;
      if (!e.aliases.empty() && rng.Bernoulli(options.alias_rate)) {
        r.name = rng.Choice(e.aliases);
      }
      if (rng.Bernoulli(options.typo_rate)) {
        r.name = Typo(r.name, &rng);
      }
      // Year attribute: birth year (persons) / founding year (companies).
      int32_t year = 0;
      if (kind == corpus::EntityKind::kPerson) {
        year = e.birth_date.year;
      } else {
        for (const corpus::GoldFact* f : world.FactsOf(id)) {
          if (f->relation == corpus::Relation::kFoundedYear) {
            year = f->literal_year;
          }
        }
      }
      if (!rng.Bernoulli(options.year_missing_rate)) {
        if (rng.Bernoulli(options.year_off_by_one_rate)) {
          year += rng.Bernoulli(0.5) ? 1 : -1;
        }
        r.year = year;
      }
      // Place attribute: birth city / headquarters city.
      if (!rng.Bernoulli(options.place_missing_rate)) {
        for (const corpus::GoldFact* f : world.FactsOf(id)) {
          if (f->relation == corpus::Relation::kBornIn ||
              f->relation == corpus::Relation::kHeadquarteredIn) {
            r.place = world.entity(f->object).full_name;
            break;
          }
        }
      }
      out.push_back(std::move(r));
    }
  };
  add_kind(corpus::EntityKind::kPerson);
  add_kind(corpus::EntityKind::kCompany);
  return out;
}

}  // namespace linkage
}  // namespace kb
