#ifndef KBFORGE_LINKAGE_RECORD_H_
#define KBFORGE_LINKAGE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/world.h"

namespace kb {
namespace linkage {

/// A semi-structured record as it appears in one knowledge resource:
/// entity linkage must decide which records of two resources denote
/// the same real-world entity (owl:sameAs, tutorial §4).
struct Record {
  uint32_t id = 0;          ///< position in its record set
  uint32_t gold_entity = UINT32_MAX;  ///< hidden ground truth
  std::string name;
  std::string kind;         ///< "person", "company", ...
  int32_t year = 0;         ///< birth/founding year (0 = missing)
  std::string place;        ///< associated city name (may be empty)
};

/// Noise knobs for deriving a record set from the gold world.
struct NoisyCopyOptions {
  uint64_t seed = 3;
  double typo_rate = 0.25;       ///< name gets a character edit
  double alias_rate = 0.2;       ///< name replaced by an alias
  double year_missing_rate = 0.15;
  double year_off_by_one_rate = 0.1;
  double place_missing_rate = 0.2;
  double drop_rate = 0.1;        ///< entity absent from this copy
};

/// Derives one noisy record set from the world (persons + companies).
/// Two calls with different seeds model two independently-curated
/// knowledge resources describing the same underlying entities.
std::vector<Record> MakeNoisyRecords(const corpus::World& world,
                                     const NoisyCopyOptions& options);

}  // namespace linkage
}  // namespace kb

#endif  // KBFORGE_LINKAGE_RECORD_H_
