#include "linkage/similarity.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/string_util.h"

namespace kb {
namespace linkage {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, prev[i - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t d = Levenshtein(a, b);
  size_t max_len = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(d) / static_cast<double>(max_len);
}

double Jaro(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  size_t window =
      std::max(a.size(), b.size()) / 2 > 0
          ? std::max(a.size(), b.size()) / 2 - 1
          : 0;
  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Transpositions.
  size_t transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() +
          (m - transpositions / 2.0) / m) /
         3.0;
}

double JaroWinkler(std::string_view a, std::string_view b) {
  double jaro = Jaro(a, b);
  size_t prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] != b[i]) break;
    ++prefix;
  }
  return jaro + 0.1 * static_cast<double>(prefix) * (1.0 - jaro);
}

double NgramJaccard(std::string_view a, std::string_view b, int n) {
  auto grams = [n](std::string_view s) {
    std::set<std::string> out;
    std::string padded = "^" + std::string(s) + "$";
    if (static_cast<int>(padded.size()) < n) {
      out.insert(padded);
      return out;
    }
    for (size_t i = 0; i + n <= padded.size(); ++i) {
      out.insert(padded.substr(i, n));
    }
    return out;
  };
  std::set<std::string> ga = grams(a), gb = grams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& g : ga) inter += gb.count(g);
  size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

double TokenJaccard(std::string_view a, std::string_view b) {
  auto tokens = [](std::string_view s) {
    std::set<std::string> out;
    for (const std::string& t : SplitWhitespace(ToLower(s))) out.insert(t);
    return out;
  };
  std::set<std::string> ta = tokens(a), tb = tokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& t : ta) inter += tb.count(t);
  size_t uni = ta.size() + tb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

double NumericSimilarity(double a, double b, double scale) {
  if (scale <= 0) return a == b ? 1.0 : 0.0;
  double sim = 1.0 - std::abs(a - b) / scale;
  return std::clamp(sim, 0.0, 1.0);
}

}  // namespace linkage
}  // namespace kb
