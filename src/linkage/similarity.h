#ifndef KBFORGE_LINKAGE_SIMILARITY_H_
#define KBFORGE_LINKAGE_SIMILARITY_H_

#include <string>
#include <string_view>

namespace kb {
namespace linkage {

/// Edit distance (Levenshtein, unit costs).
size_t Levenshtein(std::string_view a, std::string_view b);

/// Normalized edit similarity in [0, 1].
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double Jaro(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro with a bonus for a shared prefix (standard
/// p=0.1, max prefix 4) — the workhorse of record-linkage name fields.
double JaroWinkler(std::string_view a, std::string_view b);

/// Jaccard overlap of character n-gram sets.
double NgramJaccard(std::string_view a, std::string_view b, int n = 3);

/// Jaccard overlap of whitespace token sets (case-insensitive).
double TokenJaccard(std::string_view a, std::string_view b);

/// 1 - |a-b|/scale, clamped to [0, 1]; for numeric attributes.
double NumericSimilarity(double a, double b, double scale);

}  // namespace linkage
}  // namespace kb

#endif  // KBFORGE_LINKAGE_SIMILARITY_H_
