#include "loadgen/held_open.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <string_view>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace kb {
namespace loadgen {

namespace {

using Clock = std::chrono::steady_clock;

struct ConnState {
  int fd = -1;
  bool connecting = false;  ///< non-blocking connect still in flight
  bool dead = false;
  uint64_t next_op = 0;     ///< next global op index on this connection
  std::string wbuf;
  size_t wpos = 0;
  std::string rbuf;
  size_t rpos = 0;
  std::deque<Clock::time_point> inflight;  ///< intended starts, FIFO
};

void AppendFrame(std::string* out, const std::string& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  out->push_back(static_cast<char>((len >> 24) & 0xff));
  out->push_back(static_cast<char>((len >> 16) & 0xff));
  out->push_back(static_cast<char>((len >> 8) & 0xff));
  out->push_back(static_cast<char>(len & 0xff));
  out->append(payload);
}

bool StartConnect(ConnState* conn, int port) {
  conn->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (conn->fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int rc = ::connect(conn->fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
  if (rc == 0) {
    int one = 1;
    ::setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }
  if (errno == EINPROGRESS) {
    conn->connecting = true;
    return true;
  }
  ::close(conn->fd);
  conn->fd = -1;
  return false;
}

/// One driver thread's shard of the run.
struct Shard {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t sheds = 0;
  uint64_t lost = 0;
  uint64_t dead = 0;
};

void KillConn(ConnState* conn, Shard* shard) {
  if (conn->dead) return;
  conn->dead = true;
  ++shard->dead;
  shard->lost += conn->inflight.size();
  conn->inflight.clear();
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

/// Consumes complete response frames from conn->rbuf. Classification
/// is a cheap substring probe, not a JSON parse — at hundreds of
/// thousands of responses the parse would dominate the driver.
void ConsumeResponses(ConnState* conn, Shard* shard, Histogram* latency_ms,
                      Clock::time_point now) {
  for (;;) {
    size_t avail = conn->rbuf.size() - conn->rpos;
    if (avail < 4) break;
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(conn->rbuf.data() + conn->rpos);
    uint32_t len = (static_cast<uint32_t>(p[0]) << 24) |
                   (static_cast<uint32_t>(p[1]) << 16) |
                   (static_cast<uint32_t>(p[2]) << 8) |
                   static_cast<uint32_t>(p[3]);
    if (avail - 4 < len) break;
    const char* body = conn->rbuf.data() + conn->rpos + 4;
    conn->rpos += 4 + static_cast<size_t>(len);
    if (conn->inflight.empty()) continue;  // unsolicited (shed race)
    Clock::time_point intended = conn->inflight.front();
    conn->inflight.pop_front();
    std::string_view view(body, len);
    if (view.find("\"status\":\"ok\"") != std::string_view::npos) {
      ++shard->completed;
      if (latency_ms != nullptr) {
        latency_ms->Observe(
            std::chrono::duration<double, std::milli>(now - intended).count());
      }
    } else {
      ++shard->errors;
      if (view.find("overloaded") != std::string_view::npos) ++shard->sheds;
    }
  }
  if (conn->rpos == conn->rbuf.size()) {
    conn->rbuf.clear();
    conn->rpos = 0;
  } else if (conn->rpos >= 4096) {
    conn->rbuf.erase(0, conn->rpos);
    conn->rpos = 0;
  }
}

}  // namespace

HeldOpenResult RunHeldOpen(const HeldOpenOptions& options,
                           Histogram* latency_ms) {
  KB_CHECK(options.target_ops_per_sec > 0);
  KB_CHECK(options.num_connections > 0);
  KB_CHECK(options.num_threads > 0);
  KB_CHECK(options.make_request != nullptr);

  const uint64_t num_ops = options.num_ops;
  const size_t num_conns = options.num_connections;
  const int threads =
      static_cast<int>(std::min<size_t>(
          static_cast<size_t>(options.num_threads), num_conns));
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / options.target_ops_per_sec));
  const auto start = Clock::now();
  const auto issue_deadline = start + interval * static_cast<int64_t>(num_ops);
  const auto hard_deadline =
      issue_deadline + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options.drain_timeout_ms));
  const auto connect_deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      options.connect_timeout_ms));

  std::vector<Shard> shards(static_cast<size_t>(threads));
  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    drivers.emplace_back([&, t] {
      Shard* shard = &shards[static_cast<size_t>(t)];
      // Connection c is owned by thread c % T and carries global ops
      // c, c+C, c+2C, ... of the shared schedule.
      std::vector<ConnState> conns;
      for (size_t c = static_cast<size_t>(t); c < num_conns;
           c += static_cast<size_t>(threads)) {
        ConnState conn;
        conn.next_op = c;
        if (!StartConnect(&conn, options.port)) {
          conn.dead = true;
          ++shard->dead;
        }
        conns.push_back(std::move(conn));
      }
      std::vector<pollfd> pfds;
      pfds.reserve(conns.size());
      std::vector<size_t> pfd_conn;
      pfd_conn.reserve(conns.size());

      for (;;) {
        auto now = Clock::now();
        if (now >= hard_deadline) break;
        bool anything_live = false;
        bool anything_due_later = false;
        auto next_due = hard_deadline;

        for (ConnState& conn : conns) {
          if (conn.dead || conn.connecting) {
            if (conn.connecting) {
              anything_live = true;
              if (now >= connect_deadline) KillConn(&conn, shard);
            }
            continue;
          }
          // Enqueue every op that is due, up to the pipeline cap. Ops
          // held back by the cap keep their original intended start,
          // so the delay is charged to the server.
          while (conn.next_op < num_ops &&
                 conn.inflight.size() < options.max_pipeline) {
            auto intended =
                start + interval * static_cast<int64_t>(conn.next_op);
            if (intended > now) {
              anything_due_later = true;
              next_due = std::min(next_due, intended);
              break;
            }
            AppendFrame(&conn.wbuf, options.make_request(conn.next_op));
            conn.inflight.push_back(intended);
            ++shard->issued;
            conn.next_op += num_conns;
          }
          if (conn.next_op < num_ops || !conn.inflight.empty()) {
            anything_live = true;
          }
          // Flush pending writes.
          while (conn.wpos < conn.wbuf.size()) {
            ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.wpos,
                               conn.wbuf.size() - conn.wpos,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
            if (n > 0) {
              conn.wpos += static_cast<size_t>(n);
            } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
              break;
            } else if (n < 0 && errno == EINTR) {
              continue;
            } else {
              // EPIPE/ECONNRESET: drain whatever responses are already
              // buffered (a shed frame, tail responses) before burying
              // the connection.
              break;
            }
          }
          if (conn.wpos == conn.wbuf.size()) {
            conn.wbuf.clear();
            conn.wpos = 0;
          }
          // Drain responses.
          char buf[16 * 1024];
          for (;;) {
            ssize_t n = ::recv(conn.fd, buf, sizeof(buf), MSG_DONTWAIT);
            if (n > 0) {
              conn.rbuf.append(buf, static_cast<size_t>(n));
              if (n < static_cast<ssize_t>(sizeof(buf))) break;
            } else if (n == 0) {
              ConsumeResponses(&conn, shard, latency_ms, Clock::now());
              KillConn(&conn, shard);
              break;
            } else if (errno == EINTR) {
              continue;
            } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
              break;
            } else {
              ConsumeResponses(&conn, shard, latency_ms, Clock::now());
              KillConn(&conn, shard);
              break;
            }
          }
          if (conn.dead) continue;
          ConsumeResponses(&conn, shard, latency_ms, Clock::now());
        }

        if (!anything_live && !anything_due_later) break;

        // Sleep in poll until a socket is ready or the next op is due.
        pfds.clear();
        pfd_conn.clear();
        for (size_t ci = 0; ci < conns.size(); ++ci) {
          ConnState& conn = conns[ci];
          if (conn.dead) continue;
          short events = 0;
          if (conn.connecting || conn.wpos < conn.wbuf.size()) {
            events |= POLLOUT;
          }
          if (!conn.inflight.empty()) events |= POLLIN;
          if (events == 0) continue;
          pfds.push_back(pollfd{conn.fd, events, 0});
          pfd_conn.push_back(ci);
        }
        auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
            next_due - Clock::now());
        int timeout = static_cast<int>(
            std::clamp<int64_t>(wait.count(), 0, 10));
        if (pfds.empty()) {
          if (timeout > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(timeout));
          }
          continue;
        }
        ::poll(pfds.data(), pfds.size(), timeout);
        for (size_t pi = 0; pi < pfds.size(); ++pi) {
          if ((pfds[pi].revents & POLLOUT) == 0) continue;
          ConnState& conn = conns[pfd_conn[pi]];
          if (!conn.connecting) continue;
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            KillConn(&conn, shard);
            continue;
          }
          conn.connecting = false;
          int one = 1;
          ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
      }

      // Account the unfinished: in-flight ops and never-issued
      // schedule slots on both live and dead connections.
      for (ConnState& conn : conns) {
        shard->lost += conn.inflight.size();
        for (uint64_t op = conn.next_op; op < num_ops; op += num_conns) {
          ++shard->lost;
        }
        if (conn.fd >= 0) ::close(conn.fd);
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();

  HeldOpenResult result;
  result.scheduled = num_ops;
  for (const Shard& shard : shards) {
    result.issued += shard.issued;
    result.completed += shard.completed;
    result.errors += shard.errors;
    result.sheds += shard.sheds;
    result.lost += shard.lost;
    result.dead_connections += shard.dead;
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace loadgen
}  // namespace kb
