#ifndef KBFORGE_LOADGEN_HELD_OPEN_H_
#define KBFORGE_LOADGEN_HELD_OPEN_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/metrics_registry.h"

namespace kb {
namespace loadgen {

/// Open-loop load over many *held-open* connections (open_loop.h runs
/// the schedule but gives each op a fresh or caller-managed call; this
/// driver owns the sockets). A few driver threads multiplex
/// `num_connections` non-blocking connections each, spreading one
/// global arrival schedule across them: op i is due at start + i/rate
/// and belongs to connection i % C, so every connection carries an
/// equal rate/C trickle — the shape of ten thousand modest clients,
/// which is precisely the workload a thread-per-connection server
/// cannot hold (it serves the first workers+queue connections and
/// sheds the rest) and an event-driven core must.
///
/// Ops are charged from their *intended* start — including time spent
/// waiting for pipeline capacity or a writable socket — so stalls land
/// in the latency histogram instead of hiding (no coordinated
/// omission). Up to `max_pipeline` requests ride in flight per
/// connection; responses are length-prefixed frames matched FIFO,
/// which is exactly the in-order contract the server's pipelining
/// guarantees.
struct HeldOpenOptions {
  int port = 0;
  size_t num_connections = 64;
  double target_ops_per_sec = 1000.0;  ///< total across all connections
  uint64_t num_ops = 1000;
  int num_threads = 2;        ///< driver threads multiplexing the conns
  size_t max_pipeline = 8;    ///< in-flight cap per connection
  double connect_timeout_ms = 5000;
  /// After the last op is issued, wait at most this long for
  /// stragglers; unanswered in-flight ops then count as lost.
  double drain_timeout_ms = 10000;
  /// Builds the JSON payload for global op `i`.
  std::function<std::string(uint64_t op_index)> make_request;
};

struct HeldOpenResult {
  uint64_t scheduled = 0;   ///< num_ops
  uint64_t issued = 0;      ///< frames actually written toward a server
  uint64_t completed = 0;   ///< "status":"ok" responses
  uint64_t errors = 0;      ///< non-ok responses (sheds included)
  uint64_t sheds = 0;       ///< "overloaded" responses
  uint64_t lost = 0;        ///< issued or due, but never answered
  uint64_t dead_connections = 0;  ///< closed/refused/failed conns
  double wall_seconds = 0;

  double achieved_ops_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(completed) / wall_seconds
                            : 0.0;
  }
};

/// Runs the schedule. Latencies (ms from intended start to response)
/// go into `latency_ms` when non-null; only completed ops are
/// recorded. A connection the server sheds or drops is marked dead and
/// its remaining schedule counts as lost — it is not retried, so the
/// result reflects what the server actually sustained.
HeldOpenResult RunHeldOpen(const HeldOpenOptions& options,
                           Histogram* latency_ms);

}  // namespace loadgen
}  // namespace kb

#endif  // KBFORGE_LOADGEN_HELD_OPEN_H_
