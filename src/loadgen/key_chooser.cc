#include "loadgen/key_chooser.h"

#include <cmath>

#include "util/logging.h"

namespace kb {
namespace loadgen {

UniformChooser::UniformChooser(uint64_t num_records)
    : num_records_(num_records) {
  KB_CHECK(num_records > 0);
}

uint64_t UniformChooser::Next(Rng& rng) { return rng.Uniform(num_records_); }

ZipfianChooser::ZipfianChooser(uint64_t num_records, double theta)
    : num_records_(num_records),
      theta_(theta),
      zetan_(Zeta(num_records, theta)),
      zeta2theta_(Zeta(2, theta)) {
  KB_CHECK(num_records > 0);
  KB_CHECK(theta > 0.0 && theta < 1.0);
  RefreshConstants();
}

double ZipfianChooser::Zeta(uint64_t n, double theta, uint64_t cached_n,
                            double cached_sum) {
  double sum = cached_sum;
  for (uint64_t i = cached_n; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

void ZipfianChooser::RefreshConstants() {
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_records_),
                         1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianChooser::Next(Rng& rng) {
  // Gray et al. §3.2: the first two ranks carry enough mass to invert
  // exactly; the rest goes through the approximate inverse CDF.
  double u = rng.UniformDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  double rank = static_cast<double>(num_records_) *
                std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(rank);
  return result >= num_records_ ? num_records_ - 1 : result;
}

LatestChooser::LatestChooser(const std::atomic<uint64_t>* insert_count,
                             double theta)
    : insert_count_(insert_count),
      zipf_(std::max<uint64_t>(1, insert_count->load()), theta) {
  KB_CHECK(insert_count != nullptr);
}

uint64_t LatestChooser::Next(Rng& rng) {
  uint64_t n = std::max<uint64_t>(1, insert_count_->load());
  if (n != zipf_.num_records_) {
    // Extend (or in the shrink case rebuild) the zeta sum, then
    // rederive the inversion constants for the new key-space size.
    zipf_.zetan_ = n > zipf_.num_records_
                       ? ZipfianChooser::Zeta(n, zipf_.theta_,
                                              zipf_.num_records_, zipf_.zetan_)
                       : ZipfianChooser::Zeta(n, zipf_.theta_);
    zipf_.num_records_ = n;
    zipf_.RefreshConstants();
  }
  // Hottest zipfian rank 0 -> newest record n-1.
  return n - 1 - zipf_.Next(rng);
}

}  // namespace loadgen
}  // namespace kb
