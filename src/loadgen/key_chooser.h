#ifndef KBFORGE_LOADGEN_KEY_CHOOSER_H_
#define KBFORGE_LOADGEN_KEY_CHOOSER_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/random.h"

namespace kb {
namespace loadgen {

/// Picks which record an operation touches. Implementations are
/// deterministic given the caller's Rng, so a seeded run replays the
/// exact same key sequence. Not thread-safe unless noted: give each
/// load-generator thread its own chooser (forked from the same seed
/// stream) the way it gets its own Rng.
class KeyChooser {
 public:
  virtual ~KeyChooser() = default;

  /// The next record index in [0, current key-space size).
  virtual uint64_t Next(Rng& rng) = 0;
};

/// Every record equally likely — the closed-loop benches' implicit
/// assumption, kept as the ablation baseline for the skewed choosers.
class UniformChooser : public KeyChooser {
 public:
  explicit UniformChooser(uint64_t num_records);
  uint64_t Next(Rng& rng) override;

 private:
  uint64_t num_records_;
};

/// Zipfian-distributed ranks via the Gray et al. analytic-inversion
/// method ("Quickly Generating Billion-Record Synthetic Databases",
/// SIGMOD '94), the same algorithm YCSB's ZipfianGenerator uses: draw
/// u ~ U(0,1) and invert an approximation of the Zipf CDF, with the
/// two head ranks handled exactly and the tail mapped through
/// eta/alpha constants precomputed from the zeta sums. O(n) setup to
/// accumulate zeta(n, theta), O(1) per draw.
///
/// Rank 0 is the hottest key. theta in (0, 1); YCSB's default 0.99
/// puts ~9% of draws on the hottest of 10^6 records.
class ZipfianChooser : public KeyChooser {
 public:
  explicit ZipfianChooser(uint64_t num_records, double theta = kDefaultTheta);
  uint64_t Next(Rng& rng) override;

  /// Incremental zeta: extends a cached zeta(cached_n, theta) sum to
  /// `n` terms. Exposed for LatestChooser and tests.
  static double Zeta(uint64_t n, double theta, uint64_t cached_n = 0,
                     double cached_sum = 0.0);

  static constexpr double kDefaultTheta = 0.99;

 private:
  friend class LatestChooser;

  /// Recomputes the inversion constants after num_records_/zetan_
  /// changed (LatestChooser grows the key space between draws).
  void RefreshConstants();

  uint64_t num_records_;
  double theta_;
  double zetan_;        ///< zeta(num_records_, theta_)
  double zeta2theta_;   ///< zeta(2, theta_)
  double alpha_, eta_;  ///< Gray et al. inversion constants
};

/// "Latest" skew: a Zipfian over recency, so the most recently
/// inserted record is the hottest (YCSB workload D's read side —
/// think status updates: readers chase the newest facts). The key
/// space grows as the shared insert counter advances; the zeta sum is
/// extended incrementally, so growth costs O(new records) amortized,
/// not O(n) per draw.
///
/// `insert_count` is shared with the inserting threads and may be
/// advanced concurrently; each LatestChooser instance itself is
/// single-threaded.
class LatestChooser : public KeyChooser {
 public:
  LatestChooser(const std::atomic<uint64_t>* insert_count,
                double theta = ZipfianChooser::kDefaultTheta);

  /// Record index in [0, insert_count), biased toward insert_count-1.
  uint64_t Next(Rng& rng) override;

 private:
  const std::atomic<uint64_t>* insert_count_;
  ZipfianChooser zipf_;
};

}  // namespace loadgen
}  // namespace kb

#endif  // KBFORGE_LOADGEN_KEY_CHOOSER_H_
