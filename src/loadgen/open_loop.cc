#include "loadgen/open_loop.h"

#include <atomic>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace kb {
namespace loadgen {

OpenLoopResult RunOpenLoop(const OpenLoopOptions& options, const OpFn& op,
                           Histogram* latency_ms) {
  KB_CHECK(options.target_ops_per_sec > 0);
  KB_CHECK(options.num_threads > 0);
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / options.target_ops_per_sec));
  const int threads = options.num_threads;
  std::atomic<uint64_t> completed{0}, errors{0};
  Rng seeder(options.seed);
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    rngs.push_back(seeder.Fork(static_cast<uint64_t>(t)));
  }

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng& rng = rngs[static_cast<size_t>(t)];
      for (uint64_t i = static_cast<uint64_t>(t); i < options.num_ops;
           i += static_cast<uint64_t>(threads)) {
        // The schedule, not the previous response, decides when op i
        // runs; sleeping past `intended` only happens when we are
        // ahead of it.
        const auto intended = start + interval * static_cast<int64_t>(i);
        std::this_thread::sleep_until(intended);
        bool ok = op(i, rng);
        if (ok) {
          completed.fetch_add(1, std::memory_order_relaxed);
          if (latency_ms != nullptr) {
            latency_ms->Observe(
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          intended)
                    .count());
          }
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  OpenLoopResult result;
  result.scheduled = options.num_ops;
  result.completed = completed.load();
  result.errors = errors.load();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace loadgen
}  // namespace kb
