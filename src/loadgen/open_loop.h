#ifndef KBFORGE_LOADGEN_OPEN_LOOP_H_
#define KBFORGE_LOADGEN_OPEN_LOOP_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "util/metrics_registry.h"
#include "util/random.h"

namespace kb {
namespace loadgen {

/// Open-loop arrival schedule. A closed loop waits for each response
/// before sending the next request, so a slow server conveniently slows
/// its own load — the "coordinated omission" blind spot: stalls hide
/// from the latency record exactly when they matter. An open loop fixes
/// the arrival times in advance (op i is *due* at start + i/rate,
/// regardless of how the previous ops fared) and charges each op from
/// its intended start, so queueing delay behind a stall lands in the
/// histogram instead of disappearing from it.
struct OpenLoopOptions {
  double target_ops_per_sec = 1000.0;
  uint64_t num_ops = 1000;
  /// Generator threads; thread t owns ops t, t+T, t+2T, ... of the one
  /// global schedule (each op keeps its global intended start).
  int num_threads = 1;
  /// Seed for the per-thread Rngs handed to the op functor.
  uint64_t seed = 1;
};

struct OpenLoopResult {
  uint64_t scheduled = 0;  ///< num_ops
  uint64_t completed = 0;  ///< ops whose functor returned true
  uint64_t errors = 0;     ///< ops whose functor returned false
  double wall_seconds = 0;

  double achieved_ops_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(completed) / wall_seconds
                            : 0.0;
  }
};

/// One operation. `op_index` is the global schedule position (stable
/// across thread counts for a fixed num_threads); `rng` is the
/// thread's seeded generator. Return false to count an error.
using OpFn = std::function<bool(uint64_t op_index, Rng& rng)>;

/// Runs `op` over the open-loop schedule. Latencies (milliseconds from
/// *intended* start to completion) go into `latency_ms` when non-null;
/// errored ops are not recorded. Blocks until every scheduled op has
/// run — the schedule never skips, so a generator that cannot keep up
/// degrades into back-to-back issue with honestly huge latencies.
OpenLoopResult RunOpenLoop(const OpenLoopOptions& options, const OpFn& op,
                           Histogram* latency_ms);

}  // namespace loadgen
}  // namespace kb

#endif  // KBFORGE_LOADGEN_OPEN_LOOP_H_
