#include "loadgen/workload.h"

#include <cctype>

#include "util/logging.h"

namespace kb {
namespace loadgen {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kRead:
      return "read";
    case OpType::kUpdate:
      return "update";
    case OpType::kInsert:
      return "insert";
    case OpType::kScan:
      return "scan";
  }
  return "unknown";
}

const char* SkewName(Skew skew) {
  switch (skew) {
    case Skew::kUniform:
      return "uniform";
    case Skew::kZipfian:
      return "zipfian";
    case Skew::kLatest:
      return "latest";
  }
  return "unknown";
}

OpType WorkloadMix::Choose(Rng& rng) const {
  double u = rng.UniformDouble();
  if ((u -= read) < 0) return OpType::kRead;
  if ((u -= update) < 0) return OpType::kUpdate;
  if ((u -= insert) < 0) return OpType::kInsert;
  return OpType::kScan;
}

Workload Workload::Ycsb(char letter) {
  Workload w;
  w.name.assign(1, static_cast<char>(std::toupper(
                       static_cast<unsigned char>(letter))));
  switch (w.name[0]) {
    case 'A':
      w.mix = {0.5, 0.5, 0, 0};
      break;
    case 'B':
      w.mix = {0.95, 0.05, 0, 0};
      break;
    case 'C':
      w.mix = {1.0, 0, 0, 0};
      break;
    case 'D':
      w.mix = {0.95, 0, 0.05, 0};
      w.skew = Skew::kLatest;
      break;
    case 'E':
      w.mix = {0, 0, 0.05, 0.95};
      break;
    default:
      KB_CHECK(false) << "unknown YCSB workload: " << letter;
  }
  return w;
}

std::unique_ptr<KeyChooser> Workload::MakeChooser(
    uint64_t initial_records,
    const std::atomic<uint64_t>* insert_count) const {
  switch (skew) {
    case Skew::kUniform:
      return std::make_unique<UniformChooser>(initial_records);
    case Skew::kZipfian:
      return std::make_unique<ZipfianChooser>(initial_records);
    case Skew::kLatest:
      KB_CHECK(insert_count != nullptr)
          << "latest skew needs the shared insert counter";
      return std::make_unique<LatestChooser>(insert_count);
  }
  return nullptr;
}

}  // namespace loadgen
}  // namespace kb
