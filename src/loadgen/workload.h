#ifndef KBFORGE_LOADGEN_WORKLOAD_H_
#define KBFORGE_LOADGEN_WORKLOAD_H_

#include <atomic>
#include <memory>
#include <string>

#include "loadgen/key_chooser.h"
#include "util/random.h"

namespace kb {
namespace loadgen {

/// The YCSB operation vocabulary. kInsert appends a fresh record at
/// the end of the key space (advancing the shared insert counter);
/// everything else targets an existing record through the chooser.
enum class OpType { kRead, kUpdate, kInsert, kScan };

const char* OpTypeName(OpType op);

/// Which distribution drives key choice for read/update/scan targets.
enum class Skew { kUniform, kZipfian, kLatest };

const char* SkewName(Skew skew);

/// Operation-mix proportions (must sum to ~1). Mirrors the YCSB core
/// workload matrix; Choose() turns one uniform draw into an OpType.
struct WorkloadMix {
  double read = 0, update = 0, insert = 0, scan = 0;

  OpType Choose(Rng& rng) const;
};

/// One YCSB-style workload: a mix plus the skew of its key choice.
///
///   A  update-heavy   50% read / 50% update            zipfian
///   B  read-mostly    95% read /  5% update            zipfian
///   C  read-only     100% read                         zipfian
///   D  read-latest    95% read /  5% insert            latest
///   E  short-scans    95% scan /  5% insert            zipfian
struct Workload {
  std::string name;  ///< "A".."E"
  WorkloadMix mix;
  Skew skew = Skew::kZipfian;
  /// Scan lengths are uniform in [1, max_scan_len] (workload E).
  uint64_t max_scan_len = 100;

  /// The preset matrix above; `letter` in "ABCDE" (case-insensitive).
  /// Dies on an unknown letter.
  static Workload Ycsb(char letter);

  /// The chooser implementing `skew` over a key space of
  /// `initial_records` records grown by `insert_count` (shared with
  /// inserting threads; must outlive the chooser; may be null when the
  /// workload never inserts).
  std::unique_ptr<KeyChooser> MakeChooser(
      uint64_t initial_records,
      const std::atomic<uint64_t>* insert_count) const;
};

}  // namespace loadgen
}  // namespace kb

#endif  // KBFORGE_LOADGEN_WORKLOAD_H_
