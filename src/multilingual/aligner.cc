#include "multilingual/aligner.h"

#include <algorithm>
#include <map>
#include <set>

#include "linkage/similarity.h"
#include "util/string_util.h"

namespace kb {
namespace multilingual {

std::vector<Alignment> AlignViews(const KbView& left, const KbView& right,
                                  const std::vector<Alignment>& seeds,
                                  const AlignerOptions& options) {
  // Current mapping left -> right (and its inverse).
  std::map<uint32_t, uint32_t> mapped, inverse;
  for (const Alignment& seed : seeds) {
    mapped[seed.left] = seed.right;
    inverse[seed.right] = seed.left;
  }

  // Candidate blocking by lowercase label prefix.
  std::map<std::string, std::vector<uint32_t>> right_blocks;
  for (uint32_t j = 0; j < right.labels.size(); ++j) {
    std::string key = ToLower(right.labels[j]).substr(
        0, std::min(options.block_prefix, right.labels[j].size()));
    right_blocks[key].push_back(j);
  }

  auto structure_overlap = [&](uint32_t i, uint32_t j) {
    // Fraction of i's neighbors whose mapping lands in j's neighbors.
    if (i >= left.neighbors.size() || j >= right.neighbors.size()) {
      return 0.0;
    }
    const auto& ln = left.neighbors[i];
    if (ln.empty()) return 0.0;
    std::set<uint32_t> rn(right.neighbors[j].begin(),
                          right.neighbors[j].end());
    size_t hits = 0;
    for (uint32_t n : ln) {
      auto it = mapped.find(n);
      if (it != mapped.end() && rn.count(it->second) > 0) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(ln.size());
  };

  for (int round = 0; round < options.rounds; ++round) {
    std::vector<Alignment> candidates;
    for (uint32_t i = 0; i < left.labels.size(); ++i) {
      if (mapped.count(i) > 0) continue;
      std::string lower = ToLower(left.labels[i]);
      std::string key =
          lower.substr(0, std::min(options.block_prefix, lower.size()));
      auto it = right_blocks.find(key);
      if (it == right_blocks.end()) continue;
      for (uint32_t j : it->second) {
        if (inverse.count(j) > 0) continue;
        double string_sim =
            linkage::JaroWinkler(lower, ToLower(right.labels[j]));
        if (string_sim < 0.5) continue;
        double score = options.string_weight * string_sim +
                       options.structure_weight * structure_overlap(i, j);
        // Normalize to [0, 1] by the maximum achievable score.
        score /= options.string_weight + options.structure_weight;
        if (score >= options.min_score) {
          candidates.push_back({i, j, score});
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Alignment& a, const Alignment& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.left != b.left) return a.left < b.left;
                return a.right < b.right;
              });
    size_t added = 0;
    for (const Alignment& c : candidates) {
      if (mapped.count(c.left) > 0 || inverse.count(c.right) > 0) continue;
      mapped[c.left] = c.right;
      inverse[c.right] = c.left;
      ++added;
    }
    if (added == 0) break;
  }

  std::vector<Alignment> out;
  std::set<std::pair<uint32_t, uint32_t>> seed_set;
  for (const Alignment& s : seeds) seed_set.emplace(s.left, s.right);
  for (const auto& [i, j] : mapped) {
    if (seed_set.count({i, j}) > 0) continue;  // report new links only
    out.push_back({i, j, 1.0});
  }
  return out;
}

}  // namespace multilingual
}  // namespace kb
