#ifndef KBFORGE_MULTILINGUAL_ALIGNER_H_
#define KBFORGE_MULTILINGUAL_ALIGNER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kb {
namespace multilingual {

/// One side of a cross-lingual alignment problem: node labels plus the
/// (language-independent) relational link structure between nodes.
struct KbView {
  std::vector<std::string> labels;
  std::vector<std::vector<uint32_t>> neighbors;  ///< adjacency lists
};

/// A proposed owl:sameAs link between views.
struct Alignment {
  uint32_t left = UINT32_MAX;
  uint32_t right = UINT32_MAX;
  double score = 0.0;
};

struct AlignerOptions {
  double string_weight = 1.0;
  double structure_weight = 1.5;
  double min_score = 0.45;
  int rounds = 3;
  size_t block_prefix = 1;  ///< candidate blocking by label prefix
};

/// Cross-lingual entity alignment (tutorial §2 "several KB's are
/// interlinked at the entity level" / §3 multilingual knowledge):
/// combines label string similarity with link-structure overlap,
/// bootstrapped from `seed` alignments (e.g. harvested interwiki
/// links) and iterated so that confident matches support their
/// neighbors — greedy one-to-one at each round.
std::vector<Alignment> AlignViews(const KbView& left, const KbView& right,
                                  const std::vector<Alignment>& seeds,
                                  const AlignerOptions& options);

}  // namespace multilingual
}  // namespace kb

#endif  // KBFORGE_MULTILINGUAL_ALIGNER_H_
