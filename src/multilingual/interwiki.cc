#include "multilingual/interwiki.h"

#include "util/string_util.h"

namespace kb {
namespace multilingual {

std::vector<MultilingualLabel> HarvestInterwikiLabels(
    const std::vector<corpus::Document>& docs) {
  std::vector<MultilingualLabel> out;
  for (const corpus::Document& doc : docs) {
    if (doc.kind != corpus::DocKind::kArticle) continue;
    size_t pos = 0;
    while ((pos = doc.text.find("[[", pos)) != std::string::npos) {
      size_t end = doc.text.find("]]", pos);
      if (end == std::string::npos) break;
      std::string link = doc.text.substr(pos + 2, end - pos - 2);
      pos = end + 2;
      size_t colon = link.find(':');
      if (colon == std::string::npos) continue;
      std::string prefix = link.substr(0, colon);
      // Interwiki prefixes are 2-3 lowercase letters ("de", "fr").
      if (prefix.size() < 2 || prefix.size() > 3) continue;
      bool lower = true;
      for (char c : prefix) lower = lower && islower((unsigned char)c);
      if (!lower) continue;
      MultilingualLabel label;
      label.entity = doc.subject;
      label.lang = prefix;
      label.label = ReplaceAll(link.substr(colon + 1), "_", " ");
      out.push_back(std::move(label));
    }
  }
  return out;
}

}  // namespace multilingual
}  // namespace kb
