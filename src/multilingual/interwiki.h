#ifndef KBFORGE_MULTILINGUAL_INTERWIKI_H_
#define KBFORGE_MULTILINGUAL_INTERWIKI_H_

#include <map>
#include <string>
#include <vector>

#include "corpus/document.h"

namespace kb {
namespace multilingual {

/// A harvested multilingual label.
struct MultilingualLabel {
  uint32_t entity = UINT32_MAX;
  std::string lang;
  std::string label;
};

/// Harvests multilingual entity names from interwiki links in article
/// markup ("[[de:Markus_Hallbergen]]") — the direct route to
/// multilingual knowledge that tutorial §3 describes for Wikipedia-
/// based KBs. Coverage is bounded by link coverage in the corpus.
std::vector<MultilingualLabel> HarvestInterwikiLabels(
    const std::vector<corpus::Document>& docs);

}  // namespace multilingual
}  // namespace kb

#endif  // KBFORGE_MULTILINGUAL_INTERWIKI_H_
