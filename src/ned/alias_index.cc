#include "ned/alias_index.h"

#include <algorithm>

namespace kb {
namespace ned {

AliasIndex AliasIndex::Build(const corpus::World& world,
                             const std::set<uint32_t>* exclude) {
  AliasIndex out;
  std::unordered_map<std::string, std::unordered_map<uint32_t, double>>
      weights;
  for (const corpus::Entity& e : world.entities()) {
    if (exclude != nullptr && exclude->count(e.id) > 0) continue;
    double pop = static_cast<double>(e.popularity);
    weights[e.full_name][e.id] += pop;
    for (const std::string& alias : e.aliases) {
      weights[alias][e.id] += pop * 0.5;  // aliases are weaker evidence
    }
  }
  for (auto& [surface, entity_weights] : weights) {
    double total = 0;
    for (const auto& [entity, w] : entity_weights) total += w;
    std::vector<Candidate> candidates;
    candidates.reserve(entity_weights.size());
    for (const auto& [entity, w] : entity_weights) {
      candidates.push_back({entity, w / total});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.prior != b.prior) return a.prior > b.prior;
                return a.entity < b.entity;
              });
    out.index_.emplace(surface, std::move(candidates));
  }
  return out;
}

const std::vector<Candidate>* AliasIndex::Lookup(
    const std::string& surface) const {
  auto it = index_.find(surface);
  return it == index_.end() ? nullptr : &it->second;
}

size_t AliasIndex::num_ambiguous_surfaces() const {
  size_t n = 0;
  for (const auto& [surface, candidates] : index_) {
    if (candidates.size() > 1) ++n;
  }
  return n;
}

}  // namespace ned
}  // namespace kb
