#ifndef KBFORGE_NED_ALIAS_INDEX_H_
#define KBFORGE_NED_ALIAS_INDEX_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/world.h"

namespace kb {
namespace ned {

/// One disambiguation candidate for a surface form.
struct Candidate {
  uint32_t entity = UINT32_MAX;
  double prior = 0.0;  ///< P(entity | surface), popularity-derived
};

/// The name/alias dictionary: surface form -> candidate entities with
/// priors — the analogue of a Wikipedia anchor-text dictionary. This
/// is where ambiguity becomes visible: "Hallberg" maps to every person
/// with that surname plus companies named after one.
class AliasIndex {
 public:
  /// Builds the dictionary from entity names, aliases and labels.
  /// Entities in `exclude` are left out — they model real-world
  /// entities the KB does not (yet) know, whose mentions a NED system
  /// should map to NIL (the "emerging entity" setting).
  static AliasIndex Build(const corpus::World& world,
                          const std::set<uint32_t>* exclude = nullptr);

  /// Candidates for a surface form (nullptr if unknown). Sorted by
  /// descending prior.
  const std::vector<Candidate>* Lookup(const std::string& surface) const;

  /// Number of surfaces whose candidate set has more than one entry.
  size_t num_ambiguous_surfaces() const;

  size_t size() const { return index_.size(); }

 private:
  std::unordered_map<std::string, std::vector<Candidate>> index_;
};

}  // namespace ned
}  // namespace kb

#endif  // KBFORGE_NED_ALIAS_INDEX_H_
