#include "ned/coherence.h"

#include <algorithm>
#include <cmath>

namespace kb {
namespace ned {

CoherenceModel CoherenceModel::Build(
    const corpus::World& world, const std::vector<corpus::Document>& docs) {
  CoherenceModel model;
  model.total_entities_ = std::max<size_t>(2, world.entities().size());
  std::vector<std::set<uint32_t>> inlinks(world.entities().size());
  for (const corpus::Document& doc : docs) {
    if (doc.kind != corpus::DocKind::kArticle) continue;
    for (const corpus::Mention& m : doc.mentions) {
      // The subject's own article counts into its link set (it mentions
      // itself in title and lead), so an entity and the entities its
      // article links to always share at least that article.
      if (m.entity < inlinks.size()) {
        inlinks[m.entity].insert(doc.subject);
      }
    }
  }
  model.inlinks_.reserve(inlinks.size());
  for (const auto& s : inlinks) {
    model.inlinks_.emplace_back(s.begin(), s.end());
  }
  return model;
}

double CoherenceModel::Relatedness(uint32_t a, uint32_t b) const {
  if (a >= inlinks_.size() || b >= inlinks_.size()) return 0.0;
  const auto& la = inlinks_[a];
  const auto& lb = inlinks_[b];
  if (la.empty() || lb.empty()) return 0.0;
  std::vector<uint32_t> shared;
  std::set_intersection(la.begin(), la.end(), lb.begin(), lb.end(),
                        std::back_inserter(shared));
  if (shared.empty()) return 0.0;
  double max_size = static_cast<double>(std::max(la.size(), lb.size()));
  double min_size = static_cast<double>(std::min(la.size(), lb.size()));
  double n = static_cast<double>(total_entities_);
  double value = (std::log(max_size) - std::log(static_cast<double>(
                                           shared.size()))) /
                 (std::log(n) - std::log(min_size));
  return std::clamp(1.0 - value, 0.0, 1.0);
}

}  // namespace ned
}  // namespace kb
