#ifndef KBFORGE_NED_COHERENCE_H_
#define KBFORGE_NED_COHERENCE_H_

#include <set>
#include <vector>

#include "corpus/generator.h"

namespace kb {
namespace ned {

/// Milne-Witten semantic relatedness over the entity link graph: two
/// entities are related in proportion to the overlap of the article
/// sets that mention them. This provides the "coherence measures for
/// two or more entities co-occurring together" of tutorial §4.
class CoherenceModel {
 public:
  /// Builds inlink sets from article mentions (who links to whom).
  static CoherenceModel Build(const corpus::World& world,
                              const std::vector<corpus::Document>& docs);

  /// Relatedness in [0, 1]; 0 for entities with disjoint inlinks.
  double Relatedness(uint32_t a, uint32_t b) const;

  size_t inlink_count(uint32_t entity) const {
    return entity < inlinks_.size() ? inlinks_[entity].size() : 0;
  }

 private:
  std::vector<std::vector<uint32_t>> inlinks_;  // sorted doc-subject ids
  size_t total_entities_ = 1;
};

}  // namespace ned
}  // namespace kb

#endif  // KBFORGE_NED_COHERENCE_H_
