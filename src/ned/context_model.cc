#include "ned/context_model.h"

#include <cctype>

#include "nlp/stemmer.h"
#include "nlp/stopwords.h"
#include "util/string_util.h"

namespace kb {
namespace ned {

namespace {
/// Lowercased alphabetic word bag of `text`, stopwords removed.
std::vector<std::string> WordBag(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    if (current.size() > 1 && !nlp::IsStopword(current)) {
      out.push_back(nlp::Stem(current));  // densify the vector space
    }
    current.clear();
  };
  for (char c : text) {
    if (isalpha(static_cast<unsigned char>(c))) {
      current += static_cast<char>(tolower(static_cast<unsigned char>(c)));
    } else {
      flush();
    }
  }
  flush();
  return out;
}
}  // namespace

std::vector<std::string> ContextWords(const std::string& text, size_t begin,
                                      size_t end, size_t window) {
  size_t from = begin > window ? begin - window : 0;
  size_t to = std::min(text.size(), end + window);
  std::string around = text.substr(from, begin - from) +
                       " " + text.substr(end, to - end);
  return WordBag(around);
}

ContextModel ContextModel::Build(const corpus::World& world,
                                 const std::vector<corpus::Document>& docs) {
  ContextModel model;
  std::vector<std::vector<std::string>> bags(world.entities().size());
  for (const corpus::Document& doc : docs) {
    if (doc.kind != corpus::DocKind::kArticle) continue;
    if (doc.subject >= bags.size()) continue;
    bags[doc.subject] = WordBag(doc.text);
  }
  for (const auto& bag : bags) model.tfidf_.AddDocument(bag);
  model.entity_vectors_.reserve(bags.size());
  for (const auto& bag : bags) {
    model.entity_vectors_.push_back(model.tfidf_.Vectorize(bag));
  }
  return model;
}

nlp::SparseVector ContextModel::VectorizeText(const std::string& text) const {
  return tfidf_.Vectorize(WordBag(text));
}

double ContextModel::Similarity(uint32_t entity,
                                const nlp::SparseVector& ctx) const {
  if (entity >= entity_vectors_.size()) return 0.0;
  return nlp::Cosine(entity_vectors_[entity], ctx);
}

}  // namespace ned
}  // namespace kb
