#ifndef KBFORGE_NED_CONTEXT_MODEL_H_
#define KBFORGE_NED_CONTEXT_MODEL_H_

#include <string>
#include <vector>

#include "corpus/generator.h"
#include "nlp/tfidf.h"

namespace kb {
namespace ned {

/// Per-entity keyphrase vectors built from the entities' own articles,
/// compared against mention contexts by cosine — the "context
/// similarity between the surroundings of a mention and salient
/// phrases associated with an entity" half of NED (tutorial §4).
class ContextModel {
 public:
  /// Learns TF-IDF statistics and entity vectors from the articles.
  static ContextModel Build(const corpus::World& world,
                            const std::vector<corpus::Document>& docs);

  /// Vectorizes an arbitrary text window (lowercased word bag,
  /// stopwords removed).
  nlp::SparseVector VectorizeText(const std::string& text) const;

  /// Vectorizes a pre-extracted word bag (e.g. from ContextWords).
  nlp::SparseVector VectorizeBag(const std::vector<std::string>& words) const {
    return tfidf_.Vectorize(words);
  }

  /// Cosine between an entity's profile and a context vector.
  double Similarity(uint32_t entity, const nlp::SparseVector& ctx) const;

 private:
  nlp::TfIdfModel tfidf_;
  std::vector<nlp::SparseVector> entity_vectors_;
};

/// Extracts the context word bag around byte span [begin, end) in
/// `text` (+- `window` bytes, clipped), lowercased and stopword-free.
std::vector<std::string> ContextWords(const std::string& text, size_t begin,
                                      size_t end, size_t window);

}  // namespace ned
}  // namespace kb

#endif  // KBFORGE_NED_CONTEXT_MODEL_H_
