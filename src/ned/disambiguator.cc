#include "ned/disambiguator.h"

#include <algorithm>
#include <cmath>

namespace kb {
namespace ned {

Disambiguator::Disambiguator(const AliasIndex* aliases,
                             const ContextModel* context,
                             const CoherenceModel* coherence,
                             NedOptions options)
    : aliases_(aliases),
      context_(context),
      coherence_(coherence),
      options_(options) {}

std::vector<Disambiguation> Disambiguator::DisambiguateDocument(
    const corpus::Document& doc) const {
  struct MentionState {
    uint32_t mention_index;
    std::vector<Candidate> candidates;
    std::vector<double> local_scores;
    size_t chosen = 0;
  };
  std::vector<MentionState> states;

  for (uint32_t mi = 0; mi < doc.mentions.size(); ++mi) {
    const corpus::Mention& m = doc.mentions[mi];
    std::string surface = doc.text.substr(m.begin, m.end - m.begin);
    const std::vector<Candidate>* candidates = aliases_->Lookup(surface);
    MentionState state;
    state.mention_index = mi;
    if (candidates != nullptr) {
      size_t n = std::min(options_.max_candidates, candidates->size());
      state.candidates.assign(candidates->begin(), candidates->begin() + n);
    }
    // Local scores: prior (+ context similarity unless prior-only).
    nlp::SparseVector ctx;
    if (options_.mode != NedMode::kPrior && !state.candidates.empty()) {
      ctx = context_->VectorizeBag(
          ContextWords(doc.text, m.begin, m.end, options_.context_window));
    }
    for (const Candidate& c : state.candidates) {
      double score = options_.prior_weight * c.prior;
      if (options_.mode != NedMode::kPrior) {
        score += options_.context_weight * context_->Similarity(c.entity, ctx);
      }
      state.local_scores.push_back(score);
    }
    if (!state.candidates.empty()) {
      state.chosen = static_cast<size_t>(
          std::max_element(state.local_scores.begin(),
                           state.local_scores.end()) -
          state.local_scores.begin());
    }
    states.push_back(std::move(state));
  }

  // Joint refinement: iterated conditional modes over the coherence
  // graph. Each mention re-picks the candidate maximizing local score
  // plus average relatedness to the other mentions' current picks.
  if (options_.mode == NedMode::kCoherence && states.size() > 1) {
    for (int iter = 0; iter < options_.iterations; ++iter) {
      bool changed = false;
      for (size_t i = 0; i < states.size(); ++i) {
        MentionState& state = states[i];
        if (state.candidates.empty()) continue;
        double best_score = -1e100;
        size_t best = state.chosen;
        for (size_t c = 0; c < state.candidates.size(); ++c) {
          double coherence_sum = 0;
          size_t others = 0;
          for (size_t j = 0; j < states.size(); ++j) {
            if (j == i || states[j].candidates.empty()) continue;
            uint32_t other =
                states[j].candidates[states[j].chosen].entity;
            // A mention of the same entity is trivially coherent.
            coherence_sum += coherence_->Relatedness(
                state.candidates[c].entity, other);
            if (state.candidates[c].entity == other) coherence_sum += 1.0;
            ++others;
          }
          double score = state.local_scores[c];
          if (others > 0) {
            score += options_.coherence_weight *
                     (coherence_sum / static_cast<double>(others));
          }
          if (score > best_score) {
            best_score = score;
            best = c;
          }
        }
        if (best != state.chosen) {
          state.chosen = best;
          changed = true;
        }
      }
      if (!changed) break;
    }
  }

  std::vector<Disambiguation> out;
  out.reserve(states.size());
  for (const MentionState& state : states) {
    Disambiguation d;
    d.mention_index = state.mention_index;
    d.num_candidates = state.candidates.size();
    if (!state.candidates.empty()) {
      d.score = state.local_scores[state.chosen];
      if (options_.nil_threshold <= 0.0 ||
          d.score >= options_.nil_threshold) {
        d.predicted = state.candidates[state.chosen].entity;
      }
    }
    out.push_back(d);
  }
  return out;
}

}  // namespace ned
}  // namespace kb
