#ifndef KBFORGE_NED_DISAMBIGUATOR_H_
#define KBFORGE_NED_DISAMBIGUATOR_H_

#include <vector>

#include "ned/alias_index.h"
#include "ned/coherence.h"
#include "ned/context_model.h"

namespace kb {
namespace ned {

/// Disambiguation strategies for the E7 ablation.
enum class NedMode : uint8_t {
  kPrior = 0,    ///< most popular candidate wins
  kContext,      ///< prior + context similarity
  kCoherence,    ///< prior + context + joint coherence (AIDA-style)
};

struct NedOptions {
  NedMode mode = NedMode::kCoherence;
  double prior_weight = 1.0;
  double context_weight = 2.5;
  double coherence_weight = 1.5;
  size_t max_candidates = 10;   ///< per mention, by prior
  size_t context_window = 200;  ///< bytes around the mention
  int iterations = 3;           ///< joint refinement rounds
  /// Mentions whose best candidate scores below this map to NIL
  /// (emerging-entity handling). 0 disables.
  double nil_threshold = 0.0;
};

/// One disambiguation decision.
struct Disambiguation {
  uint32_t mention_index = 0;  ///< position in Document::mentions
  uint32_t predicted = UINT32_MAX;  ///< UINT32_MAX = NIL (no candidate)
  double score = 0.0;
  size_t num_candidates = 0;
};

/// Named-entity disambiguation combining a popularity prior, keyphrase
/// context similarity, and pairwise entity coherence, resolved jointly
/// per document by iterated conditional modes (a deterministic
/// simplification of AIDA's dense-subgraph heuristic).
class Disambiguator {
 public:
  Disambiguator(const AliasIndex* aliases, const ContextModel* context,
                const CoherenceModel* coherence, NedOptions options);

  /// Disambiguates every annotated mention of `doc` (gold-mention NED
  /// evaluation setting: spans given, referents hidden).
  std::vector<Disambiguation> DisambiguateDocument(
      const corpus::Document& doc) const;

 private:
  const AliasIndex* aliases_;
  const ContextModel* context_;
  const CoherenceModel* coherence_;
  NedOptions options_;
};

}  // namespace ned
}  // namespace kb

#endif  // KBFORGE_NED_DISAMBIGUATOR_H_
