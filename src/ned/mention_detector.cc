#include "ned/mention_detector.h"

#include <cctype>

#include "nlp/tokenizer.h"

namespace kb {
namespace ned {

MentionDetector::MentionDetector(const AliasIndex* aliases)
    : aliases_(aliases) {}

std::vector<DetectedMention> MentionDetector::Detect(
    const std::string& text) const {
  std::vector<DetectedMention> out;
  std::vector<nlp::Token> tokens = nlp::Tokenize(text);
  size_t i = 0;
  while (i < tokens.size()) {
    // Only capitalized tokens can start a name (all KB surface forms
    // are proper names); this suppresses lowercase dictionary noise.
    if (!tokens[i].capitalized()) {
      ++i;
      continue;
    }
    bool matched = false;
    size_t limit = std::min(tokens.size(), i + max_surface_tokens_);
    for (size_t j = limit; j > i; --j) {
      uint32_t begin = tokens[i].begin;
      uint32_t end = tokens[j - 1].end;
      std::string surface = text.substr(begin, end - begin);
      if (aliases_->Lookup(surface) != nullptr) {
        DetectedMention m;
        m.begin = begin;
        m.end = end;
        m.surface = std::move(surface);
        out.push_back(std::move(m));
        i = j;  // longest match consumes its tokens
        matched = true;
        break;
      }
    }
    if (!matched) ++i;
  }
  return out;
}

DetectionQuality MentionDetector::Evaluate(
    const corpus::Document& doc) const {
  DetectionQuality q;
  auto detected = Detect(doc.text);
  q.detected = detected.size();
  q.gold = doc.mentions.size();
  size_t di = 0;
  // Both lists are in document order; count exact span matches.
  for (const corpus::Mention& gold : doc.mentions) {
    while (di < detected.size() && detected[di].end <= gold.begin) ++di;
    if (di < detected.size() && detected[di].begin == gold.begin &&
        detected[di].end == gold.end) {
      ++q.exact_matches;
      ++di;
    }
  }
  return q;
}

}  // namespace ned
}  // namespace kb
