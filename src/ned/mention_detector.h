#ifndef KBFORGE_NED_MENTION_DETECTOR_H_
#define KBFORGE_NED_MENTION_DETECTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/document.h"
#include "ned/alias_index.h"
#include "nlp/token.h"

namespace kb {
namespace ned {

/// A detected (not yet disambiguated) mention: a byte span whose
/// surface form is in the alias dictionary.
struct DetectedMention {
  uint32_t begin = 0;
  uint32_t end = 0;
  std::string surface;
};

/// Detection quality against gold mention spans.
struct DetectionQuality {
  size_t detected = 0;
  size_t gold = 0;
  size_t exact_matches = 0;
  double precision() const {
    return detected == 0 ? 0.0
                         : static_cast<double>(exact_matches) / detected;
  }
  double recall() const {
    return gold == 0 ? 0.0 : static_cast<double>(exact_matches) / gold;
  }
};

/// Dictionary-based longest-match mention detection over tokenized
/// text: every maximal token span whose surface form has alias-index
/// candidates becomes a mention (the standard first stage of NED when
/// no gold spans exist). Capitalized-token gating suppresses spurious
/// lowercase hits.
class MentionDetector {
 public:
  explicit MentionDetector(const AliasIndex* aliases);

  /// Detects mentions in raw text.
  std::vector<DetectedMention> Detect(const std::string& text) const;

  /// Detects and scores against a document's gold spans.
  DetectionQuality Evaluate(const corpus::Document& doc) const;

  /// Longest alias length in tokens (detection window bound).
  size_t max_surface_tokens() const { return max_surface_tokens_; }

 private:
  const AliasIndex* aliases_;
  size_t max_surface_tokens_ = 4;
};

}  // namespace ned
}  // namespace kb

#endif  // KBFORGE_NED_MENTION_DETECTOR_H_
