#include "nlp/chunker.h"

namespace kb {
namespace nlp {

std::vector<Chunk> FindNounPhrases(const Sentence& sentence) {
  std::vector<Chunk> chunks;
  const auto& toks = sentence.tokens;
  size_t i = 0;
  while (i < toks.size()) {
    size_t start = i;
    bool saw_det = false;
    if (toks[i].pos == Pos::kDeterminer) {
      saw_det = true;
      ++i;
    }
    while (i < toks.size() && (toks[i].pos == Pos::kAdjective ||
                               toks[i].pos == Pos::kNumber)) {
      ++i;
    }
    size_t noun_start = i;
    bool proper = false;
    while (i < toks.size() && (toks[i].pos == Pos::kNoun ||
                               toks[i].pos == Pos::kProperNoun)) {
      proper = proper || toks[i].pos == Pos::kProperNoun;
      ++i;
    }
    if (i > noun_start) {
      Chunk c;
      c.begin = static_cast<uint32_t>(start);
      c.end = static_cast<uint32_t>(i);
      c.proper = proper;
      chunks.push_back(c);
    } else {
      // No noun head: the optional det/adj prefix was not an NP.
      i = start + (saw_det ? 1 : 0);
      if (i == start) ++i;
    }
  }
  return chunks;
}

std::string ChunkText(const Sentence& sentence, const Chunk& chunk) {
  std::string out;
  for (uint32_t i = chunk.begin; i < chunk.end; ++i) {
    if (!out.empty()) out += ' ';
    out += sentence.tokens[i].text;
  }
  return out;
}

std::string ChunkTextNoDet(const Sentence& sentence, const Chunk& chunk) {
  std::string out;
  for (uint32_t i = chunk.begin; i < chunk.end; ++i) {
    if (i == chunk.begin &&
        sentence.tokens[i].pos == Pos::kDeterminer) {
      continue;
    }
    if (!out.empty()) out += ' ';
    out += sentence.tokens[i].text;
  }
  return out;
}

}  // namespace nlp
}  // namespace kb
