#ifndef KBFORGE_NLP_CHUNKER_H_
#define KBFORGE_NLP_CHUNKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nlp/token.h"

namespace kb {
namespace nlp {

/// A contiguous token span [begin, end) within one sentence.
struct Chunk {
  uint32_t begin = 0;
  uint32_t end = 0;
  bool proper = false;  ///< contains a proper noun head

  uint32_t size() const { return end - begin; }
};

/// Finds noun phrases: (Det)? (Adj|Num)* (Noun|ProperNoun)+ with the
/// longest-match rule. This is the "noun phrases as entity candidates"
/// primitive that open IE taps into (tutorial §3).
std::vector<Chunk> FindNounPhrases(const Sentence& sentence);

/// Renders a chunk's surface text (tokens joined with single spaces).
std::string ChunkText(const Sentence& sentence, const Chunk& chunk);

/// Renders a chunk without a leading determiner.
std::string ChunkTextNoDet(const Sentence& sentence, const Chunk& chunk);

}  // namespace nlp
}  // namespace kb

#endif  // KBFORGE_NLP_CHUNKER_H_
