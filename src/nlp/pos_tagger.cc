#include "nlp/pos_tagger.h"

#include "util/string_util.h"

namespace kb {
namespace nlp {

std::string_view PosName(Pos pos) {
  switch (pos) {
    case Pos::kNoun: return "NOUN";
    case Pos::kProperNoun: return "PROPN";
    case Pos::kVerb: return "VERB";
    case Pos::kAdjective: return "ADJ";
    case Pos::kAdverb: return "ADV";
    case Pos::kDeterminer: return "DET";
    case Pos::kPreposition: return "PREP";
    case Pos::kPronoun: return "PRON";
    case Pos::kConjunction: return "CONJ";
    case Pos::kNumber: return "NUM";
    case Pos::kPunctuation: return "PUNCT";
    case Pos::kParticle: return "PART";
    case Pos::kOther: return "X";
  }
  return "?";
}

namespace {
struct LexEntry {
  const char* word;
  Pos pos;
};

constexpr LexEntry kClosedClass[] = {
    // Determiners.
    {"the", Pos::kDeterminer}, {"a", Pos::kDeterminer},
    {"an", Pos::kDeterminer}, {"this", Pos::kDeterminer},
    {"that", Pos::kDeterminer}, {"these", Pos::kDeterminer},
    {"those", Pos::kDeterminer}, {"its", Pos::kDeterminer},
    {"his", Pos::kDeterminer}, {"her", Pos::kDeterminer},
    {"their", Pos::kDeterminer}, {"every", Pos::kDeterminer},
    {"some", Pos::kDeterminer}, {"many", Pos::kDeterminer},
    {"several", Pos::kDeterminer}, {"other", Pos::kDeterminer},
    // Prepositions.
    {"of", Pos::kPreposition}, {"in", Pos::kPreposition},
    {"on", Pos::kPreposition}, {"at", Pos::kPreposition},
    {"by", Pos::kPreposition}, {"for", Pos::kPreposition},
    {"with", Pos::kPreposition}, {"from", Pos::kPreposition},
    {"into", Pos::kPreposition}, {"near", Pos::kPreposition},
    {"since", Pos::kPreposition}, {"until", Pos::kPreposition},
    {"during", Pos::kPreposition}, {"as", Pos::kPreposition},
    {"between", Pos::kPreposition}, {"after", Pos::kPreposition},
    {"before", Pos::kPreposition}, {"under", Pos::kPreposition},
    // Pronouns.
    {"he", Pos::kPronoun}, {"she", Pos::kPronoun}, {"it", Pos::kPronoun},
    {"they", Pos::kPronoun}, {"who", Pos::kPronoun}, {"which", Pos::kPronoun},
    {"him", Pos::kPronoun}, {"them", Pos::kPronoun},
    // Conjunctions.
    {"and", Pos::kConjunction}, {"or", Pos::kConjunction},
    {"but", Pos::kConjunction}, {"when", Pos::kConjunction},
    {"while", Pos::kConjunction}, {"where", Pos::kConjunction},
    // Particle.
    {"to", Pos::kParticle},
    // Copulas / auxiliaries / frequent verbs.
    {"is", Pos::kVerb}, {"was", Pos::kVerb}, {"are", Pos::kVerb},
    {"were", Pos::kVerb}, {"be", Pos::kVerb}, {"been", Pos::kVerb},
    {"has", Pos::kVerb}, {"have", Pos::kVerb}, {"had", Pos::kVerb},
    {"does", Pos::kVerb}, {"did", Pos::kVerb}, {"do", Pos::kVerb},
    {"can", Pos::kVerb}, {"will", Pos::kVerb}, {"would", Pos::kVerb},
    {"became", Pos::kVerb}, {"remains", Pos::kVerb},
    // Adverbs common in the corpus templates.
    {"not", Pos::kAdverb}, {"also", Pos::kAdverb}, {"later", Pos::kAdverb},
    {"currently", Pos::kAdverb}, {"formerly", Pos::kAdverb},
    {"originally", Pos::kAdverb}, {"such", Pos::kAdjective},
};

// Open-class vocabulary shared with the corpus generator's templates.
constexpr LexEntry kOpenClass[] = {
    // Verbs (base/past forms used by the templates).
    {"founded", Pos::kVerb}, {"married", Pos::kVerb}, {"born", Pos::kVerb},
    {"works", Pos::kVerb}, {"worked", Pos::kVerb}, {"plays", Pos::kVerb},
    {"played", Pos::kVerb}, {"released", Pos::kVerb},
    {"recorded", Pos::kVerb}, {"directed", Pos::kVerb},
    {"located", Pos::kVerb}, {"wrote", Pos::kVerb}, {"written", Pos::kVerb},
    {"lives", Pos::kVerb}, {"lived", Pos::kVerb}, {"studied", Pos::kVerb},
    {"graduated", Pos::kVerb}, {"joined", Pos::kVerb},
    {"acquired", Pos::kVerb}, {"headquartered", Pos::kVerb},
    {"stars", Pos::kVerb}, {"starred", Pos::kVerb}, {"won", Pos::kVerb},
    {"leads", Pos::kVerb}, {"led", Pos::kVerb}, {"serves", Pos::kVerb},
    {"served", Pos::kVerb}, {"created", Pos::kVerb}, {"owns", Pos::kVerb},
    {"owned", Pos::kVerb}, {"borders", Pos::kVerb}, {"died", Pos::kVerb},
    {"moved", Pos::kVerb}, {"signed", Pos::kVerb}, {"performed", Pos::kVerb},
    {"developed", Pos::kVerb}, {"launched", Pos::kVerb},
    {"produced", Pos::kVerb}, {"composed", Pos::kVerb},
    {"met", Pos::kVerb}, {"sang", Pos::kVerb}, {"left", Pos::kVerb},
    {"rose", Pos::kVerb}, {"attracted", Pos::kVerb},
    {"lies", Pos::kVerb}, {"appeared", Pos::kVerb}, {"known", Pos::kVerb},
    {"listened", Pos::kVerb}, {"arrived", Pos::kVerb},
    {"spoke", Pos::kVerb},
    // Nouns used by templates, categories and commonsense assertions.
    {"singer", Pos::kNoun}, {"musician", Pos::kNoun}, {"band", Pos::kNoun},
    {"album", Pos::kNoun}, {"song", Pos::kNoun}, {"company", Pos::kNoun},
    {"city", Pos::kNoun}, {"country", Pos::kNoun}, {"river", Pos::kNoun},
    {"university", Pos::kNoun}, {"mayor", Pos::kNoun},
    {"capital", Pos::kNoun}, {"founder", Pos::kNoun}, {"wife", Pos::kNoun},
    {"husband", Pos::kNoun}, {"employee", Pos::kNoun},
    {"student", Pos::kNoun}, {"actor", Pos::kNoun}, {"actress", Pos::kNoun},
    {"film", Pos::kNoun}, {"movie", Pos::kNoun}, {"writer", Pos::kNoun},
    {"author", Pos::kNoun}, {"novel", Pos::kNoun}, {"book", Pos::kNoun},
    {"scientist", Pos::kNoun}, {"physicist", Pos::kNoun},
    {"entrepreneur", Pos::kNoun}, {"pioneer", Pos::kNoun},
    {"politician", Pos::kNoun}, {"president", Pos::kNoun},
    {"team", Pos::kNoun}, {"player", Pos::kNoun}, {"club", Pos::kNoun},
    {"population", Pos::kNoun}, {"area", Pos::kNoun},
    {"headquarters", Pos::kNoun}, {"ceo", Pos::kNoun},
    {"person", Pos::kNoun}, {"people", Pos::kNoun}, {"year", Pos::kNoun},
    {"apple", Pos::kNoun}, {"apples", Pos::kNoun},
    {"clarinet", Pos::kNoun}, {"mouthpiece", Pos::kNoun},
    {"wheel", Pos::kNoun}, {"engine", Pos::kNoun}, {"car", Pos::kNoun},
    {"guitar", Pos::kNoun}, {"label", Pos::kNoun}, {"mountain", Pos::kNoun},
    {"lake", Pos::kNoun}, {"street", Pos::kNoun}, {"district", Pos::kNoun},
    {"member", Pos::kNoun}, {"citizen", Pos::kNoun},
    {"attention", Pos::kNoun}, {"weather", Pos::kNoun},
    {"festival", Pos::kNoun}, {"prominence", Pos::kNoun},
    {"shape", Pos::kNoun}, {"part", Pos::kNoun},
    {"well", Pos::kAdverb}, {"pleasant", Pos::kAdjective},
    // Adjectives (incl. commonsense property vocabulary).
    {"red", Pos::kAdjective}, {"green", Pos::kAdjective},
    {"juicy", Pos::kAdjective}, {"sweet", Pos::kAdjective},
    {"sour", Pos::kAdjective}, {"fast", Pos::kAdjective},
    {"funny", Pos::kAdjective}, {"cylindrical", Pos::kAdjective},
    {"large", Pos::kAdjective}, {"small", Pos::kAdjective},
    {"famous", Pos::kAdjective}, {"american", Pos::kAdjective},
    {"german", Pos::kAdjective}, {"french", Pos::kAdjective},
    {"british", Pos::kAdjective}, {"young", Pos::kAdjective},
    {"old", Pos::kAdjective}, {"new", Pos::kAdjective},
    {"popular", Pos::kAdjective}, {"round", Pos::kAdjective},
    {"loud", Pos::kAdjective}, {"soft", Pos::kAdjective},
    {"tall", Pos::kAdjective}, {"cold", Pos::kAdjective},
    {"wooden", Pos::kAdjective}, {"metallic", Pos::kAdjective},
};
}  // namespace

PosTagger::PosTagger() {
  for (const LexEntry& e : kClosedClass) lexicon_[e.word] = e.pos;
  for (const LexEntry& e : kOpenClass) lexicon_[e.word] = e.pos;
}

void PosTagger::AddWord(const std::string& lower, Pos pos) {
  lexicon_[lower] = pos;
}

Pos PosTagger::TagWord(const std::string& lower, bool capitalized,
                       bool sentence_initial) const {
  if (lower.empty()) return Pos::kOther;
  char c0 = lower[0];
  if (!isalnum(static_cast<unsigned char>(c0))) return Pos::kPunctuation;
  auto it = lexicon_.find(lower);
  if (it != lexicon_.end()) return it->second;
  if (IsDigits(lower) ||
      (isdigit(static_cast<unsigned char>(c0)) && lower.size() > 1)) {
    return Pos::kNumber;
  }
  // Capitalization signals a proper noun except at sentence start,
  // where we also require the word to be out-of-lexicon (it is, here).
  if (capitalized && !sentence_initial) return Pos::kProperNoun;
  // Suffix heuristics.
  if (EndsWith(lower, "ly")) return Pos::kAdverb;
  if (EndsWith(lower, "ing") || EndsWith(lower, "ed")) return Pos::kVerb;
  if (EndsWith(lower, "tion") || EndsWith(lower, "ness") ||
      EndsWith(lower, "ment") || EndsWith(lower, "ist") ||
      EndsWith(lower, "er") || EndsWith(lower, "ism")) {
    return Pos::kNoun;
  }
  if (EndsWith(lower, "ous") || EndsWith(lower, "ful") ||
      EndsWith(lower, "ive") || EndsWith(lower, "al") ||
      EndsWith(lower, "ic")) {
    return Pos::kAdjective;
  }
  if (capitalized) return Pos::kProperNoun;  // sentence-initial unknown
  return Pos::kNoun;
}

void PosTagger::Tag(std::vector<Token>* tokens) const {
  for (size_t i = 0; i < tokens->size(); ++i) {
    Token& t = (*tokens)[i];
    t.pos = TagWord(t.lower, t.capitalized(), i == 0);
  }
}

void PosTagger::TagSentences(std::vector<Sentence>* sentences) const {
  for (Sentence& s : *sentences) Tag(&s.tokens);
}

}  // namespace nlp
}  // namespace kb
