#ifndef KBFORGE_NLP_POS_TAGGER_H_
#define KBFORGE_NLP_POS_TAGGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "nlp/token.h"

namespace kb {
namespace nlp {

/// Lexicon + suffix-rule part-of-speech tagger.
///
/// Tagging decisions, in priority order:
///   1. closed-class lexicon (determiners, prepositions, pronouns, ...)
///   2. open-class lexicon (seeded with the vocabulary KBForge's corpus
///      templates use, extensible via AddWord)
///   3. orthography (digits -> Number, capitalized -> ProperNoun)
///   4. suffix heuristics (-ly adverb, -ing/-ed verb, -tion/-ness noun)
///   5. fallback: common noun
///
/// This design mirrors the "computational linguistics" tier of the
/// extraction spectrum in tutorial §3 at the fidelity the synthetic
/// corpus requires: the corpus generator and tagger share a vocabulary,
/// so downstream pattern extractors behave as they would with a real
/// tagger on real text.
class PosTagger {
 public:
  PosTagger();

  /// Adds or overrides a lexicon entry (lowercase form).
  void AddWord(const std::string& lower, Pos pos);

  /// Tags every token in place.
  void Tag(std::vector<Token>* tokens) const;

  /// Tags all sentences in place.
  void TagSentences(std::vector<Sentence>* sentences) const;

  /// Tags a single word out of context.
  Pos TagWord(const std::string& lower, bool capitalized,
              bool sentence_initial) const;

 private:
  std::unordered_map<std::string, Pos> lexicon_;
};

}  // namespace nlp
}  // namespace kb

#endif  // KBFORGE_NLP_POS_TAGGER_H_
