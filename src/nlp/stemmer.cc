#include "nlp/stemmer.h"

#include "util/string_util.h"

namespace kb {
namespace nlp {

namespace {
bool HasVowel(std::string_view s) {
  for (char c : s) {
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') {
      return true;
    }
  }
  return false;
}
}  // namespace

std::string Stem(std::string_view word) {
  std::string w(word);
  if (w.size() <= 3) return w;

  // Plural / 3rd-person suffixes.
  if (EndsWith(w, "sses")) {
    w.resize(w.size() - 2);
  } else if (EndsWith(w, "ies") && w.size() > 4) {
    w.resize(w.size() - 3);
    w += 'y';
  } else if (EndsWith(w, "s") && !EndsWith(w, "ss") && !EndsWith(w, "us") &&
             !EndsWith(w, "is")) {
    w.resize(w.size() - 1);
  }
  if (w.size() <= 3) return w;

  // Inflection suffixes (require a vowel in the remaining stem).
  auto strip = [&](std::string_view suffix) {
    if (w.size() > suffix.size() + 2 && EndsWith(w, suffix) &&
        HasVowel(std::string_view(w).substr(0, w.size() - suffix.size()))) {
      w.resize(w.size() - suffix.size());
      return true;
    }
    return false;
  };
  if (strip("ing") || strip("edly") || strip("ed")) {
    // Undouble a final consonant ("planned" -> "plan").
    if (w.size() > 3 && w[w.size() - 1] == w[w.size() - 2] &&
        !HasVowel(std::string_view(w).substr(w.size() - 1))) {
      w.resize(w.size() - 1);
    }
    // Restore a silent 'e' heuristically ("releas" -> "release").
    if (w.size() > 3 && (EndsWith(w, "at") || EndsWith(w, "iz") ||
                         EndsWith(w, "as") || EndsWith(w, "us"))) {
      w += 'e';
    }
  } else {
    strip("ly");
  }
  return w;
}

}  // namespace nlp
}  // namespace kb
