#ifndef KBFORGE_NLP_STEMMER_H_
#define KBFORGE_NLP_STEMMER_H_

#include <string>
#include <string_view>

namespace kb {
namespace nlp {

/// A light English suffix stemmer (Porter step-1-style): strips plural
/// and inflection suffixes so context vectors conflate "founded",
/// "founder", "founding" less aggressively than full Porter but enough
/// to densify bag-of-words models. Deterministic, lowercase-in,
/// lowercase-out.
std::string Stem(std::string_view word);

}  // namespace nlp
}  // namespace kb

#endif  // KBFORGE_NLP_STEMMER_H_
