#include "nlp/stopwords.h"

#include <unordered_set>

namespace kb {
namespace nlp {

bool IsStopword(const std::string& lower) {
  static const std::unordered_set<std::string>* kStop =
      new std::unordered_set<std::string>{
          "the", "a",    "an",   "of",    "in",   "on",    "at",   "by",
          "for", "with", "from", "into",  "to",   "and",   "or",   "but",
          "is",  "was",  "are",  "were",  "be",   "been",  "has",  "have",
          "had", "it",   "its",  "he",    "she",  "his",   "her",  "they",
          "their", "them", "this", "that", "these", "those", "as",  "who",
          "which", "when", "while", "where", "not", "also", "such", "other",
          "there", "than", "then", "so",   "do",   "did",   "does", "can",
          "will", "would", "after", "before", "during", "since", "until",
          "near", "between", "under", "every", "some", "many", "several",
      };
  return kStop->count(lower) > 0;
}

}  // namespace nlp
}  // namespace kb
