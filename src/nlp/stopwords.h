#ifndef KBFORGE_NLP_STOPWORDS_H_
#define KBFORGE_NLP_STOPWORDS_H_

#include <string>

namespace kb {
namespace nlp {

/// True for high-frequency function words that carry no topical signal
/// (used by TF-IDF context models and keyphrase harvesting).
bool IsStopword(const std::string& lower);

}  // namespace nlp
}  // namespace kb

#endif  // KBFORGE_NLP_STOPWORDS_H_
