#include "nlp/tfidf.h"

#include <cmath>
#include <cstdint>
#include <unordered_set>

namespace kb {
namespace nlp {

double Cosine(const SparseVector& a, const SparseVector& b) {
  const SparseVector& small = a.size() <= b.size() ? a : b;
  const SparseVector& large = a.size() <= b.size() ? b : a;
  double dot = 0;
  for (const auto& [id, w] : small) {
    auto it = large.find(id);
    if (it != large.end()) dot += w * it->second;
  }
  if (dot == 0) return 0;
  double na = 0, nb = 0;
  for (const auto& [id, w] : a) na += w * w;
  for (const auto& [id, w] : b) nb += w * w;
  if (na == 0 || nb == 0) return 0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

uint32_t TfIdfModel::WordId(const std::string& word) {
  auto it = vocab_.find(word);
  if (it != vocab_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(vocab_.size());
  vocab_.emplace(word, id);
  doc_freq_.push_back(0);
  return id;
}

uint32_t TfIdfModel::LookupWordId(const std::string& word) const {
  auto it = vocab_.find(word);
  return it == vocab_.end() ? UINT32_MAX : it->second;
}

void TfIdfModel::AddDocument(const std::vector<std::string>& words) {
  std::unordered_set<uint32_t> seen;
  for (const std::string& w : words) seen.insert(WordId(w));
  for (uint32_t id : seen) ++doc_freq_[id];
  ++num_documents_;
}

SparseVector TfIdfModel::Vectorize(
    const std::vector<std::string>& words) const {
  SparseVector tf;
  for (const std::string& w : words) {
    uint32_t id = LookupWordId(w);
    if (id == UINT32_MAX) continue;
    tf[id] += 1.0;
  }
  SparseVector out;
  for (const auto& [id, count] : tf) {
    double idf = std::log((1.0 + num_documents_) / (1.0 + doc_freq_[id])) + 1.0;
    out[id] = (1.0 + std::log(count)) * idf;
  }
  return out;
}

}  // namespace nlp
}  // namespace kb
