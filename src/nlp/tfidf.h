#ifndef KBFORGE_NLP_TFIDF_H_
#define KBFORGE_NLP_TFIDF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace kb {
namespace nlp {

/// A sparse bag-of-words vector: word id -> weight.
using SparseVector = std::unordered_map<uint32_t, double>;

/// Cosine similarity between two sparse vectors.
double Cosine(const SparseVector& a, const SparseVector& b);

/// Interns words to dense ids and accumulates document frequencies so
/// that TF-IDF vectors can be built incrementally over a corpus.
///
/// Usage: AddDocument() every bag once (to learn DF), then Vectorize()
/// bags against the learned statistics.
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Interns a word (lowercased externally).
  uint32_t WordId(const std::string& word);

  /// Returns the id if known, UINT32_MAX otherwise.
  uint32_t LookupWordId(const std::string& word) const;

  /// Registers one document's distinct words for DF statistics.
  void AddDocument(const std::vector<std::string>& words);

  /// Builds a TF-IDF weighted, L2-normalizable sparse vector.
  /// Unknown words are skipped (idf unknown). Stopwords should be
  /// filtered by the caller.
  SparseVector Vectorize(const std::vector<std::string>& words) const;

  size_t num_documents() const { return num_documents_; }
  size_t vocabulary_size() const { return vocab_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> vocab_;
  std::vector<uint32_t> doc_freq_;
  size_t num_documents_ = 0;
};

}  // namespace nlp
}  // namespace kb

#endif  // KBFORGE_NLP_TFIDF_H_
