#ifndef KBFORGE_NLP_TOKEN_H_
#define KBFORGE_NLP_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kb {
namespace nlp {

/// Part-of-speech tags, deliberately coarse (Penn-style granularity is
/// unnecessary for pattern-based relation extraction).
enum class Pos : uint8_t {
  kNoun = 0,
  kProperNoun,
  kVerb,
  kAdjective,
  kAdverb,
  kDeterminer,
  kPreposition,
  kPronoun,
  kConjunction,
  kNumber,
  kPunctuation,
  kParticle,  ///< infinitival "to"
  kOther,
};

std::string_view PosName(Pos pos);

/// One token of a sentence with its surface form and annotations.
struct Token {
  std::string text;    ///< original surface form
  std::string lower;   ///< lowercase form
  Pos pos = Pos::kOther;
  uint32_t begin = 0;  ///< byte offset in the source text
  uint32_t end = 0;    ///< one past the last byte

  bool capitalized() const {
    return !text.empty() && text[0] >= 'A' && text[0] <= 'Z';
  }
};

/// A tokenized sentence.
struct Sentence {
  std::vector<Token> tokens;
  uint32_t begin = 0;  ///< byte offset of the sentence in the document
  uint32_t end = 0;
};

}  // namespace nlp
}  // namespace kb

#endif  // KBFORGE_NLP_TOKEN_H_
