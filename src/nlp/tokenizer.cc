#include "nlp/tokenizer.h"

#include <cctype>
#include <unordered_set>

#include "util/string_util.h"

namespace kb {
namespace nlp {

namespace {

bool IsWordChar(char c) {
  return isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsAbbreviation(std::string_view token) {
  static const std::unordered_set<std::string>* kAbbrev =
      new std::unordered_set<std::string>{
          "dr", "mr", "mrs", "ms", "prof", "st", "inc", "corp", "ltd",
          "co", "vs", "etc", "jr", "sr", "no", "vol", "approx",
      };
  return kAbbrev->count(ToLower(token)) > 0;
}

}  // namespace

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  auto push = [&](size_t begin, size_t end) {
    Token t;
    t.text = std::string(text.substr(begin, end - begin));
    t.lower = ToLower(t.text);
    t.begin = static_cast<uint32_t>(begin);
    t.end = static_cast<uint32_t>(end);
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    char c = text[i];
    if (isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < n) {
        if (IsWordChar(text[i])) {
          ++i;
          continue;
        }
        // Keep internal '.', '-' and '\'' when flanked by word chars:
        // decimals ("3.14"), hyphenations ("never-ending"), clitics.
        if ((text[i] == '.' || text[i] == '-' || text[i] == '\'') &&
            i + 1 < n && IsWordChar(text[i + 1]) && i > start) {
          // Internal period only inside numbers; "U.S." style initials
          // are also allowed (single letters around the dot).
          if (text[i] == '.') {
            bool digit_ctx = isdigit(static_cast<unsigned char>(
                                 text[i - 1])) &&
                             isdigit(static_cast<unsigned char>(text[i + 1]));
            bool initial_ctx =
                (i - start == 1 ||
                 (i >= 2 && text[i - 2] == '.')) &&
                isalpha(static_cast<unsigned char>(text[i - 1]));
            if (!digit_ctx && !initial_ctx) break;
          }
          ++i;
          continue;
        }
        break;
      }
      push(start, i);
      continue;
    }
    // Punctuation: one char per token (runs of the same char merge).
    size_t start = i;
    char p = text[i];
    ++i;
    while (i < n && text[i] == p && (p == '.' || p == '-')) ++i;
    push(start, i);
  }
  return tokens;
}

std::vector<Sentence> SplitSentences(std::string_view text) {
  std::vector<Sentence> sentences;
  size_t start = 0;
  size_t i = 0;
  const size_t n = text.size();
  auto flush = [&](size_t begin, size_t end) {
    std::string_view span = text.substr(begin, end - begin);
    if (StripWhitespace(span).empty()) return;
    Sentence s;
    s.begin = static_cast<uint32_t>(begin);
    s.end = static_cast<uint32_t>(end);
    s.tokens = Tokenize(span);
    for (Token& t : s.tokens) {
      t.begin += static_cast<uint32_t>(begin);
      t.end += static_cast<uint32_t>(begin);
    }
    sentences.push_back(std::move(s));
  };
  while (i < n) {
    char c = text[i];
    if (c == '!' || c == '?') {
      flush(start, i + 1);
      start = i + 1;
      ++i;
      continue;
    }
    if (c == '\n') {
      // Blank line = hard sentence/paragraph break.
      if (i + 1 < n && text[i + 1] == '\n') {
        flush(start, i);
        start = i + 2;
        i += 2;
        continue;
      }
      ++i;
      continue;
    }
    if (c == '.') {
      // Look back for the word before the period.
      size_t wb = i;
      while (wb > start && IsWordChar(text[wb - 1])) --wb;
      std::string_view prev = text.substr(wb, i - wb);
      bool abbrev = IsAbbreviation(prev) ||
                    (prev.size() == 1 &&
                     isupper(static_cast<unsigned char>(prev[0])));
      // Sentence end: period then whitespace then uppercase/EOF.
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      bool boundary =
          !abbrev && (j >= n || text[j] == '\n' ||
                      isupper(static_cast<unsigned char>(text[j])) ||
                      isdigit(static_cast<unsigned char>(text[j])));
      if (boundary && j > i + 1) {
        flush(start, i + 1);
        start = j;
        i = j;
        continue;
      }
      if (boundary && j >= n) {
        flush(start, i + 1);
        start = n;
        break;
      }
    }
    ++i;
  }
  if (start < n) flush(start, n);
  return sentences;
}

}  // namespace nlp
}  // namespace kb
