#ifndef KBFORGE_NLP_TOKENIZER_H_
#define KBFORGE_NLP_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "nlp/token.h"

namespace kb {
namespace nlp {

/// Rule-based tokenizer: splits on whitespace, detaches punctuation,
/// keeps decimal numbers ("3.14"), hyphenated words and apostrophe
/// clitics ("O'Brien") together. Offsets refer to the input text.
std::vector<Token> Tokenize(std::string_view text);

/// Splits text into sentences at ./!/? boundaries followed by
/// whitespace and an uppercase letter or EOF, skipping common
/// abbreviations ("Dr.", "St.", "Inc."). Each sentence is tokenized.
std::vector<Sentence> SplitSentences(std::string_view text);

}  // namespace nlp
}  // namespace kb

#endif  // KBFORGE_NLP_TOKENIZER_H_
