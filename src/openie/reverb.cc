#include "openie/reverb.h"

#include <cmath>
#include <map>
#include <set>

#include "util/string_util.h"

namespace kb {
namespace openie {

using extraction::AnnotatedSentence;
using nlp::Pos;

namespace {

bool IsVerb(Pos pos) { return pos == Pos::kVerb; }
bool IsPrep(Pos pos) {
  return pos == Pos::kPreposition || pos == Pos::kParticle;
}
bool IsFiller(Pos pos) {
  return pos == Pos::kNoun || pos == Pos::kAdjective ||
         pos == Pos::kAdverb || pos == Pos::kDeterminer ||
         pos == Pos::kPronoun;
}

/// Longest relation phrase starting at `start`: V | V P | V W* P.
/// Returns one past the end, or `start` if no verb there.
uint32_t MatchRelationPhrase(const nlp::Sentence& s, uint32_t start) {
  if (start >= s.tokens.size() || !IsVerb(s.tokens[start].pos)) return start;
  uint32_t i = start + 1;
  // Verb chain ("was married").
  while (i < s.tokens.size() && IsVerb(s.tokens[i].pos)) ++i;
  uint32_t after_verbs = i;
  // Optional W* P extension.
  uint32_t j = i;
  while (j < s.tokens.size() && IsFiller(s.tokens[j].pos)) ++j;
  if (j < s.tokens.size() && IsPrep(s.tokens[j].pos)) {
    return j + 1;  // V W* P
  }
  if (i < s.tokens.size() && IsPrep(s.tokens[i].pos)) {
    return i + 1;  // V P
  }
  return after_verbs;  // V
}

std::string TokensText(const nlp::Sentence& s, uint32_t from, uint32_t to) {
  std::string out;
  for (uint32_t i = from; i < to; ++i) {
    if (!out.empty()) out += ' ';
    out += s.tokens[i].text;
  }
  return out;
}

}  // namespace

std::string NormalizeRelationPhrase(const std::string& phrase) {
  std::vector<std::string> words = SplitWhitespace(ToLower(phrase));
  static const std::set<std::string>* kAux = new std::set<std::string>{
      "is", "was", "are", "were", "has", "have", "had", "been", "be"};
  size_t start = 0;
  while (start + 1 < words.size() && kAux->count(words[start]) > 0) {
    ++start;
  }
  std::vector<std::string> rest(words.begin() + start, words.end());
  return Join(rest, " ");
}

double OpenIEConfidence(size_t relation_tokens, bool arg1_proper,
                        bool arg2_proper, bool relation_ends_with_prep,
                        size_t sentence_tokens) {
  // Hand-set logistic model in the spirit of ReVerb's trained one.
  double z = 0.6;
  z += arg1_proper ? 0.9 : -0.5;
  z += arg2_proper ? 0.6 : -0.3;
  z += relation_ends_with_prep ? 0.3 : 0.0;
  z -= 0.25 * static_cast<double>(relation_tokens > 4 ? relation_tokens - 4
                                                      : 0);
  z -= 0.03 * static_cast<double>(sentence_tokens > 20
                                      ? sentence_tokens - 20
                                      : 0);
  return 1.0 / (1.0 + std::exp(-z));
}

OpenIEExtractor::OpenIEExtractor(OpenIEOptions options)
    : options_(options) {}

std::vector<OpenTriple> OpenIEExtractor::ExtractFromSentence(
    const AnnotatedSentence& as) const {
  std::vector<OpenTriple> out;
  const nlp::Sentence& s = as.sentence;
  std::vector<nlp::Chunk> nps = nlp::FindNounPhrases(s);
  if (nps.size() < 2) return out;

  auto aligned_entity = [&](const nlp::Chunk& chunk) -> uint32_t {
    for (const extraction::SentenceMention& m : as.mentions) {
      // The NP must cover the mention and add at most a determiner.
      if (m.token_begin >= chunk.begin && m.token_end <= chunk.end &&
          m.token_end - m.token_begin + 1 >= chunk.size()) {
        return m.entity;
      }
    }
    return UINT32_MAX;
  };

  for (size_t a = 0; a + 1 < nps.size(); ++a) {
    const nlp::Chunk& left = nps[a];
    uint32_t rel_end = MatchRelationPhrase(s, left.end);
    if (rel_end == left.end) continue;  // no verb after arg1
    // arg2 is the NP starting exactly where the relation phrase ends;
    // NPs swallowed by the W* filler ("has [its headquarters] in") are
    // part of the relation, not arguments.
    const nlp::Chunk* right_ptr = nullptr;
    for (size_t b = a + 1; b < nps.size(); ++b) {
      if (nps[b].begin == rel_end) {
        right_ptr = &nps[b];
        break;
      }
      if (nps[b].begin > rel_end) break;
    }
    if (right_ptr == nullptr) continue;
    const nlp::Chunk& right = *right_ptr;
    OpenTriple t;
    t.arg1 = nlp::ChunkTextNoDet(s, left);
    t.arg2 = nlp::ChunkTextNoDet(s, right);
    t.relation = TokensText(s, left.end, rel_end);
    t.normalized_relation = NormalizeRelationPhrase(t.relation);
    if (t.normalized_relation.empty()) continue;
    t.doc_id = as.doc_id;
    t.arg1_entity = aligned_entity(left);
    t.arg2_entity = aligned_entity(right);
    bool ends_with_prep = IsPrep(s.tokens[rel_end - 1].pos);
    t.confidence =
        OpenIEConfidence(rel_end - left.end, left.proper, right.proper,
                         ends_with_prep, s.tokens.size());
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<OpenTriple> OpenIEExtractor::Extract(
    const std::vector<AnnotatedSentence>& sentences) const {
  std::vector<OpenTriple> all;
  for (const AnnotatedSentence& s : sentences) {
    auto triples = ExtractFromSentence(s);
    all.insert(all.end(), triples.begin(), triples.end());
  }
  // Lexical constraint: a relation phrase must occur with enough
  // distinct argument pairs to count as a real relation.
  if (options_.min_relation_support > 1) {
    std::map<std::string, std::set<std::pair<std::string, std::string>>>
        support;
    for (const OpenTriple& t : all) {
      support[t.normalized_relation].insert({t.arg1, t.arg2});
    }
    std::vector<OpenTriple> kept;
    for (OpenTriple& t : all) {
      if (static_cast<int>(support[t.normalized_relation].size()) >=
          options_.min_relation_support) {
        kept.push_back(std::move(t));
      }
    }
    all = std::move(kept);
  }
  if (options_.min_confidence > 0) {
    std::vector<OpenTriple> kept;
    for (OpenTriple& t : all) {
      if (t.confidence >= options_.min_confidence) {
        kept.push_back(std::move(t));
      }
    }
    all = std::move(kept);
  }
  return all;
}

}  // namespace openie
}  // namespace kb
