#ifndef KBFORGE_OPENIE_REVERB_H_
#define KBFORGE_OPENIE_REVERB_H_

#include <string>
#include <vector>

#include "extraction/annotation.h"
#include "nlp/chunker.h"
#include "nlp/token.h"

namespace kb {
namespace openie {

/// An open-domain SPO triple with surface-form arguments (tutorial §3
/// "Open Information Extraction": noun phrases as entity candidates,
/// verbal phrases as prototypic relation patterns).
struct OpenTriple {
  std::string arg1;
  std::string relation;             ///< raw relation phrase
  std::string normalized_relation;  ///< auxiliary-stripped, lowercased
  std::string arg2;
  double confidence = 0.0;
  uint32_t doc_id = 0;
  /// Gold alignment when the argument span coincides with an annotated
  /// entity mention (UINT32_MAX = unaligned NP).
  uint32_t arg1_entity = UINT32_MAX;
  uint32_t arg2_entity = UINT32_MAX;
};

/// Extraction options (ablations for E4).
struct OpenIEOptions {
  /// Require the relation phrase to be seen with >= this many distinct
  /// argument pairs (ReVerb's lexical constraint; 1 disables).
  int min_relation_support = 1;
  /// Drop triples whose confidence is below this threshold.
  double min_confidence = 0.0;
};

/// ReVerb-style open IE: finds relation phrases matching the POS
/// pattern V | V P | V W* P between two noun phrases, then scores each
/// extraction with a logistic confidence function over shallow
/// features. No relation inventory is consulted.
class OpenIEExtractor {
 public:
  explicit OpenIEExtractor(OpenIEOptions options = OpenIEOptions());

  /// Extracts open triples from tagged, mention-annotated sentences.
  std::vector<OpenTriple> Extract(
      const std::vector<extraction::AnnotatedSentence>& sentences) const;

  /// Single-sentence extraction (no lexical-support filtering).
  std::vector<OpenTriple> ExtractFromSentence(
      const extraction::AnnotatedSentence& sentence) const;

 private:
  OpenIEOptions options_;
};

/// Strips leading auxiliaries/copulas and lowercases a relation phrase
/// ("was founded by" -> "founded by").
std::string NormalizeRelationPhrase(const std::string& phrase);

/// The confidence function (exposed for tests): logistic over shallow
/// features of the extraction.
double OpenIEConfidence(size_t relation_tokens, bool arg1_proper,
                        bool arg2_proper, bool relation_ends_with_prep,
                        size_t sentence_tokens);

}  // namespace openie
}  // namespace kb

#endif  // KBFORGE_OPENIE_REVERB_H_
