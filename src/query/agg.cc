#include "query/agg.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "util/hash.h"

namespace kb {
namespace query {

size_t GroupAggregator::KeyHash::operator()(const Row& row) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (rdf::TermId id : row) h = HashCombine(h, Mix64(id));
  return static_cast<size_t>(h);
}

void GroupAggregator::Fold(Accum* accum, rdf::TermId agg_value) {
  if (agg_.func == AggFunc::kCountDistinct && agg_.agg_slot >= 0) {
    accum->distinct.insert(agg_value);
  } else {
    ++accum->count;
  }
}

void GroupAggregator::Accumulate(const Row& row) {
  key_.resize(agg_.group_slots.size());
  for (size_t i = 0; i < agg_.group_slots.size(); ++i) {
    key_[i] = row[static_cast<size_t>(agg_.group_slots[i])];
  }
  rdf::TermId agg_value =
      agg_.agg_slot >= 0 ? row[static_cast<size_t>(agg_.agg_slot)] : 0;
  Fold(&groups_[key_], agg_value);
}

void GroupAggregator::AccumulateColumns(
    const std::vector<std::vector<rdf::TermId>>& cols, size_t rows) {
  key_.resize(agg_.group_slots.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < agg_.group_slots.size(); ++i) {
      key_[i] = cols[static_cast<size_t>(agg_.group_slots[i])][r];
    }
    rdf::TermId agg_value =
        agg_.agg_slot >= 0 ? cols[static_cast<size_t>(agg_.agg_slot)][r] : 0;
    Fold(&groups_[key_], agg_value);
  }
}

std::vector<Row> GroupAggregator::Finish(size_t top_k) && {
  auto count_of = [this](const Accum& accum) {
    uint64_t n = agg_.func == AggFunc::kCountDistinct && agg_.agg_slot >= 0
                     ? accum.distinct.size()
                     : accum.count;
    return std::min<uint64_t>(n, kMaxCount);
  };
  auto emit = [](Row key, uint64_t count) {
    key.push_back(static_cast<rdf::TermId>(count));
    return key;
  };

  std::vector<Row> out;
  if (top_k == 0) {
    out.reserve(groups_.size());
    for (auto& [key, accum] : groups_) {
      out.push_back(emit(key, count_of(accum)));
    }
    return out;
  }

  // Bounded heap: the worst kept group sits on top and is evicted the
  // moment a better one arrives, so only k groups are ever ordered.
  using Entry = std::pair<uint64_t, Row>;  // (count, group key)
  auto better = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(better)> heap(
      better);
  for (auto& [key, accum] : groups_) {
    Entry entry(count_of(accum), key);
    if (heap.size() < top_k) {
      heap.push(std::move(entry));
    } else if (better(entry, heap.top())) {
      heap.pop();
      heap.push(std::move(entry));
    }
  }
  out.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = emit(heap.top().second, heap.top().first);
    heap.pop();
  }
  return out;
}

}  // namespace query
}  // namespace kb
