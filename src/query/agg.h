#ifndef KBFORGE_QUERY_AGG_H_
#define KBFORGE_QUERY_AGG_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "query/engine.h"

namespace kb {
namespace query {

/// Hash-based GROUP BY accumulator shared by the row-at-a-time
/// HashAggregateOp and the batch executor. Group keys are bare id
/// tuples (no term materialization — the executor stays id-native
/// until the result boundary); values are row counts or distinct-id
/// sets, per CompiledAgg::func.
///
/// Finish() emits [group values..., count] rows. With top_k > 0 only
/// the k largest groups survive, selected with a bounded min-heap in
/// O(G log k) (count-descending, group-key-ascending on ties, so the
/// order is deterministic) instead of sorting all G groups.
class GroupAggregator {
 public:
  explicit GroupAggregator(const CompiledAgg& agg) : agg_(agg) {}

  /// Folds one full-width executor row into its group.
  void Accumulate(const Row& row);

  /// Column-major variant: folds `rows` rows of a batch whose columns
  /// are `cols` (only the group and agg columns are touched).
  void AccumulateColumns(const std::vector<std::vector<rdf::TermId>>& cols,
                         size_t rows);

  /// Groups materialized so far.
  size_t num_groups() const { return groups_.size(); }

  /// Emits the aggregated rows; ordered (best first) iff top_k > 0.
  /// Counts saturate at kMaxCount — they ride in a TermId column.
  std::vector<Row> Finish(size_t top_k) &&;

  /// Largest representable count: stays clear of rdf::kAnyTerm so a
  /// count can never be mistaken for the wildcard.
  static constexpr uint64_t kMaxCount = 0xfffffffeu;

 private:
  struct Accum {
    uint64_t count = 0;
    std::unordered_set<rdf::TermId> distinct;
  };
  struct KeyHash {
    size_t operator()(const Row& row) const;
  };

  void Fold(Accum* accum, rdf::TermId agg_value);

  CompiledAgg agg_;
  Row key_;  ///< scratch group key, reused across rows
  std::unordered_map<Row, Accum, KeyHash> groups_;
};

}  // namespace query
}  // namespace kb

#endif  // KBFORGE_QUERY_AGG_H_
