#include "query/batch_exec.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>

#include "query/agg.h"
#include "query/exec_internal.h"
#include "util/bloom_filter.h"
#include "util/metrics_registry.h"
#include "util/slice.h"

namespace kb {
namespace query {

namespace {

/// Batch-mode instruments in the default registry.
struct BatchMetrics {
  Counter& batches;
  Counter& bloom_probes;
  Counter& bloom_hits;

  static BatchMetrics& Get() {
    static BatchMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new BatchMetrics{
          r.counter("query.batches"),
          r.counter("query.bloom_probes"),
          r.counter("query.bloom_hits"),
      };
    }();
    return *m;
  }
};

/// One id-column chunk flowing between batch operators: `rows` rows of
/// `cols.size()` slots, column-major so the aggregate and projection
/// stages touch only the columns they need.
struct Chunk {
  size_t rows = 0;
  std::vector<std::vector<rdf::TermId>> cols;

  void Reset(size_t width) {
    cols.resize(width);
    for (auto& col : cols) col.clear();
    rows = 0;
  }
  void PushRow(const Row& row) {
    for (size_t i = 0; i < cols.size(); ++i) cols[i].push_back(row[i]);
    ++rows;
  }
};

/// Don't build a semijoin filter past this many keys: the build scan
/// would rival the probes it saves.
constexpr size_t kMaxBloomKeys = 1u << 22;
constexpr int kBloomBitsPerKey = 10;

/// A per-join-level Bloom semijoin prefilter: the join-key column of
/// the level's constant-bound inner scan, folded into a Bloom filter
/// once at open time. Outer rows whose key definitely has no inner
/// match skip the index probe (and its iterator allocation) entirely.
struct LevelBloom {
  std::string data;
  int probe_slot = -1;

  bool MayContain(rdf::TermId key) const {
    BloomFilterReader reader{Slice(data)};
    return reader.MayContain(
        Slice(reinterpret_cast<const char*>(&key), sizeof(key)));
  }
};

/// Builds the prefilter for `scan` when it is worth it: exactly one
/// probe slot, and the inner side estimated no larger than the leaf
/// scan feeding the pipeline (the "smaller side" rule — a filter of
/// the bigger side costs more to build than the probes it saves).
std::unique_ptr<LevelBloom> MaybeBuildBloom(const rdf::TripleSource& source,
                                            const CompiledScan& scan,
                                            size_t outer_estimate,
                                            QueryStats* stats) {
  const Access* accesses[3] = {&scan.s, &scan.p, &scan.o};
  int probe_pos = -1, probes = 0;
  rdf::TriplePattern inner;
  rdf::TermId* pattern_out[3] = {&inner.s, &inner.p, &inner.o};
  for (int i = 0; i < 3; ++i) {
    switch (accesses[i]->kind) {
      case Access::Kind::kConst:
        *pattern_out[i] = accesses[i]->constant;
        break;
      case Access::Kind::kProbe:
        ++probes;
        probe_pos = i;
        break;
      default:
        break;
    }
  }
  if (probes != 1) return nullptr;
  const size_t inner_estimate = source.EstimateCount(inner);
  if (inner_estimate == 0 || inner_estimate > kMaxBloomKeys ||
      inner_estimate > outer_estimate) {
    return nullptr;
  }
  BloomFilterBuilder builder(kBloomBitsPerKey);
  size_t keys = 0;
  source.Scan(inner, [&](const rdf::Triple& t) {
    rdf::TermId key = probe_pos == 0 ? t.s : probe_pos == 1 ? t.p : t.o;
    builder.AddKey(Slice(reinterpret_cast<const char*>(&key), sizeof(key)));
    return ++keys <= kMaxBloomKeys;  // estimate lied: stop growing
  });
  ++stats->index_scans;
  if (keys > kMaxBloomKeys) return nullptr;  // partial filter is unusable
  auto bloom = std::make_unique<LevelBloom>();
  bloom->data = builder.Finish();
  bloom->probe_slot = accesses[probe_pos]->slot;
  return bloom;
}

class BatchOp {
 public:
  virtual ~BatchOp() = default;
  /// Fills `out` with up to batch-size rows; false at end of stream.
  virtual bool Next(Chunk* out) = 0;
};

/// Exactly one all-wildcard row (empty WHERE clause).
class OnceBatchOp : public BatchOp {
 public:
  explicit OnceBatchOp(size_t width) : width_(width) {}
  bool Next(Chunk* out) override {
    out->Reset(width_);
    if (done_) return false;
    done_ = true;
    out->PushRow(Row(width_, rdf::kAnyTerm));
    return true;
  }

 private:
  size_t width_;
  bool done_ = false;
};

/// Leaf: the level-0 index scan, filling id-column chunks.
class BatchScanOp : public BatchOp {
 public:
  BatchScanOp(const rdf::TripleSource* source, const CompiledScan& scan,
              size_t width, size_t batch_size, bool use_indexes,
              QueryStats* stats, Cursor::CancelState* cancel)
      : source_(source),
        scan_(scan),
        width_(width),
        batch_size_(batch_size),
        use_indexes_(use_indexes),
        stats_(stats),
        cancel_(cancel) {}

  bool Next(Chunk* out) override {
    out->Reset(width_);
    if (iter_ == nullptr) {
      static const Row kNoRow;
      iter_ = source_->NewScan(ScanPattern(scan_, kNoRow, use_indexes_));
      ++stats_->index_scans;
      ++stats_->patterns_evaluated;
    }
    while (iter_->Valid() && out->rows < batch_size_) {
      if (cancel_->Expired()) break;
      const rdf::Triple& t = iter_->Value();
      ++stats_->intermediate_rows;
      scratch_.assign(width_, rdf::kAnyTerm);
      bool ok = BindRow(scan_, t, &scratch_);
      iter_->Next();
      if (ok) out->PushRow(scratch_);
    }
    return out->rows > 0;
  }

 private:
  const rdf::TripleSource* source_;
  CompiledScan scan_;
  size_t width_;
  size_t batch_size_;
  bool use_indexes_;
  QueryStats* stats_;
  Cursor::CancelState* cancel_;
  std::unique_ptr<rdf::ScanIterator> iter_;
  Row scratch_;
};

/// One join level: consumes the child's chunks an outer row at a time,
/// probing the index per row — after the optional Bloom prefilter has
/// ruled the row's join key in.
class BatchJoinOp : public BatchOp {
 public:
  BatchJoinOp(std::unique_ptr<BatchOp> child,
              const rdf::TripleSource* source, const CompiledScan& scan,
              size_t width, size_t batch_size, bool use_indexes,
              std::unique_ptr<LevelBloom> bloom, QueryStats* stats,
              Cursor::CancelState* cancel)
      : child_(std::move(child)),
        source_(source),
        scan_(scan),
        width_(width),
        batch_size_(batch_size),
        use_indexes_(use_indexes),
        bloom_(std::move(bloom)),
        stats_(stats),
        cancel_(cancel) {}

  bool Next(Chunk* out) override {
    out->Reset(width_);
    for (;;) {
      if (cancel_->expired) return out->rows > 0;
      if (iter_ != nullptr) {
        while (iter_->Valid() && out->rows < batch_size_) {
          if (cancel_->Expired()) break;
          const rdf::Triple& t = iter_->Value();
          ++stats_->intermediate_rows;
          scratch_ = outer_;
          bool ok = BindRow(scan_, t, &scratch_);
          iter_->Next();
          if (ok) out->PushRow(scratch_);
        }
        if (out->rows == batch_size_) return true;
        if (iter_->Valid() && !cancel_->expired) continue;
        iter_.reset();
      }
      // Advance to the next outer row, pulling a fresh chunk from the
      // child when the current one is spent.
      if (input_pos_ >= input_.rows) {
        if (!child_->Next(&input_)) return out->rows > 0;
        input_pos_ = 0;
        if (input_.rows == 0) return out->rows > 0;
      }
      outer_.resize(width_);
      for (size_t c = 0; c < width_; ++c) {
        outer_[c] = input_.cols[c][input_pos_];
      }
      ++input_pos_;
      if (bloom_ != nullptr) {
        ++stats_->bloom_probes;
        if (!bloom_->MayContain(
                outer_[static_cast<size_t>(bloom_->probe_slot)])) {
          continue;  // definitely no inner match: skip the probe
        }
        ++stats_->bloom_hits;
      }
      iter_ = source_->NewScan(ScanPattern(scan_, outer_, use_indexes_));
      ++stats_->index_scans;
      ++stats_->patterns_evaluated;
    }
  }

 private:
  std::unique_ptr<BatchOp> child_;
  const rdf::TripleSource* source_;
  CompiledScan scan_;
  size_t width_;
  size_t batch_size_;
  bool use_indexes_;
  std::unique_ptr<LevelBloom> bloom_;
  QueryStats* stats_;
  Cursor::CancelState* cancel_;
  Chunk input_;
  size_t input_pos_ = 0;
  Row outer_;
  Row scratch_;
  std::unique_ptr<rdf::ScanIterator> iter_;
};

}  // namespace

std::vector<Row> ExecuteBatch(const CompiledPlan& plan,
                              const SelectQuery& query,
                              const rdf::TripleSource& source,
                              const ExecutionOptions& options,
                              QueryStats* stats) {
  if (plan.unmatchable) return {};
  const size_t width = plan.var_names.size();
  const size_t batch_size = std::max<size_t>(options.batch_size, 1);

  Cursor::CancelState cancel;
  if (options.exec.has_deadline()) {
    cancel.armed = true;
    cancel.deadline = options.exec.deadline;
  }

  // Assemble the chain: leaf scan, then one BatchJoinOp per join
  // level, each with its semijoin prefilter when the smaller-side rule
  // says the build pays for itself.
  std::unique_ptr<BatchOp> op;
  if (plan.scans.empty()) {
    op = std::make_unique<OnceBatchOp>(width);
  } else {
    static const Row kNoRow;
    const size_t leaf_estimate = options.use_indexes
        ? source.EstimateCount(
              ScanPattern(plan.scans[0], kNoRow, /*use_indexes=*/true))
        : SIZE_MAX;
    op = std::make_unique<BatchScanOp>(&source, plan.scans[0], width,
                                       batch_size, options.use_indexes,
                                       stats, &cancel);
    for (size_t i = 1; i < plan.scans.size(); ++i) {
      std::unique_ptr<LevelBloom> bloom;
      if (options.use_indexes) {
        bloom = MaybeBuildBloom(source, plan.scans[i], leaf_estimate, stats);
      }
      op = std::make_unique<BatchJoinOp>(
          std::move(op), &source, plan.scans[i], width, batch_size,
          options.use_indexes, std::move(bloom), stats, &cancel);
    }
  }

  GroupAggregator aggregator(plan.agg);
  std::unordered_set<Row, RowHash> seen;  // DISTINCT
  std::vector<Row> out;
  const size_t limit = options.pushdown_limit ? query.limit : 0;
  const size_t max_rows = options.exec.max_rows;
  Chunk chunk;
  bool done = false;
  while (!done && op->Next(&chunk)) {
    ++stats->batches;
    if (cancel.expired) break;
    if (plan.agg.enabled) {
      aggregator.AccumulateColumns(chunk.cols, chunk.rows);
      continue;
    }
    for (size_t r = 0; r < chunk.rows; ++r) {
      Row row(plan.projection_slots.size());
      for (size_t i = 0; i < plan.projection_slots.size(); ++i) {
        row[i] =
            chunk.cols[static_cast<size_t>(plan.projection_slots[i])][r];
      }
      if (plan.distinct && !seen.insert(row).second) continue;
      if (max_rows != 0 && out.size() >= max_rows) {
        stats->max_rows_hit = true;
        done = true;
        break;
      }
      out.push_back(std::move(row));
      if (limit != 0 && out.size() >= limit) {
        done = true;
        break;
      }
    }
  }
  if (cancel.expired) {
    // Same contract as the row path: what was produced is a prefix,
    // flagged — and a partial aggregate would be wrong, so none.
    stats->deadline_exceeded = true;
    stats->rows_streamed += out.size();
    return plan.agg.enabled ? std::vector<Row>() : out;
  }
  if (plan.agg.enabled) {
    stats->agg_groups += aggregator.num_groups();
    out = std::move(aggregator).Finish(query.agg.top_k);
    if (query.limit != 0 && out.size() > query.limit) {
      out.resize(query.limit);
    }
    if (max_rows != 0 && out.size() > max_rows) {
      out.resize(max_rows);
      stats->max_rows_hit = true;
    }
  }
  stats->rows_streamed += out.size();
  return out;
}

void BatchMetricsFlush(const QueryStats& stats) {
  BatchMetrics& metrics = BatchMetrics::Get();
  metrics.batches.Increment(stats.batches);
  if (stats.bloom_probes > 0) {
    metrics.bloom_probes.Increment(stats.bloom_probes);
    metrics.bloom_hits.Increment(stats.bloom_hits);
  }
}

}  // namespace query
}  // namespace kb
