#ifndef KBFORGE_QUERY_BATCH_EXEC_H_
#define KBFORGE_QUERY_BATCH_EXEC_H_

#include <vector>

#include "query/engine.h"
#include "query/plan.h"

namespace kb {
namespace query {

/// Vector-at-a-time execution of a compiled plan (the E19 ablation
/// against the Volcano row-at-a-time pipeline):
///
///   - the leaf scan fills column-major id chunks of up to
///     `options.batch_size` rows (one vector<TermId> per slot);
///   - each join level consumes a chunk at a time, probing the index
///     per outer row and appending extended rows to its output chunk;
///   - join levels with exactly one probe slot get a Bloom-filter
///     semijoin prefilter when the inner side is estimated smaller
///     than the leaf: the inner scan's join-key column is folded into
///     a Bloom filter once, and outer rows whose key definitely has
///     no match skip the index probe entirely
///     (QueryStats::bloom_probes / bloom_hits);
///   - aggregation folds chunks column-wise into the shared
///     GroupAggregator; plain queries project chunk columns.
///
/// Runs against the same CompiledPlan (and therefore through the same
/// plan cache) as the row executor and returns the same projected
/// rows: [projection...] or [group values..., count] for aggregates.
/// Honors options.exec (deadline checked between chunks, max_rows on
/// produced rows) and fills `stats` like the row path.
std::vector<Row> ExecuteBatch(const CompiledPlan& plan,
                              const SelectQuery& query,
                              const rdf::TripleSource& source,
                              const ExecutionOptions& options,
                              QueryStats* stats);

/// Flushes the batch-mode counters of one execution (query.batches,
/// query.bloom_probes, query.bloom_hits) into the default registry.
void BatchMetricsFlush(const QueryStats& stats);

}  // namespace query
}  // namespace kb

#endif  // KBFORGE_QUERY_BATCH_EXEC_H_
