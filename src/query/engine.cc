#include "query/engine.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "query/agg.h"
#include "query/batch_exec.h"
#include "query/exec_internal.h"
#include "rdf/term.h"
#include "util/hash.h"
#include "util/metrics_registry.h"
#include "util/string_util.h"

namespace kb {
namespace query {

namespace {

/// Executor instruments in the default registry.
struct QueryMetrics {
  Counter& executions;
  Counter& rows;
  Counter& rows_streamed;
  Counter& patterns_evaluated;
  Counter& index_scans;
  Counter& plan_cache_hits;
  Counter& plan_cache_misses;
  Counter& agg_groups;
  Histogram& execute_ms;

  static QueryMetrics& Get() {
    static QueryMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new QueryMetrics{
          r.counter("query.executions"),
          r.counter("query.rows"),
          r.counter("query.rows_streamed"),
          r.counter("query.patterns_evaluated"),
          r.counter("query.index_scans"),
          r.counter("query.plan_cache_hits"),
          r.counter("query.plan_cache_misses"),
          r.counter("query.agg_groups"),
          r.histogram("query.execute_ms"),
      };
    }();
    return *m;
  }
};

}  // namespace

// --------------------------------------------------------- Operators

class Cursor::Operator {
 public:
  virtual ~Operator() = default;
  /// Produces the next row into `row`; false at end of stream.
  virtual bool Next(Row* row) = 0;
};

namespace {

using Operator = Cursor::Operator;

/// The materialize_terms ablation body: copies all three Terms out of
/// the dictionary (string heap traffic and all) and keeps a byte count
/// the optimizer cannot discard.
inline void MaterializeTriple(const rdf::Dictionary* dict,
                              const rdf::Triple& t, QueryStats* stats) {
  rdf::Term s = dict->term(t.s);
  rdf::Term p = dict->term(t.p);
  rdf::Term o = dict->term(t.o);
  stats->terms_materialized += 3;
  volatile size_t sink =
      s.value().size() + p.value().size() + o.value().size();
  (void)sink;
}

/// Zero rows (unmatchable constants).
class EmptyOp : public Operator {
 public:
  bool Next(Row*) override { return false; }
};

/// Exactly one empty row (empty WHERE clause).
class OnceOp : public Operator {
 public:
  explicit OnceOp(size_t width) : width_(width) {}
  bool Next(Row* row) override {
    if (done_) return false;
    done_ = true;
    row->assign(width_, rdf::kAnyTerm);
    return true;
  }

 private:
  size_t width_;
  bool done_ = false;
};

/// Leaf: one index scan binding the first pattern's variables.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const rdf::TripleSource* source, const CompiledScan& scan,
              size_t width, bool use_indexes,
              const rdf::Dictionary* materialize, QueryStats* stats,
              Cursor::CancelState* cancel)
      : source_(source),
        scan_(scan),
        width_(width),
        use_indexes_(use_indexes),
        materialize_(materialize),
        stats_(stats),
        cancel_(cancel) {}

  bool Next(Row* row) override {
    if (iter_ == nullptr) {
      static const Row kNoRow;
      iter_ = source_->NewScan(ScanPattern(scan_, kNoRow, use_indexes_));
      ++stats_->index_scans;
      ++stats_->patterns_evaluated;
    }
    while (iter_->Valid()) {
      if (cancel_->Expired()) return false;
      const rdf::Triple& t = iter_->Value();
      ++stats_->intermediate_rows;
      if (materialize_ != nullptr) MaterializeTriple(materialize_, t, stats_);
      row->assign(width_, rdf::kAnyTerm);
      bool ok = BindRow(scan_, t, row);
      iter_->Next();
      if (ok) return true;
    }
    return false;
  }

 private:
  const rdf::TripleSource* source_;
  CompiledScan scan_;
  size_t width_;
  bool use_indexes_;
  const rdf::Dictionary* materialize_;
  QueryStats* stats_;
  Cursor::CancelState* cancel_;
  std::unique_ptr<rdf::ScanIterator> iter_;
};

/// Index nested-loop join: for every row of `child`, an index scan
/// probes the matches of this level's pattern.
class IndexNestedLoopJoinOp : public Operator {
 public:
  IndexNestedLoopJoinOp(std::unique_ptr<Operator> child,
                        const rdf::TripleSource* source,
                        const CompiledScan& scan, bool use_indexes,
                        const rdf::Dictionary* materialize, QueryStats* stats,
                        Cursor::CancelState* cancel)
      : child_(std::move(child)),
        source_(source),
        scan_(scan),
        use_indexes_(use_indexes),
        materialize_(materialize),
        stats_(stats),
        cancel_(cancel) {}

  bool Next(Row* row) override {
    for (;;) {
      if (iter_ != nullptr) {
        while (iter_->Valid()) {
          if (cancel_->Expired()) return false;
          const rdf::Triple& t = iter_->Value();
          ++stats_->intermediate_rows;
          if (materialize_ != nullptr) {
            MaterializeTriple(materialize_, t, stats_);
          }
          *row = outer_;
          bool ok = BindRow(scan_, t, row);
          iter_->Next();
          if (ok) return true;
        }
        iter_.reset();
      }
      if (!child_->Next(&outer_)) return false;
      iter_ = source_->NewScan(ScanPattern(scan_, outer_, use_indexes_));
      ++stats_->index_scans;
      ++stats_->patterns_evaluated;
    }
  }

 private:
  std::unique_ptr<Operator> child_;
  const rdf::TripleSource* source_;
  CompiledScan scan_;
  bool use_indexes_;
  const rdf::Dictionary* materialize_;
  QueryStats* stats_;
  Cursor::CancelState* cancel_;
  Row outer_;
  std::unique_ptr<rdf::ScanIterator> iter_;
};

/// Narrows full-width rows to the projected columns.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<int> slots)
      : child_(std::move(child)), slots_(std::move(slots)) {}

  bool Next(Row* row) override {
    if (!child_->Next(&buffer_)) return false;
    row->resize(slots_.size());
    for (size_t i = 0; i < slots_.size(); ++i) {
      (*row)[i] = buffer_[static_cast<size_t>(slots_[i])];
    }
    return true;
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<int> slots_;
  Row buffer_;
};

/// Drops duplicate projected rows.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(std::unique_ptr<Operator> child)
      : child_(std::move(child)) {}

  bool Next(Row* row) override {
    while (child_->Next(row)) {
      if (seen_.insert(*row).second) return true;
    }
    return false;
  }

 private:
  std::unique_ptr<Operator> child_;
  std::unordered_set<Row, RowHash> seen_;
};

/// Stops the pipeline after `limit` rows (LIMIT pushdown: nothing
/// below this operator runs once the quota is reached).
class LimitOp : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> child, size_t limit)
      : child_(std::move(child)), remaining_(limit) {}

  bool Next(Row* row) override {
    if (remaining_ == 0) return false;
    if (!child_->Next(row)) {
      remaining_ = 0;
      return false;
    }
    --remaining_;
    return true;
  }

 private:
  std::unique_ptr<Operator> child_;
  size_t remaining_;
};

/// Hash GROUP BY over full-width rows: drains the child into the
/// shared GroupAggregator (query/agg.h), then streams the aggregated
/// [group values..., count] rows — ordered when a top-k bound was
/// requested, hash order otherwise. Replaces Project/Distinct in the
/// pipeline: the aggregate's output columns are already narrow.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(std::unique_ptr<Operator> child, const CompiledAgg& agg,
                  size_t top_k, QueryStats* stats,
                  Cursor::CancelState* cancel)
      : child_(std::move(child)),
        agg_(agg),
        top_k_(top_k),
        stats_(stats),
        cancel_(cancel) {}

  bool Next(Row* row) override {
    if (!done_) {
      GroupAggregator groups(agg_);
      Row in;
      while (child_->Next(&in)) {
        groups.Accumulate(in);
        if (cancel_->expired) break;
      }
      done_ = true;
      if (!cancel_->expired) {
        stats_->agg_groups += groups.num_groups();
        out_ = std::move(groups).Finish(top_k_);
      }
      // An expired deadline discards the partial aggregate: a group
      // that is missing late rows would be silently *wrong*, not just
      // a prefix, so nothing is emitted (the cursor flags the stats).
    }
    if (cancel_->expired || pos_ >= out_.size()) return false;
    *row = std::move(out_[pos_++]);
    return true;
  }

 private:
  std::unique_ptr<Operator> child_;
  CompiledAgg agg_;
  size_t top_k_;
  QueryStats* stats_;
  Cursor::CancelState* cancel_;
  std::vector<Row> out_;
  size_t pos_ = 0;
  bool done_ = false;
};

}  // namespace

// ------------------------------------------------------------ Cursor

Cursor::Cursor(PlanPtr plan,
               std::shared_ptr<const rdf::TripleSource> snapshot,
               const rdf::TripleSource* source,
               const ExecutionOptions& options, size_t limit, size_t top_k)
    : plan_(std::move(plan)),
      snapshot_(std::move(snapshot)),
      cancel_(std::make_unique<CancelState>()),
      stats_(std::make_unique<QueryStats>()),
      max_rows_(options.exec.max_rows) {
  if (options.exec.has_deadline()) {
    cancel_->armed = true;
    cancel_->deadline = options.exec.deadline;
  }
  const rdf::TripleSource* src =
      snapshot_ != nullptr ? snapshot_.get() : source;
  std::unique_ptr<Operator> op;
  if (plan_->unmatchable) {
    op = std::make_unique<EmptyOp>();
  } else if (plan_->scans.empty()) {
    op = std::make_unique<OnceOp>(plan_->var_names.size());
  } else {
    op = std::make_unique<IndexScanOp>(
        src, plan_->scans[0], plan_->var_names.size(), options.use_indexes,
        options.materialize_terms, stats_.get(), cancel_.get());
    for (size_t i = 1; i < plan_->scans.size(); ++i) {
      op = std::make_unique<IndexNestedLoopJoinOp>(
          std::move(op), src, plan_->scans[i], options.use_indexes,
          options.materialize_terms, stats_.get(), cancel_.get());
    }
  }
  if (plan_->agg.enabled) {
    // Aggregation replaces Project/Distinct: the aggregate streams
    // id-native [group..., count] rows straight to the boundary.
    op = std::make_unique<HashAggregateOp>(std::move(op), plan_->agg, top_k,
                                           stats_.get(), cancel_.get());
  } else {
    op = std::make_unique<ProjectOp>(std::move(op), plan_->projection_slots);
    if (plan_->distinct) op = std::make_unique<DistinctOp>(std::move(op));
  }
  if (limit != 0) op = std::make_unique<LimitOp>(std::move(op), limit);
  root_ = std::move(op);
}

Cursor::Cursor(Cursor&&) noexcept = default;
Cursor& Cursor::operator=(Cursor&&) noexcept = default;

Cursor::~Cursor() {
  if (stats_ == nullptr || flushed_metrics_) return;
  QueryMetrics& metrics = QueryMetrics::Get();
  metrics.rows_streamed.Increment(stats_->rows_streamed);
  metrics.patterns_evaluated.Increment(stats_->patterns_evaluated);
  metrics.index_scans.Increment(stats_->index_scans);
  if (stats_->agg_groups > 0) {
    metrics.agg_groups.Increment(stats_->agg_groups);
  }
  flushed_metrics_ = true;
}

bool Cursor::Next(Row* row) {
  if (stats_->deadline_exceeded || stats_->max_rows_hit) return false;
  if (max_rows_ != 0 && stats_->rows_streamed >= max_rows_) {
    stats_->max_rows_hit = true;
    return false;
  }
  // An already-expired deadline ends the stream before the first pull
  // (deterministic for "give up immediately" requests); otherwise the
  // operators poll cooperatively from their scan loops.
  if (cancel_->armed && stats_->rows_streamed == 0 &&
      std::chrono::steady_clock::now() >= cancel_->deadline) {
    cancel_->expired = true;
  }
  if (cancel_->expired || !root_->Next(row)) {
    stats_->deadline_exceeded = cancel_->expired;
    return false;
  }
  ++stats_->rows_streamed;
  return true;
}

const std::vector<std::string>& Cursor::columns() const {
  return plan_->projection_names;
}

Binding Cursor::ToBinding(const Row& row) const {
  Binding binding;
  for (size_t i = 0; i < plan_->projection_names.size() && i < row.size();
       ++i) {
    binding[plan_->projection_names[i]] = row[i];
  }
  return binding;
}

// ------------------------------------------------------- QueryEngine

PlanPtr QueryEngine::GetPlan(const SelectQuery& query,
                             const ExecutionOptions& options,
                             bool* cache_hit) const {
  *cache_hit = false;
  QueryMetrics& metrics = QueryMetrics::Get();
  if (!options.use_plan_cache) {
    return CompilePlan(query, *source_, options.reorder_patterns);
  }
  std::string key = PlanCacheKey(query, options.reorder_patterns);
  if (PlanPtr plan = cache_->Lookup(key); plan != nullptr) {
    metrics.plan_cache_hits.Increment();
    *cache_hit = true;
    return plan;
  }
  metrics.plan_cache_misses.Increment();
  PlanPtr plan = CompilePlan(query, *source_, options.reorder_patterns);
  cache_->Insert(key, plan);
  return plan;
}

Cursor QueryEngine::Open(const SelectQuery& query,
                         const ExecutionOptions& options) const {
  QueryMetrics::Get().executions.Increment();
  bool cache_hit = false;
  PlanPtr plan = GetPlan(query, options, &cache_hit);
  size_t limit = options.pushdown_limit ? query.limit : 0;
  Cursor cursor(std::move(plan), source_->SnapshotSource(), source_, options,
                limit, query.agg.top_k);
  cursor.stats_->plan_cache_hit = cache_hit;
  return cursor;
}

std::vector<Binding> QueryEngine::Execute(const SelectQuery& query,
                                          const ExecutionOptions& options,
                                          QueryStats* stats) const {
  // Aggregates only exist in the streaming/batch executors; the legacy
  // materializing ablation predates them and would return raw rows.
  if (!options.streaming && !query.agg.enabled()) {
    return ExecuteMaterialized(query, options, stats);
  }
  if (options.batch_size > 0) return ExecuteBatched(query, options, stats);
  QueryMetrics& metrics = QueryMetrics::Get();
  ScopedTimer timer(metrics.execute_ms);
  Cursor cursor = Open(query, options);
  std::vector<Binding> results;
  Row row;
  while (cursor.Next(&row)) results.push_back(cursor.ToBinding(row));
  if (!options.pushdown_limit && query.limit != 0 &&
      results.size() > query.limit) {
    results.resize(query.limit);
  }
  if (stats != nullptr) *stats = cursor.stats();
  metrics.rows.Increment(results.size());
  return results;
}

/// The vector-at-a-time mode: same plan (and plan cache), different
/// executor (query/batch_exec.h).
std::vector<Binding> QueryEngine::ExecuteBatched(
    const SelectQuery& query, const ExecutionOptions& options,
    QueryStats* stats) const {
  QueryMetrics& metrics = QueryMetrics::Get();
  metrics.executions.Increment();
  ScopedTimer timer(metrics.execute_ms);
  bool cache_hit = false;
  PlanPtr plan = GetPlan(query, options, &cache_hit);
  std::shared_ptr<const rdf::TripleSource> snapshot =
      source_->SnapshotSource();
  const rdf::TripleSource* src =
      snapshot != nullptr ? snapshot.get() : source_;
  QueryStats local;
  local.plan_cache_hit = cache_hit;
  std::vector<Row> rows = ExecuteBatch(*plan, query, *src, options, &local);
  if (!options.pushdown_limit && query.limit != 0 &&
      rows.size() > query.limit) {
    rows.resize(query.limit);
  }
  std::vector<Binding> results;
  results.reserve(rows.size());
  for (const Row& row : rows) {
    Binding binding;
    for (size_t i = 0;
         i < plan->projection_names.size() && i < row.size(); ++i) {
      binding[plan->projection_names[i]] = row[i];
    }
    results.push_back(std::move(binding));
  }
  metrics.rows.Increment(results.size());
  metrics.rows_streamed.Increment(local.rows_streamed);
  metrics.patterns_evaluated.Increment(local.patterns_evaluated);
  metrics.index_scans.Increment(local.index_scans);
  if (local.agg_groups > 0) metrics.agg_groups.Increment(local.agg_groups);
  BatchMetricsFlush(local);
  if (stats != nullptr) *stats = local;
  return results;
}

// The pre-iterator executor, kept as the materializing ablation (and
// the property-test foil): index nested-loop joins with dynamic
// greedy reordering, but every intermediate result built as a
// std::map binding and the full result set enumerated regardless of
// LIMIT (truncation happens at the end).
std::vector<Binding> QueryEngine::ExecuteMaterialized(
    const SelectQuery& query, const ExecutionOptions& options,
    QueryStats* stats) const {
  QueryMetrics& metrics = QueryMetrics::Get();
  metrics.executions.Increment();
  ScopedTimer timer(metrics.execute_ms);
  std::shared_ptr<const rdf::TripleSource> snapshot =
      source_->SnapshotSource();
  const rdf::TripleSource* src =
      snapshot != nullptr ? snapshot.get() : source_;

  auto resolve = [](const QueryTerm& term, const Binding& binding,
                    bool* unmatchable) {
    if (!term.is_var) {
      if (term.id == rdf::kInvalidTermId) *unmatchable = true;
      return term.id == rdf::kInvalidTermId ? rdf::kAnyTerm : term.id;
    }
    auto it = binding.find(term.var);
    return it == binding.end() ? rdf::kAnyTerm : it->second;
  };
  auto make_pattern = [&resolve](const QueryPattern& qp,
                                 const Binding& binding, bool* unmatchable) {
    rdf::TriplePattern pattern;
    pattern.s = resolve(qp.s, binding, unmatchable);
    pattern.p = resolve(qp.p, binding, unmatchable);
    pattern.o = resolve(qp.o, binding, unmatchable);
    return pattern;
  };
  auto bound_positions = [](const rdf::TriplePattern& p) {
    return (p.s != rdf::kAnyTerm) + (p.p != rdf::kAnyTerm) +
           (p.o != rdf::kAnyTerm);
  };

  std::vector<Binding> results;
  std::vector<bool> used(query.where.size(), false);
  Binding binding;
  QueryStats local_stats;
  std::set<Binding> seen;  // for DISTINCT

  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == query.where.size()) {
      Binding row;
      if (query.projection.empty()) {
        row = binding;
      } else {
        for (const std::string& var : query.projection) {
          auto it = binding.find(var);
          if (it != binding.end()) row[var] = it->second;
        }
      }
      if (query.distinct && !seen.insert(row).second) return;
      results.push_back(std::move(row));
      return;
    }
    size_t chosen = query.where.size();
    if (options.reorder_patterns) {
      int best_bound = -1;
      size_t best_count = SIZE_MAX;
      for (size_t i = 0; i < query.where.size(); ++i) {
        if (used[i]) continue;
        bool unmatchable = false;
        rdf::TriplePattern pattern =
            make_pattern(query.where[i], binding, &unmatchable);
        if (unmatchable) {
          chosen = i;  // will immediately produce zero rows
          break;
        }
        int bound = bound_positions(pattern);
        if (bound > best_bound) {
          best_bound = bound;
          best_count = src->EstimateCount(pattern);
          chosen = i;
        } else if (bound == best_bound) {
          size_t count = src->EstimateCount(pattern);
          if (count < best_count) {
            best_count = count;
            chosen = i;
          }
        }
      }
    } else {
      for (size_t i = 0; i < query.where.size(); ++i) {
        if (!used[i]) {
          chosen = i;
          break;
        }
      }
    }
    if (chosen >= query.where.size()) return;
    used[chosen] = true;
    const QueryPattern& qp = query.where[chosen];
    bool unmatchable = false;
    rdf::TriplePattern pattern = make_pattern(qp, binding, &unmatchable);
    ++local_stats.patterns_evaluated;
    if (!unmatchable) {
      ++local_stats.index_scans;
      rdf::TriplePattern scan_pattern =
          options.use_indexes ? pattern : rdf::TriplePattern();
      src->Scan(scan_pattern, [&](const rdf::Triple& t) {
        if (!pattern.Matches(t)) return true;
        Binding saved = binding;
        auto bind = [&](const QueryTerm& term, rdf::TermId value) {
          if (!term.is_var) return true;
          auto it = binding.find(term.var);
          if (it != binding.end()) return it->second == value;
          binding[term.var] = value;
          return true;
        };
        ++local_stats.intermediate_rows;
        if (bind(qp.s, t.s) && bind(qp.p, t.p) && bind(qp.o, t.o)) {
          recurse(depth + 1);
        }
        binding = std::move(saved);
        return true;
      });
    }
    used[chosen] = false;
  };
  recurse(0);
  if (query.limit != 0 && results.size() > query.limit) {
    results.resize(query.limit);
  }
  if (stats != nullptr) *stats = local_stats;
  metrics.rows.Increment(results.size());
  metrics.patterns_evaluated.Increment(local_stats.patterns_evaluated);
  metrics.index_scans.Increment(local_stats.index_scans);
  return results;
}

StatusOr<SelectQuery> ParseSparql(std::string_view text,
                                  const rdf::Dictionary& dict) {
  SelectQuery query;
  // Tokenize by whitespace but keep quoted literals intact; parens
  // become their own tokens (the aggregate syntax) except inside
  // quotes or <IRIs>, where they are ordinary characters.
  std::vector<std::string> tokens;
  {
    std::string current;
    bool in_quotes = false;
    bool in_iri = false;
    for (size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (c == '"' ) {
        in_quotes = !in_quotes;
        current += c;
        continue;
      }
      if (!in_quotes && c == '<') in_iri = true;
      if (!in_quotes && c == '>') in_iri = false;
      if (!in_quotes && !in_iri && (c == '(' || c == ')')) {
        if (!current.empty()) {
          tokens.push_back(current);
          current.clear();
        }
        tokens.push_back(std::string(1, c));
        continue;
      }
      if (!in_quotes && isspace(static_cast<unsigned char>(c))) {
        if (!current.empty()) {
          tokens.push_back(current);
          current.clear();
        }
        continue;
      }
      current += c;
    }
    if (!current.empty()) tokens.push_back(current);
  }
  size_t i = 0;
  auto expect = [&](const char* word) -> bool {
    if (i < tokens.size() && ToUpper(tokens[i]) == word) {
      ++i;
      return true;
    }
    return false;
  };
  if (!expect("SELECT")) return Status::InvalidArgument("expected SELECT");
  if (expect("DISTINCT")) query.distinct = true;
  // Projection list: ?vars and at most one (COUNT(...) AS ?name)
  // aggregate spec, in any interleaving.
  while (i < tokens.size()) {
    if (tokens[i][0] == '?') {
      query.projection.push_back(tokens[i].substr(1));
      ++i;
      continue;
    }
    if (tokens[i] != "(") break;
    if (query.agg.enabled()) {
      return Status::InvalidArgument("only one aggregate is supported");
    }
    ++i;  // '('
    if (!expect("COUNT")) {
      return Status::InvalidArgument("expected COUNT in aggregate");
    }
    if (i >= tokens.size() || tokens[i] != "(") {
      return Status::InvalidArgument("expected ( after COUNT");
    }
    ++i;
    query.agg.func = expect("DISTINCT") ? AggFunc::kCountDistinct
                                        : AggFunc::kCount;
    if (i < tokens.size() && tokens[i] == "*") {
      if (query.agg.func == AggFunc::kCountDistinct) {
        return Status::InvalidArgument("COUNT(DISTINCT *) is unsupported");
      }
      ++i;
    } else if (i < tokens.size() && tokens[i].size() > 1 &&
               tokens[i][0] == '?') {
      query.agg.var = tokens[i].substr(1);
      ++i;
    } else {
      return Status::InvalidArgument("expected ?var or * in COUNT");
    }
    if (i >= tokens.size() || tokens[i] != ")") {
      return Status::InvalidArgument("expected ) after COUNT argument");
    }
    ++i;
    if (!expect("AS")) {
      return Status::InvalidArgument("expected AS in aggregate");
    }
    if (i >= tokens.size() || tokens[i].size() < 2 || tokens[i][0] != '?') {
      return Status::InvalidArgument("expected ?name after AS");
    }
    query.agg.out_name = tokens[i].substr(1);
    ++i;
    if (i >= tokens.size() || tokens[i] != ")") {
      return Status::InvalidArgument("expected ) closing aggregate");
    }
    ++i;
  }
  if (i < tokens.size() && tokens[i] == "*") ++i;  // SELECT *
  if (query.agg.enabled() && query.distinct) {
    return Status::InvalidArgument("DISTINCT with an aggregate");
  }
  if (!expect("WHERE")) return Status::InvalidArgument("expected WHERE");
  if (i >= tokens.size() || tokens[i] != "{") {
    return Status::InvalidArgument("expected {");
  }
  ++i;
  std::vector<QueryTerm> terms;
  auto flush_pattern = [&]() -> Status {
    if (terms.empty()) return Status::OK();
    if (terms.size() != 3) {
      return Status::InvalidArgument("pattern must have 3 terms");
    }
    query.where.push_back({terms[0], terms[1], terms[2]});
    terms.clear();
    return Status::OK();
  };
  for (; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "}") {
      KB_RETURN_IF_ERROR(flush_pattern());
      if (query.where.empty()) {
        return Status::InvalidArgument("empty WHERE clause");
      }
      ++i;
      // Optional GROUP BY ?g ... (aggregate queries only).
      if (i < tokens.size() && ToUpper(tokens[i]) == "GROUP") {
        ++i;
        if (!expect("BY")) {
          return Status::InvalidArgument("expected BY after GROUP");
        }
        if (!query.agg.enabled()) {
          return Status::InvalidArgument("GROUP BY without an aggregate");
        }
        while (i < tokens.size() && tokens[i].size() > 1 &&
               tokens[i][0] == '?') {
          query.agg.group_by.push_back(tokens[i].substr(1));
          ++i;
        }
        if (query.agg.group_by.empty()) {
          return Status::InvalidArgument("empty GROUP BY");
        }
      }
      // Optional ORDER BY DESC(?agg) — the top-k form; only the
      // aggregate output may be the sort key, and a LIMIT must bound
      // the heap.
      bool ordered = false;
      if (i < tokens.size() && ToUpper(tokens[i]) == "ORDER") {
        ++i;
        if (!expect("BY")) {
          return Status::InvalidArgument("expected BY after ORDER");
        }
        if (!query.agg.enabled()) {
          return Status::InvalidArgument("ORDER BY without an aggregate");
        }
        if (!expect("DESC")) {
          return Status::InvalidArgument(
              "only ORDER BY DESC(?agg) is supported");
        }
        if (i >= tokens.size() || tokens[i] != "(") {
          return Status::InvalidArgument("expected ( after DESC");
        }
        ++i;
        if (i >= tokens.size() || tokens[i] != "?" + query.agg.out_name) {
          return Status::InvalidArgument(
              "ORDER BY DESC must sort on the aggregate output");
        }
        ++i;
        if (i >= tokens.size() || tokens[i] != ")") {
          return Status::InvalidArgument("expected ) after DESC(?var");
        }
        ++i;
        ordered = true;
      }
      // Optional trailing "LIMIT n".
      if (i < tokens.size() && ToUpper(tokens[i]) == "LIMIT") {
        ++i;
        long long n = 0;
        if (i >= tokens.size() || !ParseInt64(tokens[i], &n) || n < 0) {
          return Status::InvalidArgument("bad LIMIT");
        }
        query.limit = static_cast<size_t>(n);
        ++i;
      }
      if (ordered) {
        if (query.limit == 0) {
          return Status::InvalidArgument(
              "ORDER BY DESC(?agg) requires LIMIT (top-k)");
        }
        query.agg.top_k = query.limit;
        query.limit = 0;  // the bounded heap already emits exactly k
      }
      if (query.agg.enabled()) {
        // Grouped output variables must be exactly the projected ones
        // (order included), so the output columns are unambiguous.
        if (!query.projection.empty() &&
            query.projection != query.agg.group_by) {
          return Status::InvalidArgument(
              "projected variables must match GROUP BY");
        }
        // The output row is keyed by name; a collision would make the
        // count shadow its own group column.
        for (const std::string& g : query.agg.group_by) {
          if (g == query.agg.out_name) {
            return Status::InvalidArgument(
                "aggregate output name collides with a grouped variable");
          }
        }
      }
      if (i < tokens.size()) {
        return Status::InvalidArgument("trailing tokens after query");
      }
      return query;
    }
    if (token == ".") {
      KB_RETURN_IF_ERROR(flush_pattern());
      continue;
    }
    if (token[0] == '?') {
      if (token.size() < 2) {
        return Status::InvalidArgument("bare '?' variable");
      }
      terms.push_back(QueryTerm::Var(token.substr(1)));
      continue;
    }
    auto parsed = rdf::Term::Parse(token);
    if (!parsed.ok()) return parsed.status();
    // Unknown constants stay kInvalidTermId = unmatchable.
    terms.push_back(QueryTerm::Bound(dict.Lookup(*parsed)));
  }
  return Status::InvalidArgument("unterminated WHERE clause");
}

}  // namespace query
}  // namespace kb
