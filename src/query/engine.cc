#include "query/engine.h"

#include <algorithm>
#include <set>

#include "rdf/term.h"
#include "util/metrics_registry.h"
#include "util/string_util.h"

namespace kb {
namespace query {

namespace {

/// Executor instruments in the default registry.
struct QueryMetrics {
  Counter& executions;
  Counter& rows;
  Counter& patterns_evaluated;
  Counter& index_scans;
  Histogram& execute_ms;

  static QueryMetrics& Get() {
    static QueryMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new QueryMetrics{
          r.counter("query.executions"),
          r.counter("query.rows"),
          r.counter("query.patterns_evaluated"),
          r.counter("query.index_scans"),
          r.histogram("query.execute_ms"),
      };
    }();
    return *m;
  }
};

/// Resolves a query term under the current binding. Returns kAnyTerm
/// for unbound variables; sets *unmatchable for invalid constants.
rdf::TermId Resolve(const QueryTerm& term, const Binding& binding,
                    bool* unmatchable) {
  if (!term.is_var) {
    if (term.id == rdf::kInvalidTermId) *unmatchable = true;
    return term.id == rdf::kInvalidTermId ? rdf::kAnyTerm : term.id;
  }
  auto it = binding.find(term.var);
  return it == binding.end() ? rdf::kAnyTerm : it->second;
}

rdf::TriplePattern MakePattern(const QueryPattern& qp,
                               const Binding& binding, bool* unmatchable) {
  rdf::TriplePattern pattern;
  pattern.s = Resolve(qp.s, binding, unmatchable);
  pattern.p = Resolve(qp.p, binding, unmatchable);
  pattern.o = Resolve(qp.o, binding, unmatchable);
  return pattern;
}

int BoundPositions(const rdf::TriplePattern& p) {
  return (p.s != rdf::kAnyTerm) + (p.p != rdf::kAnyTerm) +
         (p.o != rdf::kAnyTerm);
}

}  // namespace

std::vector<Binding> QueryEngine::Execute(const SelectQuery& query,
                                          const ExecutionOptions& options,
                                          QueryStats* stats) const {
  QueryMetrics& metrics = QueryMetrics::Get();
  metrics.executions.Increment();
  ScopedTimer timer(metrics.execute_ms);
  std::vector<Binding> results;
  std::vector<bool> used(query.where.size(), false);
  Binding binding;
  QueryStats local_stats;
  std::set<Binding> seen;  // for DISTINCT
  bool done = false;

  // Recursive index nested-loop join with greedy dynamic ordering.
  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (done) return;
    if (depth == query.where.size()) {
      Binding row;
      if (query.projection.empty()) {
        row = binding;
      } else {
        for (const std::string& var : query.projection) {
          auto it = binding.find(var);
          if (it != binding.end()) row[var] = it->second;
        }
      }
      if (query.distinct && !seen.insert(row).second) return;
      results.push_back(std::move(row));
      if (query.limit != 0 && results.size() >= query.limit) done = true;
      return;
    }
    // Choose the next pattern.
    size_t chosen = query.where.size();
    if (options.reorder_patterns) {
      int best_bound = -1;
      size_t best_count = SIZE_MAX;
      for (size_t i = 0; i < query.where.size(); ++i) {
        if (used[i]) continue;
        bool unmatchable = false;
        rdf::TriplePattern pattern =
            MakePattern(query.where[i], binding, &unmatchable);
        if (unmatchable) {
          chosen = i;  // will immediately produce zero rows
          best_bound = 4;
          break;
        }
        int bound = BoundPositions(pattern);
        if (bound > best_bound) {
          best_bound = bound;
          best_count = store_->CountMatches(pattern);
          chosen = i;
        } else if (bound == best_bound) {
          size_t count = store_->CountMatches(pattern);
          if (count < best_count) {
            best_count = count;
            chosen = i;
          }
        }
      }
    } else {
      for (size_t i = 0; i < query.where.size(); ++i) {
        if (!used[i]) {
          chosen = i;
          break;
        }
      }
    }
    if (chosen >= query.where.size()) return;
    used[chosen] = true;
    const QueryPattern& qp = query.where[chosen];
    bool unmatchable = false;
    rdf::TriplePattern pattern = MakePattern(qp, binding, &unmatchable);
    ++local_stats.patterns_evaluated;
    if (!unmatchable) {
      auto visit = [&](const rdf::Triple& t) {
        // Bind new variables; repeated variables must agree.
        Binding saved = binding;
        auto bind = [&](const QueryTerm& term, rdf::TermId value) {
          if (!term.is_var) return true;
          auto it = binding.find(term.var);
          if (it != binding.end()) return it->second == value;
          binding[term.var] = value;
          return true;
        };
        ++local_stats.intermediate_rows;
        if (bind(qp.s, t.s) && bind(qp.p, t.p) && bind(qp.o, t.o)) {
          recurse(depth + 1);
        }
        binding = std::move(saved);
        return !done;
      };
      ++local_stats.index_scans;
      if (options.use_indexes) {
        store_->Scan(pattern, visit);
      } else {
        for (const rdf::Triple& t : store_->MatchFullScan(pattern)) {
          visit(t);
        }
      }
    }
    used[chosen] = false;
  };
  recurse(0);
  if (stats != nullptr) *stats = local_stats;
  metrics.rows.Increment(results.size());
  metrics.patterns_evaluated.Increment(local_stats.patterns_evaluated);
  metrics.index_scans.Increment(local_stats.index_scans);
  return results;
}

StatusOr<SelectQuery> ParseSparql(std::string_view text,
                                  const rdf::Dictionary& dict) {
  SelectQuery query;
  // Tokenize by whitespace but keep quoted literals intact.
  std::vector<std::string> tokens;
  {
    std::string current;
    bool in_quotes = false;
    for (size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (c == '"' ) {
        in_quotes = !in_quotes;
        current += c;
        continue;
      }
      if (!in_quotes && isspace(static_cast<unsigned char>(c))) {
        if (!current.empty()) {
          tokens.push_back(current);
          current.clear();
        }
        continue;
      }
      current += c;
    }
    if (!current.empty()) tokens.push_back(current);
  }
  size_t i = 0;
  auto expect = [&](const char* word) -> bool {
    if (i < tokens.size() && ToUpper(tokens[i]) == word) {
      ++i;
      return true;
    }
    return false;
  };
  if (!expect("SELECT")) return Status::InvalidArgument("expected SELECT");
  if (expect("DISTINCT")) query.distinct = true;
  while (i < tokens.size() && tokens[i][0] == '?') {
    query.projection.push_back(tokens[i].substr(1));
    ++i;
  }
  if (i < tokens.size() && tokens[i] == "*") ++i;  // SELECT *
  if (!expect("WHERE")) return Status::InvalidArgument("expected WHERE");
  if (i >= tokens.size() || tokens[i] != "{") {
    return Status::InvalidArgument("expected {");
  }
  ++i;
  std::vector<QueryTerm> terms;
  auto flush_pattern = [&]() -> Status {
    if (terms.empty()) return Status::OK();
    if (terms.size() != 3) {
      return Status::InvalidArgument("pattern must have 3 terms");
    }
    query.where.push_back({terms[0], terms[1], terms[2]});
    terms.clear();
    return Status::OK();
  };
  for (; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "}") {
      KB_RETURN_IF_ERROR(flush_pattern());
      if (query.where.empty()) {
        return Status::InvalidArgument("empty WHERE clause");
      }
      // Optional trailing "LIMIT n".
      ++i;
      if (i < tokens.size() && ToUpper(tokens[i]) == "LIMIT") {
        ++i;
        long long n = 0;
        if (i >= tokens.size() || !ParseInt64(tokens[i], &n) || n < 0) {
          return Status::InvalidArgument("bad LIMIT");
        }
        query.limit = static_cast<size_t>(n);
        ++i;
      }
      if (i < tokens.size()) {
        return Status::InvalidArgument("trailing tokens after query");
      }
      return query;
    }
    if (token == ".") {
      KB_RETURN_IF_ERROR(flush_pattern());
      continue;
    }
    if (token[0] == '?') {
      if (token.size() < 2) {
        return Status::InvalidArgument("bare '?' variable");
      }
      terms.push_back(QueryTerm::Var(token.substr(1)));
      continue;
    }
    auto parsed = rdf::Term::Parse(token);
    if (!parsed.ok()) return parsed.status();
    // Unknown constants stay kInvalidTermId = unmatchable.
    terms.push_back(QueryTerm::Bound(dict.Lookup(*parsed)));
  }
  return Status::InvalidArgument("unterminated WHERE clause");
}

}  // namespace query
}  // namespace kb
