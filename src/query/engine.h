#ifndef KBFORGE_QUERY_ENGINE_H_
#define KBFORGE_QUERY_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "rdf/triple_store.h"
#include "util/statusor.h"

namespace kb {
namespace query {

/// One position of a query pattern: a variable or a bound term.
struct QueryTerm {
  bool is_var = false;
  std::string var;          ///< without '?', e.g. "x"
  rdf::TermId id = rdf::kInvalidTermId;

  static QueryTerm Var(std::string name) {
    QueryTerm t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static QueryTerm Bound(rdf::TermId id) {
    QueryTerm t;
    t.id = id;
    return t;
  }
};

/// A triple pattern with variables (one conjunct of a basic graph
/// pattern).
struct QueryPattern {
  QueryTerm s, p, o;
};

/// SELECT ?vars WHERE { patterns } — the analytics workhorse over
/// entity-relationship data (tutorial §4 "semantic search and
/// analytics over entities and relations").
struct SelectQuery {
  std::vector<std::string> projection;  ///< empty = all variables
  std::vector<QueryPattern> where;
  bool distinct = false;  ///< drop duplicate projected rows
  size_t limit = 0;       ///< stop after this many rows (0 = no limit)
};

/// A result row: variable name -> term id.
using Binding = std::map<std::string, rdf::TermId>;

/// Executor knobs (E10 ablations).
struct ExecutionOptions {
  bool reorder_patterns = true;  ///< greedy selectivity-based join order
  bool use_indexes = true;       ///< false = full scan per pattern
};

/// Execution counters.
struct QueryStats {
  uint64_t patterns_evaluated = 0;
  uint64_t intermediate_rows = 0;
  uint64_t index_scans = 0;
};

/// Evaluates basic graph patterns against a TripleStore with index
/// nested-loop joins and greedy selectivity-based join ordering.
class QueryEngine {
 public:
  explicit QueryEngine(const rdf::TripleStore* store) : store_(store) {}

  /// Runs the query, returning all result rows (projected).
  std::vector<Binding> Execute(const SelectQuery& query,
                               const ExecutionOptions& options = {},
                               QueryStats* stats = nullptr) const;

 private:
  const rdf::TripleStore* store_;
};

/// Parses a minimal SPARQL subset:
///   SELECT ?x ?y WHERE { ?x <iri> ?y . <iri> ?p "literal" . }
/// Terms are N-Triples syntax or ?variables. Unknown constant terms
/// yield an empty-result query (they cannot match).
StatusOr<SelectQuery> ParseSparql(std::string_view text,
                                  const rdf::Dictionary& dict);

}  // namespace query
}  // namespace kb

#endif  // KBFORGE_QUERY_ENGINE_H_
