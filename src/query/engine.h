#ifndef KBFORGE_QUERY_ENGINE_H_
#define KBFORGE_QUERY_ENGINE_H_

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "query/plan.h"
#include "rdf/triple_store.h"
#include "util/statusor.h"

namespace kb {
namespace query {

/// A result row: variable name -> term id. (Materializing API; the
/// streaming executor works on slot-indexed flat rows and converts at
/// the boundary.)
using Binding = std::map<std::string, rdf::TermId>;

/// A slot-indexed flat binding row, the executor's native currency:
/// row[slot] holds the value of plan->var_names[slot].
using Row = std::vector<rdf::TermId>;

/// Per-execution serving limits: a cooperative deadline checked inside
/// the operator loops (so a join that grinds through millions of
/// intermediate triples without yielding a row still stops), and a hard
/// cap on produced rows. Both are enforced by Cursor::Next; when either
/// trips, the cursor ends its stream and flags QueryStats, so callers
/// can distinguish "exhausted" from "cut off" (and e.g. refuse to serve
/// or cache a truncated result).
struct ExecOptions {
  /// Absolute give-up point; time_point{} (the epoch) = no deadline.
  std::chrono::steady_clock::time_point deadline{};
  /// Stop after this many produced rows; 0 = unlimited. Unlike LIMIT
  /// this is a server-side protection, not part of the query (it does
  /// not join the plan-cache key and trips `max_rows_hit`).
  size_t max_rows = 0;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }
};

/// Executor knobs (E10 ablations).
struct ExecutionOptions {
  bool reorder_patterns = true;  ///< greedy selectivity-based join order
  bool use_indexes = true;       ///< false = full scan per pattern
  bool streaming = true;         ///< false = legacy materializing executor
  bool use_plan_cache = true;    ///< false = replan every execution
  /// false = drain the full result, then truncate (LIMIT ablation: no
  /// early termination). Streaming executor only.
  bool pushdown_limit = true;
  /// Serving limits (deadline + row cap). Streaming executor only; the
  /// materializing ablation ignores them.
  ExecOptions exec;
  /// Vector-at-a-time execution (E19 ablation): when > 0, Execute runs
  /// the plan through the batch executor — scans fill id-column chunks
  /// of this many rows, join levels probe a chunk at a time, and
  /// selective join levels get a Bloom-filter semijoin prefilter built
  /// from the smaller side (query/batch_exec.h). 0 = the Volcano
  /// row-at-a-time pipeline. Plans (and the plan cache) are shared
  /// between both modes.
  size_t batch_size = 0;
  /// E17 ablation: when set, the scan/join operators materialize all
  /// three Terms of every visited triple through this dictionary — the
  /// pre-frame-store term-object path, heap churn included. Unset, the
  /// executor joins on bare uint32 ids and terms are only materialized
  /// at the result boundary. Counted in QueryStats::terms_materialized.
  /// Streaming executor only; must outlive the execution.
  const rdf::Dictionary* materialize_terms = nullptr;
};

/// Execution counters.
struct QueryStats {
  uint64_t patterns_evaluated = 0;  ///< index scans opened
  uint64_t intermediate_rows = 0;   ///< triples visited across all levels
  uint64_t index_scans = 0;
  uint64_t rows_streamed = 0;  ///< rows the root operator produced
  /// Terms pulled off the heap by the materialize_terms ablation.
  uint64_t terms_materialized = 0;
  /// Groups the hash aggregator materialized (aggregate queries only).
  uint64_t agg_groups = 0;
  /// Id-column chunks the batch executor filled (batch mode only).
  uint64_t batches = 0;
  /// Bloom-semijoin prefilter probes / passes (batch mode only). A
  /// probe that misses skips the index lookup for that outer row.
  uint64_t bloom_probes = 0;
  uint64_t bloom_hits = 0;
  bool plan_cache_hit = false;
  /// The ExecOptions deadline expired before the stream was exhausted:
  /// whatever rows were produced are a prefix, not the full result.
  bool deadline_exceeded = false;
  /// The ExecOptions row cap stopped the stream.
  bool max_rows_hit = false;
};

/// A pull cursor over one executing query: the root of a Volcano-style
/// operator tree (IndexScan -> IndexNestedLoopJoin* -> Project ->
/// Distinct? -> Limit?). Rows are produced on demand, so LIMIT stops
/// the pipeline without materializing intermediates. Movable,
/// single-consumer; holds the source snapshot alive.
class Cursor {
 public:
  class Operator;  ///< defined in engine.cc

  /// Shared cooperative-cancellation state for one execution. The scan
  /// and join operators (row and batch mode) poll Expired() from their
  /// inner loops, so a deadline cuts off even executions that churn
  /// through intermediate triples without ever surfacing a row. The
  /// clock is only consulted every kCheckStride polls (a steady_clock
  /// read per triple would dominate scan cost); once expired, the
  /// state latches.
  struct CancelState {
    static constexpr uint32_t kCheckStride = 256;

    std::chrono::steady_clock::time_point deadline{};
    uint32_t polls_until_check = 0;  ///< first poll checks the clock
    bool armed = false;
    bool expired = false;

    bool Expired() {
      if (!armed || expired) return expired;
      if (polls_until_check > 0) {
        --polls_until_check;
        return false;
      }
      polls_until_check = kCheckStride - 1;
      expired = std::chrono::steady_clock::now() >= deadline;
      return expired;
    }
  };

  Cursor(Cursor&&) noexcept;
  Cursor& operator=(Cursor&&) noexcept;
  ~Cursor();

  /// Pulls the next projected row; false at end of stream.
  bool Next(Row* row);

  /// Output column names, in row order.
  const std::vector<std::string>& columns() const;

  /// Counters so far (final once Next returned false).
  const QueryStats& stats() const { return *stats_; }

  /// Converts a projected row to the map-based Binding.
  Binding ToBinding(const Row& row) const;

 private:
  friend class QueryEngine;
  Cursor(PlanPtr plan, std::shared_ptr<const rdf::TripleSource> snapshot,
         const rdf::TripleSource* source, const ExecutionOptions& options,
         size_t limit, size_t top_k);

  PlanPtr plan_;
  std::shared_ptr<const rdf::TripleSource> snapshot_;  ///< may be null
  std::unique_ptr<CancelState> cancel_;
  std::unique_ptr<Operator> root_;
  std::unique_ptr<QueryStats> stats_;
  size_t max_rows_ = 0;  ///< ExecOptions row cap (0 = unlimited)
  bool flushed_metrics_ = false;
};

/// Compiles SelectQuerys into streaming operator pipelines over any
/// TripleSource (in-memory TripleStore, one of its snapshots, or the
/// LSM-backed storage::StoredTripleSource) with index nested-loop
/// joins, greedy selectivity-based join ordering and an LRU plan
/// cache.
class QueryEngine {
 public:
  /// `cache` (optional) shares compiled plans across engines over the
  /// same dictionary; by default each engine keeps a private cache.
  /// Both pointers must outlive the engine.
  explicit QueryEngine(const rdf::TripleSource* source,
                       PlanCache* cache = nullptr)
      : source_(source), cache_(cache != nullptr ? cache : &own_cache_) {}

  /// Runs the query, returning all result rows (projected).
  std::vector<Binding> Execute(const SelectQuery& query,
                               const ExecutionOptions& options = {},
                               QueryStats* stats = nullptr) const;

  /// Opens a streaming cursor; rows are computed as they are pulled.
  Cursor Open(const SelectQuery& query,
              const ExecutionOptions& options = {}) const;

 private:
  PlanPtr GetPlan(const SelectQuery& query, const ExecutionOptions& options,
                  bool* cache_hit) const;
  std::vector<Binding> ExecuteMaterialized(const SelectQuery& query,
                                           const ExecutionOptions& options,
                                           QueryStats* stats) const;
  std::vector<Binding> ExecuteBatched(const SelectQuery& query,
                                      const ExecutionOptions& options,
                                      QueryStats* stats) const;

  const rdf::TripleSource* source_;
  PlanCache* cache_;
  mutable PlanCache own_cache_;
};

/// Parses a minimal SPARQL subset:
///   SELECT ?x ?y WHERE { ?x <iri> ?y . <iri> ?p "literal" . }
/// Terms are N-Triples syntax or ?variables. Unknown constant terms
/// yield an empty-result query (they cannot match).
///
/// Aggregates (the analytics surface):
///   SELECT ?g (COUNT(?x) AS ?n) WHERE { ... } GROUP BY ?g
///     [ORDER BY DESC(?n)] [LIMIT k]
/// COUNT(*), COUNT(?x) and COUNT(DISTINCT ?x) are supported; with
/// ORDER BY DESC(agg) + LIMIT the query becomes a top-k GROUP BY
/// answered with a bounded heap (AggSpec::top_k) instead of LIMIT.
StatusOr<SelectQuery> ParseSparql(std::string_view text,
                                  const rdf::Dictionary& dict);

}  // namespace query
}  // namespace kb

#endif  // KBFORGE_QUERY_ENGINE_H_
