#ifndef KBFORGE_QUERY_EXEC_INTERNAL_H_
#define KBFORGE_QUERY_EXEC_INTERNAL_H_

#include "query/engine.h"
#include "query/plan.h"
#include "util/hash.h"

namespace kb {
namespace query {

/// Row-binding primitives shared by the Volcano row-at-a-time
/// operators (engine.cc) and the vector-at-a-time batch executor
/// (batch_exec.cc). Both execute the same CompiledPlan; only the unit
/// of work between operators differs.

/// Scan pattern for one join level: constants and probe slots resolved
/// against the current row. With use_indexes off, everything is left
/// wild and BindRow post-filters (the full-scan ablation).
inline rdf::TriplePattern ScanPattern(const CompiledScan& scan,
                                      const Row& row, bool use_indexes) {
  rdf::TriplePattern pattern;
  if (!use_indexes) return pattern;
  rdf::TermId* out[3] = {&pattern.s, &pattern.p, &pattern.o};
  const Access* accesses[3] = {&scan.s, &scan.p, &scan.o};
  for (int i = 0; i < 3; ++i) {
    switch (accesses[i]->kind) {
      case Access::Kind::kConst:
        *out[i] = accesses[i]->constant;
        break;
      case Access::Kind::kProbe:
        *out[i] = row[static_cast<size_t>(accesses[i]->slot)];
        break;
      default:
        break;  // kBind/kCheck stay wild
    }
  }
  return pattern;
}

/// Applies one matched triple to the row: binds fresh slots, verifies
/// constants, probes and repeated variables. Returns false if the
/// triple does not extend the row.
inline bool BindRow(const CompiledScan& scan, const rdf::Triple& t,
                    Row* row) {
  const Access* accesses[3] = {&scan.s, &scan.p, &scan.o};
  const rdf::TermId values[3] = {t.s, t.p, t.o};
  for (int i = 0; i < 3; ++i) {
    const Access& a = *accesses[i];
    switch (a.kind) {
      case Access::Kind::kConst:
        if (values[i] != a.constant) return false;
        break;
      case Access::Kind::kProbe:
      case Access::Kind::kCheck:
        if ((*row)[static_cast<size_t>(a.slot)] != values[i]) return false;
        break;
      case Access::Kind::kBind:
        (*row)[static_cast<size_t>(a.slot)] = values[i];
        break;
    }
  }
  return true;
}

struct RowHash {
  size_t operator()(const Row& row) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (rdf::TermId id : row) h = HashCombine(h, Mix64(id));
    return static_cast<size_t>(h);
  }
};

}  // namespace query
}  // namespace kb

#endif  // KBFORGE_QUERY_EXEC_INTERNAL_H_
