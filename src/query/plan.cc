#include "query/plan.h"

#include <algorithm>
#include <map>

namespace kb {
namespace query {

namespace {

/// The scan pattern with only constants bound (variable values are
/// unknown at plan time), for cardinality estimation.
rdf::TriplePattern ConstantPattern(const QueryPattern& qp) {
  rdf::TriplePattern p;
  if (!qp.s.is_var) p.s = qp.s.id;
  if (!qp.p.is_var) p.p = qp.p.id;
  if (!qp.o.is_var) p.o = qp.o.id;
  return p;
}

/// Statically bound positions: constants plus variables some earlier
/// join level has already bound.
int StaticallyBound(const QueryPattern& qp,
                    const std::map<std::string, int>& bound) {
  int n = 0;
  for (const QueryTerm* t : {&qp.s, &qp.p, &qp.o}) {
    if (!t->is_var || bound.count(t->var) > 0) ++n;
  }
  return n;
}

void AppendTermKey(const QueryTerm& t, std::string* key) {
  if (t.is_var) {
    key->push_back('?');
    key->append(t.var);
  } else {
    key->push_back('#');
    key->append(std::to_string(t.id));
  }
  key->push_back(' ');
}

}  // namespace

PlanPtr CompilePlan(const SelectQuery& query, const rdf::TripleSource& source,
                    bool reorder_patterns) {
  auto plan = std::make_shared<CompiledPlan>();
  plan->distinct = query.distinct;

  // Slot assignment: first occurrence across written pattern order, so
  // slot layout is independent of the join order the planner picks.
  std::map<std::string, int> slots;
  for (const QueryPattern& qp : query.where) {
    for (const QueryTerm* t : {&qp.s, &qp.p, &qp.o}) {
      if (t->is_var && slots.emplace(t->var, 0).second) {
        slots[t->var] = static_cast<int>(plan->var_names.size());
        plan->var_names.push_back(t->var);
      }
      if (!t->is_var && t->id == rdf::kInvalidTermId) {
        plan->unmatchable = true;  // unknown constant: empty result
      }
    }
  }

  // Aggregation: group slots + counted slot resolve against the same
  // slot table; the output columns become [group vars..., agg name].
  // A group/agg variable absent from WHERE is dropped (grouping) or
  // degraded to COUNT(*) (counting), mirroring how the projection
  // silently skips absent variables.
  if (query.agg.enabled()) {
    plan->agg.enabled = true;
    plan->agg.func = query.agg.func;
    for (const std::string& var : query.agg.group_by) {
      auto it = slots.find(var);
      if (it == slots.end()) continue;
      plan->agg.group_slots.push_back(it->second);
      plan->projection_slots.push_back(it->second);
      plan->projection_names.push_back(var);
    }
    if (!query.agg.var.empty()) {
      auto it = slots.find(query.agg.var);
      if (it != slots.end()) plan->agg.agg_slot = it->second;
    }
    plan->projection_names.push_back(
        query.agg.out_name.empty() ? "count" : query.agg.out_name);
    if (plan->unmatchable) return plan;
  }

  // Projection: named variables that occur in the WHERE clause (others
  // are silently absent, matching the map-based executor's behavior);
  // an empty projection selects every variable.
  if (plan->agg.enabled) {
    // handled above
  } else if (query.projection.empty()) {
    for (size_t i = 0; i < plan->var_names.size(); ++i) {
      plan->projection_slots.push_back(static_cast<int>(i));
      plan->projection_names.push_back(plan->var_names[i]);
    }
  } else {
    for (const std::string& var : query.projection) {
      auto it = slots.find(var);
      if (it == slots.end()) continue;
      plan->projection_slots.push_back(it->second);
      plan->projection_names.push_back(var);
    }
  }
  if (plan->unmatchable) return plan;

  // Greedy join-order selection.
  std::vector<size_t> order;
  std::vector<bool> used(query.where.size(), false);
  std::map<std::string, int> bound;
  for (size_t step = 0; step < query.where.size(); ++step) {
    size_t chosen = query.where.size();
    if (reorder_patterns) {
      int best_bound = -1;
      size_t best_count = SIZE_MAX;
      for (size_t i = 0; i < query.where.size(); ++i) {
        if (used[i]) continue;
        int b = StaticallyBound(query.where[i], bound);
        if (b > best_bound) {
          best_bound = b;
          best_count = source.EstimateCount(ConstantPattern(query.where[i]));
          chosen = i;
        } else if (b == best_bound) {
          size_t count =
              source.EstimateCount(ConstantPattern(query.where[i]));
          if (count < best_count) {
            best_count = count;
            chosen = i;
          }
        }
      }
    } else {
      for (size_t i = 0; i < query.where.size(); ++i) {
        if (!used[i]) {
          chosen = i;
          break;
        }
      }
    }
    used[chosen] = true;
    order.push_back(chosen);
    for (const QueryTerm* t :
         {&query.where[chosen].s, &query.where[chosen].p,
          &query.where[chosen].o}) {
      if (t->is_var) bound.emplace(t->var, slots.at(t->var));
    }
  }

  // Compile each level against the variables bound before it.
  std::map<std::string, int> bound_before;
  for (size_t idx : order) {
    const QueryPattern& qp = query.where[idx];
    CompiledScan scan;
    std::map<std::string, int> local;
    Access* accesses[3] = {&scan.s, &scan.p, &scan.o};
    const QueryTerm* terms[3] = {&qp.s, &qp.p, &qp.o};
    for (int i = 0; i < 3; ++i) {
      Access& a = *accesses[i];
      const QueryTerm& t = *terms[i];
      if (!t.is_var) {
        a.kind = Access::Kind::kConst;
        a.constant = t.id;
        continue;
      }
      a.slot = slots.at(t.var);
      if (local.count(t.var) > 0) {
        a.kind = Access::Kind::kCheck;
      } else if (bound_before.count(t.var) > 0) {
        a.kind = Access::Kind::kProbe;
      } else {
        a.kind = Access::Kind::kBind;
        local.emplace(t.var, a.slot);
      }
    }
    for (const auto& [var, slot] : local) bound_before.emplace(var, slot);
    plan->scans.push_back(scan);
  }
  return plan;
}

std::string PlanCacheKey(const SelectQuery& query, bool reorder_patterns) {
  std::string key;
  key.reserve(64);
  key.push_back(reorder_patterns ? 'R' : 'r');
  key.push_back(query.distinct ? 'D' : 'd');
  key.push_back('|');
  for (const std::string& var : query.projection) {
    key.push_back('?');
    key.append(var);
    key.push_back(' ');
  }
  key.push_back('|');
  for (const QueryPattern& qp : query.where) {
    AppendTermKey(qp.s, &key);
    AppendTermKey(qp.p, &key);
    AppendTermKey(qp.o, &key);
    key.push_back('.');
  }
  // Aggregation shape (absent for plain queries, so their keys are
  // unchanged): function, counted variable, output name, group-bys.
  // top_k is deliberately left out, like LIMIT — it does not change
  // the compiled plan, only the bounded heap at open time.
  if (query.agg.enabled()) {
    key.append("|AGG:");
    key.push_back(query.agg.func == AggFunc::kCountDistinct ? 'C' : 'c');
    key.push_back('(');
    key.append(query.agg.var);
    key.append(")->");
    key.append(query.agg.out_name);
    key.append(" BY");
    for (const std::string& var : query.agg.group_by) {
      key.push_back(' ');
      key.push_back('?');
      key.append(var);
    }
  }
  return key;
}

PlanPtr PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return lru_.front().second;
}

void PlanCache::Insert(const std::string& key, PlanPtr plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace query
}  // namespace kb
