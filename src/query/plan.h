#ifndef KBFORGE_QUERY_PLAN_H_
#define KBFORGE_QUERY_PLAN_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple_source.h"

namespace kb {
namespace query {

/// One position of a query pattern: a variable or a bound term.
struct QueryTerm {
  bool is_var = false;
  std::string var;          ///< without '?', e.g. "x"
  rdf::TermId id = rdf::kInvalidTermId;

  static QueryTerm Var(std::string name) {
    QueryTerm t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static QueryTerm Bound(rdf::TermId id) {
    QueryTerm t;
    t.id = id;
    return t;
  }
};

/// A triple pattern with variables (one conjunct of a basic graph
/// pattern).
struct QueryPattern {
  QueryTerm s, p, o;
};

/// Aggregation function of an AggSpec.
enum class AggFunc : uint8_t {
  kNone,           ///< no aggregation: plain pattern matching
  kCount,          ///< COUNT(*) / COUNT(?x): matched rows per group
  kCountDistinct,  ///< COUNT(DISTINCT ?x): distinct values per group
};

/// Aggregation shape of a SELECT: GROUP BY variables, the aggregate
/// function, and an optional top-k order (ORDER BY DESC(agg) LIMIT k).
/// The function and grouping compile into the plan (they change the
/// operator tree); top_k stays out of the plan-cache key like LIMIT —
/// it only parameterizes the bounded heap at open time.
struct AggSpec {
  AggFunc func = AggFunc::kNone;
  std::string var;       ///< counted variable; empty = COUNT(*)
  std::string out_name;  ///< output column of the aggregate, e.g. "n"
  std::vector<std::string> group_by;  ///< grouping variables, in order
  /// ORDER BY DESC(out_name) LIMIT k: keep only the k largest groups
  /// (count-descending, group-key ascending on ties), 0 = all groups.
  size_t top_k = 0;

  bool enabled() const { return func != AggFunc::kNone; }
};

/// SELECT ?vars WHERE { patterns } — the analytics workhorse over
/// entity-relationship data (tutorial §4 "semantic search and
/// analytics over entities and relations").
struct SelectQuery {
  std::vector<std::string> projection;  ///< empty = all variables
  std::vector<QueryPattern> where;
  bool distinct = false;  ///< drop duplicate projected rows
  size_t limit = 0;       ///< stop after this many rows (0 = no limit)
  AggSpec agg;            ///< aggregation shape; default = none
};

/// How one position of a compiled scan is produced or consumed at
/// execution time, against slot-indexed flat binding rows.
struct Access {
  enum class Kind : uint8_t {
    kConst,  ///< fixed TermId, folded into the scan pattern
    kProbe,  ///< slot bound by an earlier join level: index lookup key
    kBind,   ///< first occurrence of a variable: writes the slot
    kCheck,  ///< repeat occurrence within the same pattern: equality test
  };
  Kind kind = Kind::kBind;
  rdf::TermId constant = rdf::kInvalidTermId;  ///< kConst only
  int slot = -1;                               ///< all variable kinds
};

/// One join level: an index scan whose pattern mixes constants,
/// probe slots (index nested-loop join keys) and freshly bound slots.
struct CompiledScan {
  Access s, p, o;
};

/// Compiled aggregation: the slot-level mirror of AggSpec. When
/// enabled, the executor replaces Project/Distinct with a hash
/// aggregator whose output rows are [group values..., count].
struct CompiledAgg {
  bool enabled = false;
  AggFunc func = AggFunc::kNone;
  std::vector<int> group_slots;  ///< slots of the GROUP BY columns
  /// Slot of the counted variable; -1 = COUNT(*) (row count).
  int agg_slot = -1;
};

/// A compiled, immutable, shareable query plan: the INLJ pipeline
/// order plus the slot layout. Safe to execute from many threads at
/// once (executors keep all mutable state in their own operator tree).
/// LIMIT is deliberately NOT part of the plan, so queries differing
/// only in LIMIT share a cache entry (and so is AggSpec::top_k).
struct CompiledPlan {
  std::vector<CompiledScan> scans;     ///< leaf first, then join levels
  std::vector<std::string> var_names;  ///< slot -> variable name
  std::vector<int> projection_slots;   ///< slots of the output columns
  std::vector<std::string> projection_names;  ///< output column names
  bool distinct = false;
  bool unmatchable = false;  ///< some constant term cannot match
  /// Aggregation pipeline tail. With agg.enabled, projection_names is
  /// [group vars..., agg out name] — one longer than projection_slots
  /// (the aggregate column is computed, not copied from a slot).
  CompiledAgg agg;
};

using PlanPtr = std::shared_ptr<const CompiledPlan>;

/// Compiles `query` into a left-deep index-nested-loop pipeline.
/// With `reorder_patterns`, join order is chosen greedily: most
/// statically bound positions first, ties broken by the source's
/// cardinality estimate for the constant-bound pattern.
PlanPtr CompilePlan(const SelectQuery& query, const rdf::TripleSource& source,
                    bool reorder_patterns);

/// Cache key capturing the query shape (patterns with variable names
/// and constant ids, projection, DISTINCT) and the planner knobs —
/// everything that affects the compiled plan except LIMIT.
std::string PlanCacheKey(const SelectQuery& query, bool reorder_patterns);

/// Thread-safe LRU cache of compiled plans, so repeated query shapes
/// (the common case for a serving workload) skip planning entirely.
/// Keys embed dictionary term ids, so a cache must not be shared
/// between stores with different dictionaries.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 128) : capacity_(capacity) {}

  /// Returns the cached plan and refreshes its recency, or nullptr.
  PlanPtr Lookup(const std::string& key);

  /// Inserts (or refreshes) a plan, evicting the least recently used
  /// entry beyond capacity.
  void Insert(const std::string& key, PlanPtr plan);

  size_t size() const;

 private:
  using Entry = std::pair<std::string, PlanPtr>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  ///< most recent first
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace query
}  // namespace kb

#endif  // KBFORGE_QUERY_PLAN_H_
