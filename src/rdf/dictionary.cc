#include "rdf/dictionary.h"

#include "util/logging.h"

namespace kb {
namespace rdf {

Dictionary::Dictionary() {
  terms_.emplace_back();  // id 0 is reserved
}

TermId Dictionary::Intern(const Term& term) {
  std::string key = term.ToString();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term.ToString());
  return it == index_.end() ? kInvalidTermId : it->second;
}

const Term& Dictionary::term(TermId id) const {
  KB_CHECK(id != kInvalidTermId && id < terms_.size())
      << "bad term id " << id;
  return terms_[id];
}

}  // namespace rdf
}  // namespace kb
