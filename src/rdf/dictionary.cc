#include "rdf/dictionary.h"

#include <mutex>
#include <utility>

#include "util/logging.h"

namespace kb {
namespace rdf {

Dictionary::Dictionary() = default;

Dictionary::Dictionary(std::shared_ptr<const TermCatalog> base)
    : base_(std::move(base)),
      base_size_(base_ != nullptr ? base_->catalog_size() : 0) {
  if (base_size_ > 0) {
    base_cache_ =
        std::make_unique<std::atomic<const Term*>[]>(base_size_ + 1);
    for (size_t i = 0; i <= base_size_; ++i) {
      base_cache_[i].store(nullptr, std::memory_order_relaxed);
    }
  }
}

Dictionary::~Dictionary() { DestroyBaseCache(); }

void Dictionary::DestroyBaseCache() {
  if (base_cache_ == nullptr) return;
  for (size_t i = 0; i <= base_size_; ++i) {
    delete base_cache_[i].load(std::memory_order_relaxed);
  }
  base_cache_.reset();
}

Dictionary::Dictionary(Dictionary&& other) noexcept {
  *this = std::move(other);
}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this == &other) return *this;
  DestroyBaseCache();
  base_ = std::move(other.base_);
  base_size_ = other.base_size_;
  base_cache_ = std::move(other.base_cache_);
  terms_ = std::move(other.terms_);
  index_ = std::move(other.index_);
  other.base_size_ = 0;
  other.terms_.clear();
  other.index_.clear();
  return *this;
}

TermId Dictionary::Intern(const Term& term) {
  if (base_ != nullptr) {
    TermId id = base_->CatalogLookup(term);
    if (id != kInvalidTermId) return id;
  }
  std::string key = term.ToString();
  {
    std::shared_lock<std::shared_mutex> read_lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> write_lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(base_size_ + terms_.size() + 1);
  terms_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  if (base_ != nullptr) {
    TermId id = base_->CatalogLookup(term);
    if (id != kInvalidTermId) return id;
  }
  std::shared_lock<std::shared_mutex> read_lock(mu_);
  auto it = index_.find(term.ToString());
  return it == index_.end() ? kInvalidTermId : it->second;
}

const Term& Dictionary::term(TermId id) const {
  KB_CHECK(id != kInvalidTermId && id <= size()) << "bad term id " << id;
  if (id <= base_size_) return BaseTerm(id);
  std::shared_lock<std::shared_mutex> read_lock(mu_);
  // Deque references are stable across push_back, so releasing the
  // lock before the caller dereferences is fine.
  return terms_[id - base_size_ - 1];
}

const Term& Dictionary::BaseTerm(TermId id) const {
  const Term* cached = base_cache_[id].load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;
  const Term* fresh = new Term(base_->CatalogTerm(id));
  const Term* expected = nullptr;
  if (base_cache_[id].compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;
  return *expected;
}

size_t Dictionary::size() const {
  std::shared_lock<std::shared_mutex> read_lock(mu_);
  return base_size_ + terms_.size();
}

}  // namespace rdf
}  // namespace kb
