#ifndef KBFORGE_RDF_DICTIONARY_H_
#define KBFORGE_RDF_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "rdf/term.h"

namespace kb {
namespace rdf {

/// Dense integer id for a dictionary-encoded term. Id 0 is reserved as
/// "invalid"; valid ids start at 1.
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0;

/// Read-only view of an immutable, pre-interned term catalog — e.g. a
/// mmap'd FrameStore snapshot. Ids [1, catalog_size()] belong to the
/// catalog; a Dictionary layered on top hands out ids above that, so
/// ids assigned before a snapshot stay stable after it is reopened.
/// Implementations must be safe for concurrent readers.
class TermCatalog {
 public:
  virtual ~TermCatalog() = default;

  /// Number of terms in the catalog (ids 1..catalog_size()).
  virtual size_t catalog_size() const = 0;

  /// Materializes the term for an id in [1, catalog_size()].
  virtual Term CatalogTerm(TermId id) const = 0;

  /// Id of `term` in the catalog, or kInvalidTermId if absent.
  virtual TermId CatalogLookup(const Term& term) const = 0;
};

/// Bidirectional mapping between RDF terms and dense ids. Dictionary
/// encoding is what lets the triple store hold hundreds of millions of
/// triples in sorted integer arrays (the standard RDF-store design).
///
/// A Dictionary may sit on top of an immutable TermCatalog base: base
/// ids are served from the catalog (materialized lazily, cached), and
/// newly interned terms get overlay ids starting at base_size()+1.
///
/// Thread safety: Lookup()/term()/size() may run concurrently with one
/// another and with Intern(). Intern() calls are serialized against
/// each other internally, but callers typically hold a coarser write
/// lock (KnowledgeBase does). References returned by term() stay valid
/// for the lifetime of the Dictionary — overlay terms live in a deque,
/// base terms in a CAS-published cache that is never torn down early.
class Dictionary {
 public:
  Dictionary();
  explicit Dictionary(std::shared_ptr<const TermCatalog> base);
  ~Dictionary();

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  /// Moving is not thread-safe: no concurrent readers of either side.
  Dictionary(Dictionary&& other) noexcept;
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// Returns the id for `term`, interning it if new.
  TermId Intern(const Term& term);

  /// Returns the id if present, kInvalidTermId otherwise.
  TermId Lookup(const Term& term) const;

  /// Returns the term for a valid id. Aborts on invalid id.
  const Term& term(TermId id) const;

  /// Number of interned terms (base + overlay).
  size_t size() const;

  /// Number of ids served by the immutable base catalog (0 if none).
  size_t base_size() const { return base_size_; }

  const std::shared_ptr<const TermCatalog>& base() const { return base_; }

  /// Convenience: intern an IRI string.
  TermId InternIri(std::string iri) {
    return Intern(Term::Iri(std::move(iri)));
  }

 private:
  const Term& BaseTerm(TermId id) const;
  void DestroyBaseCache();

  std::shared_ptr<const TermCatalog> base_;
  size_t base_size_ = 0;
  /// Lazily materialized base terms, indexed by id. Slots go nullptr ->
  /// heap Term exactly once (CAS publish); the CAS loser deletes its
  /// copy, so readers can hold the reference without any lock.
  mutable std::unique_ptr<std::atomic<const Term*>[]> base_cache_;

  mutable std::shared_mutex mu_;                   // guards the overlay
  std::deque<Term> terms_;                         // overlay, id-ordered
  std::unordered_map<std::string, TermId> index_;  // ToString() -> id
};

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_DICTIONARY_H_
