#ifndef KBFORGE_RDF_DICTIONARY_H_
#define KBFORGE_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace kb {
namespace rdf {

/// Dense integer id for a dictionary-encoded term. Id 0 is reserved as
/// "invalid"; valid ids start at 1.
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0;

/// Bidirectional mapping between RDF terms and dense ids. Dictionary
/// encoding is what lets the triple store hold hundreds of millions of
/// triples in sorted integer arrays (the standard RDF-store design).
class Dictionary {
 public:
  Dictionary();

  /// Returns the id for `term`, interning it if new.
  TermId Intern(const Term& term);

  /// Returns the id if present, kInvalidTermId otherwise.
  TermId Lookup(const Term& term) const;

  /// Returns the term for a valid id. Aborts on invalid id.
  const Term& term(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return terms_.size() - 1; }

  /// Convenience: intern an IRI string.
  TermId InternIri(std::string iri) {
    return Intern(Term::Iri(std::move(iri)));
  }

 private:
  std::vector<Term> terms_;                       // terms_[id]
  std::unordered_map<std::string, TermId> index_; // ToString() -> id
};

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_DICTIONARY_H_
