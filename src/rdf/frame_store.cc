#include "rdf/frame_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/varint.h"

namespace kb {
namespace rdf {

namespace {

// Offsets into the fixed-size header.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffFileSize = 8;
constexpr size_t kOffEpoch = 16;
constexpr size_t kOffNumTerms = 24;
constexpr size_t kOffNumTriples = 32;
constexpr size_t kOffNumEntities = 40;
constexpr size_t kOffSectionCount = 48;
constexpr size_t kOffHeaderCrc = 52;

// Term-record kind codes (distinct from TermKind: literals split by
// their annotation so the record alone decides what `extra` means).
constexpr uint32_t kKindIri = 0;
constexpr uint32_t kKindPlainLiteral = 1;
constexpr uint32_t kKindLangLiteral = 2;
constexpr uint32_t kKindTypedLiteral = 3;
constexpr uint32_t kKindBlank = 4;
constexpr uint32_t kMaxKindCode = 4;

constexpr size_t kMaxSectionCount = 1024;

// Unaligned little-endian loads. memcpy keeps this strict-aliasing and
// UBSan clean and compiles to a single mov on x86-64.
uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t KindCode(const Term& term) {
  switch (term.kind()) {
    case TermKind::kIri:
      return kKindIri;
    case TermKind::kBlank:
      return kKindBlank;
    case TermKind::kLiteral:
      if (!term.language().empty()) return kKindLangLiteral;
      if (!term.datatype().empty()) return kKindTypedLiteral;
      return kKindPlainLiteral;
  }
  return kKindIri;
}

std::string_view ExtraOf(const Term& term, uint32_t code) {
  if (code == kKindLangLiteral) return term.language();
  if (code == kKindTypedLiteral) return term.datatype();
  return std::string_view();
}

size_t AlignUp8(size_t n) { return (n + 7) & ~static_cast<size_t>(7); }

uint64_t RoundUpPow2(uint64_t n) {
  uint64_t v = 1;
  while (v < n) v <<= 1;
  return v;
}

/// Scan over one packed run; binary-searched to the pattern's bound
/// prefix like StoreSnapshot's MemScanIterator, but index-based over
/// the mapped records instead of pointer-based over a vector.
class FrameScanIterator : public ScanIterator {
 public:
  FrameScanIterator(std::shared_ptr<const FrameStore> store, ScanOrder order,
                    const TriplePattern& pattern)
      : store_(std::move(store)), order_(order), pattern_(pattern) {
    Triple as_triple(pattern.s, pattern.p, pattern.o);
    TermId key[3];
    ComponentsInOrder(order, as_triple, key);
    int prefix = BoundPrefixLength(order, pattern);
    TermId lo[3] = {0, 0, 0};
    TermId hi[3] = {kAnyTerm, kAnyTerm, kAnyTerm};
    for (int i = 0; i < prefix; ++i) lo[i] = hi[i] = key[i];
    idx_ = store_->LowerBound(order,
                              TripleFromOrder(order, lo[0], lo[1], lo[2]));
    // No valid triple carries a kAnyTerm component, so the hi key is a
    // strict upper bound of the prefix range.
    end_ = store_->UpperBound(order,
                              TripleFromOrder(order, hi[0], hi[1], hi[2]));
    SkipNonMatching();
  }

  bool Valid() const override { return idx_ < end_; }
  const Triple& Value() const override { return cur_; }

  void Next() override {
    ++idx_;
    SkipNonMatching();
  }

  void Seek(const Triple& target) override {
    size_t pos = store_->LowerBound(order_, target);
    if (pos > idx_) idx_ = pos;
    SkipNonMatching();
  }

  ScanOrder order() const override { return order_; }

 private:
  void SkipNonMatching() {
    while (idx_ < end_) {
      cur_ = store_->TripleAt(order_, idx_);
      if (pattern_.Matches(cur_)) return;
      ++idx_;
    }
  }

  std::shared_ptr<const FrameStore> store_;
  ScanOrder order_;
  TriplePattern pattern_;
  size_t idx_ = 0;
  size_t end_ = 0;
  Triple cur_;
};

}  // namespace

uint64_t HashTermParts(uint8_t kind_code, std::string_view value,
                       std::string_view extra) {
  uint64_t h = Hash64(&kind_code, 1);
  h = Hash64(value.data(), value.size(), h);
  // Separator so ("ab","c") and ("a","bc") can't collide structurally.
  const char sep = '\0';
  h = Hash64(&sep, 1, h);
  h = Hash64(extra.data(), extra.size(), h);
  return h;
}

// ---------------------------------------------------------------------------
// FrameStoreBuilder

TermId FrameStoreBuilder::AddTerm(const Term& term) {
  uint32_t code = KindCode(term);
  std::string_view extra = ExtraOf(term, code);
  PutFixed32(&term_records_, code);
  PutFixed32(&term_records_, static_cast<uint32_t>(arena_.size()));
  PutFixed32(&term_records_, static_cast<uint32_t>(term.value().size()));
  arena_.append(term.value());
  PutFixed32(&term_records_, static_cast<uint32_t>(arena_.size()));
  PutFixed32(&term_records_, static_cast<uint32_t>(extra.size()));
  arena_.append(extra);
  term_hashes_.push_back(
      HashTermParts(static_cast<uint8_t>(code), term.value(), extra));
  return static_cast<TermId>(++num_terms_);
}

void FrameStoreBuilder::AddTriple(const Triple& t) { triples_.push_back(t); }

void FrameStoreBuilder::SetSection(uint32_t id, std::string bytes) {
  KB_CHECK(id >= FrameStore::kFirstOpaqueSection)
      << "section id " << id << " is reserved for the frame store";
  extra_sections_[id] = std::move(bytes);
}

StatusOr<std::string> FrameStoreBuilder::Serialize() {
  if (num_terms_ > 0xfffffffeull) {
    return Status::InvalidArgument("too many terms for 32-bit ids");
  }
  for (const Triple& t : triples_) {
    for (TermId id : {t.s, t.p, t.o}) {
      if (id == kInvalidTermId || id > num_terms_) {
        return Status::InvalidArgument("triple references unknown term id " +
                                       std::to_string(id));
      }
    }
  }

  // The dict index: open addressing, linear probing, >= 2x load slack.
  uint64_t n_slots = RoundUpPow2(std::max<uint64_t>(2, 2 * num_terms_));
  std::vector<uint32_t> slots(n_slots, 0);
  for (TermId id = 1; id <= num_terms_; ++id) {
    uint64_t idx = term_hashes_[id - 1] & (n_slots - 1);
    while (slots[idx] != 0) {
      const char* a = term_records_.data() +
                      (static_cast<size_t>(slots[idx]) - 1) *
                          FrameStore::kTermRecordSize;
      const char* b = term_records_.data() +
                      (static_cast<size_t>(id) - 1) *
                          FrameStore::kTermRecordSize;
      auto bytes = [this](const char* rec, size_t field) {
        return std::string_view(arena_.data() + LoadU32(rec + 4 * field),
                                LoadU32(rec + 4 * (field + 1)));
      };
      if (LoadU32(a) == LoadU32(b) && bytes(a, 1) == bytes(b, 1) &&
          bytes(a, 3) == bytes(b, 3)) {
        return Status::InvalidArgument("duplicate term at id " +
                                       std::to_string(id));
      }
      idx = (idx + 1) & (n_slots - 1);
    }
    slots[idx] = id;
  }
  std::string dict_bytes;
  PutFixed64(&dict_bytes, n_slots);
  for (uint32_t slot : slots) PutFixed32(&dict_bytes, slot);

  // The three sorted runs. Triples are deduped in SPO; POS/OSP are
  // permutations of the same set, so one check suffices.
  auto pack_run = [](std::vector<Triple> run, ScanOrder order) {
    std::sort(run.begin(), run.end(), [order](const Triple& a,
                                              const Triple& b) {
      return LessInOrder(order, a, b);
    });
    std::string bytes;
    bytes.reserve(run.size() * FrameStore::kTripleRecordSize);
    for (const Triple& t : run) {
      PutFixed32(&bytes, t.s);
      PutFixed32(&bytes, t.p);
      PutFixed32(&bytes, t.o);
    }
    return std::make_pair(std::move(run), std::move(bytes));
  };
  auto [spo, spo_bytes] = pack_run(triples_, ScanOrder::kSpo);
  for (size_t i = 1; i < spo.size(); ++i) {
    if (spo[i] == spo[i - 1]) {
      return Status::InvalidArgument("duplicate triple in builder");
    }
  }
  std::string pos_bytes = pack_run(triples_, ScanOrder::kPos).second;
  std::string osp_bytes = pack_run(triples_, ScanOrder::kOsp).second;

  std::vector<std::pair<uint32_t, const std::string*>> sections = {
      {FrameStore::kSectionTermRecords, &term_records_},
      {FrameStore::kSectionArena, &arena_},
      {FrameStore::kSectionDictIndex, &dict_bytes},
      {FrameStore::kSectionSpo, &spo_bytes},
      {FrameStore::kSectionPos, &pos_bytes},
      {FrameStore::kSectionOsp, &osp_bytes},
  };
  for (const auto& [id, bytes] : extra_sections_) {
    sections.emplace_back(id, &bytes);
  }

  size_t table_end = FrameStore::kHeaderSize +
                     sections.size() * FrameStore::kSectionEntrySize;
  std::string body;
  std::string table;
  size_t offset = AlignUp8(table_end);
  for (const auto& [id, bytes] : sections) {
    body.append(offset - table_end - body.size(), '\0');
    body.append(*bytes);
    PutFixed32(&table, id);
    PutFixed32(&table, 0);  // flags
    PutFixed64(&table, offset);
    PutFixed64(&table, bytes->size());
    PutFixed32(&table, Crc32(bytes->data(), bytes->size()));
    PutFixed32(&table, 0);  // pad
    offset = AlignUp8(offset + bytes->size());
  }

  std::string header;
  PutFixed32(&header, FrameStore::kMagic);
  PutFixed32(&header, FrameStore::kVersion);
  PutFixed64(&header, table_end + body.size());  // file_size
  PutFixed64(&header, epoch_);
  PutFixed64(&header, num_terms_);
  PutFixed64(&header, spo.size());
  PutFixed64(&header, num_entities_);
  PutFixed32(&header, static_cast<uint32_t>(sections.size()));
  PutFixed32(&header, 0);  // header_crc, patched below
  KB_CHECK(header.size() == FrameStore::kHeaderSize);

  std::string out = header + table;
  uint32_t crc = Crc32(out.data(), out.size());
  std::string patched;
  PutFixed32(&patched, crc);
  out.replace(kOffHeaderCrc, 4, patched);
  out += body;
  return out;
}

// ---------------------------------------------------------------------------
// FrameStore

StatusOr<std::shared_ptr<FrameStore>> FrameStore::Attach(
    const char* data, size_t size, std::shared_ptr<void> owner,
    const AttachOptions& options) {
  auto store = std::shared_ptr<FrameStore>(new FrameStore());
  store->owner_ = std::move(owner);
  Status status = store->Bind(data, size, options);
  if (!status.ok()) return status;
  return store;
}

Status FrameStore::Bind(const char* data, size_t size,
                        const AttachOptions& options) {
  data_ = data;
  size_ = size;
  if (size < kHeaderSize) return Status::Corruption("snapshot too small");
  if (LoadU32(data + kOffMagic) != kMagic) {
    return Status::Corruption("bad snapshot magic");
  }
  if (LoadU32(data + kOffVersion) != kVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " +
        std::to_string(LoadU32(data + kOffVersion)));
  }
  if (LoadU64(data + kOffFileSize) != size) {
    return Status::Corruption("snapshot truncated: header says " +
                              std::to_string(LoadU64(data + kOffFileSize)) +
                              " bytes, have " + std::to_string(size));
  }
  uint32_t section_count = LoadU32(data + kOffSectionCount);
  if (section_count < 6 || section_count > kMaxSectionCount) {
    return Status::Corruption("implausible section count " +
                              std::to_string(section_count));
  }
  size_t table_end = kHeaderSize + section_count * kSectionEntrySize;
  if (table_end > size) return Status::Corruption("section table truncated");

  // The header CRC covers header + table with the crc field zeroed.
  std::string prefix(data, table_end);
  uint32_t stored_crc = LoadU32(data + kOffHeaderCrc);
  prefix[kOffHeaderCrc] = prefix[kOffHeaderCrc + 1] =
      prefix[kOffHeaderCrc + 2] = prefix[kOffHeaderCrc + 3] = '\0';
  if (Crc32(prefix.data(), prefix.size()) != stored_crc) {
    return Status::Corruption("snapshot header checksum mismatch");
  }

  epoch_ = LoadU64(data + kOffEpoch);
  num_terms_ = static_cast<size_t>(LoadU64(data + kOffNumTerms));
  num_triples_ = static_cast<size_t>(LoadU64(data + kOffNumTriples));
  num_entities_ = LoadU64(data + kOffNumEntities);

  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry = data + kHeaderSize + i * kSectionEntrySize;
    uint32_t id = LoadU32(entry);
    uint64_t offset = LoadU64(entry + 8);
    uint64_t sec_size = LoadU64(entry + 16);
    uint32_t crc = LoadU32(entry + 24);
    if (offset < table_end || offset > size || sec_size > size - offset) {
      return Status::Corruption("section " + std::to_string(id) +
                                " out of bounds");
    }
    if (sections_.count(id) > 0) {
      return Status::Corruption("duplicate section " + std::to_string(id));
    }
    if (options.verify_checksums &&
        Crc32(data + offset, sec_size) != crc) {
      return Status::Corruption("section " + std::to_string(id) +
                                " checksum mismatch");
    }
    sections_[id] = {data + offset, static_cast<size_t>(sec_size)};
  }

  auto required = [this](uint32_t id,
                         std::pair<const char*, size_t>* out) -> Status {
    auto it = sections_.find(id);
    if (it == sections_.end()) {
      return Status::Corruption("missing section " + std::to_string(id));
    }
    *out = it->second;
    return Status::OK();
  };
  std::pair<const char*, size_t> sec;
  Status status = required(kSectionTermRecords, &sec);
  if (!status.ok()) return status;
  if (sec.second != num_terms_ * kTermRecordSize) {
    return Status::Corruption("term record section size mismatch");
  }
  term_records_ = sec.first;

  status = required(kSectionArena, &sec);
  if (!status.ok()) return status;
  arena_ = sec.first;
  arena_size_ = sec.second;

  status = required(kSectionDictIndex, &sec);
  if (!status.ok()) return status;
  if (sec.second < 8) return Status::Corruption("dict index truncated");
  dict_n_slots_ = LoadU64(sec.first);
  if (dict_n_slots_ == 0 || (dict_n_slots_ & (dict_n_slots_ - 1)) != 0 ||
      sec.second != 8 + dict_n_slots_ * 4) {
    return Status::Corruption("dict index malformed");
  }
  dict_slots_ = sec.first + 8;

  const uint32_t run_ids[3] = {kSectionSpo, kSectionPos, kSectionOsp};
  for (int i = 0; i < 3; ++i) {
    status = required(run_ids[i], &sec);
    if (!status.ok()) return status;
    if (sec.second != num_triples_ * kTripleRecordSize) {
      return Status::Corruption("triple run section size mismatch");
    }
    runs_[i] = sec.first;
  }

  if (options.verify_structure) return VerifyStructure();
  return Status::OK();
}

Status FrameStore::VerifyStructure() const {
  size_t live_slots = 0;
  for (uint64_t i = 0; i < dict_n_slots_; ++i) {
    uint32_t id = LoadU32(dict_slots_ + i * 4);
    if (id > num_terms_) {
      return Status::Corruption("dict slot references bad term id");
    }
    if (id != 0) ++live_slots;
  }
  if (live_slots != num_terms_) {
    return Status::Corruption("dict index does not cover the term set");
  }
  for (size_t i = 0; i < num_terms_; ++i) {
    const char* rec = term_records_ + i * kTermRecordSize;
    uint32_t code = LoadU32(rec);
    uint64_t value_end =
        static_cast<uint64_t>(LoadU32(rec + 4)) + LoadU32(rec + 8);
    uint64_t extra_end =
        static_cast<uint64_t>(LoadU32(rec + 12)) + LoadU32(rec + 16);
    if (code > kMaxKindCode || value_end > arena_size_ ||
        extra_end > arena_size_) {
      return Status::Corruption("term record " + std::to_string(i + 1) +
                                " malformed");
    }
  }
  for (ScanOrder order :
       {ScanOrder::kSpo, ScanOrder::kPos, ScanOrder::kOsp}) {
    Triple prev;
    for (size_t i = 0; i < num_triples_; ++i) {
      Triple t = TripleAt(order, i);
      for (TermId id : {t.s, t.p, t.o}) {
        if (id == kInvalidTermId || id > num_terms_) {
          return Status::Corruption("triple references bad term id");
        }
      }
      if (i > 0 && !LessInOrder(order, prev, t)) {
        return Status::Corruption("triple run out of order");
      }
      prev = t;
    }
  }
  return Status::OK();
}

FrameStore::TermView FrameStore::term_view(TermId id) const {
  KB_CHECK(id != kInvalidTermId && id <= num_terms_)
      << "bad frame term id " << id;
  const char* rec =
      term_records_ + (static_cast<size_t>(id) - 1) * kTermRecordSize;
  uint32_t code = LoadU32(rec);
  TermView view;
  view.kind = code == kKindIri
                  ? TermKind::kIri
                  : (code == kKindBlank ? TermKind::kBlank
                                        : TermKind::kLiteral);
  view.has_language = code == kKindLangLiteral;
  view.has_datatype = code == kKindTypedLiteral;
  view.value = std::string_view(arena_ + LoadU32(rec + 4), LoadU32(rec + 8));
  view.extra =
      std::string_view(arena_ + LoadU32(rec + 12), LoadU32(rec + 16));
  return view;
}

Term FrameStore::MaterializeTerm(TermId id) const {
  TermView view = term_view(id);
  switch (view.kind) {
    case TermKind::kIri:
      return Term::Iri(std::string(view.value));
    case TermKind::kBlank:
      return Term::Blank(std::string(view.value));
    case TermKind::kLiteral:
      if (view.has_language) {
        return Term::LangLiteral(std::string(view.value),
                                 std::string(view.extra));
      }
      if (view.has_datatype) {
        return Term::TypedLiteral(std::string(view.value),
                                  std::string(view.extra));
      }
      return Term::Literal(std::string(view.value));
  }
  return Term();
}

std::string FrameStore::RenderTerm(TermId id) const {
  TermView view = term_view(id);
  std::string out;
  out.reserve(view.value.size() + view.extra.size() + 8);
  switch (view.kind) {
    case TermKind::kIri:
      out.push_back('<');
      out.append(view.value);
      out.push_back('>');
      break;
    case TermKind::kBlank:
      out.append("_:");
      out.append(view.value);
      break;
    case TermKind::kLiteral:
      out.push_back('"');
      out.append(EscapeNTriples(view.value));
      out.push_back('"');
      if (view.has_language) {
        out.push_back('@');
        out.append(view.extra);
      } else if (view.has_datatype) {
        out.append("^^<");
        out.append(view.extra);
        out.push_back('>');
      }
      break;
  }
  return out;
}

TermId FrameStore::LookupTerm(const Term& term) const {
  uint32_t code = KindCode(term);
  std::string_view extra = ExtraOf(term, code);
  uint64_t h = HashTermParts(static_cast<uint8_t>(code), term.value(), extra);
  uint64_t idx = h & (dict_n_slots_ - 1);
  for (uint64_t probes = 0; probes < dict_n_slots_; ++probes) {
    uint32_t id = LoadU32(dict_slots_ + idx * 4);
    if (id == 0) return kInvalidTermId;
    TermView view = term_view(id);
    uint32_t view_code = view.has_language
                             ? kKindLangLiteral
                             : (view.has_datatype
                                    ? kKindTypedLiteral
                                    : (view.kind == TermKind::kIri
                                           ? kKindIri
                                           : (view.kind == TermKind::kBlank
                                                  ? kKindBlank
                                                  : kKindPlainLiteral)));
    if (view_code == code && view.value == term.value() &&
        view.extra == extra) {
      return id;
    }
    idx = (idx + 1) & (dict_n_slots_ - 1);
  }
  return kInvalidTermId;
}

Triple FrameStore::TripleAt(ScanOrder order, size_t idx) const {
  const char* rec =
      runs_[static_cast<int>(order)] + idx * kTripleRecordSize;
  return Triple(LoadU32(rec), LoadU32(rec + 4), LoadU32(rec + 8));
}

size_t FrameStore::LowerBound(ScanOrder order, const Triple& key) const {
  size_t lo = 0, hi = num_triples_;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (LessInOrder(order, TripleAt(order, mid), key)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t FrameStore::UpperBound(ScanOrder order, const Triple& key) const {
  size_t lo = 0, hi = num_triples_;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (LessInOrder(order, key, TripleAt(order, mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool FrameStore::Contains(const Triple& t) const {
  size_t idx = LowerBound(ScanOrder::kSpo, t);
  return idx < num_triples_ && TripleAt(ScanOrder::kSpo, idx) == t;
}

std::unique_ptr<ScanIterator> FrameStore::NewScan(
    const TriplePattern& pattern) const {
  ScanOrder order = ChooseScanOrder(pattern);
  return std::make_unique<FrameScanIterator>(shared_from_this(), order,
                                             pattern);
}

size_t FrameStore::EstimateCount(const TriplePattern& pattern) const {
  ScanOrder order = ChooseScanOrder(pattern);
  Triple as_triple(pattern.s, pattern.p, pattern.o);
  TermId key[3];
  ComponentsInOrder(order, as_triple, key);
  int prefix = BoundPrefixLength(order, pattern);
  TermId lo[3] = {0, 0, 0};
  TermId hi[3] = {kAnyTerm, kAnyTerm, kAnyTerm};
  for (int i = 0; i < prefix; ++i) lo[i] = hi[i] = key[i];
  size_t begin =
      LowerBound(order, TripleFromOrder(order, lo[0], lo[1], lo[2]));
  size_t end = UpperBound(order, TripleFromOrder(order, hi[0], hi[1], hi[2]));
  int bound = (pattern.s != kAnyTerm) + (pattern.p != kAnyTerm) +
              (pattern.o != kAnyTerm);
  if (prefix == bound) return end - begin;
  size_t n = 0;
  for (size_t i = begin; i < end; ++i) {
    if (pattern.Matches(TripleAt(order, i))) ++n;
  }
  return n;
}

std::vector<Triple> FrameStore::MatchFullScan(
    const TriplePattern& pattern) const {
  std::vector<Triple> out;
  for (size_t i = 0; i < num_triples_; ++i) {
    Triple t = TripleAt(ScanOrder::kSpo, i);
    if (pattern.Matches(t)) out.push_back(t);
  }
  return out;
}

std::vector<Triple> FrameStore::MatchTermObjects(const Term* s, const Term* p,
                                                 const Term* o) const {
  std::vector<Triple> out;
  for (size_t i = 0; i < num_triples_; ++i) {
    Triple t = TripleAt(ScanOrder::kSpo, i);
    // Deliberately materializes three heap Terms per visited triple —
    // this is the pre-frame-store cost model the E17 ablation measures.
    Term ts = MaterializeTerm(t.s);
    Term tp = MaterializeTerm(t.p);
    Term to = MaterializeTerm(t.o);
    if ((s == nullptr || ts == *s) && (p == nullptr || tp == *p) &&
        (o == nullptr || to == *o)) {
      out.push_back(t);
    }
  }
  return out;
}

bool FrameStore::section(uint32_t id, std::string_view* out) const {
  auto it = sections_.find(id);
  if (it == sections_.end()) return false;
  *out = std::string_view(it->second.first, it->second.second);
  return true;
}

}  // namespace rdf
}  // namespace kb
