#ifndef KBFORGE_RDF_FRAME_STORE_H_
#define KBFORGE_RDF_FRAME_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "rdf/triple_source.h"
#include "util/status.h"
#include "util/statusor.h"

namespace kb {
namespace rdf {

/// FrameStore is the compact, read-only KB representation (the
/// SLING-frame-store idea): every term string lives in one contiguous
/// arena addressed by offsets, term records are fixed-width, the term
/// index is an open-addressing hash of plain u32 ids, and triples are
/// fixed-width {sid,pid,oid} records in SPO/POS/OSP sorted runs. There
/// are no pointers anywhere in the payload, so the whole store is one
/// memory-mappable blob: Attach() binds directly to the mapped bytes
/// and serves scans/lookups without deserializing anything.
///
/// Snapshot layout (all integers little-endian, sections 8-aligned):
///
///   header   { magic, version, file_size, kb_epoch, num_terms,
///              num_triples, num_entities, section_count, header_crc }
///   table    section_count x { id, flags, offset, size, crc, pad }
///   sections
///     1 term records   num_terms x 20B {kind, value_off, value_len,
///                                       extra_off, extra_len}
///     2 string arena   raw bytes, offsets from term records
///     3 dict index     u64 n_slots, then n_slots x u32 id (0 = empty;
///                      linear probing on HashTermParts & (n_slots-1))
///     4/5/6 runs       num_triples x 12B {s,p,o}, sorted in
///                      SPO / POS / OSP collation respectively
///     >= 16            opaque to this layer (core stores fact
///                      metadata in one; see kb_snapshot.cc)
///
/// header_crc covers the header (with the crc field zeroed) plus the
/// section table; each table entry carries a CRC of its section bytes,
/// so a torn write or bit flip anywhere in the file is detected at
/// Attach() time and the snapshot is refused.
class FrameStore : public TripleSource,
                   public TermCatalog,
                   public std::enable_shared_from_this<FrameStore> {
 public:
  static constexpr uint32_t kMagic = 0x5346424bu;  // "KBFS" little-endian
  static constexpr uint32_t kVersion = 1;
  static constexpr size_t kHeaderSize = 56;
  static constexpr size_t kSectionEntrySize = 32;
  static constexpr size_t kTermRecordSize = 20;
  static constexpr size_t kTripleRecordSize = 12;

  // Section ids.
  static constexpr uint32_t kSectionTermRecords = 1;
  static constexpr uint32_t kSectionArena = 2;
  static constexpr uint32_t kSectionDictIndex = 3;
  static constexpr uint32_t kSectionSpo = 4;
  static constexpr uint32_t kSectionPos = 5;
  static constexpr uint32_t kSectionOsp = 6;
  /// Ids at or above this are opaque payload sections owned by higher
  /// layers; Attach() only checks their CRCs.
  static constexpr uint32_t kFirstOpaqueSection = 16;
  static constexpr uint32_t kSectionFactMeta = 16;

  struct AttachOptions {
    /// CRC every section against the table (one linear pass). Leave on
    /// unless the bytes were checked out-of-band.
    bool verify_checksums = true;
    /// Structural validation: offsets in range, ids dense, runs
    /// strictly sorted. O(num_terms + num_triples).
    bool verify_structure = true;
  };

  /// Binds a store to serialized snapshot bytes. `owner` keeps the
  /// bytes alive (e.g. a mapped region or a std::string) and is held
  /// for the store's lifetime; the rdf layer never does file I/O
  /// itself. Returns InvalidArgument/Corruption on any malformed or
  /// checksum-failing input — a refused snapshot is never partially
  /// attached.
  static StatusOr<std::shared_ptr<FrameStore>> Attach(
      const char* data, size_t size, std::shared_ptr<void> owner,
      const AttachOptions& options);
  static StatusOr<std::shared_ptr<FrameStore>> Attach(
      const char* data, size_t size, std::shared_ptr<void> owner) {
    return Attach(data, size, std::move(owner), AttachOptions());
  }

  ~FrameStore() override = default;

  // ---- header stats ----
  uint64_t epoch() const { return epoch_; }
  uint64_t num_entities() const { return num_entities_; }
  size_t num_terms() const { return num_terms_; }
  size_t size() const { return num_triples_; }

  // ---- term access (offset-based, allocation-free) ----

  /// Decoded view of one term record; string_views point into the
  /// mapped arena. `extra` is the language tag or datatype IRI.
  struct TermView {
    TermKind kind = TermKind::kIri;
    bool has_language = false;
    bool has_datatype = false;
    std::string_view value;
    std::string_view extra;
  };

  /// View of the term record for id in [1, num_terms()].
  TermView term_view(TermId id) const;

  /// Materializes a heap Term (the slow path; the executor should stay
  /// on ids and only materialize at Project).
  Term MaterializeTerm(TermId id) const;

  /// N-Triples surface form, rendered straight from the arena.
  std::string RenderTerm(TermId id) const;

  /// Hash-index lookup; kInvalidTermId if absent.
  TermId LookupTerm(const Term& term) const;

  // ---- TermCatalog ----
  size_t catalog_size() const override { return num_terms_; }
  Term CatalogTerm(TermId id) const override { return MaterializeTerm(id); }
  TermId CatalogLookup(const Term& term) const override {
    return LookupTerm(term);
  }

  // ---- triple access ----
  bool Contains(const Triple& t) const;

  // TripleSource: id-native scans over the packed runs.
  std::unique_ptr<ScanIterator> NewScan(
      const TriplePattern& pattern) const override;
  size_t EstimateCount(const TriplePattern& pattern) const override;

  /// Materializing full-pattern match (parity with TripleStore).
  std::vector<Triple> MatchFullScan(const TriplePattern& pattern) const;

  /// E17 ablation — the pre-frame-store "term-object path": visits the
  /// SPO run, materializes all three Terms of every visited triple and
  /// matches them as term objects (heap churn and all). Result set is
  /// identical to MatchFullScan on the id pattern for the same terms.
  std::vector<Triple> MatchTermObjects(const Term* s, const Term* p,
                                       const Term* o) const;

  /// Raw bytes of a payload section, or empty view + false if the
  /// snapshot has no such section.
  bool section(uint32_t id, std::string_view* out) const;

  /// Triple record run for `order`; valid for the store's lifetime.
  const char* run_data(ScanOrder order) const {
    return runs_[static_cast<int>(order)];
  }

  /// Decodes the idx-th record of `order`'s run.
  Triple TripleAt(ScanOrder order, size_t idx) const;

  /// First index in `order`'s run whose record is >= / > `key` in that
  /// collation (binary search over the packed records).
  size_t LowerBound(ScanOrder order, const Triple& key) const;
  size_t UpperBound(ScanOrder order, const Triple& key) const;

 private:
  FrameStore() = default;

  Status Bind(const char* data, size_t size, const AttachOptions& options);
  Status VerifyStructure() const;

  const char* data_ = nullptr;
  size_t size_ = 0;
  std::shared_ptr<void> owner_;

  uint64_t epoch_ = 0;
  uint64_t num_entities_ = 0;
  size_t num_terms_ = 0;
  size_t num_triples_ = 0;

  const char* term_records_ = nullptr;
  const char* arena_ = nullptr;
  size_t arena_size_ = 0;
  const char* dict_slots_ = nullptr;
  uint64_t dict_n_slots_ = 0;
  const char* runs_[3] = {nullptr, nullptr, nullptr};

  std::map<uint32_t, std::pair<const char*, size_t>> sections_;
};

/// Accumulates a KB and emits one serialized FrameStore snapshot.
/// Terms must be added in id order starting at 1 (matching the
/// Dictionary they come from) so ids survive the round trip.
class FrameStoreBuilder {
 public:
  FrameStoreBuilder() = default;

  /// Appends the next term; returns its id (1, 2, 3, ...).
  TermId AddTerm(const Term& term);

  /// Adds one triple; all three ids must already be added terms by
  /// Serialize() time. Duplicates are rejected at Serialize().
  void AddTriple(const Triple& t);

  void SetEpoch(uint64_t epoch) { epoch_ = epoch; }
  void SetNumEntities(uint64_t n) { num_entities_ = n; }

  /// Attaches an opaque payload section (id >= kFirstOpaqueSection).
  void SetSection(uint32_t id, std::string bytes);

  size_t num_terms() const { return num_terms_; }
  size_t num_triples() const { return triples_.size(); }

  /// Sorts the runs, builds the hash index and emits the snapshot
  /// bytes. The builder is consumed. Fails on duplicate terms or
  /// triples and on out-of-range ids.
  StatusOr<std::string> Serialize();

 private:
  uint64_t epoch_ = 0;
  uint64_t num_entities_ = 0;
  size_t num_terms_ = 0;
  std::string term_records_;
  std::string arena_;
  std::vector<uint64_t> term_hashes_;  // parallel to term ids
  std::vector<Triple> triples_;
  std::map<uint32_t, std::string> extra_sections_;
};

/// Content hash of one term, the key function of the snapshot's dict
/// index (chained FNV-1a over a kind code, the value bytes and the
/// language/datatype bytes). Exposed so builder and store agree.
uint64_t HashTermParts(uint8_t kind_code, std::string_view value,
                       std::string_view extra);

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_FRAME_STORE_H_
