#include "rdf/namespaces.h"

#include "util/string_util.h"

namespace kb {
namespace rdf {

std::string Abbreviate(std::string_view iri) {
  struct Prefix {
    std::string_view ns;
    std::string_view abbrev;
  };
  static constexpr Prefix kPrefixes[] = {
      {kEntityNs, "kb:"},
      {kPropertyNs, "kbp:"},
      {kClassNs, "kbc:"},
      {"http://www.w3.org/1999/02/22-rdf-syntax-ns#", "rdf:"},
      {"http://www.w3.org/2000/01/rdf-schema#", "rdfs:"},
      {"http://www.w3.org/2002/07/owl#", "owl:"},
      {"http://www.w3.org/2001/XMLSchema#", "xsd:"},
  };
  for (const auto& p : kPrefixes) {
    if (StartsWith(iri, p.ns)) {
      return std::string(p.abbrev) + std::string(iri.substr(p.ns.size()));
    }
  }
  return std::string(iri);
}

}  // namespace rdf
}  // namespace kb
