#ifndef KBFORGE_RDF_NAMESPACES_H_
#define KBFORGE_RDF_NAMESPACES_H_

#include <string>
#include <string_view>

namespace kb {
namespace rdf {

/// Namespace prefixes used throughout KBForge's knowledge bases. KBForge
/// entities live under kb:, relations under kbp:, classes under kbc:.
inline constexpr std::string_view kEntityNs = "http://kbforge.org/entity/";
inline constexpr std::string_view kPropertyNs = "http://kbforge.org/prop/";
inline constexpr std::string_view kClassNs = "http://kbforge.org/class/";
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr std::string_view kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr std::string_view kOwlSameAs =
    "http://www.w3.org/2002/07/owl#sameAs";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdDate =
    "http://www.w3.org/2001/XMLSchema#date";

/// Builds a full IRI from a namespace and local name.
inline std::string EntityIri(std::string_view local) {
  return std::string(kEntityNs) + std::string(local);
}
inline std::string PropertyIri(std::string_view local) {
  return std::string(kPropertyNs) + std::string(local);
}
inline std::string ClassIri(std::string_view local) {
  return std::string(kClassNs) + std::string(local);
}

/// Strips a known namespace prefix for display ("kb:Steve_Jobs").
std::string Abbreviate(std::string_view iri);

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_NAMESPACES_H_
