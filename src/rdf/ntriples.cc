#include "rdf/ntriples.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace kb {
namespace rdf {

namespace {

/// Splits one N-Triples line into its three term tokens, respecting
/// quoted literals. Returns false on malformed lines.
bool TokenizeLine(std::string_view line, std::string_view out[3]) {
  int found = 0;
  size_t i = 0;
  while (i < line.size() && found < 3) {
    while (i < line.size() && isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size()) break;
    size_t start = i;
    if (line[i] == '"') {
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == '"') break;
        ++i;
      }
      if (i >= line.size()) return false;
      ++i;  // past closing quote
      // Suffix: @lang or ^^<...>
      while (i < line.size() && !isspace(static_cast<unsigned char>(line[i])))
        ++i;
    } else {
      while (i < line.size() && !isspace(static_cast<unsigned char>(line[i])))
        ++i;
    }
    out[found++] = line.substr(start, i - start);
  }
  if (found != 3) return false;
  // Remainder must be the terminating dot.
  std::string_view rest = StripWhitespace(line.substr(i));
  return rest == ".";
}

}  // namespace

std::string WriteNTriples(const TripleStore& store) {
  std::ostringstream out;
  TriplePattern all;
  store.Scan(all, [&](const Triple& t) {
    out << store.dict().term(t.s).ToString() << " "
        << store.dict().term(t.p).ToString() << " "
        << store.dict().term(t.o).ToString() << " .\n";
    return true;
  });
  return out.str();
}

Status ReadNTriples(std::string_view text, TripleStore* store) {
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::string_view tokens[3];
    if (!TokenizeLine(stripped, tokens)) {
      return Status::Corruption("malformed N-Triples line " +
                                std::to_string(line_no));
    }
    Term terms[3];
    for (int i = 0; i < 3; ++i) {
      auto parsed = Term::Parse(tokens[i]);
      if (!parsed.ok()) {
        return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                  parsed.status().message());
      }
      terms[i] = std::move(parsed).value();
    }
    if (!terms[1].is_iri()) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": predicate must be an IRI");
    }
    store->AddTerms(terms[0], terms[1], terms[2]);
  }
  return Status::OK();
}

Status WriteNTriplesFile(const TripleStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteNTriples(store);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ReadNTriplesFile(const std::string& path, TripleStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadNTriples(buf.str(), store);
}

}  // namespace rdf
}  // namespace kb
