#ifndef KBFORGE_RDF_NTRIPLES_H_
#define KBFORGE_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "rdf/triple_store.h"
#include "util/status.h"

namespace kb {
namespace rdf {

/// Serializes the whole store in N-Triples format (one triple per line,
/// terminated by " ."). Order is SPO index order: deterministic.
std::string WriteNTriples(const TripleStore& store);

/// Parses N-Triples text into `store`. Lines that are empty or start
/// with '#' are skipped. Returns the first parse error with its line
/// number, having already added all preceding valid triples.
Status ReadNTriples(std::string_view text, TripleStore* store);

/// Writes the store to a file.
Status WriteNTriplesFile(const TripleStore& store, const std::string& path);

/// Reads a file of N-Triples into `store`.
Status ReadNTriplesFile(const std::string& path, TripleStore* store);

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_NTRIPLES_H_
