#include "rdf/term.h"

#include <tuple>

#include "util/string_util.h"

namespace kb {
namespace rdf {

namespace {
constexpr char kXsdInteger[] = "http://www.w3.org/2001/XMLSchema#integer";
}  // namespace

Term Term::Iri(std::string iri) {
  Term t;
  t.kind_ = TermKind::kIri;
  t.value_ = std::move(iri);
  return t;
}

Term Term::Literal(std::string value) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.value_ = std::move(value);
  return t;
}

Term Term::LangLiteral(std::string value, std::string lang) {
  Term t = Literal(std::move(value));
  t.language_ = std::move(lang);
  return t;
}

Term Term::TypedLiteral(std::string value, std::string datatype_iri) {
  Term t = Literal(std::move(value));
  t.datatype_ = std::move(datatype_iri);
  return t;
}

Term Term::IntLiteral(int64_t value) {
  return TypedLiteral(std::to_string(value), kXsdInteger);
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlank;
  t.value_ = std::move(label);
  return t;
}

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + value_ + ">";
    case TermKind::kBlank:
      return "_:" + value_;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriples(value_) + "\"";
      if (!language_.empty()) {
        out += "@" + language_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return "";
}

StatusOr<Term> Term::Parse(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) return Status::InvalidArgument("empty term");
  if (text.front() == '<') {
    if (text.back() != '>' || text.size() < 2) {
      return Status::InvalidArgument("unterminated IRI: " + std::string(text));
    }
    return Iri(std::string(text.substr(1, text.size() - 2)));
  }
  if (StartsWith(text, "_:")) {
    return Blank(std::string(text.substr(2)));
  }
  if (text.front() == '"') {
    // Find the closing unescaped quote.
    size_t end = std::string_view::npos;
    for (size_t i = 1; i < text.size(); ++i) {
      if (text[i] == '\\') {
        ++i;  // skip escaped char
        continue;
      }
      if (text[i] == '"') {
        end = i;
        break;
      }
    }
    if (end == std::string_view::npos) {
      return Status::InvalidArgument("unterminated literal: " +
                                     std::string(text));
    }
    std::string value = UnescapeNTriples(text.substr(1, end - 1));
    std::string_view rest = text.substr(end + 1);
    if (rest.empty()) return Literal(std::move(value));
    if (rest.front() == '@') {
      return LangLiteral(std::move(value), std::string(rest.substr(1)));
    }
    if (StartsWith(rest, "^^<") && rest.back() == '>') {
      return TypedLiteral(std::move(value),
                          std::string(rest.substr(3, rest.size() - 4)));
    }
    return Status::InvalidArgument("bad literal suffix: " + std::string(text));
  }
  return Status::InvalidArgument("unrecognized term: " + std::string(text));
}

bool Term::operator<(const Term& o) const {
  return std::tie(kind_, value_, language_, datatype_) <
         std::tie(o.kind_, o.value_, o.language_, o.datatype_);
}

}  // namespace rdf
}  // namespace kb
