#ifndef KBFORGE_RDF_TERM_H_
#define KBFORGE_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/statusor.h"

namespace kb {
namespace rdf {

/// The kind of an RDF term. KBForge follows the SPO triple model the
/// tutorial describes in §2 "Digital Knowledge".
enum class TermKind : uint8_t {
  kIri = 0,      ///< A resource, e.g. <kb:Steve_Jobs>
  kLiteral = 1,  ///< A (possibly typed or language-tagged) literal
  kBlank = 2,    ///< A blank node, e.g. _:b42
};

/// An RDF term. Literals carry an optional language tag ("@en") or
/// datatype IRI (xsd:integer etc.), mutually exclusive per RDF 1.1.
class Term {
 public:
  Term() : kind_(TermKind::kIri) {}

  /// Factory for an IRI term; `iri` is stored without angle brackets.
  static Term Iri(std::string iri);

  /// Factory for a plain string literal.
  static Term Literal(std::string value);

  /// Factory for a language-tagged literal, e.g. ("Vienne", "fr").
  static Term LangLiteral(std::string value, std::string lang);

  /// Factory for a typed literal, e.g. ("42", xsd:integer IRI).
  static Term TypedLiteral(std::string value, std::string datatype_iri);

  /// Factory for an integer literal (xsd:integer).
  static Term IntLiteral(int64_t value);

  /// Factory for a blank node with the given local label.
  static Term Blank(std::string label);

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  bool is_blank() const { return kind_ == TermKind::kBlank; }

  /// IRI string, literal lexical form, or blank label depending on kind.
  const std::string& value() const { return value_; }

  /// Language tag (may be empty). Only meaningful for literals.
  const std::string& language() const { return language_; }

  /// Datatype IRI (may be empty = plain). Only meaningful for literals.
  const std::string& datatype() const { return datatype_; }

  /// N-Triples surface form: <iri>, "literal"@lang, "lit"^^<dt>, _:label.
  std::string ToString() const;

  /// Parses one N-Triples term. Inverse of ToString.
  static StatusOr<Term> Parse(std::string_view text);

  bool operator==(const Term& o) const {
    return kind_ == o.kind_ && value_ == o.value_ &&
           language_ == o.language_ && datatype_ == o.datatype_;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }
  bool operator<(const Term& o) const;

 private:
  TermKind kind_;
  std::string value_;
  std::string language_;
  std::string datatype_;
};

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_TERM_H_
