#ifndef KBFORGE_RDF_TRIPLE_H_
#define KBFORGE_RDF_TRIPLE_H_

#include <cstdint>
#include <functional>
#include <tuple>

#include "rdf/dictionary.h"
#include "util/date.h"
#include "util/hash.h"

namespace kb {
namespace rdf {

/// A dictionary-encoded SPO triple.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  Triple() = default;
  Triple(TermId s_, TermId p_, TermId o_) : s(s_), p(p_), o(o_) {}

  bool operator==(const Triple& t) const {
    return s == t.s && p == t.p && o == t.o;
  }
  bool operator<(const Triple& t) const {
    return std::tie(s, p, o) < std::tie(t.s, t.p, t.o);
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = Mix64((static_cast<uint64_t>(t.s) << 32) | t.p);
    return static_cast<size_t>(HashCombine(h, Mix64(t.o)));
  }
};

/// An extracted fact: a triple plus the extraction metadata that the
/// harvesting pipeline, consistency reasoner and temporal scoper use.
struct Fact {
  Triple triple;
  double confidence = 1.0;   ///< extractor confidence in [0, 1]
  uint32_t source_doc = 0;   ///< provenance: generating document id
  uint32_t extractor = 0;    ///< which extractor produced it
  TimeSpan valid_time;       ///< temporal scope, if known

  Fact() = default;
  Fact(Triple t, double conf) : triple(t), confidence(conf) {}
};

/// Well-known extractor ids recorded as provenance on facts.
enum ExtractorId : uint32_t {
  kExtractorUnknown = 0,
  kExtractorInfobox = 1,
  kExtractorPattern = 2,
  kExtractorBootstrap = 3,
  kExtractorStatistical = 4,
  kExtractorOpenIE = 5,
  kExtractorCategory = 6,
  kExtractorTemporal = 7,
  kExtractorReasoner = 8,
};

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_TRIPLE_H_
