#include "rdf/triple_source.h"

namespace kb {
namespace rdf {

void ComponentsInOrder(ScanOrder order, const Triple& t, TermId out[3]) {
  switch (order) {
    case ScanOrder::kSpo:
      out[0] = t.s;
      out[1] = t.p;
      out[2] = t.o;
      return;
    case ScanOrder::kPos:
      out[0] = t.p;
      out[1] = t.o;
      out[2] = t.s;
      return;
    case ScanOrder::kOsp:
      out[0] = t.o;
      out[1] = t.s;
      out[2] = t.p;
      return;
  }
}

Triple TripleFromOrder(ScanOrder order, TermId a, TermId b, TermId c) {
  switch (order) {
    case ScanOrder::kSpo:
      return Triple(a, b, c);
    case ScanOrder::kPos:
      return Triple(c, a, b);
    case ScanOrder::kOsp:
      return Triple(b, c, a);
  }
  return Triple();
}

bool LessInOrder(ScanOrder order, const Triple& a, const Triple& b) {
  TermId ka[3] = {0, 0, 0};
  TermId kb_[3] = {0, 0, 0};
  ComponentsInOrder(order, a, ka);
  ComponentsInOrder(order, b, kb_);
  if (ka[0] != kb_[0]) return ka[0] < kb_[0];
  if (ka[1] != kb_[1]) return ka[1] < kb_[1];
  return ka[2] < kb_[2];
}

int BoundPrefixLength(ScanOrder order, const TriplePattern& pattern) {
  Triple as_triple(pattern.s, pattern.p, pattern.o);
  TermId k[3] = {0, 0, 0};
  ComponentsInOrder(order, as_triple, k);
  int n = 0;
  while (n < 3 && k[n] != kAnyTerm) ++n;
  return n;
}

ScanOrder ChooseScanOrder(const TriplePattern& pattern) {
  ScanOrder best = ScanOrder::kSpo;
  int best_len = BoundPrefixLength(ScanOrder::kSpo, pattern);
  for (ScanOrder order : {ScanOrder::kPos, ScanOrder::kOsp}) {
    int len = BoundPrefixLength(order, pattern);
    if (len > best_len) {
      best_len = len;
      best = order;
    }
  }
  return best;
}

void TripleSource::Scan(
    const TriplePattern& pattern,
    const std::function<bool(const Triple&)>& fn) const {
  for (std::unique_ptr<ScanIterator> it = NewScan(pattern); it->Valid();
       it->Next()) {
    if (!fn(it->Value())) return;
  }
}

}  // namespace rdf
}  // namespace kb
