#include "rdf/triple_source.h"

#include "util/logging.h"

namespace kb {
namespace rdf {

void ComponentsInOrder(ScanOrder order, const Triple& t, TermId out[3]) {
  switch (order) {
    case ScanOrder::kSpo:
      out[0] = t.s;
      out[1] = t.p;
      out[2] = t.o;
      return;
    case ScanOrder::kPos:
      out[0] = t.p;
      out[1] = t.o;
      out[2] = t.s;
      return;
    case ScanOrder::kOsp:
      out[0] = t.o;
      out[1] = t.s;
      out[2] = t.p;
      return;
  }
}

Triple TripleFromOrder(ScanOrder order, TermId a, TermId b, TermId c) {
  switch (order) {
    case ScanOrder::kSpo:
      return Triple(a, b, c);
    case ScanOrder::kPos:
      return Triple(c, a, b);
    case ScanOrder::kOsp:
      return Triple(b, c, a);
  }
  return Triple();
}

bool LessInOrder(ScanOrder order, const Triple& a, const Triple& b) {
  TermId ka[3] = {0, 0, 0};
  TermId kb_[3] = {0, 0, 0};
  ComponentsInOrder(order, a, ka);
  ComponentsInOrder(order, b, kb_);
  if (ka[0] != kb_[0]) return ka[0] < kb_[0];
  if (ka[1] != kb_[1]) return ka[1] < kb_[1];
  return ka[2] < kb_[2];
}

int BoundPrefixLength(ScanOrder order, const TriplePattern& pattern) {
  Triple as_triple(pattern.s, pattern.p, pattern.o);
  TermId k[3] = {0, 0, 0};
  ComponentsInOrder(order, as_triple, k);
  int n = 0;
  while (n < 3 && k[n] != kAnyTerm) ++n;
  return n;
}

ScanOrder ChooseScanOrder(const TriplePattern& pattern) {
  ScanOrder best = ScanOrder::kSpo;
  int best_len = BoundPrefixLength(ScanOrder::kSpo, pattern);
  for (ScanOrder order : {ScanOrder::kPos, ScanOrder::kOsp}) {
    int len = BoundPrefixLength(order, pattern);
    if (len > best_len) {
      best_len = len;
      best = order;
    }
  }
  return best;
}

MergeScanIterator::MergeScanIterator(std::unique_ptr<ScanIterator> a,
                                     std::unique_ptr<ScanIterator> b)
    : a_(std::move(a)), b_(std::move(b)) {
  KB_CHECK(a_->order() == b_->order()) << "merged scans must share an order";
}

bool MergeScanIterator::Valid() const { return a_->Valid() || b_->Valid(); }

const Triple& MergeScanIterator::Value() const {
  return FromA() ? a_->Value() : b_->Value();
}

void MergeScanIterator::Next() {
  // If both sides sit on the same triple, advancing only the served
  // side would re-emit it from the other: step past the duplicate too.
  bool both_equal =
      a_->Valid() && b_->Valid() && a_->Value() == b_->Value();
  if (FromA()) {
    a_->Next();
    if (both_equal) b_->Next();
  } else {
    b_->Next();
  }
}

void MergeScanIterator::Seek(const Triple& target) {
  a_->Seek(target);
  b_->Seek(target);
}

Status MergeScanIterator::status() const {
  if (!a_->status().ok()) return a_->status();
  return b_->status();
}

bool MergeScanIterator::FromA() const {
  if (!b_->Valid()) return true;
  if (!a_->Valid()) return false;
  return !LessInOrder(a_->order(), b_->Value(), a_->Value());
}

void TripleSource::Scan(
    const TriplePattern& pattern,
    const std::function<bool(const Triple&)>& fn) const {
  for (std::unique_ptr<ScanIterator> it = NewScan(pattern); it->Valid();
       it->Next()) {
    if (!fn(it->Value())) return;
  }
}

}  // namespace rdf
}  // namespace kb
