#ifndef KBFORGE_RDF_TRIPLE_SOURCE_H_
#define KBFORGE_RDF_TRIPLE_SOURCE_H_

#include <functional>
#include <memory>

#include "rdf/triple.h"
#include "util/status.h"

namespace kb {
namespace rdf {

/// A triple pattern: any component may be a concrete TermId or the
/// wildcard kAnyTerm.
inline constexpr TermId kAnyTerm = 0xffffffffu;

struct TriplePattern {
  TermId s = kAnyTerm;
  TermId p = kAnyTerm;
  TermId o = kAnyTerm;

  bool Matches(const Triple& t) const {
    return (s == kAnyTerm || s == t.s) && (p == kAnyTerm || p == t.p) &&
           (o == kAnyTerm || o == t.o);
  }
};

/// The three collation orders every pattern shape can be answered from
/// with a contiguous range (the RDF-3X permutation-index design).
enum class ScanOrder { kSpo, kPos, kOsp };

/// Projects a triple's components into `order` space (e.g. kPos maps
/// (s,p,o) to (p,o,s)).
void ComponentsInOrder(ScanOrder order, const Triple& t, TermId out[3]);

/// Inverse of ComponentsInOrder.
Triple TripleFromOrder(ScanOrder order, TermId a, TermId b, TermId c);

/// Lexicographic comparison of two triples in `order` space.
bool LessInOrder(ScanOrder order, const Triple& a, const Triple& b);

/// The order whose sort prefix covers the most bound components of
/// `pattern` (ties break SPO, POS, OSP).
ScanOrder ChooseScanOrder(const TriplePattern& pattern);

/// Number of leading bound components of `pattern` in `order` space.
int BoundPrefixLength(ScanOrder order, const TriplePattern& pattern);

/// Volcano-style pull iterator over the matches of one triple pattern
/// in a fixed collation order. The iterator owns whatever it needs to
/// stay valid (e.g. a store snapshot), so it may outlive changes to
/// the underlying source.
class ScanIterator {
 public:
  virtual ~ScanIterator() = default;

  /// True while positioned on a match.
  virtual bool Valid() const = 0;

  /// The current match. Precondition: Valid().
  virtual const Triple& Value() const = 0;

  /// Advances to the next match. Precondition: Valid().
  virtual void Next() = 0;

  /// Repositions at the first match >= `target` in this iterator's
  /// order. Never moves backwards.
  virtual void Seek(const Triple& target) = 0;

  /// The collation order this iterator scans in.
  virtual ScanOrder order() const = 0;

  /// Non-OK if the scan hit an unreadable region (e.g. a corrupt
  /// storage block); the iterator then reports !Valid().
  virtual Status status() const { return Status::OK(); }
};

/// Merges two iterators of the same collation order into one sorted,
/// duplicate-free stream (the left iterator wins ties). This is how a
/// hybrid store reads an immutable base snapshot plus its delta as one
/// source without materializing either side.
class MergeScanIterator : public ScanIterator {
 public:
  MergeScanIterator(std::unique_ptr<ScanIterator> a,
                    std::unique_ptr<ScanIterator> b);

  bool Valid() const override;
  const Triple& Value() const override;
  void Next() override;
  void Seek(const Triple& target) override;
  ScanOrder order() const override { return a_->order(); }
  Status status() const override;

 private:
  bool FromA() const;

  std::unique_ptr<ScanIterator> a_;
  std::unique_ptr<ScanIterator> b_;
};

/// Anything the query executor can scan: the in-memory TripleStore, an
/// immutable store snapshot, or the LSM-backed StoredTripleSource.
/// One SelectQuery compiles to the same operator tree over any of
/// them.
class TripleSource {
 public:
  virtual ~TripleSource() = default;

  /// Opens a scan over the matches of `pattern`.
  virtual std::unique_ptr<ScanIterator> NewScan(
      const TriplePattern& pattern) const = 0;

  /// Estimated (possibly capped) number of matches, for join ordering.
  virtual size_t EstimateCount(const TriplePattern& pattern) const = 0;

  /// A stable point-in-time view to run one query against, or nullptr
  /// if this source is already stable (the default). Callers keep the
  /// returned pointer alive for the duration of the query.
  virtual std::shared_ptr<const TripleSource> SnapshotSource() const {
    return nullptr;
  }

  /// Convenience push-style wrapper over NewScan. Return false from
  /// `fn` to stop early.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;
};

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_TRIPLE_SOURCE_H_
