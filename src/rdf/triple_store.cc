#include "rdf/triple_store.h"

#include <algorithm>

namespace kb {
namespace rdf {

namespace {

/// Iterator over one sorted index range. Holds a shared_ptr to the
/// snapshot so the data outlives store mutations and even the store.
class MemScanIterator : public ScanIterator {
 public:
  MemScanIterator(std::shared_ptr<const StoreSnapshot> snap,
                  const std::vector<Triple>& index, ScanOrder order,
                  const TriplePattern& pattern)
      : snap_(std::move(snap)), order_(order), pattern_(pattern) {
    auto less = [order](const Triple& a, const Triple& b) {
      return LessInOrder(order, a, b);
    };
    Triple as_triple(pattern.s, pattern.p, pattern.o);
    TermId key[3];
    ComponentsInOrder(order, as_triple, key);
    int prefix = BoundPrefixLength(order, pattern);
    TermId lo[3] = {0, 0, 0};
    TermId hi[3] = {kAnyTerm, kAnyTerm, kAnyTerm};
    for (int i = 0; i < prefix; ++i) lo[i] = hi[i] = key[i];
    cur_ = std::lower_bound(index.data(), index.data() + index.size(),
                            TripleFromOrder(order, lo[0], lo[1], lo[2]),
                            less);
    // No valid triple carries a kAnyTerm component, so the hi key is a
    // strict upper bound of the prefix range.
    end_ = std::upper_bound(cur_, index.data() + index.size(),
                            TripleFromOrder(order, hi[0], hi[1], hi[2]),
                            less);
    SkipNonMatching();
  }

  bool Valid() const override { return cur_ != end_; }
  const Triple& Value() const override { return *cur_; }

  void Next() override {
    ++cur_;
    SkipNonMatching();
  }

  void Seek(const Triple& target) override {
    auto less = [this](const Triple& a, const Triple& b) {
      return LessInOrder(order_, a, b);
    };
    cur_ = std::lower_bound(cur_, end_, target, less);
    SkipNonMatching();
  }

  ScanOrder order() const override { return order_; }

 private:
  void SkipNonMatching() {
    while (cur_ != end_ && !pattern_.Matches(*cur_)) ++cur_;
  }

  std::shared_ptr<const StoreSnapshot> snap_;
  ScanOrder order_;
  TriplePattern pattern_;
  const Triple* cur_ = nullptr;
  const Triple* end_ = nullptr;
};

}  // namespace

std::unique_ptr<ScanIterator> StoreSnapshot::NewScan(
    const TriplePattern& pattern) const {
  ScanOrder order = ChooseScanOrder(pattern);
  return std::make_unique<MemScanIterator>(shared_from_this(), index(order),
                                           order, pattern);
}

size_t StoreSnapshot::EstimateCount(const TriplePattern& pattern) const {
  ScanOrder order = ChooseScanOrder(pattern);
  const std::vector<Triple>& idx = index(order);
  auto less = [order](const Triple& a, const Triple& b) {
    return LessInOrder(order, a, b);
  };
  Triple as_triple(pattern.s, pattern.p, pattern.o);
  TermId key[3];
  ComponentsInOrder(order, as_triple, key);
  int prefix = BoundPrefixLength(order, pattern);
  TermId lo[3] = {0, 0, 0};
  TermId hi[3] = {kAnyTerm, kAnyTerm, kAnyTerm};
  for (int i = 0; i < prefix; ++i) lo[i] = hi[i] = key[i];
  auto begin = std::lower_bound(idx.begin(), idx.end(),
                                TripleFromOrder(order, lo[0], lo[1], lo[2]),
                                less);
  auto end = std::upper_bound(begin, idx.end(),
                              TripleFromOrder(order, hi[0], hi[1], hi[2]),
                              less);
  int bound = (pattern.s != kAnyTerm) + (pattern.p != kAnyTerm) +
              (pattern.o != kAnyTerm);
  if (prefix == bound) {
    // All bound components are inside the range prefix: the range IS
    // the match set, so its width is an exact count.
    return static_cast<size_t>(end - begin);
  }
  size_t n = 0;
  for (auto it = begin; it != end; ++it) {
    if (pattern.Matches(*it)) ++n;
  }
  return n;
}

std::vector<Triple> StoreSnapshot::MatchFullScan(
    const TriplePattern& pattern) const {
  std::vector<Triple> out;
  for (const Triple& t : spo_) {
    if (pattern.Matches(t)) out.push_back(t);
  }
  return out;
}

/// Point-in-time view of a hybrid store: an immutable FrameStore base
/// merged with an immutable delta snapshot. Both sides choose the same
/// scan order for a pattern (ChooseScanOrder is deterministic), so the
/// merged stream is sorted in that order.
class HybridSnapshot : public TripleSource {
 public:
  HybridSnapshot(std::shared_ptr<const FrameStore> base,
                 std::shared_ptr<const StoreSnapshot> delta)
      : base_(std::move(base)), delta_(std::move(delta)) {}

  std::unique_ptr<ScanIterator> NewScan(
      const TriplePattern& pattern) const override {
    return std::make_unique<MergeScanIterator>(base_->NewScan(pattern),
                                               delta_->NewScan(pattern));
  }

  size_t EstimateCount(const TriplePattern& pattern) const override {
    // Exact: the delta is kept disjoint from the base by Add().
    return base_->EstimateCount(pattern) + delta_->EstimateCount(pattern);
  }

 private:
  std::shared_ptr<const FrameStore> base_;
  std::shared_ptr<const StoreSnapshot> delta_;
};

TripleStore::TripleStore(std::shared_ptr<const FrameStore> base)
    : base_(base), dict_(std::move(base)) {}

TripleStore::TripleStore(TripleStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  base_ = std::move(other.base_);
  dict_ = std::move(other.dict_);
  set_ = std::move(other.set_);
  pending_ = std::move(other.pending_);
  snapshot_ = std::move(other.snapshot_);
}

TripleStore& TripleStore::operator=(TripleStore&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  base_ = std::move(other.base_);
  dict_ = std::move(other.dict_);
  set_ = std::move(other.set_);
  pending_ = std::move(other.pending_);
  snapshot_ = std::move(other.snapshot_);
  return *this;
}

bool TripleStore::Add(const Triple& t) {
  if (base_ != nullptr && base_->Contains(t)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!set_.insert(t).second) return false;
  pending_.push_back(t);
  return true;
}

bool TripleStore::AddTerms(const Term& s, const Term& p, const Term& o) {
  return Add(Triple(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)));
}

bool TripleStore::Contains(const Triple& t) const {
  if (base_ != nullptr && base_->Contains(t)) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return set_.count(t) > 0;
}

size_t TripleStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return set_.size() + (base_ != nullptr ? base_->size() : 0);
}

std::shared_ptr<const StoreSnapshot> TripleStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_ == nullptr || !pending_.empty()) {
    auto next = std::shared_ptr<StoreSnapshot>(new StoreSnapshot());
    auto merge = [](std::vector<Triple>* out, const std::vector<Triple>& base,
                    std::vector<Triple> batch, ScanOrder order) {
      auto less = [order](const Triple& a, const Triple& b) {
        return LessInOrder(order, a, b);
      };
      std::sort(batch.begin(), batch.end(), less);
      out->reserve(base.size() + batch.size());
      std::merge(base.begin(), base.end(), batch.begin(), batch.end(),
                 std::back_inserter(*out), less);
    };
    static const std::vector<Triple> kEmpty;
    const StoreSnapshot* base = snapshot_.get();
    merge(&next->spo_, base ? base->spo_ : kEmpty, pending_, ScanOrder::kSpo);
    merge(&next->pos_, base ? base->pos_ : kEmpty, pending_, ScanOrder::kPos);
    merge(&next->osp_, base ? base->osp_ : kEmpty, pending_, ScanOrder::kOsp);
    pending_.clear();
    snapshot_ = std::move(next);
  }
  return snapshot_;
}

std::unique_ptr<ScanIterator> TripleStore::NewScan(
    const TriplePattern& pattern) const {
  if (base_ == nullptr) return Snapshot()->NewScan(pattern);
  // Each child iterator pins its own view, so the transient
  // HybridSnapshot need not outlive this call.
  return std::make_unique<MergeScanIterator>(base_->NewScan(pattern),
                                             Snapshot()->NewScan(pattern));
}

size_t TripleStore::EstimateCount(const TriplePattern& pattern) const {
  size_t n = Snapshot()->EstimateCount(pattern);
  if (base_ != nullptr) n += base_->EstimateCount(pattern);
  return n;
}

std::shared_ptr<const TripleSource> TripleStore::SnapshotSource() const {
  if (base_ == nullptr) return Snapshot();
  return std::make_shared<HybridSnapshot>(base_, Snapshot());
}

void TripleStore::Scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  TripleSource::Scan(pattern, fn);
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Scan(pattern, [&out](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t TripleStore::CountMatches(const TriplePattern& pattern) const {
  return EstimateCount(pattern);
}

std::vector<TermId> TripleStore::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  TriplePattern pat;
  pat.s = s;
  pat.p = p;
  Scan(pat, [&out](const Triple& t) {
    out.push_back(t.o);
    return true;
  });
  return out;
}

std::vector<TermId> TripleStore::Subjects(TermId p, TermId o) const {
  std::vector<TermId> out;
  TriplePattern pat;
  pat.p = p;
  pat.o = o;
  Scan(pat, [&out](const Triple& t) {
    out.push_back(t.s);
    return true;
  });
  return out;
}

TermId TripleStore::FirstObject(TermId s, TermId p) const {
  TermId out = kInvalidTermId;
  TriplePattern pat;
  pat.s = s;
  pat.p = p;
  Scan(pat, [&out](const Triple& t) {
    out = t.o;
    return false;
  });
  return out;
}

std::vector<Triple> TripleStore::MatchFullScan(
    const TriplePattern& pattern) const {
  std::vector<Triple> delta = Snapshot()->MatchFullScan(pattern);
  if (base_ == nullptr) return delta;
  std::vector<Triple> from_base = base_->MatchFullScan(pattern);
  std::vector<Triple> out;
  out.reserve(delta.size() + from_base.size());
  std::merge(from_base.begin(), from_base.end(), delta.begin(), delta.end(),
             std::back_inserter(out));
  return out;
}

}  // namespace rdf
}  // namespace kb
