#include "rdf/triple_store.h"

#include <algorithm>

namespace kb {
namespace rdf {

bool TripleStore::Add(const Triple& t) {
  if (!set_.insert(t).second) return false;
  pending_.push_back(t);
  return true;
}

bool TripleStore::AddTerms(const Term& s, const Term& p, const Term& o) {
  return Add(Triple(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)));
}

bool TripleStore::LessSpo(const Triple& a, const Triple& b) {
  return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
}
bool TripleStore::LessPos(const Triple& a, const Triple& b) {
  return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
}
bool TripleStore::LessOsp(const Triple& a, const Triple& b) {
  return std::tie(a.o, a.s, a.p) < std::tie(b.o, b.s, b.p);
}

void TripleStore::EnsureIndexed() const {
  if (pending_.empty()) return;
  auto merge = [](std::vector<Triple>* index, std::vector<Triple> batch,
                  bool (*less)(const Triple&, const Triple&)) {
    std::sort(batch.begin(), batch.end(), less);
    std::vector<Triple> merged;
    merged.reserve(index->size() + batch.size());
    std::merge(index->begin(), index->end(), batch.begin(), batch.end(),
               std::back_inserter(merged), less);
    *index = std::move(merged);
  };
  merge(&spo_, pending_, &LessSpo);
  merge(&pos_, pending_, &LessPos);
  merge(&osp_, pending_, &LessOsp);
  pending_.clear();
}

void TripleStore::ScanIndex(
    const std::vector<Triple>& index, Order order,
    const TriplePattern& pattern,
    const std::function<bool(const Triple&)>& fn) const {
  // Build lower/upper bound triples for the bound prefix of the order.
  // Components bound beyond the contiguous prefix are filtered in-loop.
  TermId k1 = kAnyTerm, k2 = kAnyTerm;
  bool (*less)(const Triple&, const Triple&) = &LessSpo;
  switch (order) {
    case Order::kSpo:
      k1 = pattern.s;
      k2 = pattern.p;
      less = &LessSpo;
      break;
    case Order::kPos:
      k1 = pattern.p;
      k2 = pattern.o;
      less = &LessPos;
      break;
    case Order::kOsp:
      k1 = pattern.o;
      k2 = pattern.s;
      less = &LessOsp;
      break;
  }
  auto make = [order](TermId a, TermId b, TermId c) {
    switch (order) {
      case Order::kSpo:
        return Triple(a, b, c);
      case Order::kPos:
        return Triple(c, a, b);
      case Order::kOsp:
        return Triple(b, c, a);
    }
    return Triple();
  };
  auto begin = index.begin(), end = index.end();
  if (k1 != kAnyTerm) {
    if (k2 != kAnyTerm) {
      begin = std::lower_bound(index.begin(), index.end(), make(k1, k2, 0),
                               less);
      end = std::upper_bound(begin, index.end(),
                             make(k1, k2, kAnyTerm - 1), less);
    } else {
      begin = std::lower_bound(index.begin(), index.end(), make(k1, 0, 0),
                               less);
      end = std::upper_bound(begin, index.end(),
                             make(k1, kAnyTerm - 1, kAnyTerm - 1), less);
    }
  }
  for (auto it = begin; it != end; ++it) {
    if (pattern.Matches(*it)) {
      if (!fn(*it)) return;
    }
  }
}

void TripleStore::Scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  EnsureIndexed();
  const bool bs = pattern.s != kAnyTerm;
  const bool bp = pattern.p != kAnyTerm;
  const bool bo = pattern.o != kAnyTerm;
  // Choose the index whose sort order has the longest bound prefix.
  if (bs) {
    ScanIndex(spo_, Order::kSpo, pattern, fn);  // S or SP or SPO or SO
  } else if (bp) {
    ScanIndex(pos_, Order::kPos, pattern, fn);  // P or PO
  } else if (bo) {
    ScanIndex(osp_, Order::kOsp, pattern, fn);  // O
  } else {
    ScanIndex(spo_, Order::kSpo, pattern, fn);  // full scan
  }
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Scan(pattern, [&out](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t TripleStore::CountMatches(const TriplePattern& pattern) const {
  size_t n = 0;
  Scan(pattern, [&n](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<TermId> TripleStore::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  TriplePattern pat;
  pat.s = s;
  pat.p = p;
  Scan(pat, [&out](const Triple& t) {
    out.push_back(t.o);
    return true;
  });
  return out;
}

std::vector<TermId> TripleStore::Subjects(TermId p, TermId o) const {
  std::vector<TermId> out;
  TriplePattern pat;
  pat.p = p;
  pat.o = o;
  Scan(pat, [&out](const Triple& t) {
    out.push_back(t.s);
    return true;
  });
  return out;
}

TermId TripleStore::FirstObject(TermId s, TermId p) const {
  TermId out = kInvalidTermId;
  TriplePattern pat;
  pat.s = s;
  pat.p = p;
  Scan(pat, [&out](const Triple& t) {
    out = t.o;
    return false;
  });
  return out;
}

std::vector<Triple> TripleStore::MatchFullScan(
    const TriplePattern& pattern) const {
  EnsureIndexed();
  std::vector<Triple> out;
  for (const Triple& t : spo_) {
    if (pattern.Matches(t)) out.push_back(t);
  }
  return out;
}

}  // namespace rdf
}  // namespace kb
