#ifndef KBFORGE_RDF_TRIPLE_STORE_H_
#define KBFORGE_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace kb {
namespace rdf {

/// A triple pattern: any component may be a concrete TermId or the
/// wildcard kAnyTerm.
inline constexpr TermId kAnyTerm = 0xffffffffu;

struct TriplePattern {
  TermId s = kAnyTerm;
  TermId p = kAnyTerm;
  TermId o = kAnyTerm;

  bool Matches(const Triple& t) const {
    return (s == kAnyTerm || s == t.s) && (p == kAnyTerm || p == t.p) &&
           (o == kAnyTerm || o == t.o);
  }
};

/// In-memory dictionary-encoded triple store with three collated
/// permutation indexes (SPO, POS, OSP), which together answer every
/// triple-pattern shape with a binary-searchable range. This is the
/// standard architecture of RDF engines (RDF-3X-style, simplified).
///
/// Writes are buffered and merged into the sorted indexes lazily on the
/// next read, so bulk loading stays O(n log n) overall.
class TripleStore {
 public:
  TripleStore() = default;

  /// The shared term dictionary.
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Adds a triple of term ids; returns false if it was already present.
  bool Add(const Triple& t);

  /// Interns the terms and adds the triple.
  bool AddTerms(const Term& s, const Term& p, const Term& o);

  bool Contains(const Triple& t) const { return set_.count(t) > 0; }

  size_t size() const { return set_.size(); }

  /// Invokes `fn` for each triple matching the pattern, in SPO order of
  /// the chosen index. Return false from fn to stop early.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// All matches of a pattern, materialized.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Number of matches (uses index ranges; cheap for bound prefixes).
  size_t CountMatches(const TriplePattern& pattern) const;

  /// Distinct objects for (s, p, *) — convenience for attribute lookup.
  std::vector<TermId> Objects(TermId s, TermId p) const;

  /// Distinct subjects for (*, p, o).
  std::vector<TermId> Subjects(TermId p, TermId o) const;

  /// First object for (s, p, *), or kInvalidTermId.
  TermId FirstObject(TermId s, TermId p) const;

  /// Forces the lazy indexes to be merged now (e.g. before timing reads).
  void EnsureIndexed() const;

  /// Naive full-scan matcher, used as the ablation baseline in E10 and
  /// as the model for property tests.
  std::vector<Triple> MatchFullScan(const TriplePattern& pattern) const;

 private:
  enum class Order { kSpo, kPos, kOsp };

  static bool LessSpo(const Triple& a, const Triple& b);
  static bool LessPos(const Triple& a, const Triple& b);
  static bool LessOsp(const Triple& a, const Triple& b);

  void ScanIndex(const std::vector<Triple>& index, Order order,
                 const TriplePattern& pattern,
                 const std::function<bool(const Triple&)>& fn) const;

  Dictionary dict_;
  std::unordered_set<Triple, TripleHash> set_;

  // Sorted indexes + unmerged tail. mutable: merged lazily on read.
  mutable std::vector<Triple> spo_, pos_, osp_;
  mutable std::vector<Triple> pending_;
};

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_TRIPLE_STORE_H_
