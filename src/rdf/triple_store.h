#ifndef KBFORGE_RDF_TRIPLE_STORE_H_
#define KBFORGE_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/frame_store.h"
#include "rdf/triple.h"
#include "rdf/triple_source.h"

namespace kb {
namespace rdf {

/// An immutable point-in-time view of a TripleStore's three sorted
/// permutation indexes. Snapshots are what queries actually scan:
/// once taken, a snapshot never changes, so any number of readers can
/// iterate it lock-free and see a consistent store even while writers
/// keep appending to the owning TripleStore.
class StoreSnapshot : public TripleSource,
                      public std::enable_shared_from_this<StoreSnapshot> {
 public:
  std::unique_ptr<ScanIterator> NewScan(
      const TriplePattern& pattern) const override;

  /// Exact for patterns whose bound components form a prefix of some
  /// collation order (a range subtraction); counted by scan otherwise.
  size_t EstimateCount(const TriplePattern& pattern) const override;

  size_t size() const { return spo_.size(); }

  /// Naive full-scan matcher over the snapshot, the model for
  /// property tests.
  std::vector<Triple> MatchFullScan(const TriplePattern& pattern) const;

 private:
  friend class TripleStore;
  StoreSnapshot() = default;

  const std::vector<Triple>& index(ScanOrder order) const {
    switch (order) {
      case ScanOrder::kPos:
        return pos_;
      case ScanOrder::kOsp:
        return osp_;
      default:
        return spo_;
    }
  }

  std::vector<Triple> spo_, pos_, osp_;
};

/// In-memory dictionary-encoded triple store with three collated
/// permutation indexes (SPO, POS, OSP), which together answer every
/// triple-pattern shape with a binary-searchable range. This is the
/// standard architecture of RDF engines (RDF-3X-style, simplified).
///
/// Writes are buffered and merged into a fresh immutable snapshot
/// lazily on the next read, so bulk loading stays O(n log n) overall.
/// Add/Snapshot/Scan may be called from any thread concurrently: the
/// pending buffer and snapshot pointer are guarded by one mutex, and
/// published snapshots are never mutated. (The dictionary is NOT
/// internally synchronized — callers that intern terms concurrently
/// must serialize AddTerms against readers of dict(), as
/// core::KnowledgeBase does.)
class TripleStore : public TripleSource {
 public:
  TripleStore() = default;

  /// A hybrid store over an immutable FrameStore base: the base serves
  /// reads (ids, terms, triples) while this store holds only the delta
  /// written since the snapshot. Reads merge both sides behind the
  /// TripleSource interface; the dictionary overlays the base catalog
  /// so base ids stay stable.
  explicit TripleStore(std::shared_ptr<const FrameStore> base);

  TripleStore(TripleStore&& other) noexcept;
  TripleStore& operator=(TripleStore&& other) noexcept;

  /// The shared term dictionary.
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// The immutable base snapshot, or nullptr for a plain store.
  const std::shared_ptr<const FrameStore>& base() const { return base_; }

  /// Adds a triple of term ids; returns false if it was already present
  /// (in the delta or in the base — the delta stays disjoint from the
  /// base, so merged reads never see duplicates).
  bool Add(const Triple& t);

  /// Interns the terms and adds the triple.
  bool AddTerms(const Term& s, const Term& p, const Term& o);

  bool Contains(const Triple& t) const;

  size_t size() const;

  /// Takes (or reuses) the current immutable snapshot, merging any
  /// pending writes first. Queries run against the returned view
  /// lock-free while writers continue appending. For a hybrid store
  /// this covers the DELTA only — use SnapshotSource() for the merged
  /// base+delta view.
  std::shared_ptr<const StoreSnapshot> Snapshot() const;

  // TripleSource: scans open against the current snapshot (merged with
  // the base for hybrid stores); iterators keep their views alive.
  std::unique_ptr<ScanIterator> NewScan(
      const TriplePattern& pattern) const override;
  size_t EstimateCount(const TriplePattern& pattern) const override;
  std::shared_ptr<const TripleSource> SnapshotSource() const override;

  /// Invokes `fn` for each triple matching the pattern, in the chosen
  /// index's order. Return false from fn to stop early. (Thin
  /// compatibility wrapper over NewScan.)
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// All matches of a pattern, materialized.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Number of matches (uses index ranges; cheap for bound prefixes).
  size_t CountMatches(const TriplePattern& pattern) const;

  /// Distinct objects for (s, p, *) — convenience for attribute lookup.
  std::vector<TermId> Objects(TermId s, TermId p) const;

  /// Distinct subjects for (*, p, o).
  std::vector<TermId> Subjects(TermId p, TermId o) const;

  /// First object for (s, p, *), or kInvalidTermId.
  TermId FirstObject(TermId s, TermId p) const;

  /// Forces pending writes into the snapshot now (e.g. before timing
  /// reads).
  void EnsureIndexed() const { Snapshot(); }

  /// Naive full-scan matcher, used as the ablation baseline in E10 and
  /// as the model for property tests.
  std::vector<Triple> MatchFullScan(const TriplePattern& pattern) const;

 private:
  std::shared_ptr<const FrameStore> base_;
  Dictionary dict_;

  mutable std::mutex mu_;  ///< guards set_, pending_, snapshot_
  std::unordered_set<Triple, TripleHash> set_;
  mutable std::vector<Triple> pending_;
  mutable std::shared_ptr<const StoreSnapshot> snapshot_;
};

}  // namespace rdf
}  // namespace kb

#endif  // KBFORGE_RDF_TRIPLE_STORE_H_
