#include "reasoning/consistency.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "reasoning/factor_graph.h"

namespace kb {
namespace reasoning {

using corpus::GetRelationInfo;
using corpus::Relation;
using extraction::ExtractedFact;

namespace {

double HypothesisWeight(const ExtractedFact& fact, int support,
                        bool support_weighting) {
  double weight = fact.confidence;
  if (support_weighting) {
    weight *= 1.0 + std::log(static_cast<double>(support));
  }
  return weight;
}

/// Grounds the ontology constraints into pairwise conflicts between
/// hypothesis indexes.
std::vector<std::pair<size_t, size_t>> GroundConflicts(
    const std::vector<ExtractedFact>& hypotheses,
    const ConsistencyOptions& options) {
  std::vector<std::pair<size_t, size_t>> conflicts;
  std::map<std::pair<uint32_t, int>, std::vector<size_t>> by_subject;
  std::map<std::pair<uint32_t, int>, std::vector<size_t>> by_object;
  for (size_t i = 0; i < hypotheses.size(); ++i) {
    const ExtractedFact& f = hypotheses[i];
    by_subject[{f.subject, static_cast<int>(f.relation)}].push_back(i);
    if (!GetRelationInfo(f.relation).literal_object) {
      by_object[{f.object, static_cast<int>(f.relation)}].push_back(i);
    }
  }
  if (options.functionality) {
    for (const auto& [key, group] : by_subject) {
      Relation relation = static_cast<Relation>(key.second);
      if (!GetRelationInfo(relation).functional) continue;
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j) {
          const ExtractedFact& a = hypotheses[group[i]];
          const ExtractedFact& b = hypotheses[group[j]];
          bool same_value = GetRelationInfo(relation).literal_object
                                ? a.literal_year == b.literal_year
                                : a.object == b.object;
          if (!same_value) conflicts.emplace_back(group[i], group[j]);
        }
      }
    }
  }
  if (options.inverse_functionality) {
    for (const auto& [key, group] : by_object) {
      Relation relation = static_cast<Relation>(key.second);
      if (!GetRelationInfo(relation).inverse_functional) continue;
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j) {
          if (hypotheses[group[i]].subject != hypotheses[group[j]].subject) {
            conflicts.emplace_back(group[i], group[j]);
          }
        }
      }
    }
  }
  if (options.temporal_conflicts) {
    // A city has one mayor at a time: overlapping spans of different
    // mayors for the same city conflict.
    for (const auto& [key, group] : by_object) {
      Relation relation = static_cast<Relation>(key.second);
      if (relation != Relation::kMayorOf) continue;
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j) {
          const ExtractedFact& a = hypotheses[group[i]];
          const ExtractedFact& b = hypotheses[group[j]];
          if (a.subject == b.subject) continue;
          if (a.span.valid() && b.span.valid() && a.span.Overlaps(b.span)) {
            conflicts.emplace_back(group[i], group[j]);
          }
        }
      }
    }
  }
  return conflicts;
}

}  // namespace

ConsistencyResult ReasonOverFacts(const std::vector<ExtractedFact>& facts,
                                  const ConsistencyOptions& options) {
  ConsistencyResult result;
  std::vector<int> support;
  std::vector<ExtractedFact> hypotheses =
      extraction::DeduplicateFacts(facts, &support);

  MaxSatSolver solver;
  std::vector<uint32_t> vars(hypotheses.size());
  for (size_t i = 0; i < hypotheses.size(); ++i) {
    vars[i] = solver.AddVariable();
    solver.AddSoftUnit(
        Pos(vars[i]),
        HypothesisWeight(hypotheses[i], support[i],
                         options.support_weighting));
  }
  auto conflicts = GroundConflicts(hypotheses, options);
  for (const auto& [a, b] : conflicts) {
    solver.AddHardConflict(vars[a], vars[b]);
  }
  result.num_conflicts = conflicts.size();

  MaxSatResult solved = solver.Solve(options.solver);
  for (size_t i = 0; i < hypotheses.size(); ++i) {
    if (!solved.assignment.empty() && solved.assignment[i]) {
      result.accepted.push_back(hypotheses[i]);
    } else {
      result.rejected.push_back(hypotheses[i]);
    }
  }
  return result;
}

ConsistencyResult ReasonOverFactsProbabilistic(
    const std::vector<ExtractedFact>& facts,
    const ProbabilisticOptions& options) {
  ConsistencyResult result;
  std::vector<int> support;
  std::vector<ExtractedFact> hypotheses =
      extraction::DeduplicateFacts(facts, &support);

  FactorGraph graph;
  for (size_t i = 0; i < hypotheses.size(); ++i) {
    graph.AddVariable();
    // Log-odds prior from extractor confidence, boosted by redundancy.
    double p = std::clamp(hypotheses[i].confidence, 0.05, 0.95);
    double weight = std::log(p / (1 - p)) +
                    (options.constraints.support_weighting
                         ? std::log(static_cast<double>(support[i]))
                         : 0.0);
    graph.AddUnary(static_cast<uint32_t>(i), weight);
  }
  auto conflicts = GroundConflicts(hypotheses, options.constraints);
  for (const auto& [a, b] : conflicts) {
    graph.AddMutex(static_cast<uint32_t>(a), static_cast<uint32_t>(b),
                   options.mutex_weight);
  }
  result.num_conflicts = conflicts.size();

  FactorGraph::GibbsOptions gibbs;
  gibbs.seed = options.seed;
  gibbs.burn_in = options.gibbs_burn_in;
  gibbs.samples = options.gibbs_samples;
  std::vector<double> marginals = graph.Marginals(gibbs);
  for (size_t i = 0; i < hypotheses.size(); ++i) {
    ExtractedFact f = hypotheses[i];
    f.confidence = marginals[i];  // calibrated output probability
    if (marginals[i] >= options.accept_probability) {
      result.accepted.push_back(f);
    } else {
      result.rejected.push_back(f);
    }
  }
  return result;
}

}  // namespace reasoning
}  // namespace kb
