#ifndef KBFORGE_REASONING_CONSISTENCY_H_
#define KBFORGE_REASONING_CONSISTENCY_H_

#include <vector>

#include "extraction/annotation.h"
#include "reasoning/maxsat.h"

namespace kb {
namespace reasoning {

/// Consistency-reasoning configuration (constraint families on/off for
/// the E3 ablation).
struct ConsistencyOptions {
  bool functionality = true;          ///< one object per subject
  bool inverse_functionality = true;  ///< one subject per object
  bool temporal_conflicts = true;     ///< overlapping mayorOf spans etc.
  /// Weight of a hypothesis = confidence * (1 + log(support)).
  bool support_weighting = true;
  MaxSatOptions solver;
};

/// Outcome of the consistency pass.
struct ConsistencyResult {
  std::vector<extraction::ExtractedFact> accepted;
  std::vector<extraction::ExtractedFact> rejected;
  size_t num_conflicts = 0;  ///< grounded conflict clauses
};

/// SOFIE-style consistency reasoning: every deduplicated extraction
/// hypothesis becomes a weighted boolean variable; ontology constraints
/// (functionality, inverse functionality) ground into hard conflict
/// clauses; weighted MaxSat picks the most plausible consistent world.
/// Redundant evidence (support) raises a hypothesis' weight, so the
/// majority reading survives and corrupted assertions drop out.
ConsistencyResult ReasonOverFacts(
    const std::vector<extraction::ExtractedFact>& facts,
    const ConsistencyOptions& options = ConsistencyOptions());

/// Options of the probabilistic (factor-graph) engine.
struct ProbabilisticOptions {
  ConsistencyOptions constraints;  ///< same conflict grounding
  double mutex_weight = 4.0;       ///< soft mutual-exclusion strength
  double accept_probability = 0.5;
  int gibbs_burn_in = 300;
  int gibbs_samples = 1200;
  uint64_t seed = 29;
};

/// DeepDive-style alternative: the same hypotheses and conflicts are
/// grounded into a factor graph (unary log-weights from confidence and
/// support, soft mutex factors for conflicts); Gibbs sampling yields a
/// marginal probability per fact, and facts above
/// `accept_probability` are kept. Each accepted fact's confidence is
/// replaced by its marginal — the calibrated-probability output that
/// distinguishes the DeepDive school from MaxSat's 0/1 worlds.
ConsistencyResult ReasonOverFactsProbabilistic(
    const std::vector<extraction::ExtractedFact>& facts,
    const ProbabilisticOptions& options = ProbabilisticOptions());

}  // namespace reasoning
}  // namespace kb

#endif  // KBFORGE_REASONING_CONSISTENCY_H_
