#include "reasoning/factor_graph.h"

#include <cmath>

#include "util/logging.h"

namespace kb {
namespace reasoning {

uint32_t FactorGraph::AddVariable() {
  occurs_.emplace_back();
  return static_cast<uint32_t>(num_vars_++);
}

void FactorGraph::AddUnary(uint32_t var, double weight) {
  KB_CHECK(var < num_vars_);
  occurs_[var].push_back(static_cast<uint32_t>(factors_.size()));
  factors_.push_back({FactorKind::kUnary, var, 0, weight});
}

void FactorGraph::AddMutex(uint32_t a, uint32_t b, double weight) {
  KB_CHECK(a < num_vars_ && b < num_vars_);
  occurs_[a].push_back(static_cast<uint32_t>(factors_.size()));
  occurs_[b].push_back(static_cast<uint32_t>(factors_.size()));
  factors_.push_back({FactorKind::kMutex, a, b, weight});
}

void FactorGraph::AddImply(uint32_t a, uint32_t b, double weight) {
  KB_CHECK(a < num_vars_ && b < num_vars_);
  occurs_[a].push_back(static_cast<uint32_t>(factors_.size()));
  occurs_[b].push_back(static_cast<uint32_t>(factors_.size()));
  factors_.push_back({FactorKind::kImply, a, b, weight});
}

double FactorGraph::FactorScore(const Factor& f,
                                const std::vector<bool>& x) const {
  switch (f.kind) {
    case FactorKind::kUnary:
      return x[f.a] ? f.weight : 0.0;
    case FactorKind::kMutex:
      return (x[f.a] && x[f.b]) ? 0.0 : f.weight;
    case FactorKind::kImply:
      return (!x[f.a] || x[f.b]) ? f.weight : 0.0;
  }
  return 0.0;
}

std::vector<double> FactorGraph::Marginals(const GibbsOptions& options) const {
  Rng rng(options.seed);
  std::vector<bool> x(num_vars_);
  for (size_t v = 0; v < num_vars_; ++v) x[v] = rng.Bernoulli(0.5);
  std::vector<double> true_counts(num_vars_, 0.0);

  auto conditional = [&](uint32_t var) {
    // log-odds of var=true given the rest.
    double score_true = 0, score_false = 0;
    x[var] = true;
    for (uint32_t f : occurs_[var]) score_true += FactorScore(factors_[f], x);
    x[var] = false;
    for (uint32_t f : occurs_[var]) score_false += FactorScore(factors_[f], x);
    double p = 1.0 / (1.0 + std::exp(score_false - score_true));
    return p;
  };

  for (int it = 0; it < options.burn_in + options.samples; ++it) {
    for (uint32_t v = 0; v < num_vars_; ++v) {
      double p = conditional(v);
      x[v] = rng.Bernoulli(p);
    }
    if (it >= options.burn_in) {
      for (uint32_t v = 0; v < num_vars_; ++v) {
        if (x[v]) true_counts[v] += 1.0;
      }
    }
  }
  for (double& c : true_counts) c /= std::max(1, options.samples);
  return true_counts;
}

std::vector<double> FactorGraph::ExactMarginals() const {
  KB_CHECK(num_vars_ <= 20) << "exact marginals limited to 20 variables";
  std::vector<double> numerator(num_vars_, 0.0);
  double z = 0.0;
  const uint64_t limit = 1ULL << num_vars_;
  for (uint64_t bits = 0; bits < limit; ++bits) {
    std::vector<bool> x(num_vars_);
    for (size_t v = 0; v < num_vars_; ++v) x[v] = (bits >> v) & 1;
    double score = 0;
    for (const Factor& f : factors_) score += FactorScore(f, x);
    double weight = std::exp(score);
    z += weight;
    for (size_t v = 0; v < num_vars_; ++v) {
      if (x[v]) numerator[v] += weight;
    }
  }
  for (double& n : numerator) n /= z;
  return numerator;
}

}  // namespace reasoning
}  // namespace kb
