#ifndef KBFORGE_REASONING_FACTOR_GRAPH_H_
#define KBFORGE_REASONING_FACTOR_GRAPH_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace kb {
namespace reasoning {

/// Factor kinds supported by the graph.
enum class FactorKind : uint8_t {
  kUnary = 0,       ///< weight * [x is true]
  kMutex,           ///< weight * [NOT (x AND y)] — soft mutual exclusion
  kImply,           ///< weight * [x -> y]
};

/// A DeepDive-style factor graph over boolean variables with log-
/// linear factors, marginalized by Gibbs sampling. The probabilistic
/// alternative to MaxSat consistency reasoning (tutorial §3
/// "statistical learning (e.g., factor graphs and MLN's)"): instead of
/// one consistent world it yields per-fact marginal probabilities.
class FactorGraph {
 public:
  /// Adds a variable; returns its index.
  uint32_t AddVariable();

  /// Adds a unary factor on `var` with the given log-weight.
  void AddUnary(uint32_t var, double weight);

  /// Adds a soft mutual-exclusion factor between two variables.
  void AddMutex(uint32_t a, uint32_t b, double weight);

  /// Adds a soft implication factor a -> b.
  void AddImply(uint32_t a, uint32_t b, double weight);

  size_t num_variables() const { return num_vars_; }
  size_t num_factors() const { return factors_.size(); }

  struct GibbsOptions {
    uint64_t seed = 23;
    int burn_in = 200;
    int samples = 800;
  };

  /// Runs Gibbs sampling and returns the marginal P(x=true) per
  /// variable.
  std::vector<double> Marginals(const GibbsOptions& options) const;

  /// Exact marginals by enumeration (<= 20 variables), for tests.
  std::vector<double> ExactMarginals() const;

 private:
  struct Factor {
    FactorKind kind;
    uint32_t a;
    uint32_t b;  ///< unused for kUnary
    double weight;
  };

  double FactorScore(const Factor& f, const std::vector<bool>& x) const;
  double LocalEnergyDelta(uint32_t var, std::vector<bool>* x) const;

  size_t num_vars_ = 0;
  std::vector<Factor> factors_;
  std::vector<std::vector<uint32_t>> occurs_;
};

}  // namespace reasoning
}  // namespace kb

#endif  // KBFORGE_REASONING_FACTOR_GRAPH_H_
