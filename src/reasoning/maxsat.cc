#include "reasoning/maxsat.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace kb {
namespace reasoning {

uint32_t MaxSatSolver::AddVariable() {
  return static_cast<uint32_t>(num_vars_++);
}

void MaxSatSolver::AddClause(Clause clause) {
  KB_CHECK(!clause.literals.empty()) << "empty clause";
  for (const Literal& lit : clause.literals) {
    KB_CHECK(lit.var < num_vars_) << "unknown variable";
  }
  clauses_.push_back(std::move(clause));
}

void MaxSatSolver::AddSoftUnit(Literal lit, double weight) {
  Clause c;
  c.literals = {lit};
  c.weight = weight;
  c.hard = false;
  AddClause(std::move(c));
}

void MaxSatSolver::AddHardConflict(uint32_t a, uint32_t b) {
  Clause c;
  c.literals = {Neg(a), Neg(b)};
  c.hard = true;
  AddClause(std::move(c));
}

namespace {
bool LiteralSatisfied(const Literal& lit, const std::vector<bool>& a) {
  return a[lit.var] == lit.positive;
}

bool ClauseSatisfied(const Clause& c, const std::vector<bool>& a) {
  for (const Literal& lit : c.literals) {
    if (LiteralSatisfied(lit, a)) return true;
  }
  return false;
}
}  // namespace

MaxSatResult MaxSatSolver::Solve(const MaxSatOptions& options) const {
  Rng rng(options.seed);
  MaxSatResult best;
  best.hard_satisfied = false;
  double best_score = -std::numeric_limits<double>::infinity();

  // Occurrence lists: var -> clause indices.
  std::vector<std::vector<uint32_t>> occurs(num_vars_);
  for (uint32_t c = 0; c < clauses_.size(); ++c) {
    for (const Literal& lit : clauses_[c].literals) {
      occurs[lit.var].push_back(c);
    }
  }

  for (int restart = 0; restart < options.restarts; ++restart) {
    // Initial assignment: greedy on soft unit clauses, random elsewhere.
    std::vector<double> unit_bias(num_vars_, 0.0);
    for (const Clause& c : clauses_) {
      if (c.literals.size() == 1 && !c.hard) {
        unit_bias[c.literals[0].var] +=
            c.literals[0].positive ? c.weight : -c.weight;
      }
    }
    std::vector<bool> assignment(num_vars_);
    for (size_t v = 0; v < num_vars_; ++v) {
      if (unit_bias[v] > 0) {
        assignment[v] = true;
      } else if (unit_bias[v] < 0) {
        assignment[v] = false;
      } else {
        assignment[v] = rng.Bernoulli(0.5);
      }
    }

    std::vector<bool> clause_sat(clauses_.size());
    for (uint32_t c = 0; c < clauses_.size(); ++c) {
      clause_sat[c] = ClauseSatisfied(clauses_[c], assignment);
    }

    // Records the current assignment if it beats the best seen so far
    // (WalkSAT keeps the best state visited, not the final one).
    auto consider_best = [&](const std::vector<uint32_t>& violated_hard,
                             const std::vector<uint32_t>& violated_soft) {
      double cost = 1e9 * static_cast<double>(violated_hard.size());
      for (uint32_t c : violated_soft) cost += clauses_[c].weight;
      double score = -cost;
      if (score > best_score) {
        best_score = score;
        best.assignment = assignment;
        best.hard_satisfied = violated_hard.empty();
      }
    };

    for (int flip = 0; flip < options.max_flips_per_restart; ++flip) {
      // Collect violated clauses (hard first).
      std::vector<uint32_t> violated_hard, violated_soft;
      for (uint32_t c = 0; c < clauses_.size(); ++c) {
        if (clause_sat[c]) continue;
        (clauses_[c].hard ? violated_hard : violated_soft).push_back(c);
      }
      consider_best(violated_hard, violated_soft);
      if (violated_hard.empty() && violated_soft.empty()) break;
      uint32_t target;
      if (!violated_hard.empty()) {
        target = violated_hard[rng.Uniform(violated_hard.size())];
      } else {
        target = violated_soft[rng.Uniform(violated_soft.size())];
      }
      const Clause& clause = clauses_[target];

      uint32_t flip_var;
      if (rng.Bernoulli(options.walk_probability)) {
        flip_var = clause.literals[rng.Uniform(clause.literals.size())].var;
      } else {
        // Greedy: flip the literal's var that yields the lowest cost.
        double best_delta = std::numeric_limits<double>::infinity();
        flip_var = clause.literals[0].var;
        for (const Literal& lit : clause.literals) {
          double delta = 0;
          assignment[lit.var] = !assignment[lit.var];
          for (uint32_t c : occurs[lit.var]) {
            bool now = ClauseSatisfied(clauses_[c], assignment);
            if (now != clause_sat[c]) {
              double w = clauses_[c].hard ? 1e9 : clauses_[c].weight;
              delta += now ? -w : +w;
            }
          }
          assignment[lit.var] = !assignment[lit.var];
          if (delta < best_delta) {
            best_delta = delta;
            flip_var = lit.var;
          }
        }
      }
      assignment[flip_var] = !assignment[flip_var];
      for (uint32_t c : occurs[flip_var]) {
        clause_sat[c] = ClauseSatisfied(clauses_[c], assignment);
      }
    }

    // Evaluate the final state of this restart as well.
    std::vector<uint32_t> violated_hard, violated_soft;
    for (uint32_t c = 0; c < clauses_.size(); ++c) {
      if (clause_sat[c]) continue;
      (clauses_[c].hard ? violated_hard : violated_soft).push_back(c);
    }
    consider_best(violated_hard, violated_soft);
  }

  // Fill in the weight summary for the best assignment.
  best.satisfied_soft_weight = 0;
  best.violated_soft_weight = 0;
  for (const Clause& c : clauses_) {
    if (c.hard) continue;
    if (ClauseSatisfied(c, best.assignment)) {
      best.satisfied_soft_weight += c.weight;
    } else {
      best.violated_soft_weight += c.weight;
    }
  }
  return best;
}

MaxSatResult MaxSatSolver::SolveExact() const {
  KB_CHECK(num_vars_ <= 24) << "exact solver limited to 24 variables";
  MaxSatResult best;
  double best_score = -std::numeric_limits<double>::infinity();
  const uint64_t limit = 1ULL << num_vars_;
  for (uint64_t bits = 0; bits < limit; ++bits) {
    std::vector<bool> assignment(num_vars_);
    for (size_t v = 0; v < num_vars_; ++v) {
      assignment[v] = (bits >> v) & 1;
    }
    double soft = 0;
    bool hard_ok = true;
    for (const Clause& c : clauses_) {
      bool sat = ClauseSatisfied(c, assignment);
      if (c.hard && !sat) {
        hard_ok = false;
        break;
      }
      if (!c.hard && sat) soft += c.weight;
    }
    if (!hard_ok) continue;
    if (soft > best_score) {
      best_score = soft;
      best.assignment = assignment;
      best.hard_satisfied = true;
    }
  }
  best.satisfied_soft_weight = best_score;
  best.violated_soft_weight = 0;
  for (const Clause& c : clauses_) {
    if (!c.hard && !ClauseSatisfied(c, best.assignment)) {
      best.violated_soft_weight += c.weight;
    }
  }
  return best;
}

}  // namespace reasoning
}  // namespace kb
