#ifndef KBFORGE_REASONING_MAXSAT_H_
#define KBFORGE_REASONING_MAXSAT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "util/random.h"

namespace kb {
namespace reasoning {

/// A literal: variable index with polarity.
struct Literal {
  uint32_t var = 0;
  bool positive = true;
};

inline Literal Pos(uint32_t var) { return {var, true}; }
inline Literal Neg(uint32_t var) { return {var, false}; }

/// A weighted clause (disjunction). Hard clauses must be satisfied;
/// soft clauses contribute their weight when satisfied.
struct Clause {
  std::vector<Literal> literals;
  double weight = 1.0;
  bool hard = false;
};

/// Solver tuning.
struct MaxSatOptions {
  uint64_t seed = 17;
  int restarts = 3;
  int max_flips_per_restart = 20000;
  double walk_probability = 0.2;  ///< random-walk move fraction
};

/// Result of a solve.
struct MaxSatResult {
  std::vector<bool> assignment;
  double satisfied_soft_weight = 0;
  double violated_soft_weight = 0;
  bool hard_satisfied = false;
};

/// Weighted MaxSat via unit propagation on hard clauses plus WalkSAT-
/// style stochastic local search — the solver class SOFIE popularized
/// for consistency reasoning over extraction hypotheses (tutorial §3
/// "logical consistency reasoning (e.g., weighted MaxSat ...)").
class MaxSatSolver {
 public:
  MaxSatSolver() = default;

  /// Adds a fresh boolean variable; returns its index.
  uint32_t AddVariable();

  /// Adds a clause over existing variables.
  void AddClause(Clause clause);

  /// Convenience: soft unit clause.
  void AddSoftUnit(Literal lit, double weight);

  /// Convenience: hard binary clause (¬a ∨ ¬b) forbidding both.
  void AddHardConflict(uint32_t a, uint32_t b);

  size_t num_variables() const { return num_vars_; }
  size_t num_clauses() const { return clauses_.size(); }

  /// Stochastic local search.
  MaxSatResult Solve(const MaxSatOptions& options = MaxSatOptions()) const;

  /// Exhaustive search (exact optimum). Requires <= 24 variables.
  MaxSatResult SolveExact() const;

 private:
  double EvaluateAndMark(const std::vector<bool>& assignment,
                         std::vector<bool>* clause_sat) const;

  size_t num_vars_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace reasoning
}  // namespace kb

#endif  // KBFORGE_REASONING_MAXSAT_H_
