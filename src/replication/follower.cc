#include "replication/follower.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "storage/wal.h"
#include "util/logging.h"

namespace kb {
namespace replication {

namespace {

constexpr char kPosKeyPrefix[] = "!repl.pos.";
constexpr char kEpochKey[] = "!repl.epoch";

std::string PosKey(uint32_t shard) {
  return kPosKeyPrefix + std::to_string(shard);
}

}  // namespace

StatusOr<std::unique_ptr<FollowerReplica>> FollowerReplica::Open(
    const Options& options, core::KnowledgeBase* kb,
    server::KbServer* server) {
  storage::ShardedStoreOptions store_options;
  store_options.num_shards = options.num_shards;
  store_options.store.env = options.env;
  auto store = storage::ShardedKVStore::Recover(store_options,
                                                options.data_dir);
  if (!store.ok()) return store.status();

  auto replica = std::unique_ptr<FollowerReplica>(new FollowerReplica());
  replica->options_ = options;
  replica->kb_ = kb;
  replica->server_ = server;
  replica->store_ = std::move(*store);

  // Persisted replay positions (per *leader* shard — independent of
  // this store's own shard layout). A missing key means "from the
  // beginning"; after a crash the keys may understate what the store
  // holds, which idempotent re-apply absorbs.
  Status s = replica->store_->Scan(
      Slice(kPosKeyPrefix), Slice("!repl.pos/"),  // '/' is '.' + 1
      [&](const Slice& key, const Slice& value) {
        unsigned shard = 0;
        unsigned long long gen = 0, offset = 0;
        if (::sscanf(key.ToString().c_str(), "!repl.pos.%u", &shard) == 1 &&
            ::sscanf(value.ToString().c_str(), "%llu %llu", &gen,
                     &offset) == 2) {
          if (replica->shards_.size() <= shard) {
            replica->shards_.resize(shard + 1);
          }
          replica->shards_[shard].gen = gen;
          replica->shards_[shard].parsed_offset = offset;
        }
        return true;
      });
  if (!s.ok()) return s;
  std::string epoch_value;
  if (replica->store_->Get(Slice(kEpochKey), &epoch_value).ok()) {
    replica->applied_epoch_.store(
        ::strtoull(epoch_value.c_str(), nullptr, 10),
        std::memory_order_release);
  }

  // Rebuild the KB's replicated overlay from the durable copy. The
  // base content is already in `kb`; asserts of already-present facts
  // just merge metadata.
  uint64_t rebuilt = 0;
  s = replica->store_->Scan(
      Slice(kFactKeyPrefix), Slice("f;"),
      [&](const Slice& key, const Slice& value) {
        uint64_t seq = 0;
        if (!ParseFactKey(key, &seq)) return true;
        server::WireFact fact;
        if (!DecodeFactRecord(value, &fact).ok()) return true;
        core::FactMeta meta;
        meta.confidence = fact.confidence;
        meta.support = fact.support;
        if (fact.has_year) {
          kb->AssertYearFact(fact.s, fact.p, fact.year, meta);
        } else {
          kb->AssertFact(fact.s, fact.p, fact.o, meta);
        }
        ++rebuilt;
        return true;
      });
  if (!s.ok()) return s;
  if (rebuilt > 0) {
    KB_LOG(Info) << "follower rebuilt " << rebuilt
                 << " replicated facts from local store";
  }
  return replica;
}

FollowerReplica::~FollowerReplica() { Stop(); }

Status FollowerReplica::Start() {
  if (started_) return Status::OK();
  started_ = true;
  stopping_.store(false);
  session_ = std::thread([this] { SessionLoop(); });
  return Status::OK();
}

void FollowerReplica::Stop() {
  if (!started_) return;
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  stop_cv_.notify_all();
  if (session_.joinable()) session_.join();
  started_ = false;
}

void FollowerReplica::SessionLoop() {
  while (!stopping_.load()) {
    Status s = RunSession();
    connected_.store(false, std::memory_order_release);
    if (stopping_.load()) return;
    if (!s.ok()) {
      KB_LOG(Info) << "repl session lost, reconnecting: " << s.ToString();
    }
    std::unique_lock<std::mutex> lock(mu_);
    stop_cv_.wait_for(lock,
                      std::chrono::duration<double, std::milli>(
                          options_.reconnect_backoff_ms),
                      [this] { return stopping_.load(); });
  }
}

Status FollowerReplica::RunSession() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.leader_repl_port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError("connect: " + std::string(::strerror(errno)));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_ = fd;
  }
  auto cleanup = [this, fd] {
    std::lock_guard<std::mutex> lock(mu_);
    ::close(fd);
    fd_ = -1;
  };

  Handshake handshake;
  handshake.applied_epoch = applied_epoch();
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardPosition position;
    position.shard = static_cast<uint32_t>(i);
    position.gen = shards_[i].gen;
    position.offset = shards_[i].parsed_offset;
    handshake.positions.push_back(position);
  }
  Status status = server::WriteFrame(fd, EncodeHandshake(handshake));
  std::string payload;
  if (status.ok()) status = server::ReadFrame(fd, &payload);
  Manifest manifest;
  if (status.ok()) status = DecodeManifest(Slice(payload), &manifest);
  if (!status.ok()) {
    cleanup();
    return status;
  }
  if (shards_.size() < manifest.num_shards) {
    shards_.resize(manifest.num_shards);
  }
  // Reconnect drops buffered partial tails: the leader re-ships from
  // our *parsed* offsets, so whatever was buffered arrives again.
  for (ShardState& shard : shards_) shard.buffer.clear();
  connected_.store(true, std::memory_order_release);

  while (!stopping_.load()) {
    status = server::ReadFrame(fd, &payload);
    if (!status.ok()) break;
    DataRound round;
    status = DecodeDataRound(Slice(payload), &round);
    if (!status.ok()) break;
    for (const WalChunk& chunk : round.chunks) {
      status = ApplyChunk(chunk);
      if (!status.ok()) break;
    }
    if (!status.ok()) break;
    const bool advance =
        round.complete &&
        round.epoch > applied_epoch_.load(std::memory_order_acquire);
    status = PersistPositions(advance, round.epoch);
    if (!status.ok()) break;
    if (advance) {
      // Persist-then-publish: a crash in between understates the
      // epoch, and the leader re-ships a suffix we already hold.
      applied_epoch_.store(round.epoch, std::memory_order_release);
    }
    Ack ack;
    ack.applied_epoch = applied_epoch();
    status = server::WriteFrame(fd, EncodeAck(ack));
    if (!status.ok()) break;
  }
  cleanup();
  return status;
}

Status FollowerReplica::ApplyChunk(const WalChunk& chunk) {
  if (chunk.shard >= shards_.size()) {
    return Status::InvalidArgument("chunk for unknown shard " +
                                   std::to_string(chunk.shard));
  }
  ShardState& state = shards_[chunk.shard];
  if (chunk.gen < state.gen) return Status::OK();  // stale duplicate
  if (chunk.gen > state.gen) {
    // New generation. Any unparsed tail of the previous one was a
    // record the leader itself never committed (torn by a crash, then
    // quarantined/truncated on its recovery) — drop it.
    state.gen = chunk.gen;
    state.parsed_offset = 0;
    state.buffer.clear();
  }
  const uint64_t expected = state.parsed_offset + state.buffer.size();
  if (chunk.offset > expected) {
    return Status::Internal(
        "gap in shipped wal: got offset " + std::to_string(chunk.offset) +
        ", expected " + std::to_string(expected));
  }
  if (chunk.offset < expected) {
    // Overlap (the leader restarted its session from our persisted,
    // possibly stale, positions): skip what we already buffered.
    const uint64_t skip = expected - chunk.offset;
    if (skip >= chunk.data.size()) return Status::OK();
    state.buffer.append(chunk.data, static_cast<size_t>(skip),
                        std::string::npos);
  } else {
    state.buffer.append(chunk.data);
  }

  // Parse the complete-record prefix; a partial tail stays buffered
  // until the next chunk extends it.
  uint64_t consumed = 0;
  bool corrupt = false;
  std::vector<std::pair<std::string, std::string>> records;
  Status s = storage::ParseWalChunk(
      Slice(state.buffer), &consumed,
      [&](storage::EntryType type, const Slice& key, const Slice& value) {
        if (type == storage::EntryType::kPut) {
          records.emplace_back(key.ToString(), value.ToString());
        }
      },
      nullptr, &corrupt);
  if (!s.ok()) return s;
  if (corrupt) {
    // A byte-complete record failed its checksum: these bytes are
    // damaged, not late. Fail the session; the reconnect re-fetches
    // the range from the leader's (intact) file.
    return Status::Corruption("corrupt shipped wal record in shard " +
                              std::to_string(chunk.shard) + " gen " +
                              std::to_string(chunk.gen));
  }
  for (const auto& [key, value] : records) {
    Status applied = ApplyRecord(Slice(key), Slice(value));
    if (!applied.ok()) return applied;
  }
  state.parsed_offset += consumed;
  state.buffer.erase(0, static_cast<size_t>(consumed));
  return Status::OK();
}

Status FollowerReplica::ApplyRecord(const Slice& key, const Slice& value) {
  uint64_t seq = 0;
  if (!ParseFactKey(key, &seq)) return Status::OK();  // not a fact record
  server::WireFact fact;
  Status s = DecodeFactRecord(value, &fact);
  if (!s.ok()) return s;
  // Durable copy first, KB second: a crash in between re-applies the
  // record on restart (both sides idempotent).
  s = store_->Put(key, value);
  if (!s.ok()) return s;
  auto assert_fact = [&] {
    core::FactMeta meta;
    meta.confidence = fact.confidence;
    meta.support = fact.support;
    if (fact.has_year) {
      kb_->AssertYearFact(fact.s, fact.p, fact.year, meta);
    } else {
      kb_->AssertFact(fact.s, fact.p, fact.o, meta);
    }
  };
  if (server_ != nullptr) {
    server_->WithWriteLock(assert_fact);
  } else {
    assert_fact();
  }
  applied_records_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status FollowerReplica::PersistPositions(bool with_epoch, uint64_t epoch) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardState& state = shards_[i];
    std::string value = std::to_string(state.gen) + " " +
                        std::to_string(state.parsed_offset);
    Status s = store_->Put(PosKey(static_cast<uint32_t>(i)), value);
    if (!s.ok()) return s;
  }
  if (with_epoch) {
    return store_->Put(Slice(kEpochKey), std::to_string(epoch));
  }
  return Status::OK();
}

}  // namespace replication
}  // namespace kb
