#ifndef KBFORGE_REPLICATION_FOLLOWER_H_
#define KBFORGE_REPLICATION_FOLLOWER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/knowledge_base.h"
#include "replication/repl_protocol.h"
#include "server/kb_server.h"
#include "storage/sharded_kv_store.h"
#include "util/statusor.h"

namespace kb {
namespace replication {

/// A follower replica's replication engine. It keeps three things in
/// lockstep:
///
///   - a local ShardedKVStore holding every shipped "f:<seq>" record
///     (the durable copy — a restart rebuilds from here, not from the
///     network),
///   - the in-memory KnowledgeBase the read-only KbServer serves
///     (base content built deterministically, identical to the
///     leader's; replicated facts asserted on top),
///   - per-shard replay positions + the applied epoch, persisted as
///     meta keys in the local store so a crash resumes where it left
///     off.
///
/// Positions are persisted lazily (once per applied round, unsynced):
/// after a crash they may be *behind* the truth, never ahead, and the
/// leader then re-ships a suffix the follower already holds — safe,
/// because Puts of identical records and KB asserts are idempotent.
/// The applied epoch is persisted only on complete rounds, so it,
/// too, only ever understates.
///
/// The session thread reconnects forever (jittered backoff) until
/// Stop(): a leader stall or torn connection is indistinguishable
/// from a slow network and is treated the same way.
class FollowerReplica {
 public:
  struct Options {
    int leader_repl_port = 0;  ///< the leader WalShipper's port
    std::string data_dir;
    /// Shard count for the *local* store (independent of the leader's
    /// log layout — chunks are keyed by leader shard, stored by key
    /// hash here).
    int num_shards = 4;
    double reconnect_backoff_ms = 50;
    /// Filesystem seam (nullptr = Env::Default()); the chaos suite
    /// injects a FaultInjectionEnv to crash the replica mid-replay.
    storage::Env* env = nullptr;
  };

  /// Opens (crash-recovering) the local store, replays every stored
  /// fact into `kb`, and loads persisted positions. `kb` must already
  /// hold the deterministic base content and must outlive the
  /// replica. `server`, when non-null, provides the write lock that
  /// serializes replay against in-flight reads (and should have
  /// applied_epoch_fn pointing at this replica).
  static StatusOr<std::unique_ptr<FollowerReplica>> Open(
      const Options& options, core::KnowledgeBase* kb,
      server::KbServer* server);

  ~FollowerReplica();

  FollowerReplica(const FollowerReplica&) = delete;
  FollowerReplica& operator=(const FollowerReplica&) = delete;

  /// Spawns the replication session thread.
  Status Start();
  void Stop();

  /// Leader epoch this replica provably reflects.
  uint64_t applied_epoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }
  /// Total fact records decoded and asserted (includes idempotent
  /// re-applies after a restart).
  uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_acquire);
  }
  /// True while a session is live past the handshake.
  bool connected() const { return connected_.load(std::memory_order_acquire); }

  storage::ShardedKVStore* store() { return store_.get(); }

 private:
  /// Streaming replay cursor for one shard of the leader's log.
  struct ShardState {
    uint64_t gen = 0;
    uint64_t parsed_offset = 0;  ///< record boundary inside `gen`
    std::string buffer;          ///< shipped bytes not yet parsed
  };

  FollowerReplica() = default;

  void SessionLoop();
  Status RunSession();
  Status ApplyChunk(const WalChunk& chunk);
  /// Asserts one decoded log record into the store + KB (under the
  /// server's write lock when a server is attached).
  Status ApplyRecord(const Slice& key, const Slice& value);
  Status PersistPositions(bool with_epoch, uint64_t epoch);

  Options options_;
  core::KnowledgeBase* kb_ = nullptr;
  server::KbServer* server_ = nullptr;
  std::unique_ptr<storage::ShardedKVStore> store_;
  std::vector<ShardState> shards_;

  std::atomic<uint64_t> applied_epoch_{0};
  std::atomic<uint64_t> applied_records_{0};
  std::atomic<bool> connected_{false};
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable stop_cv_;
  int fd_ = -1;  ///< live session socket (shutdown() by Stop)
  std::thread session_;
  bool started_ = false;
};

}  // namespace replication
}  // namespace kb

#endif  // KBFORGE_REPLICATION_FOLLOWER_H_
