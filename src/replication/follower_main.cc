// kbforge_follower: a read-only replica of a kbforge_serve leader.
//
// Builds the same deterministic base KB as the leader (same
// --persons/--seed), opens (or crash-recovers) its local replication
// store, replays whatever it already holds, then connects to the
// leader's WalShipper and applies shipped WAL generations
// continuously. Serves query/entity_card/health on its own port;
// insert_facts is answered with "not_leader".
//
// Usage:
//   kbforge_follower --leader-repl-port=N --data-dir=PATH
//                    [--port=N] [--workers=N] [--queue=N]
//                    [--cache-bytes=N] [--persons=N] [--seed=N]
//                    [--drain-ms=MS] [--snapshot=PATH]
//
// With --snapshot the base KB is bootstrapped by mapping a shipped
// FrameStore snapshot (the leader's --write-snapshot artifact) instead
// of re-harvesting — the follower cold-starts in milliseconds and then
// catches up from the WAL tail as usual. The snapshot must come from
// the same leader lineage so term ids line up with the shipped WAL.

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/harvester.h"
#include "core/kb_snapshot.h"
#include "replication/follower.h"
#include "server/kb_server.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

bool FlagValue(const char* arg, const char* name, long* out) {
  size_t len = ::strlen(name);
  if (::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = ::strtol(arg + len + 1, nullptr, 10);
  return true;
}

bool FlagString(const char* arg, const char* name, std::string* out) {
  size_t len = ::strlen(name);
  if (::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kb;

  // Workers must exceed a fronting router's workers + 1: the router
  // parks one cached data connection per worker plus one persistent
  // health connection on every backend (DESIGN.md §5d).
  long port = 7481, workers = 8, queue = 16, cache_bytes = 8 << 20;
  long persons = 400, seed = 4242, drain_ms = 2000;
  long leader_repl_port = -1;
  std::string data_dir, snapshot_path;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (FlagValue(argv[i], "--port", &v)) port = v;
    else if (FlagValue(argv[i], "--workers", &v)) workers = v;
    else if (FlagValue(argv[i], "--queue", &v)) queue = v;
    else if (FlagValue(argv[i], "--cache-bytes", &v)) cache_bytes = v;
    else if (FlagValue(argv[i], "--persons", &v)) persons = v;
    else if (FlagValue(argv[i], "--seed", &v)) seed = v;
    else if (FlagValue(argv[i], "--drain-ms", &v)) drain_ms = v;
    else if (FlagValue(argv[i], "--leader-repl-port", &v)) {
      leader_repl_port = v;
    } else if (FlagString(argv[i], "--data-dir", &data_dir)) {
    } else if (FlagString(argv[i], "--snapshot", &snapshot_path)) {
    } else {
      ::fprintf(stderr,
                "usage: %s --leader-repl-port=N --data-dir=PATH [--port=N] "
                "[--workers=N] [--queue=N] [--cache-bytes=N] [--persons=N] "
                "[--seed=N] [--drain-ms=MS] [--snapshot=PATH]\n",
                argv[0]);
      return 2;
    }
  }
  if (leader_repl_port < 0 || data_dir.empty()) {
    ::fprintf(stderr,
              "--leader-repl-port and --data-dir are required\n");
    return 2;
  }

  if (::pipe(g_signal_pipe) != 0) {
    ::fprintf(stderr, "pipe failed\n");
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = OnSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  // The base KB must match the leader's — either mapped from the
  // leader's shipped snapshot artifact, or re-derived byte for byte
  // with the same seeds — so replication only has to ship the delta.
  core::HarvestResult result;
  if (!snapshot_path.empty()) {
    auto snap = core::OpenKbSnapshot(nullptr, snapshot_path);
    if (!snap.ok()) {
      ::fprintf(stderr, "snapshot open failed: %s\n",
                snap.status().ToString().c_str());
      return 1;
    }
    result.kb = std::move(*core::KnowledgeBase::FromSnapshot(std::move(*snap)));
    ::printf("base KB (snapshot %s): %zu triples, %zu entities\n",
             snapshot_path.c_str(), result.kb.NumTriples(),
             result.kb.NumEntities());
  } else {
    corpus::WorldOptions world_options;
    world_options.seed = static_cast<uint64_t>(seed);
    world_options.num_persons = static_cast<size_t>(persons);
    corpus::CorpusOptions corpus_options;
    corpus_options.seed = static_cast<uint64_t>(seed) + 1;
    corpus::Corpus corpus = corpus::BuildCorpus(world_options, corpus_options);
    core::Harvester harvester;
    result = harvester.Harvest(corpus);
    ::printf("base KB: %zu triples, %zu entities\n", result.kb.NumTriples(),
             result.kb.NumEntities());
  }

  std::unique_ptr<replication::FollowerReplica> replica;
  server::KbServer::Options options;
  options.port = static_cast<int>(port);
  options.num_workers = static_cast<int>(workers);
  options.queue_depth = static_cast<size_t>(queue);
  options.cache_bytes = static_cast<size_t>(cache_bytes);
  options.read_only = true;
  options.applied_epoch_fn = [&replica]() -> uint64_t {
    return replica != nullptr ? replica->applied_epoch() : 0;
  };
  server::KbServer server(&result.kb, options);

  replication::FollowerReplica::Options replica_options;
  replica_options.leader_repl_port = static_cast<int>(leader_repl_port);
  replica_options.data_dir = data_dir;
  auto opened = replication::FollowerReplica::Open(replica_options,
                                                   &result.kb, &server);
  if (!opened.ok()) {
    ::fprintf(stderr, "replica open failed: %s\n",
              opened.status().ToString().c_str());
    return 1;
  }
  replica = std::move(*opened);

  Status status = server.Start();
  if (!status.ok()) {
    ::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  status = replica->Start();
  if (!status.ok()) {
    ::fprintf(stderr, "replication start failed: %s\n",
              status.ToString().c_str());
    return 1;
  }
  ::printf("follower listening on 127.0.0.1:%d (leader repl port %ld)\n",
           server.port(), leader_repl_port);
  ::fflush(stdout);

  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  ::printf("draining\n");
  ::fflush(stdout);
  replica->Stop();
  server.Drain(static_cast<double>(drain_ms));
  ::printf("stopped at applied epoch %llu\n",
           static_cast<unsigned long long>(replica->applied_epoch()));
  return 0;
}
