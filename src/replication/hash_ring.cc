#include "replication/hash_ring.h"

#include "util/hash.h"

namespace kb {
namespace replication {

HashRing::HashRing(int virtual_nodes)
    : virtual_nodes_(virtual_nodes > 0 ? virtual_nodes : 1) {}

void HashRing::Add(const std::string& node) {
  if (Contains(node)) return;
  for (int i = 0; i < virtual_nodes_; ++i) {
    std::string vnode = node + "#" + std::to_string(i);
    ring_.emplace(Hash64(vnode.data(), vnode.size()), node);
  }
  ++nodes_;
}

void HashRing::Remove(const std::string& node) {
  if (!Contains(node)) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  --nodes_;
}

bool HashRing::Contains(const std::string& node) const {
  for (const auto& [point, owner] : ring_) {
    if (owner == node) return true;
  }
  return false;
}

std::string HashRing::NodeFor(const std::string& key) const {
  if (ring_.empty()) return std::string();
  uint64_t point = Hash64(key.data(), key.size());
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<std::string> HashRing::OrderFor(const std::string& key,
                                            size_t n) const {
  std::vector<std::string> order;
  if (ring_.empty() || n == 0) return order;
  uint64_t point = Hash64(key.data(), key.size());
  auto it = ring_.lower_bound(point);
  for (size_t steps = 0; steps < ring_.size() && order.size() < n; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    bool seen = false;
    for (const std::string& node : order) {
      if (node == it->second) {
        seen = true;
        break;
      }
    }
    if (!seen) order.push_back(it->second);
    ++it;
  }
  return order;
}

}  // namespace replication
}  // namespace kb
