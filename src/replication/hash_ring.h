#ifndef KBFORGE_REPLICATION_HASH_RING_H_
#define KBFORGE_REPLICATION_HASH_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kb {
namespace replication {

/// Consistent-hash ring over named nodes, with virtual nodes for
/// smoothness. Used by the Router to pin a query's cache-affinity
/// replica: the same query text keeps landing on the same replica
/// (warming exactly one result cache), and when a replica is ejected
/// only its arc moves — the rest of the keyspace keeps its affinity,
/// unlike modulo hashing where one departure reshuffles everything.
///
/// Not thread-safe; the Router guards it with its own lock.
class HashRing {
 public:
  explicit HashRing(int virtual_nodes = 64);

  void Add(const std::string& node);
  void Remove(const std::string& node);
  bool Contains(const std::string& node) const;
  size_t size() const { return nodes_; }
  bool empty() const { return nodes_ == 0; }

  /// The node owning `key`'s point on the ring; empty if no nodes.
  std::string NodeFor(const std::string& key) const;

  /// Up to `n` *distinct* nodes in ring order starting at `key`'s
  /// point — the failover order: primary first, then the nodes that
  /// would inherit its arc.
  std::vector<std::string> OrderFor(const std::string& key, size_t n) const;

 private:
  int virtual_nodes_;
  size_t nodes_ = 0;
  std::map<uint64_t, std::string> ring_;  ///< point -> node
};

}  // namespace replication
}  // namespace kb

#endif  // KBFORGE_REPLICATION_HASH_RING_H_
