#include "replication/repl_log.h"

#include <utility>

#include "replication/repl_protocol.h"
#include "util/slice.h"
#include "util/status.h"

namespace kb {
namespace replication {

StatusOr<std::unique_ptr<ReplicationLog>> ReplicationLog::Open(
    const Options& options, const std::string& path) {
  storage::ShardedStoreOptions store_options;
  store_options.num_shards = options.num_shards;
  store_options.store.retain_wals = true;
  store_options.store.memtable_flush_bytes = options.memtable_bytes;
  store_options.store.env = options.env;
  auto store = storage::ShardedKVStore::Recover(store_options, path);
  if (!store.ok()) return store.status();

  auto log = std::unique_ptr<ReplicationLog>(new ReplicationLog());
  log->store_ = std::move(*store);
  // Resume the sequence after the largest persisted fact key. The scan
  // is globally key-ordered, and fixed-width keys make key order equal
  // append order.
  uint64_t max_seq = 0;
  bool any = false;
  Status s = log->store_->Scan(
      Slice(kFactKeyPrefix), Slice("f;"),  // ';' is ':' + 1
      [&](const Slice& key, const Slice&) {
        uint64_t seq = 0;
        if (ParseFactKey(key, &seq)) {
          max_seq = seq;
          any = true;
        }
        return true;
      });
  if (!s.ok()) return s;
  log->next_seq_ = any ? max_seq + 1 : 0;
  return log;
}

Status ReplicationLog::Append(const std::vector<server::WireFact>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const server::WireFact& fact : batch) {
    Status s = store_->Put(FactKey(next_seq_), EncodeFactRecord(fact));
    if (!s.ok()) return s;
    ++next_seq_;
  }
  return Status::OK();
}

uint64_t ReplicationLog::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

}  // namespace replication
}  // namespace kb
