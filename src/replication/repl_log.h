#ifndef KBFORGE_REPLICATION_REPL_LOG_H_
#define KBFORGE_REPLICATION_REPL_LOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/wire_fact.h"
#include "storage/sharded_kv_store.h"
#include "util/statusor.h"

namespace kb {
namespace replication {

/// The leader's replication log: a ShardedKVStore opened with
/// retain_wals, holding one "f:<seq>" record per accepted fact. The
/// store's numbered WAL generations *are* the log a WalShipper
/// streams — no separate log format, no snapshot: a brand-new follower
/// simply starts every shard at (gen of the oldest retained WAL, 0)
/// and replays forward, because retained generations are
/// prefix-closed (PR-4 never deletes a retained generation and flush
/// order matches append order).
///
/// Append() is called from KbServer's pre-insert hook, under the
/// server's exclusive KB lock and *before* the KB asserts — so by the
/// time any epoch E is observable, every write counted by E is already
/// fsynced here (sync_wal stays on).
class ReplicationLog {
 public:
  struct Options {
    int num_shards = 4;
    /// Memtable budget per shard; small by default so generations roll
    /// frequently enough to exercise multi-generation catch-up.
    size_t memtable_bytes = 1u << 20;
    /// Filesystem seam (nullptr = Env::Default()); chaos tests inject
    /// a FaultInjectionEnv here.
    storage::Env* env = nullptr;
  };

  /// Opens (or crash-recovers) the log at directory `path`. The next
  /// fact sequence resumes after the largest persisted key.
  static StatusOr<std::unique_ptr<ReplicationLog>> Open(
      const Options& options, const std::string& path);

  /// Durably appends the batch; the KbServer hook contract (log fully
  /// ahead of the KB) holds because Put group-commits + fsyncs.
  Status Append(const std::vector<server::WireFact>& batch);

  storage::ShardedKVStore* store() { return store_.get(); }
  uint64_t next_seq() const;

 private:
  ReplicationLog() = default;

  std::unique_ptr<storage::ShardedKVStore> store_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 0;
};

}  // namespace replication
}  // namespace kb

#endif  // KBFORGE_REPLICATION_REPL_LOG_H_
