#include "replication/repl_protocol.h"

#include <cstdio>
#include <cstring>

#include "util/varint.h"

namespace kb {
namespace replication {

namespace {

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated repl message: ") +
                                 what);
}

bool CheckTag(Slice* payload, char tag) {
  if (payload->empty() || (*payload)[0] != tag) return false;
  payload->remove_prefix(1);
  return true;
}

void PutLengthPrefixed(std::string* dst, const std::string& s) {
  PutVarint64(dst, s.size());
  dst->append(s);
}

bool GetLengthPrefixed(Slice* input, Slice* out) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len) || input->size() < len) return false;
  *out = Slice(input->data(), static_cast<size_t>(len));
  input->remove_prefix(static_cast<size_t>(len));
  return true;
}

}  // namespace

std::string EncodeHandshake(const Handshake& handshake) {
  std::string out(1, kTagHandshake);
  PutVarint64(&out, handshake.applied_epoch);
  PutVarint32(&out, static_cast<uint32_t>(handshake.positions.size()));
  for (const ShardPosition& position : handshake.positions) {
    PutVarint32(&out, position.shard);
    PutVarint64(&out, position.gen);
    PutVarint64(&out, position.offset);
  }
  return out;
}

Status DecodeHandshake(const Slice& payload, Handshake* handshake) {
  Slice input = payload;
  if (!CheckTag(&input, kTagHandshake)) return Truncated("handshake tag");
  uint32_t count = 0;
  if (!GetVarint64(&input, &handshake->applied_epoch) ||
      !GetVarint32(&input, &count)) {
    return Truncated("handshake header");
  }
  handshake->positions.clear();
  handshake->positions.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ShardPosition position;
    if (!GetVarint32(&input, &position.shard) ||
        !GetVarint64(&input, &position.gen) ||
        !GetVarint64(&input, &position.offset)) {
      return Truncated("handshake position");
    }
    handshake->positions.push_back(position);
  }
  return Status::OK();
}

std::string EncodeManifest(const Manifest& manifest) {
  std::string out(1, kTagManifest);
  PutVarint32(&out, manifest.num_shards);
  PutVarint64(&out, manifest.leader_epoch);
  return out;
}

Status DecodeManifest(const Slice& payload, Manifest* manifest) {
  Slice input = payload;
  if (!CheckTag(&input, kTagManifest)) return Truncated("manifest tag");
  if (!GetVarint32(&input, &manifest->num_shards) ||
      !GetVarint64(&input, &manifest->leader_epoch)) {
    return Truncated("manifest body");
  }
  return Status::OK();
}

std::string EncodeDataRound(const DataRound& round) {
  std::string out(1, kTagDataRound);
  PutVarint64(&out, round.epoch);
  out.push_back(round.complete ? 1 : 0);
  PutVarint32(&out, static_cast<uint32_t>(round.chunks.size()));
  for (const WalChunk& chunk : round.chunks) {
    PutVarint32(&out, chunk.shard);
    PutVarint64(&out, chunk.gen);
    PutVarint64(&out, chunk.offset);
    PutLengthPrefixed(&out, chunk.data);
  }
  return out;
}

Status DecodeDataRound(const Slice& payload, DataRound* round) {
  Slice input = payload;
  if (!CheckTag(&input, kTagDataRound)) return Truncated("data tag");
  if (!GetVarint64(&input, &round->epoch)) return Truncated("data epoch");
  if (input.empty()) return Truncated("data complete flag");
  round->complete = input[0] != 0;
  input.remove_prefix(1);
  uint32_t count = 0;
  if (!GetVarint32(&input, &count)) return Truncated("data chunk count");
  round->chunks.clear();
  round->chunks.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WalChunk chunk;
    Slice data;
    if (!GetVarint32(&input, &chunk.shard) ||
        !GetVarint64(&input, &chunk.gen) ||
        !GetVarint64(&input, &chunk.offset) ||
        !GetLengthPrefixed(&input, &data)) {
      return Truncated("data chunk");
    }
    chunk.data.assign(data.data(), data.size());
    round->chunks.push_back(std::move(chunk));
  }
  return Status::OK();
}

std::string EncodeAck(const Ack& ack) {
  std::string out(1, kTagAck);
  PutVarint64(&out, ack.applied_epoch);
  return out;
}

Status DecodeAck(const Slice& payload, Ack* ack) {
  Slice input = payload;
  if (!CheckTag(&input, kTagAck)) return Truncated("ack tag");
  if (!GetVarint64(&input, &ack->applied_epoch)) return Truncated("ack body");
  return Status::OK();
}

std::string FactKey(uint64_t seq) {
  char buf[32];
  ::snprintf(buf, sizeof(buf), "%s%020llu", kFactKeyPrefix,
             static_cast<unsigned long long>(seq));
  return std::string(buf);
}

bool ParseFactKey(const Slice& key, uint64_t* seq) {
  const size_t prefix = sizeof(kFactKeyPrefix) - 1;
  if (key.size() != prefix + 20 ||
      ::memcmp(key.data(), kFactKeyPrefix, prefix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix; i < key.size(); ++i) {
    char c = key[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

std::string EncodeFactRecord(const server::WireFact& fact) {
  std::string out;
  PutLengthPrefixed(&out, fact.s);
  PutLengthPrefixed(&out, fact.p);
  out.push_back(fact.has_year ? 1 : 0);
  if (fact.has_year) {
    PutFixed32(&out, static_cast<uint32_t>(fact.year));
  } else {
    PutLengthPrefixed(&out, fact.o);
  }
  uint64_t confidence_bits = 0;
  static_assert(sizeof(confidence_bits) == sizeof(fact.confidence));
  ::memcpy(&confidence_bits, &fact.confidence, sizeof(confidence_bits));
  PutFixed64(&out, confidence_bits);
  PutVarint32(&out, fact.support);
  return out;
}

Status DecodeFactRecord(const Slice& value, server::WireFact* fact) {
  Slice input = value;
  Slice s, p;
  if (!GetLengthPrefixed(&input, &s) || !GetLengthPrefixed(&input, &p)) {
    return Truncated("fact s/p");
  }
  fact->s.assign(s.data(), s.size());
  fact->p.assign(p.data(), p.size());
  if (input.empty()) return Truncated("fact year flag");
  fact->has_year = input[0] != 0;
  input.remove_prefix(1);
  if (fact->has_year) {
    uint32_t year = 0;
    if (!GetFixed32(&input, &year)) return Truncated("fact year");
    fact->year = static_cast<int32_t>(year);
    fact->o.clear();
  } else {
    Slice o;
    if (!GetLengthPrefixed(&input, &o)) return Truncated("fact o");
    fact->o.assign(o.data(), o.size());
    fact->year = 0;
  }
  uint64_t confidence_bits = 0;
  if (!GetFixed64(&input, &confidence_bits) ||
      !GetVarint32(&input, &fact->support)) {
    return Truncated("fact meta");
  }
  ::memcpy(&fact->confidence, &confidence_bits, sizeof(fact->confidence));
  return Status::OK();
}

}  // namespace replication
}  // namespace kb
