#ifndef KBFORGE_REPLICATION_REPL_PROTOCOL_H_
#define KBFORGE_REPLICATION_REPL_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/wire_fact.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/statusor.h"

namespace kb {
namespace replication {

/// Wire messages for WAL shipping. Every message rides inside one
/// length-prefixed frame (server/protocol.h — the framing does not
/// care that the payload is binary, not JSON) and starts with a
/// one-byte tag. The session script is:
///
///   follower -> leader   Handshake   (positions it already has)
///   leader  -> follower  Manifest    (shard count sanity check)
///   leader  -> follower  DataRound*  (epoch, raw WAL byte ranges)
///   follower -> leader   Ack*        (applied epoch, for lag metrics)
///
/// A DataRound with complete=true means: "a follower that has applied
/// every byte shipped so far holds every write up to `epoch`" — the
/// epoch was sampled *before* the leader read the WAL tails, and the
/// pre-insert hook appends to the log before the KB asserts, so the
/// log at sampling time already contained every write the epoch
/// counts. Followers advance their applied epoch only on complete
/// rounds.

inline constexpr char kTagHandshake = 'H';
inline constexpr char kTagManifest = 'M';
inline constexpr char kTagDataRound = 'D';
inline constexpr char kTagAck = 'A';

/// Where a follower stands in one shard's numbered WAL sequence:
/// everything before generation `gen` is fully applied, plus `offset`
/// bytes (a record boundary) of `gen` itself.
struct ShardPosition {
  uint32_t shard = 0;
  uint64_t gen = 0;
  uint64_t offset = 0;
};

struct Handshake {
  uint64_t applied_epoch = 0;
  std::vector<ShardPosition> positions;
};

struct Manifest {
  uint32_t num_shards = 0;
  uint64_t leader_epoch = 0;
};

/// One raw byte range of one shard's WAL generation. `offset` is where
/// the range starts inside the generation file; ranges for a given
/// (shard, gen) are shipped contiguously, but a range may end
/// mid-record — the receiver buffers the torn tail until the next
/// round extends it.
struct WalChunk {
  uint32_t shard = 0;
  uint64_t gen = 0;
  uint64_t offset = 0;
  std::string data;
};

struct DataRound {
  uint64_t epoch = 0;
  bool complete = false;  ///< follower now holds every write <= epoch
  std::vector<WalChunk> chunks;
};

struct Ack {
  uint64_t applied_epoch = 0;
};

std::string EncodeHandshake(const Handshake& handshake);
std::string EncodeManifest(const Manifest& manifest);
std::string EncodeDataRound(const DataRound& round);
std::string EncodeAck(const Ack& ack);

/// Decoders check the tag byte and every length; a short or mangled
/// payload is InvalidArgument (the session is torn down, the follower
/// reconnects and re-handshakes).
Status DecodeHandshake(const Slice& payload, Handshake* handshake);
Status DecodeManifest(const Slice& payload, Manifest* manifest);
Status DecodeDataRound(const Slice& payload, DataRound* round);
Status DecodeAck(const Slice& payload, Ack* ack);

/// Replicated facts live in the log store under "f:<seq>" with a
/// fixed-width decimal sequence so lexicographic key order is append
/// order and a follower rebuild is one range scan.
inline constexpr char kFactKeyPrefix[] = "f:";
std::string FactKey(uint64_t seq);
/// Inverse of FactKey; false when `key` is not a fact key.
bool ParseFactKey(const Slice& key, uint64_t* seq);

/// Compact binary codec for the fact payload itself.
std::string EncodeFactRecord(const server::WireFact& fact);
Status DecodeFactRecord(const Slice& value, server::WireFact* fact);

}  // namespace replication
}  // namespace kb

#endif  // KBFORGE_REPLICATION_REPL_PROTOCOL_H_
