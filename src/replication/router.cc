#include "replication/router.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <utility>

#include "server/kb_client.h"
#include "server/protocol.h"
#include "util/logging.h"

namespace kb {
namespace replication {

namespace {

std::string ErrorJson(const std::string& error, const std::string& message) {
  server::Json response = server::Json::Object();
  response.Set("status", server::Json::Str("error"));
  response.Set("error", server::Json::Str(error));
  response.Set("message", server::Json::Str(message));
  return response.Dump();
}

std::string OverloadedJson(int retry_after_ms) {
  server::Json response = server::Json::Object();
  response.Set("status", server::Json::Str("overloaded"));
  response.Set("error", server::Json::Str("overloaded"));
  response.Set("retry_after_ms", server::Json::Number(retry_after_ms));
  return response.Dump();
}

}  // namespace

struct Router::Metrics {
  Counter& requests;
  Counter& rejected;
  Counter& errors;
  Counter& failovers;    ///< forwarding attempts that moved on
  Counter& ejections;    ///< replicas removed from the ring
  Counter& readmissions; ///< ejected replicas restored by a probe
  Counter& stale_skips;  ///< replicas skipped for lagging min_epoch

  static Metrics* Get() {
    static Metrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      return new Metrics{
          r.counter("router.requests"),    r.counter("router.rejected"),
          r.counter("router.errors"),      r.counter("router.failovers"),
          r.counter("router.ejections"),   r.counter("router.readmissions"),
          r.counter("router.stale_skips"),
      };
    }();
    return m;
  }
};

Router::Router(const Options& options)
    : options_(options),
      metrics_(Metrics::Get()),
      ring_(options.virtual_nodes),
      failover_policy_(options.failover) {
  Backend leader;
  leader.name = "leader";
  leader.port = options_.leader_port;
  leader.is_leader = true;
  backends_.push_back(leader);
  for (int port : options_.replica_ports) {
    Backend replica;
    replica.name = "replica:" + std::to_string(port);
    replica.port = port;
    backends_.push_back(replica);
    ring_.Add(replica.name);  // innocent until health proves otherwise
  }
}

Router::~Router() { Stop(); }

Status Router::Start() {
  server::EventServerOptions ev;
  ev.port = options_.port;
  ev.io_threads = options_.io_threads;
  ev.backlog = options_.backlog;
  size_t workers =
      static_cast<size_t>(options_.num_workers > 0 ? options_.num_workers : 1);
  ev.max_connections = options_.max_connections > 0
                           ? options_.max_connections
                           : workers + options_.queue_depth;
  ev.idle_timeout_ms = options_.idle_timeout_ms;
  ev.max_pipeline = options_.max_pipeline;
  ev.open_connections =
      &MetricsRegistry::Default().gauge("router.open_connections");
  ev.sheds = &metrics_->rejected;

  server::EventHooks hooks;
  hooks.on_frame = [this](const server::ConnRef& conn, uint64_t seq,
                          std::string payload) {
    OnFrame(conn, seq, std::move(payload));
  };
  hooks.bad_frame_response = [this](const std::string& message) {
    metrics_->errors.Increment();
    return ErrorJson("bad_frame", message);
  };
  hooks.shed_response = OverloadedJson(options_.retry_after_ms);

  event_server_ =
      std::make_unique<server::EventServer>(ev, std::move(hooks));
  Status s = event_server_->Start();
  if (!s.ok()) {
    event_server_.reset();
    return s;
  }
  port_ = event_server_->port();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  health_ = std::thread([this] { HealthLoop(); });
  int workers_n = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(static_cast<size_t>(workers_n));
  for (int i = 0; i < workers_n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Router::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      stopping_ = true;
      return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  health_cv_.notify_all();
  // I/O threads first: any in-flight worker Complete() after this is
  // dropped at the loop's post gate.
  if (event_server_) event_server_->Stop();
  if (health_.joinable()) health_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  reqs_.clear();
}

std::vector<std::string> Router::healthy_replicas() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<std::string> names;
  for (const Backend& backend : backends_) {
    if (!backend.is_leader && backend.healthy) names.push_back(backend.name);
  }
  return names;
}

void Router::OnFrame(const server::ConnRef& conn, uint64_t seq,
                     std::string payload) {
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && reqs_.size() < options_.queue_depth) {
      reqs_.push_back(PendingRequest{conn, seq, std::move(payload)});
      admitted = true;
    }
  }
  if (admitted) {
    work_cv_.notify_one();
    return;
  }
  metrics_->rejected.Increment();
  conn->Complete(seq, OverloadedJson(options_.retry_after_ms),
                 /*close_after=*/true);
}

void Router::WorkerLoop() {
  for (;;) {
    PendingRequest work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !reqs_.empty(); });
      if (stopping_) return;
      work = std::move(reqs_.front());
      reqs_.pop_front();
    }
    std::string response;
    RouteRequest(work.payload, &response);
    work.conn->Complete(work.seq, std::move(response));
  }
}

void Router::RouteRequest(const std::string& payload, std::string* response) {
  metrics_->requests.Increment();
  auto request = server::Json::Parse(payload);
  if (!request.ok()) {
    metrics_->errors.Increment();
    *response = ErrorJson("bad_request", request.status().message());
    return;
  }
  const std::string op = request->GetString("op");

  if (op == "health") {
    server::Json body = server::Json::Object();
    body.Set("status", server::Json::Str("ok"));
    body.Set("healthy", server::Json::Bool(true));
    body.Set("role", server::Json::Str("router"));
    server::Json list = server::Json::Array();
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (const Backend& backend : backends_) {
        server::Json b = server::Json::Object();
        b.Set("name", server::Json::Str(backend.name));
        b.Set("port", server::Json::Number(backend.port));
        b.Set("healthy", server::Json::Bool(backend.healthy));
        b.Set("applied_epoch",
              server::Json::Number(
                  static_cast<double>(backend.applied_epoch)));
        list.Append(std::move(b));
      }
    }
    body.Set("backends", std::move(list));
    *response = body.Dump();
    return;
  }
  if (op == "metrics") {
    server::Json body = server::Json::Object();
    body.Set("status", server::Json::Str("ok"));
    body.Set("text", server::Json::Str(
                         MetricsRegistry::Default().Snapshot().ToText()));
    *response = body.Dump();
    return;
  }

  const bool is_read = op == "query" || op == "entity_card";
  uint64_t min_epoch = 0;
  if ((*request)["min_epoch"].is_number()) {
    min_epoch = static_cast<uint64_t>((*request)["min_epoch"].as_number());
  }
  const std::string key =
      op == "query" ? request->GetString("sparql")
                    : request->GetString("entity");

  // The ring walk is recomputed on every retry attempt, so a backoff
  // sleep gives the health thread time to eject the dead backend and
  // the next attempt routes around it — how an in-flight query
  // survives the replica serving it being killed.
  Status final = failover_policy_.Run(
      [&]() -> Status {
        std::vector<int> order;
        if (is_read) {
          order = ReadOrder(key, min_epoch);
        } else {
          order.push_back(options_.leader_port);
        }
        Status last = Status::Unavailable("no live backend");
        bool first = true;
        for (int port : order) {
          Status s = ForwardOnce(port, *request, response);
          if (s.ok()) return s;
          last = s;
          if (!first || order.size() == 1) metrics_->failovers.Increment();
          first = false;
        }
        return last;
      },
      [](const Status& s) {
        return s.IsUnavailable() || s.IsIOError() || s.IsConnectionClosed();
      });
  if (!final.ok()) {
    metrics_->errors.Increment();
    *response = ErrorJson("unavailable",
                          "no backend could serve the request: " +
                              final.message());
  }
}

std::vector<int> Router::ReadOrder(const std::string& key,
                                   uint64_t min_epoch) {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<int> order;
  for (const std::string& name : ring_.OrderFor(key, ring_.size())) {
    for (const Backend& backend : backends_) {
      if (backend.name != name) continue;
      if (min_epoch > 0 && backend.applied_epoch < min_epoch) {
        // Known to lag the client's own writes; it would answer
        // stale_replica anyway, so don't waste the round trip.
        metrics_->stale_skips.Increment();
        break;
      }
      order.push_back(backend.port);
      break;
    }
  }
  order.push_back(options_.leader_port);  // the leader is never stale
  return order;
}

Status Router::ForwardOnce(int port, const server::Json& request,
                           std::string* response) {
  // One connection per backend per worker thread, kept across
  // requests; a failed forward discards it (reconnect next time).
  thread_local std::map<int, server::KbClient> connections;
  auto it = connections.find(port);
  if (it == connections.end()) {
    server::ClientOptions client_options;
    client_options.timeout_ms = options_.backend_timeout_ms;
    it = connections.emplace(port, server::KbClient(client_options)).first;
  }
  if (!it->second.connected()) {
    Status s = it->second.Connect(port);
    if (!s.ok()) {
      connections.erase(it);
      return s;
    }
  }
  auto result = it->second.Call(request);
  if (result.ok()) {
    *response = result->Dump();
    return Status::OK();
  }
  Status s = result.status();
  if (s.IsUnavailable() || s.IsIOError() || s.IsConnectionClosed()) {
    // Shed, not-leader, stale, a dead socket, or a backend that hung
    // up cleanly: fail over.
    if (!it->second.connected()) connections.erase(it);
    return s;
  }
  // Application-level error (not_found, bad_query, deadline_exceeded):
  // the backend's verdict, passed through for the client to see.
  *response = it->second.last_response().Dump();
  return Status::OK();
}

void Router::HealthLoop() {
  // First sweep immediately: a replica that is down at startup is
  // ejected before it eats fail_threshold client requests.
  for (;;) {
    std::vector<Backend*> due;
    auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (Backend& backend : backends_) {
        if (now >= backend.next_check) due.push_back(&backend);
      }
    }
    for (Backend* backend : due) CheckBackend(backend);
    std::unique_lock<std::mutex> lock(mu_);
    bool stopped = health_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            options_.health_interval_ms),
        [this] { return stopping_; });
    if (stopped) return;
  }
}

void Router::CheckBackend(Backend* backend) {
  auto it = health_conns_.find(backend->port);
  if (it == health_conns_.end()) {
    server::ClientOptions client_options;
    client_options.timeout_ms = options_.backend_timeout_ms;
    it = health_conns_
             .emplace(backend->port, server::KbClient(client_options))
             .first;
  }
  server::KbClient& client = it->second;
  Status status = Status::OK();
  if (!client.connected()) status = client.Connect(backend->port);
  // Placeholder until Health() runs; StatusOr asserts on OK
  // error-statuses, and the connect-failure path below never reads it.
  StatusOr<server::Json> health = Status::Internal("health never ran");
  if (status.ok()) {
    health = client.Health();
    status = health.status();
  }
  if (!status.ok()) client.Close();  // next probe reconnects fresh
  std::lock_guard<std::mutex> lock(state_mu_);
  auto now = std::chrono::steady_clock::now();
  if (status.ok()) {
    backend->consecutive_failures = 0;
    backend->applied_epoch = static_cast<uint64_t>(
        health->GetNumber("applied_epoch", health->GetNumber("epoch", 0)));
    if (backend->is_leader) leader_epoch_ = backend->applied_epoch;
    // A replica restarted from scratch answers health checks long
    // before it holds the data; readmitting it immediately would serve
    // near-empty reads. Keep probing until it has caught up.
    const bool caught_up =
        backend->is_leader ||
        backend->applied_epoch + options_.max_readmit_lag >= leader_epoch_;
    if (!backend->healthy && caught_up) {
      // Probe succeeded on a caught-up backend: restore.
      backend->healthy = true;
      if (!backend->is_leader) {
        ring_.Add(backend->name);
        metrics_->readmissions.Increment();
        KB_LOG(Info) << "router readmitted " << backend->name;
      }
    }
    backend->next_check =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      backend->healthy ? options_.health_interval_ms
                                       : options_.probe_interval_ms));
  } else {
    ++backend->consecutive_failures;
    if (backend->healthy &&
        backend->consecutive_failures >= options_.fail_threshold) {
      // Fail fast: out of the ring until a probe brings it back.
      backend->healthy = false;
      if (!backend->is_leader) {
        ring_.Remove(backend->name);
        metrics_->ejections.Increment();
        KB_LOG(Info) << "router ejected " << backend->name << ": "
                     << status.ToString();
      }
    }
    backend->next_check =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      backend->healthy ? options_.health_interval_ms
                                       : options_.probe_interval_ms));
  }
}

}  // namespace replication
}  // namespace kb
