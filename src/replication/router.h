#ifndef KBFORGE_REPLICATION_ROUTER_H_
#define KBFORGE_REPLICATION_ROUTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "replication/hash_ring.h"
#include "server/event_loop.h"
#include "server/json.h"
#include "server/kb_client.h"
#include "util/metrics_registry.h"
#include "util/retry.h"
#include "util/status.h"

namespace kb {
namespace replication {

/// The replicated tier's front door. Speaks the same length-prefixed
/// JSON protocol as KbServer — over the same epoll event core
/// (server/event_loop.h), so thousands of keep-alive clients can hold
/// pipelined connections to the router — and existing clients and
/// load generators point at it unchanged; behind it:
///
///   - writes (insert_facts) always go to the leader,
///   - reads (query / entity_card) consistent-hash onto the healthy
///     replica pool by request key, so each query shape keeps warming
///     the same replica's result cache,
///   - every forward is wrapped in bounded failover: on a dead, shed,
///     or stale backend the request walks the ring order, then the
///     leader, then (after a jittered RetryPolicy backoff) starts
///     over — an in-flight query outlives the replica serving it,
///   - a health thread drives the fail-fast -> probe -> restore state
///     machine per backend: `fail_threshold` consecutive bad health
///     checks eject a replica from the ring; once ejected it is only
///     probed (every probe_interval_ms) until a probe succeeds, which
///     restores it,
///   - read-your-writes: a request's min_epoch skips replicas whose
///     last health-reported applied epoch lags it (the replica itself
///     re-checks — this is routing, not the guarantee).
///
/// Backend responses pass through verbatim; only transport-level
/// failures (dead socket, overload shed, not_leader, stale_replica)
/// trigger failover instead of reaching the client.
class Router {
 public:
  struct Options {
    int port = 0;                    ///< client-facing; 0 = ephemeral
    int leader_port = 0;             ///< leader KbServer
    std::vector<int> replica_ports;  ///< follower KbServers
    int num_workers = 4;
    size_t queue_depth = 32;
    int io_threads = 2;              ///< epoll I/O threads (front door)
    int backlog = 0;                 ///< listen(2) backlog; <= 0 = SOMAXCONN
    /// Open-connection cap; 0 derives num_workers + queue_depth (the
    /// old thread-per-connection envelope).
    size_t max_connections = 0;
    double idle_timeout_ms = 0;      ///< idle client reaping; 0 = never
    size_t max_pipeline = 128;       ///< per-connection pipelining cap
    int retry_after_ms = 20;         ///< hint on router-level sheds
    double backend_timeout_ms = 1000;
    double health_interval_ms = 50;
    double probe_interval_ms = 100;
    int fail_threshold = 2;
    /// A probed replica is readmitted only once its applied epoch is
    /// within this many epochs of the leader's last-seen epoch, so a
    /// replica restarted from scratch does not serve near-empty reads
    /// while it backfills. 0 = must have fully caught up.
    uint64_t max_readmit_lag = 0;
    int virtual_nodes = 64;
    /// Failover budget across ring walks (RetryOptions semantics).
    RetryOptions failover;
  };

  explicit Router(const Options& options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Status Start();
  void Stop();

  int port() const { return port_; }
  /// Names ("replica:<port>") currently in the read ring.
  std::vector<std::string> healthy_replicas() const;

 private:
  struct Backend {
    std::string name;
    int port = 0;
    bool is_leader = false;
    bool healthy = true;
    int consecutive_failures = 0;
    uint64_t applied_epoch = 0;  ///< from its last good health check
    std::chrono::steady_clock::time_point next_check{};
  };
  struct Metrics;

  /// One parsed frame waiting for (or held by) a worker.
  struct PendingRequest {
    server::ConnRef conn;
    uint64_t seq = 0;
    std::string payload;
  };

  /// I/O-thread handoff: admission-check into the bounded request
  /// queue (shed with the retry hint when full).
  void OnFrame(const server::ConnRef& conn, uint64_t seq,
               std::string payload);
  void WorkerLoop();
  /// Routes one request payload; fills `response` (always).
  void RouteRequest(const std::string& payload, std::string* response);
  /// One forwarding attempt to one backend. OK = `response` is the
  /// backend's verbatim reply (possibly an application error the
  /// client should see); Unavailable/IOError = try another backend.
  Status ForwardOnce(int port, const server::Json& request,
                     std::string* response);
  void HealthLoop();
  void CheckBackend(Backend* backend);
  /// Read-preference order for `key` under `min_epoch` (leader last).
  std::vector<int> ReadOrder(const std::string& key, uint64_t min_epoch);

  Options options_;
  Metrics* metrics_;

  std::unique_ptr<server::EventServer> event_server_;
  int port_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<PendingRequest> reqs_;  ///< parsed, waiting for a worker
  bool stopping_ = false;
  bool started_ = false;

  mutable std::mutex state_mu_;  ///< guards backends_ + ring_
  std::vector<Backend> backends_;
  HashRing ring_;
  uint64_t leader_epoch_ = 0;  ///< from the leader's last good check

  std::condition_variable health_cv_;  ///< cuts health sleeps short
  /// One persistent connection per backend port, health thread only.
  /// Persistent on purpose: a fresh connection per probe would queue
  /// behind the workers' cached forwarding connections on a saturated
  /// backend and time out even though the backend is healthy. (Size
  /// backend worker pools for router workers + 1.)
  std::map<int, server::KbClient> health_conns_;
  RetryPolicy failover_policy_;

  std::thread health_;
  std::vector<std::thread> workers_;
};

}  // namespace replication
}  // namespace kb

#endif  // KBFORGE_REPLICATION_ROUTER_H_
