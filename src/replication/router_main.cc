// kbforge_router: the replicated serving tier's front door.
//
// Clients speak the normal KbServer protocol to the router; it sends
// writes to the leader, consistent-hashes reads across healthy
// follower replicas (with automatic failover and read-your-writes
// epoch routing), and keeps a health thread ejecting and readmitting
// backends.
//
// Usage:
//   kbforge_router --leader-port=N --replicas=P1,P2,...
//                  [--port=N] [--workers=N]
//                  [--io-threads=N] [--backlog=N] [--max-connections=N]
//                  [--idle-timeout-ms=MS] [--max-pipeline=N]
//                  [--health-interval-ms=MS] [--probe-interval-ms=MS]
//                  [--fail-threshold=N] [--backend-timeout-ms=MS]
//
// The router fronts clients with the same epoll event core as the
// server (DESIGN.md §5f): --io-threads loops own the client fds,
// --max-connections sheds excess accepts, --idle-timeout-ms reaps
// silent clients, --max-pipeline bounds per-connection in-flight
// requests.

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "replication/router.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

bool FlagValue(const char* arg, const char* name, long* out) {
  size_t len = ::strlen(name);
  if (::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = ::strtol(arg + len + 1, nullptr, 10);
  return true;
}

bool FlagString(const char* arg, const char* name, std::string* out) {
  size_t len = ::strlen(name);
  if (::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

std::vector<int> ParsePorts(const std::string& csv) {
  std::vector<int> ports;
  size_t start = 0;
  while (start < csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) {
      ports.push_back(::atoi(csv.substr(start, comma - start).c_str()));
    }
    start = comma + 1;
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kb;

  long port = 7490, workers = 4;
  long io_threads = 2, backlog = 0, max_connections = 0;
  long idle_timeout_ms = 0, max_pipeline = 128;
  long health_interval_ms = 50, probe_interval_ms = 100, fail_threshold = 2;
  long backend_timeout_ms = 1000, leader_port = -1;
  std::string replicas_csv;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (FlagValue(argv[i], "--port", &v)) port = v;
    else if (FlagValue(argv[i], "--workers", &v)) workers = v;
    else if (FlagValue(argv[i], "--io-threads", &v)) io_threads = v;
    else if (FlagValue(argv[i], "--backlog", &v)) backlog = v;
    else if (FlagValue(argv[i], "--max-connections", &v)) max_connections = v;
    else if (FlagValue(argv[i], "--idle-timeout-ms", &v)) idle_timeout_ms = v;
    else if (FlagValue(argv[i], "--max-pipeline", &v)) max_pipeline = v;
    else if (FlagValue(argv[i], "--leader-port", &v)) leader_port = v;
    else if (FlagValue(argv[i], "--health-interval-ms", &v)) {
      health_interval_ms = v;
    } else if (FlagValue(argv[i], "--probe-interval-ms", &v)) {
      probe_interval_ms = v;
    } else if (FlagValue(argv[i], "--fail-threshold", &v)) {
      fail_threshold = v;
    } else if (FlagValue(argv[i], "--backend-timeout-ms", &v)) {
      backend_timeout_ms = v;
    } else if (FlagString(argv[i], "--replicas", &replicas_csv)) {
    } else {
      ::fprintf(stderr,
                "usage: %s --leader-port=N --replicas=P1,P2,... [--port=N] "
                "[--workers=N] [--io-threads=N] [--backlog=N] "
                "[--max-connections=N] [--idle-timeout-ms=MS] "
                "[--max-pipeline=N] [--health-interval-ms=MS] "
                "[--probe-interval-ms=MS] [--fail-threshold=N] "
                "[--backend-timeout-ms=MS]\n",
                argv[0]);
      return 2;
    }
  }
  if (leader_port < 0) {
    ::fprintf(stderr, "--leader-port is required\n");
    return 2;
  }

  replication::Router::Options options;
  options.port = static_cast<int>(port);
  options.leader_port = static_cast<int>(leader_port);
  options.replica_ports = ParsePorts(replicas_csv);
  options.num_workers = static_cast<int>(workers);
  options.io_threads = static_cast<int>(io_threads);
  options.backlog = static_cast<int>(backlog);
  options.max_connections = static_cast<size_t>(max_connections);
  options.idle_timeout_ms = static_cast<double>(idle_timeout_ms);
  options.max_pipeline = static_cast<size_t>(max_pipeline);
  options.health_interval_ms = static_cast<double>(health_interval_ms);
  options.probe_interval_ms = static_cast<double>(probe_interval_ms);
  options.fail_threshold = static_cast<int>(fail_threshold);
  options.backend_timeout_ms = static_cast<double>(backend_timeout_ms);
  replication::Router router(options);
  Status status = router.Start();
  if (!status.ok()) {
    ::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  ::printf("router listening on 127.0.0.1:%d (leader %ld, %zu replicas)\n",
           router.port(), leader_port, options.replica_ports.size());
  ::fflush(stdout);

  if (::pipe(g_signal_pipe) != 0) {
    ::fprintf(stderr, "pipe failed\n");
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = OnSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  ::printf("shutting down\n");
  router.Stop();
  return 0;
}
