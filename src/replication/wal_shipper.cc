#include "replication/wal_shipper.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "replication/repl_protocol.h"
#include "server/protocol.h"
#include "util/logging.h"

namespace kb {
namespace replication {

WalShipper::WalShipper(ReplicationLog* log,
                       std::function<uint64_t()> epoch_fn,
                       const Options& options)
    : log_(log), epoch_fn_(std::move(epoch_fn)), options_(options) {}

WalShipper::~WalShipper() { Stop(); }

Status WalShipper::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, SOMAXCONN) < 0) {
    Status s = Status::IOError("bind/listen: " +
                               std::string(::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("pipe: " + std::string(::strerror(errno)));
  }
  stopping_.store(false);
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void WalShipper::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true);
  stop_cv_.notify_all();
  if (wake_pipe_[1] >= 0) {
    char byte = 0;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fd, epoch] : acked_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
  }
  for (std::thread& session : sessions) {
    if (session.joinable()) session.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
}

uint64_t WalShipper::min_acked_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (acked_.empty()) return 0;
  uint64_t min_epoch = UINT64_MAX;
  for (const auto& [fd, epoch] : acked_) {
    min_epoch = std::min(min_epoch, epoch);
  }
  return min_epoch;
}

void WalShipper::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    acked_[fd] = 0;
    sessions_.emplace_back([this, fd] { Session(fd); });
  }
}

void WalShipper::Session(int fd) {
  active_sessions_.fetch_add(1);
  const int num_shards = log_->store()->num_shards();

  std::string payload;
  Handshake handshake;
  Status status = server::ReadFrame(fd, &payload);
  if (status.ok()) status = DecodeHandshake(Slice(payload), &handshake);
  if (status.ok()) {
    // One position per shard; the follower's handshake overlays
    // whatever it already holds (bootstrap sends nothing).
    std::vector<ShardPosition> positions(
        static_cast<size_t>(num_shards));
    for (int i = 0; i < num_shards; ++i) {
      positions[static_cast<size_t>(i)].shard = static_cast<uint32_t>(i);
    }
    for (const ShardPosition& p : handshake.positions) {
      if (p.shard < static_cast<uint32_t>(num_shards)) {
        positions[p.shard] = p;
      }
    }
    Manifest manifest;
    manifest.num_shards = static_cast<uint32_t>(num_shards);
    manifest.leader_epoch = epoch_fn_();
    status = server::WriteFrame(fd, EncodeManifest(manifest));

    while (status.ok() && !stopping_.load()) {
      bool had_backlog = false;
      status = ShipRound(fd, &positions, &had_backlog);
      if (!status.ok()) break;
      status = server::ReadFrame(fd, &payload);
      if (!status.ok()) break;
      Ack ack;
      status = DecodeAck(Slice(payload), &ack);
      if (!status.ok()) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        acked_[fd] = ack.applied_epoch;
      }
      if (!had_backlog) {
        std::unique_lock<std::mutex> lock(mu_);
        stop_cv_.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(
                options_.poll_interval_ms),
            [this] { return stopping_.load(); });
      }
    }
  }
  if (!status.ok() && !stopping_.load()) {
    KB_LOG(Info) << "repl session ended: " << status.ToString();
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(mu_);
    acked_.erase(fd);
  }
  active_sessions_.fetch_sub(1);
}

Status WalShipper::ShipRound(int fd, std::vector<ShardPosition>* positions,
                             bool* had_backlog) {
  DataRound round;
  // Epoch first, files second: every write the epoch counts is already
  // in the log (the pre-insert hook runs before the KB assert), so
  // reaching the observed end of every WAL proves the follower holds
  // all writes <= round.epoch.
  round.epoch = epoch_fn_();
  round.complete = true;
  *had_backlog = false;
  storage::ShardedKVStore* store = log_->store();

  for (ShardPosition& pos : *positions) {
    auto gens = store->WalGenerations(static_cast<int>(pos.shard));
    if (!gens.ok()) return gens.status();
    size_t budget = options_.max_bytes_per_shard;
    for (size_t gi = 0; gi < gens->size(); ++gi) {
      const storage::WalGenerationInfo& gen = (*gens)[gi];
      if (gen.number < pos.gen) continue;
      if (gen.number > pos.gen) {
        // The follower's generation is gone from the manifest only
        // when it was fully shipped and we advanced past it (or the
        // follower bootstrapped at gen 0); start the next one clean.
        pos.gen = gen.number;
        pos.offset = 0;
      }
      if (pos.offset >= gen.size) {
        // Caught up on this generation; hop to the next listed one if
        // it exists (a closed generation never grows again).
        if (gi + 1 < gens->size()) {
          pos.gen = (*gens)[gi + 1].number;
          pos.offset = 0;
        }
        continue;
      }
      if (budget == 0) {
        round.complete = false;
        break;
      }
      uint64_t avail = gen.size - pos.offset;
      uint64_t take = std::min<uint64_t>(avail, budget);
      auto contents =
          store->shard(static_cast<int>(pos.shard))
              ->env()
              ->ReadFileToString(gen.path);
      if (!contents.ok()) return contents.status();
      if (contents->size() < pos.offset) {
        return Status::Internal("wal shrank under the shipper: " + gen.path);
      }
      take = std::min<uint64_t>(take, contents->size() - pos.offset);
      if (take > 0) {
        WalChunk chunk;
        chunk.shard = pos.shard;
        chunk.gen = gen.number;
        chunk.offset = pos.offset;
        chunk.data = contents->substr(static_cast<size_t>(pos.offset),
                                      static_cast<size_t>(take));
        round.chunks.push_back(std::move(chunk));
        pos.offset += take;
        budget -= static_cast<size_t>(take);
        *had_backlog = true;
      }
      if (pos.offset < gen.size) {
        round.complete = false;  // budget (or a short read) stopped us
        break;
      }
      if (gi + 1 < gens->size()) {
        pos.gen = (*gens)[gi + 1].number;
        pos.offset = 0;
      }
    }
  }
  return server::WriteFrame(fd, EncodeDataRound(round));
}

}  // namespace replication
}  // namespace kb
