#ifndef KBFORGE_REPLICATION_WAL_SHIPPER_H_
#define KBFORGE_REPLICATION_WAL_SHIPPER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "replication/repl_log.h"
#include "replication/repl_protocol.h"
#include "util/status.h"

namespace kb {
namespace replication {

/// Leader-side replication endpoint: listens on its own port, serves
/// any number of followers, each on its own session thread. A session
/// reads the follower's Handshake (per-shard WAL positions), answers
/// with a Manifest, then loops:
///
///   1. sample epoch = epoch_fn()            (BEFORE touching files)
///   2. for every shard, read the bytes between the follower's
///      position and the current end of the retained WAL sequence
///      (bounded per round), advance the session's shipped position
///   3. send DataRound{epoch, complete, chunks}; complete means step 2
///      reached the live end of every shard *as observed this round*
///   4. read the follower's Ack (lag observability), sleep, repeat
///
/// The epoch-before-read order is what makes `complete` meaningful:
/// the log is written ahead of the KB (pre-insert hook), so every
/// write counted by the sampled epoch was already in the WALs when
/// they were read.
///
/// Sessions are independent — a slow or dead follower never blocks
/// the others (or the leader's write path; shipping only reads files).
class WalShipper {
 public:
  struct Options {
    int port = 0;  ///< 0 = ephemeral, see port()
    /// Idle sleep between rounds when a follower is caught up.
    double poll_interval_ms = 20;
    /// Byte budget per shard per round; bounds frame sizes so one
    /// giant backlog cannot exceed kMaxFrameBytes.
    size_t max_bytes_per_shard = 1u << 20;
  };

  /// `log` must outlive the shipper. `epoch_fn` reports the leader
  /// KB's current write epoch.
  WalShipper(ReplicationLog* log, std::function<uint64_t()> epoch_fn,
             const Options& options);
  ~WalShipper();

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  Status Start();
  void Stop();

  int port() const { return port_; }
  /// Followers currently in a session.
  int active_followers() const { return active_sessions_.load(); }
  /// Smallest applied epoch acked across live sessions (0 if none).
  uint64_t min_acked_epoch() const;

 private:
  void AcceptLoop();
  void Session(int fd);
  /// One round for one session; `positions` is updated in place.
  /// `had_backlog` reports whether any byte shipped (no sleep then).
  Status ShipRound(int fd, std::vector<ShardPosition>* positions,
                   bool* had_backlog);

  ReplicationLog* log_;
  std::function<uint64_t()> epoch_fn_;
  Options options_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_sessions_{0};

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;  ///< cuts the inter-round sleep short
  std::vector<std::thread> sessions_;
  std::map<int, uint64_t> acked_;  ///< live session fd -> acked epoch
  std::thread acceptor_;
  bool started_ = false;
};

}  // namespace replication
}  // namespace kb

#endif  // KBFORGE_REPLICATION_WAL_SHIPPER_H_
