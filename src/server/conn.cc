#include "server/conn.h"

#include <unistd.h>

#include <utility>

#include "server/event_loop.h"

namespace kb {
namespace server {

Conn::Conn(EventLoop* loop, int fd, uint64_t id)
    : loop_(loop),
      fd_(fd),
      id_(id),
      last_active_(std::chrono::steady_clock::now()) {}

Conn::~Conn() {
  // Normally the owning loop closed the fd in CloseConn/CloseAll; this
  // only fires for a connection that never finished registering.
  if (fd_ >= 0) ::close(fd_);
}

void Conn::Complete(uint64_t seq, std::string response, bool close_after) {
  ConnRef self = shared_from_this();
  loop_->Post(
      [self, seq, body = std::move(response), close_after]() mutable {
        self->loop_->CompleteOnLoop(self.get(), seq, std::move(body),
                                    close_after);
      });
}

}  // namespace server
}  // namespace kb
