#ifndef KBFORGE_SERVER_CONN_H_
#define KBFORGE_SERVER_CONN_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

namespace kb {
namespace server {

class EventLoop;

/// One accepted connection inside an event-driven server core
/// (event_loop.h). All mutable state — the read buffer, the parse
/// cursor, the write queue, the epoll interest set — is owned by the
/// EventLoop thread that accepted the fd and is only ever touched
/// there. The single cross-thread entry point is Complete(), which a
/// worker thread calls when a request finishes; it posts the response
/// back onto the owning loop (wake-eventfd), where it is sequenced and
/// flushed.
///
/// Pipelining contract: every parsed frame is assigned the next
/// sequence number on its connection, responses may complete in any
/// order across worker threads, and the loop flushes them strictly in
/// sequence order — frame i's response always precedes frame i+1's on
/// the wire, however the workers raced. A response may carry
/// close_after, which drops everything parsed after its own frame and
/// closes the connection once the response (and every response before
/// it) has been flushed.
class Conn : public std::enable_shared_from_this<Conn> {
 public:
  Conn(EventLoop* loop, int fd, uint64_t id);
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  EventLoop* loop() const { return loop_; }

  /// Thread-safe: hand the response for frame `seq` back to the owning
  /// loop. With close_after the connection is closed once this
  /// response has been flushed in order (late frames already parsed
  /// behind it are dropped, matching "the stream is unframeable /
  /// shed" semantics). Safe to call after the connection died — the
  /// posted completion is dropped on the floor.
  void Complete(uint64_t seq, std::string response, bool close_after = false);

 private:
  friend class EventLoop;

  EventLoop* loop_;
  int fd_;
  uint64_t id_;
  bool closed_ = false;        ///< fd closed, conn unregistered
  bool read_eof_ = false;      ///< peer half-closed; flush then close
  /// A close_after response exists (possibly still waiting its turn in
  /// ready_): stop reading and parsing, nothing after it matters.
  bool close_pending_ = false;
  /// The close_after response has reached the write queue: close as
  /// soon as the queue drains.
  bool close_after_flush_ = false;
  bool want_write_ = false;    ///< EPOLLOUT currently armed
  bool read_paused_ = false;   ///< pipeline cap hit; EPOLLIN disarmed

  std::string rbuf_;           ///< unconsumed inbound bytes
  size_t rpos_ = 0;            ///< parse cursor into rbuf_

  uint64_t next_seq_ = 0;      ///< seq assigned to the next parsed frame
  uint64_t next_flush_ = 0;    ///< seq whose response flushes next
  /// Responses completed out of order, waiting for their turn.
  std::map<uint64_t, std::pair<std::string, bool>> ready_;

  std::deque<std::string> wq_; ///< framed responses awaiting the wire
  size_t woff_ = 0;            ///< bytes of wq_.front() already written

  std::chrono::steady_clock::time_point last_active_;
};

using ConnRef = std::shared_ptr<Conn>;

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_CONN_H_
