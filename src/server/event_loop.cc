#include "server/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "server/protocol.h"

namespace kb {
namespace server {
namespace {

// epoll_data tags for the two fds that are not connections. Real Conn
// pointers are word-aligned, so they can never collide with these.
constexpr uint64_t kListenTag = 1;
constexpr uint64_t kWakeTag = 2;

std::string FrameOf(const std::string& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::string framed;
  framed.reserve(4 + payload.size());
  framed.push_back(static_cast<char>((len >> 24) & 0xff));
  framed.push_back(static_cast<char>((len >> 16) & 0xff));
  framed.push_back(static_cast<char>((len >> 8) & 0xff));
  framed.push_back(static_cast<char>(len & 0xff));
  framed.append(payload);
  return framed;
}

}  // namespace

EventLoop::EventLoop(const EventServerOptions* options,
                     const EventHooks* hooks, std::atomic<size_t>* open_conns,
                     std::atomic<bool>* draining)
    : options_(options),
      hooks_(hooks),
      open_conns_(open_conns),
      draining_(draining),
      last_sweep_(std::chrono::steady_clock::now()) {}

EventLoop::~EventLoop() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init(int listen_fd) {
  listen_fd_ = listen_fd;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(wake): ") +
                            std::strerror(errno));
  }
  // Every loop registers the shared listen socket EPOLLEXCLUSIVE: the
  // kernel wakes one loop per readiness edge instead of thundering all
  // of them.
  ev = epoll_event{};
  ev.events = EPOLLIN | EPOLLEXCLUSIVE;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(listen): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Start() { thread_ = std::thread([this] { Run(); }); }

void EventLoop::Stop() {
  Post([this] { stop_requested_ = true; });
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    if (stopped_) return;  // fn (and any captured ConnRef) dies here
    posts_.push_back(std::move(fn));
  }
  uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;  // EAGAIN means the counter is already nonzero
}

void EventLoop::Run() {
  int timeout_ms = -1;
  if (options_->idle_timeout_ms > 0) {
    timeout_ms = static_cast<int>(
        std::clamp(options_->idle_timeout_ms / 4.0, 5.0, 500.0));
  }
  epoll_event events[64];
  for (;;) {
    graveyard_.clear();
    int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (options_->epoll_wakeups != nullptr) {
      options_->epoll_wakeups->Increment();
    }
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained;
        ssize_t ignored = ::read(wake_fd_, &drained, sizeof(drained));
        (void)ignored;
        RunPosts();
      } else if (tag == kListenTag) {
        AcceptReady();
      } else {
        HandleConnEvent(static_cast<Conn*>(events[i].data.ptr),
                        events[i].events);
      }
    }
    if (stop_requested_) break;
    SweepIdle();
  }
  CloseAll();
  graveyard_.clear();
  std::lock_guard<std::mutex> lock(post_mu_);
  stopped_ = true;
  posts_.clear();
}

void EventLoop::RunPosts() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posts_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::AcceptReady() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: drained. Anything else (EMFILE, ECONNABORTED, a racing
      // loop won the connection): back off until the next readiness.
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    bool shed = stop_requested_ || draining_->load();
    if (!shed && options_->max_connections > 0) {
      // fetch_add-then-check so two loops racing past the cap cannot
      // both admit.
      if (open_conns_->fetch_add(1) >= options_->max_connections) {
        open_conns_->fetch_sub(1);
        shed = true;
      }
    } else if (!shed) {
      open_conns_->fetch_add(1);
    }
    if (shed) {
      ShedAccept(fd);
      continue;
    }
    if (options_->open_connections != nullptr) {
      options_->open_connections->Add(1);
    }
    auto conn = std::make_shared<Conn>(this, fd, ++next_conn_id_);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      open_conns_->fetch_sub(1);
      if (options_->open_connections != nullptr) {
        options_->open_connections->Add(-1);
      }
      continue;  // conn's destructor closes the fd
    }
    conns_.emplace(fd, std::move(conn));
  }
}

void EventLoop::ShedAccept(int fd) {
  if (options_->sheds != nullptr) options_->sheds->Increment();
  if (!hooks_->shed_response.empty()) {
    // Best effort: tell the peer why before hanging up. If the socket
    // buffer is somehow full we close anyway rather than block.
    std::string framed = FrameOf(hooks_->shed_response);
    ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  }
  ::close(fd);
}

void EventLoop::HandleConnEvent(Conn* conn, uint32_t events) {
  if (conn->closed_) return;  // stale event within this batch
  conn->last_active_ = std::chrono::steady_clock::now();
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    // Flush nothing; the peer is gone or broken.
    CloseConn(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) TryWrite(conn);
  if (conn->closed_) return;
  if ((events & EPOLLIN) != 0) ReadReady(conn);
}

void EventLoop::ReadReady(Conn* conn) {
  char buf[64 * 1024];
  while (!conn->closed_ && !conn->read_eof_ && !conn->close_pending_ &&
         !conn->read_paused_) {
    ssize_t n = ::recv(conn->fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->rbuf_.append(buf, static_cast<size_t>(n));
      ParseFrames(conn);
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
    } else if (n == 0) {
      conn->read_eof_ = true;
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      CloseConn(conn);
      return;
    }
  }
  if (conn->closed_) return;
  if (conn->read_eof_) {
    // Half-close: finish what is in flight, then close. If nothing is
    // in flight and nothing is queued, that is right now.
    if (conn->next_seq_ == conn->next_flush_ && conn->wq_.empty()) {
      CloseConn(conn);
    } else {
      UpdateInterest(conn);
    }
  }
}

void EventLoop::ParseFrames(Conn* conn) {
  while (!conn->closed_ && !conn->close_pending_) {
    size_t avail = conn->rbuf_.size() - conn->rpos_;
    if (avail < 4) break;
    const unsigned char* p = reinterpret_cast<const unsigned char*>(
        conn->rbuf_.data() + conn->rpos_);
    uint32_t len = (static_cast<uint32_t>(p[0]) << 24) |
                   (static_cast<uint32_t>(p[1]) << 16) |
                   (static_cast<uint32_t>(p[2]) << 8) |
                   static_cast<uint32_t>(p[3]);
    if (len > kMaxFrameBytes) {
      // The stream cannot be re-framed past this point; answer (in
      // order, behind anything already in flight) and close.
      uint64_t seq = conn->next_seq_++;
      std::string response;
      if (hooks_->bad_frame_response) {
        response = hooks_->bad_frame_response(
            "frame length " + std::to_string(len) + " exceeds limit " +
            std::to_string(kMaxFrameBytes));
      }
      CompleteOnLoop(conn, seq, std::move(response), /*close_after=*/true);
      break;
    }
    if (avail - 4 < len) break;  // wait for the rest of the payload
    std::string payload = conn->rbuf_.substr(conn->rpos_ + 4, len);
    conn->rpos_ += 4 + static_cast<size_t>(len);
    uint64_t seq = conn->next_seq_++;
    if (seq > conn->next_flush_ && options_->pipelined_frames != nullptr) {
      // An earlier frame is still unanswered: the client pipelined.
      options_->pipelined_frames->Increment();
    }
    if (conn->next_seq_ - conn->next_flush_ >= options_->max_pipeline) {
      conn->read_paused_ = true;
      UpdateInterest(conn);
    }
    hooks_->on_frame(conns_.at(conn->fd_), seq, std::move(payload));
    if (conn->read_paused_) break;
  }
  if (conn->closed_) return;
  // Compact the read buffer once the cursor has consumed everything or
  // has moved far enough that the dead prefix is worth reclaiming.
  if (conn->rpos_ == conn->rbuf_.size()) {
    conn->rbuf_.clear();
    conn->rpos_ = 0;
  } else if (conn->rpos_ >= 4096) {
    conn->rbuf_.erase(0, conn->rpos_);
    conn->rpos_ = 0;
  }
}

void EventLoop::CompleteOnLoop(Conn* conn, uint64_t seq,
                               std::string&& response, bool close_after) {
  if (conn->closed_ || conn->close_after_flush_) return;  // late completion
  if (close_after) conn->close_pending_ = true;
  conn->ready_.emplace(seq,
                       std::make_pair(std::move(response), close_after));
  FlushReady(conn);
}

void EventLoop::FlushReady(Conn* conn) {
  bool queued = false;
  while (!conn->close_after_flush_) {
    auto it = conn->ready_.find(conn->next_flush_);
    if (it == conn->ready_.end()) break;
    conn->wq_.push_back(FrameOf(it->second.first));
    if (it->second.second) {
      // Everything parsed after this frame is void; completions for
      // those seqs get dropped by the close_after_flush_ check above.
      conn->close_after_flush_ = true;
      conn->ready_.clear();
    } else {
      conn->ready_.erase(it);
    }
    ++conn->next_flush_;
    queued = true;
  }
  if (!queued) return;
  conn->last_active_ = std::chrono::steady_clock::now();
  // Un-pause reading once the pipeline has drained below half the cap.
  if (conn->read_paused_ && !conn->close_pending_ && !conn->read_eof_ &&
      conn->next_seq_ - conn->next_flush_ <= options_->max_pipeline / 2) {
    conn->read_paused_ = false;
    UpdateInterest(conn);
    // Bytes may already sit parsed-but-unconsumed in rbuf_; epoll will
    // not re-announce those, so resume parsing directly.
    ParseFrames(conn);
    if (conn->closed_) return;
  }
  TryWrite(conn);
}

void EventLoop::TryWrite(Conn* conn) {
  while (!conn->wq_.empty()) {
    iovec iov[16];
    int cnt = 0;
    size_t off = conn->woff_;
    for (auto it = conn->wq_.begin();
         it != conn->wq_.end() && cnt < 16; ++it) {
      iov[cnt].iov_base = const_cast<char*>(it->data() + off);
      iov[cnt].iov_len = it->size() - off;
      off = 0;
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(cnt);
    ssize_t n = ::sendmsg(conn->fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write_) {
          conn->want_write_ = true;
          UpdateInterest(conn);
        }
        return;
      }
      CloseConn(conn);
      return;
    }
    size_t written = static_cast<size_t>(n);
    while (written > 0) {
      size_t remaining = conn->wq_.front().size() - conn->woff_;
      if (written >= remaining) {
        written -= remaining;
        conn->wq_.pop_front();
        conn->woff_ = 0;
      } else {
        conn->woff_ += written;
        written = 0;
      }
    }
  }
  if (conn->want_write_) {
    conn->want_write_ = false;
    UpdateInterest(conn);
  }
  if (conn->close_after_flush_ ||
      (conn->read_eof_ && conn->next_seq_ == conn->next_flush_)) {
    CloseConn(conn);
  }
}

void EventLoop::UpdateInterest(Conn* conn) {
  epoll_event ev{};
  bool want_read =
      !conn->read_paused_ && !conn->read_eof_ && !conn->close_pending_;
  ev.events = (want_read ? EPOLLIN : 0u) | (conn->want_write_ ? EPOLLOUT : 0u);
  ev.data.ptr = conn;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd_, &ev);
}

void EventLoop::SweepIdle() {
  if (options_->idle_timeout_ms <= 0) return;
  auto now = std::chrono::steady_clock::now();
  double since_ms =
      std::chrono::duration<double, std::milli>(now - last_sweep_).count();
  if (since_ms < options_->idle_timeout_ms / 4.0) return;
  last_sweep_ = now;
  std::vector<Conn*> idle;
  for (auto& [fd, conn] : conns_) {
    if (conn->next_seq_ != conn->next_flush_ || !conn->wq_.empty()) continue;
    double idle_ms = std::chrono::duration<double, std::milli>(
                         now - conn->last_active_)
                         .count();
    if (idle_ms >= options_->idle_timeout_ms) idle.push_back(conn.get());
  }
  for (Conn* conn : idle) {
    if (options_->idle_closed != nullptr) options_->idle_closed->Increment();
    CloseConn(conn);
  }
}

void EventLoop::CloseConn(Conn* conn) {
  if (conn->closed_) return;
  conn->closed_ = true;
  int fd = conn->fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conn->fd_ = -1;
  auto it = conns_.find(fd);
  if (it != conns_.end()) {
    // Keep the Conn alive until this epoll batch ends — later events in
    // the same batch may still point at it.
    graveyard_.push_back(std::move(it->second));
    conns_.erase(it);
  }
  open_conns_->fetch_sub(1);
  if (options_->open_connections != nullptr) {
    options_->open_connections->Add(-1);
  }
}

void EventLoop::CloseAll() {
  while (!conns_.empty()) CloseConn(conns_.begin()->second.get());
}

EventServer::EventServer(const EventServerOptions& options, EventHooks hooks)
    : options_(options), hooks_(std::move(hooks)) {}

EventServer::~EventServer() { Stop(); }

Status EventServer::Start() {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  int backlog = options_.backlog > 0 ? options_.backlog : SOMAXCONN;
  if (::listen(listen_fd_, backlog) != 0) {
    Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  int io_threads = std::max(1, options_.io_threads);
  for (int i = 0; i < io_threads; ++i) {
    auto loop = std::make_unique<EventLoop>(&options_, &hooks_, &open_conns_,
                                            &draining_);
    Status s = loop->Init(listen_fd_);
    if (!s.ok()) {
      for (auto& started : loops_) started->Stop();
      loops_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return s;
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) loop->Start();
  started_ = true;
  return Status::OK();
}

void EventServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& loop : loops_) loop->Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace server
}  // namespace kb
