#ifndef KBFORGE_SERVER_EVENT_LOOP_H_
#define KBFORGE_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/conn.h"
#include "util/metrics_registry.h"
#include "util/status.h"

namespace kb {
namespace server {

/// The shared event-driven server core (DESIGN.md §5f). A small fixed
/// set of I/O threads — each one an epoll EventLoop — owns the listen
/// socket (every loop registers it EPOLLEXCLUSIVE, so the kernel wakes
/// exactly one loop per connection burst) and all accepted connection
/// fds. Loops never execute request logic: they parse length-prefixed
/// frames incrementally out of per-connection read buffers, hand each
/// complete frame to the owner through `on_frame`, and flush completed
/// responses from per-connection write queues with batched writev,
/// falling back to EPOLLOUT when a peer stops draining. Connection
/// count is therefore decoupled from thread count: ten thousand idle
/// keep-alive clients cost ten thousand fds and nothing else.
///
/// The owner (KbServer, the replication Router) supplies the policy:
/// what to do with a frame (typically: admission-check into a bounded
/// worker queue), what an unframeable stream is told, and what a shed
/// connection is told.
struct EventHooks {
  /// A complete frame arrived: per-connection sequence `seq`, raw
  /// payload. Runs on the owning I/O thread and must not block; answer
  /// by calling conn->Complete(seq, response) exactly once, from any
  /// thread.
  std::function<void(const ConnRef& conn, uint64_t seq, std::string payload)>
      on_frame;
  /// Response for a stream that cannot be re-framed (length prefix
  /// over kMaxFrameBytes); flushed in order, then the connection
  /// closes.
  std::function<std::string(const std::string& message)> bad_frame_response;
  /// Envelope written (best-effort, then close) when the connection
  /// cap or draining sheds a fresh accept. Empty = close silently.
  std::string shed_response;
};

struct EventServerOptions {
  int port = 0;       ///< 0 = ephemeral; see EventServer::port()
  int io_threads = 2;
  int backlog = 0;    ///< listen(2) backlog; <= 0 means SOMAXCONN
  /// Accepts past this many open connections are shed with
  /// shed_response instead of blocking accept. 0 = unlimited.
  size_t max_connections = 0;
  /// Connections with no traffic and no request in flight for this
  /// long are closed (idle_closed metric). 0 = never.
  double idle_timeout_ms = 0;
  /// Parsed-but-unanswered frames allowed per connection. At the cap
  /// the loop stops reading that connection (EPOLLIN disarmed) until
  /// responses drain below half — backpressure instead of unbounded
  /// buffering for a client that pipelines faster than workers drain.
  size_t max_pipeline = 128;

  /// Optional instruments (registry-owned; may be null).
  Gauge* open_connections = nullptr;
  Counter* epoll_wakeups = nullptr;
  Counter* pipelined_frames = nullptr;
  Counter* idle_closed = nullptr;
  Counter* sheds = nullptr;
};

class EventLoop {
 public:
  EventLoop(const EventServerOptions* options, const EventHooks* hooks,
            std::atomic<size_t>* open_conns, std::atomic<bool>* draining);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance + wake eventfd and registers
  /// `listen_fd` (EPOLLEXCLUSIVE). Call before Run.
  Status Init(int listen_fd);
  /// Spawns the loop thread.
  void Start();
  /// Posts a stop task, lets the loop close every connection it owns,
  /// and joins the thread. Idempotent.
  void Stop();

  /// Thread-safe: run `fn` on the loop thread. Dropped (with `fn`
  /// destroyed) once the loop has stopped.
  void Post(std::function<void()> fn);

 private:
  friend class Conn;

  void Run();
  void RunPosts();
  void AcceptReady();
  void ShedAccept(int fd);
  void HandleConnEvent(Conn* conn, uint32_t events);
  void ReadReady(Conn* conn);
  void ParseFrames(Conn* conn);
  /// Sequences a completed response; flushes everything now in order.
  void CompleteOnLoop(Conn* conn, uint64_t seq, std::string&& response,
                      bool close_after);
  void FlushReady(Conn* conn);
  void TryWrite(Conn* conn);
  void UpdateInterest(Conn* conn);
  void SweepIdle();
  void CloseConn(Conn* conn);
  void CloseAll();

  const EventServerOptions* options_;
  const EventHooks* hooks_;
  std::atomic<size_t>* open_conns_;
  std::atomic<bool>* draining_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd; Post() and Stop() write it
  int listen_fd_ = -1;
  uint64_t next_conn_id_ = 0;

  std::unordered_map<int, ConnRef> conns_;
  /// Conns closed mid-batch; their memory must outlive the epoll_wait
  /// batch that may still carry events for them (handlers check
  /// closed_). Cleared at the top of every iteration.
  std::vector<ConnRef> graveyard_;
  std::chrono::steady_clock::time_point last_sweep_;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posts_;
  bool stopped_ = false;         ///< guarded by post_mu_; drops Posts
  bool stop_requested_ = false;  ///< loop-thread flag set via Post

  std::thread thread_;
};

/// N EventLoops + one listen socket. See file comment.
class EventServer {
 public:
  EventServer(const EventServerOptions& options, EventHooks hooks);
  ~EventServer();

  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  /// Binds 127.0.0.1:port, listens, spawns the I/O threads.
  Status Start();
  /// Closes the listen socket and every connection, joins the I/O
  /// threads. Idempotent.
  void Stop();

  /// While draining, fresh accepts are shed with shed_response. The
  /// owner decides when established connections close (typically by
  /// completing their next response with close_after).
  void SetDraining(bool draining) { draining_.store(draining); }

  int port() const { return port_; }
  size_t open_connections() const { return open_conns_.load(); }

 private:
  EventServerOptions options_;
  EventHooks hooks_;
  std::atomic<size_t> open_conns_{0};
  std::atomic<bool> draining_{false};

  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<std::unique_ptr<EventLoop>> loops_;
};

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_EVENT_LOOP_H_
