#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace kb {
namespace server {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipSpace() {
    while (!AtEnd()) {
      char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool ConsumeWord(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  Status Error(const char* what) const {
    return Status::InvalidArgument(std::string("json: ") + what +
                                   " at offset " + std::to_string(pos));
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (AtEnd()) return Error("unexpected end of input");
    char c = Peek();
    switch (c) {
      case 'n':
        if (!ConsumeWord("null")) return Error("bad literal");
        *out = Json::Null();
        return Status::OK();
      case 't':
        if (!ConsumeWord("true")) return Error("bad literal");
        *out = Json::Bool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeWord("false")) return Error("bad literal");
        *out = Json::Bool(false);
        return Status::OK();
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseNumber(Json* out) {
    size_t start = pos;
    if (Consume('-')) {
    }
    while (!AtEnd() && (isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                        Peek() == '+' || Peek() == '-')) {
      ++pos;
    }
    if (pos == start) return Error("expected value");
    std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return Error("bad number");
    }
    *out = Json::Number(v);
    return Status::OK();
  }

  Status ParseString(Json* out) {
    std::string s;
    KB_RETURN_IF_ERROR(ParseStringInto(&s));
    *out = Json::Str(std::move(s));
    return Status::OK();
  }

  Status ParseStringInto(std::string* s) {
    if (!Consume('"')) return Error("expected string");
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = text[pos++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("control character in string");
      }
      if (c != '\\') {
        s->push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': s->push_back('"'); break;
        case '\\': s->push_back('\\'); break;
        case '/': s->push_back('/'); break;
        case 'b': s->push_back('\b'); break;
        case 'f': s->push_back('\f'); break;
        case 'n': s->push_back('\n'); break;
        case 'r': s->push_back('\r'); break;
        case 't': s->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are kept
          // as-is per half; good enough for a debugging protocol).
          if (code < 0x80) {
            s->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            s->push_back(static_cast<char>(0xC0 | (code >> 6)));
            s->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            s->push_back(static_cast<char>(0xE0 | (code >> 12)));
            s->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
  }

  Status ParseArray(Json* out, int depth) {
    Consume('[');
    *out = Json::Array();
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json item;
      KB_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->Append(std::move(item));
      SkipSpace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(Json* out, int depth) {
    Consume('{');
    *out = Json::Object();
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      KB_RETURN_IF_ERROR(ParseStringInto(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      Json value;
      KB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }
};

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpInto(const Json& v, std::string* out) {
  switch (v.type()) {
    case Json::Type::kNull:
      *out += "null";
      return;
    case Json::Type::kBool:
      *out += v.as_bool() ? "true" : "false";
      return;
    case Json::Type::kNumber: {
      double d = v.as_number();
      // Integers print without a fraction (ids, counts, ports).
      if (d == std::floor(d) && std::abs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        *out += buf;
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      }
      return;
    }
    case Json::Type::kString:
      EscapeInto(v.as_string(), out);
      return;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpInto(item, out);
      }
      out->push_back(']');
      return;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.fields()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(key, out);
        out->push_back(':');
        DumpInto(value, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

StatusOr<Json> Json::Parse(std::string_view text) {
  Parser parser{text};
  Json value;
  KB_RETURN_IF_ERROR(parser.ParseValue(&value, 0));
  parser.SkipSpace();
  if (!parser.AtEnd()) return parser.Error("trailing garbage");
  return value;
}

const Json& Json::operator[](const std::string& key) const {
  static const Json kNull;
  if (type_ != Type::kObject) return kNull;
  auto it = object_.find(key);
  return it == object_.end() ? kNull : it->second;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json& v = (*this)[key];
  return v.is_string() ? v.as_string() : fallback;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.as_number() : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json& v = (*this)[key];
  return v.is_bool() ? v.as_bool() : fallback;
}

Json& Json::Set(const std::string& key, Json value) {
  if (type_ == Type::kObject) object_[key] = std::move(value);
  return *this;
}

Json& Json::Append(Json value) {
  if (type_ == Type::kArray) array_.push_back(std::move(value));
  return *this;
}

std::string Json::Dump() const {
  std::string out;
  DumpInto(*this, &out);
  return out;
}

}  // namespace server
}  // namespace kb
