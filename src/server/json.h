#ifndef KBFORGE_SERVER_JSON_H_
#define KBFORGE_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace kb {
namespace server {

/// A minimal JSON value for the serving protocol: null, bool, number
/// (double), string, array, object. The parser is strict enough for a
/// network boundary (depth-limited recursion, full escape handling,
/// rejects trailing garbage) and the serializer emits canonical
/// escapes, so fuzzing the framing layer cannot push malformed state
/// past this type.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double v);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  /// Parses one complete JSON document (rejects trailing non-space).
  static StatusOr<Json> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return array_; }
  const std::map<std::string, Json>& fields() const { return object_; }

  /// Object field access; returns a shared null Json when absent or
  /// when this value is not an object (so lookups chain safely).
  const Json& operator[](const std::string& key) const;

  /// Typed field accessors with defaults (missing or wrong type).
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Builder-style mutators (no-ops on the wrong type).
  Json& Set(const std::string& key, Json value);
  Json& Append(Json value);

  /// Serializes compactly (no whitespace).
  std::string Dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_JSON_H_
