#include "server/kb_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cmath>
#include <utility>

#include "server/protocol.h"

namespace kb {
namespace server {

KbClient::KbClient(const ClientOptions& options) : options_(options) {
  if (options_.retry_unavailable) {
    retry_policy_ = std::make_unique<RetryPolicy>(options_.retry);
  }
}

KbClient::~KbClient() { Close(); }

KbClient::KbClient(KbClient&& other) noexcept
    : options_(other.options_),
      retry_policy_(std::move(other.retry_policy_)),
      fd_(other.fd_),
      last_port_(other.last_port_),
      retry_after_ms_(other.retry_after_ms_),
      last_write_epoch_(other.last_write_epoch_),
      last_response_(std::move(other.last_response_)) {
  other.fd_ = -1;
}

KbClient& KbClient::operator=(KbClient&& other) noexcept {
  if (this == &other) return *this;
  Close();
  options_ = other.options_;
  retry_policy_ = std::move(other.retry_policy_);
  fd_ = other.fd_;
  last_port_ = other.last_port_;
  retry_after_ms_ = other.retry_after_ms_;
  last_write_epoch_ = other.last_write_epoch_;
  last_response_ = std::move(other.last_response_);
  other.fd_ = -1;
  return *this;
}

Status KbClient::Connect(int port) {
  Close();
  last_port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError("socket: " + std::string(::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (options_.timeout_ms > 0) {
    // Bounded connect: non-blocking connect + poll, then back to
    // blocking IO under SO_*TIMEO so no later call can hang either.
    int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd_, POLLOUT, 0};
      rc = ::poll(&pfd, 1, static_cast<int>(std::ceil(options_.timeout_ms)));
      if (rc <= 0) {
        Close();
        return Status::IOError("connect timed out");
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        Close();
        return Status::IOError("connect: " + std::string(::strerror(err)));
      }
    } else if (rc < 0) {
      Status s = Status::IOError("connect: " + std::string(::strerror(errno)));
      Close();
      return s;
    }
    ::fcntl(fd_, F_SETFL, flags);
    long usec = static_cast<long>(options_.timeout_ms * 1000);
    timeval timeout{usec / 1000000, usec % 1000000};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) < 0) {
    Status s = Status::IOError("connect: " + std::string(::strerror(errno)));
    Close();
    return s;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void KbClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Json> KbClient::Call(const Json& request) {
  StatusOr<Json> response = CallWithRetry(request);
  if (options_.reconnect_on_close &&
      response.status().IsConnectionClosed() && last_port_ >= 0) {
    // Keep-alive path: the server closed this connection cleanly (idle
    // timeout, drain) — not a failure of the request itself. Reconnect
    // and retry once; a second clean close is surfaced.
    Status connect_status = Connect(last_port_);
    if (!connect_status.ok()) return connect_status;
    response = CallWithRetry(request);
  }
  return response;
}

StatusOr<Json> KbClient::CallWithRetry(const Json& request) {
  if (retry_policy_ == nullptr) return CallOnce(request);
  // Placeholder until the first attempt runs; StatusOr asserts on OK
  // error-statuses, and RetryPolicy::Run always invokes the attempt at
  // least once before returning.
  StatusOr<Json> response = Status::Internal("retry attempt never ran");
  Status status = retry_policy_->Run(
      [&] {
        if (fd_ < 0 && last_port_ >= 0) {
          // The server drops the connection when it sheds; reconnect
          // before the next attempt.
          Status connect_status = Connect(last_port_);
          if (!connect_status.ok()) return connect_status;
        }
        response = CallOnce(request);
        return response.status();
      },
      [](const Status& s) {
        return s.IsUnavailable() || s.IsIOError() || s.IsConnectionClosed();
      },
      [this] { return static_cast<double>(retry_after_ms_); });
  if (!status.ok()) return status;
  return response;
}

StatusOr<Json> KbClient::CallOnce(const Json& request) {
  if (fd_ < 0) return Status::IOError("client not connected");
  retry_after_ms_ = 0;  // hint applies only to the retry right after it
  Status write_status = WriteFrame(fd_, request.Dump());
  // Even when the write fails, read before giving up: a server that
  // shed this connection at admission wrote its overload frame and
  // closed before we ever sent — that frame is sitting in our receive
  // buffer and carries the retry hint.
  std::string payload;
  Status status = ReadFrame(fd_, &payload);
  if (!status.ok()) {
    Close();
    if (status.IsAborted()) {
      // Clean EOF: the server hung up between requests (idle timeout,
      // drain) — even a failed write (EPIPE against the closed socket)
      // means "closed", not "torn".
      return Status::ConnectionClosed("server closed the connection");
    }
    if (!write_status.ok()) return write_status;
    return status;
  }
  auto response = Json::Parse(payload);
  if (!response.ok()) return response.status();
  last_response_ = *response;

  const std::string result = response->GetString("status");
  if (result == "ok") return std::move(*response);
  const std::string error = response->GetString("error");
  const std::string message = response->GetString("message", error);
  if (result == "overloaded" || error == "overloaded") {
    // The server sheds the whole connection on overload, so this fd is
    // dead; reconnect after the hinted backoff.
    retry_after_ms_ =
        static_cast<int>(response->GetNumber("retry_after_ms", 0));
    Close();
    return Status::Unavailable(message.empty() ? "overloaded" : message);
  }
  if (error == "not_leader" || error == "stale_replica") {
    // Replicated-tier routing errors: this endpoint cannot serve the
    // request right now, but a peer (or this one, shortly) can.
    return Status::Unavailable(error + ": " + message);
  }
  if (error == "deadline_exceeded") return Status::DeadlineExceeded(message);
  if (error == "not_found") return Status::NotFound(message);
  if (error == "bad_request" || error == "bad_query" ||
      error == "bad_frame" || error == "unknown_endpoint") {
    return Status::InvalidArgument(error + ": " + message);
  }
  return Status::Internal(error + ": " + message);
}

StatusOr<QueryResult> KbClient::Query(const std::string& sparql,
                                      double deadline_ms, int64_t max_rows,
                                      bool no_cache) {
  Json request = Json::Object();
  request.Set("op", Json::Str("query"));
  request.Set("sparql", Json::Str(sparql));
  if (deadline_ms >= 0) request.Set("deadline_ms", Json::Number(deadline_ms));
  if (max_rows >= 0) {
    request.Set("max_rows", Json::Number(static_cast<double>(max_rows)));
  }
  if (no_cache) request.Set("no_cache", Json::Bool(true));
  if (options_.read_your_writes && last_write_epoch_ > 0) {
    request.Set("min_epoch",
                Json::Number(static_cast<double>(last_write_epoch_)));
  }
  auto response = Call(request);
  if (!response.ok()) return response.status();
  QueryResult result;
  result.cached = response->GetBool("cached");
  result.truncated = response->GetBool("truncated");
  for (const Json& column : (*response)["columns"].items()) {
    result.columns.push_back(column.as_string());
  }
  for (const Json& row : (*response)["rows"].items()) {
    std::vector<std::string> out;
    out.reserve(row.items().size());
    for (const Json& cell : row.items()) {
      // Aggregate count columns come back as JSON numbers (always
      // integral); everything else is a rendered term string.
      if (cell.is_number()) {
        out.push_back(
            std::to_string(static_cast<long long>(cell.as_number())));
      } else {
        out.push_back(cell.as_string());
      }
    }
    result.rows.push_back(std::move(out));
  }
  return result;
}

StatusOr<Json> KbClient::Analytics(const std::string& job, size_t top_k,
                                   bool insert, bool no_cache) {
  Json request = Json::Object();
  request.Set("op", Json::Str("analytics"));
  request.Set("job", Json::Str(job));
  if (top_k > 0) {
    request.Set("top_k", Json::Number(static_cast<double>(top_k)));
  }
  if (insert) request.Set("insert", Json::Bool(true));
  if (no_cache) request.Set("no_cache", Json::Bool(true));
  return Call(request);
}

StatusOr<Json> KbClient::EntityCard(const std::string& entity,
                                    size_t max_facts) {
  Json request = Json::Object();
  request.Set("op", Json::Str("entity_card"));
  request.Set("entity", Json::Str(entity));
  if (max_facts > 0) {
    request.Set("max_facts", Json::Number(static_cast<double>(max_facts)));
  }
  return Call(request);
}

StatusOr<int64_t> KbClient::InsertFacts(const std::vector<WireFact>& facts) {
  Json request = Json::Object();
  request.Set("op", Json::Str("insert_facts"));
  Json array = Json::Array();
  for (const WireFact& fact : facts) {
    Json f = Json::Object();
    f.Set("s", Json::Str(fact.s));
    f.Set("p", Json::Str(fact.p));
    if (fact.has_year) {
      f.Set("year", Json::Number(fact.year));
    } else {
      f.Set("o", Json::Str(fact.o));
    }
    f.Set("confidence", Json::Number(fact.confidence));
    f.Set("support", Json::Number(fact.support));
    array.Append(std::move(f));
  }
  request.Set("facts", std::move(array));
  auto response = Call(request);
  if (!response.ok()) return response.status();
  double epoch = response->GetNumber("epoch", 0);
  if (epoch > 0) last_write_epoch_ = static_cast<uint64_t>(epoch);
  return static_cast<int64_t>(response->GetNumber("inserted"));
}

StatusOr<Json> KbClient::Health() {
  Json request = Json::Object();
  request.Set("op", Json::Str("health"));
  return Call(request);
}

StatusOr<std::string> KbClient::MetricsText() {
  Json request = Json::Object();
  request.Set("op", Json::Str("metrics"));
  auto response = Call(request);
  if (!response.ok()) return response.status();
  return response->GetString("text");
}

}  // namespace server
}  // namespace kb
