#include "server/kb_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "server/protocol.h"

namespace kb {
namespace server {

KbClient::~KbClient() { Close(); }

KbClient::KbClient(KbClient&& other) noexcept
    : fd_(other.fd_),
      retry_after_ms_(other.retry_after_ms_),
      last_response_(std::move(other.last_response_)) {
  other.fd_ = -1;
}

KbClient& KbClient::operator=(KbClient&& other) noexcept {
  if (this == &other) return *this;
  Close();
  fd_ = other.fd_;
  retry_after_ms_ = other.retry_after_ms_;
  last_response_ = std::move(other.last_response_);
  other.fd_ = -1;
  return *this;
}

Status KbClient::Connect(int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError("socket: " + std::string(::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError("connect: " + std::string(::strerror(errno)));
    Close();
    return s;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void KbClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Json> KbClient::Call(const Json& request) {
  if (fd_ < 0) return Status::IOError("client not connected");
  Status write_status = WriteFrame(fd_, request.Dump());
  // Even when the write fails, read before giving up: a server that
  // shed this connection at admission wrote its overload frame and
  // closed before we ever sent — that frame is sitting in our receive
  // buffer and carries the retry hint.
  std::string payload;
  Status status = ReadFrame(fd_, &payload);
  if (!status.ok()) {
    Close();
    if (!write_status.ok()) return write_status;
    if (status.IsAborted()) {
      return Status::IOError("server closed the connection");
    }
    return status;
  }
  auto response = Json::Parse(payload);
  if (!response.ok()) return response.status();
  last_response_ = *response;

  const std::string result = response->GetString("status");
  if (result == "ok") return std::move(*response);
  const std::string error = response->GetString("error");
  const std::string message = response->GetString("message", error);
  if (result == "overloaded" || error == "overloaded") {
    // The server sheds the whole connection on overload, so this fd is
    // dead; reconnect after the hinted backoff.
    retry_after_ms_ =
        static_cast<int>(response->GetNumber("retry_after_ms", 0));
    Close();
    return Status::Unavailable(message.empty() ? "overloaded" : message);
  }
  if (error == "deadline_exceeded") return Status::DeadlineExceeded(message);
  if (error == "not_found") return Status::NotFound(message);
  if (error == "bad_request" || error == "bad_query" ||
      error == "bad_frame" || error == "unknown_endpoint") {
    return Status::InvalidArgument(error + ": " + message);
  }
  return Status::Internal(error + ": " + message);
}

StatusOr<QueryResult> KbClient::Query(const std::string& sparql,
                                      double deadline_ms, int64_t max_rows,
                                      bool no_cache) {
  Json request = Json::Object();
  request.Set("op", Json::Str("query"));
  request.Set("sparql", Json::Str(sparql));
  if (deadline_ms >= 0) request.Set("deadline_ms", Json::Number(deadline_ms));
  if (max_rows >= 0) {
    request.Set("max_rows", Json::Number(static_cast<double>(max_rows)));
  }
  if (no_cache) request.Set("no_cache", Json::Bool(true));
  auto response = Call(request);
  if (!response.ok()) return response.status();
  QueryResult result;
  result.cached = response->GetBool("cached");
  result.truncated = response->GetBool("truncated");
  for (const Json& column : (*response)["columns"].items()) {
    result.columns.push_back(column.as_string());
  }
  for (const Json& row : (*response)["rows"].items()) {
    std::vector<std::string> out;
    out.reserve(row.items().size());
    for (const Json& cell : row.items()) out.push_back(cell.as_string());
    result.rows.push_back(std::move(out));
  }
  return result;
}

StatusOr<Json> KbClient::EntityCard(const std::string& entity,
                                    size_t max_facts) {
  Json request = Json::Object();
  request.Set("op", Json::Str("entity_card"));
  request.Set("entity", Json::Str(entity));
  if (max_facts > 0) {
    request.Set("max_facts", Json::Number(static_cast<double>(max_facts)));
  }
  return Call(request);
}

StatusOr<int64_t> KbClient::InsertFacts(const std::vector<WireFact>& facts) {
  Json request = Json::Object();
  request.Set("op", Json::Str("insert_facts"));
  Json array = Json::Array();
  for (const WireFact& fact : facts) {
    Json f = Json::Object();
    f.Set("s", Json::Str(fact.s));
    f.Set("p", Json::Str(fact.p));
    if (fact.has_year) {
      f.Set("year", Json::Number(fact.year));
    } else {
      f.Set("o", Json::Str(fact.o));
    }
    f.Set("confidence", Json::Number(fact.confidence));
    f.Set("support", Json::Number(fact.support));
    array.Append(std::move(f));
  }
  request.Set("facts", std::move(array));
  auto response = Call(request);
  if (!response.ok()) return response.status();
  return static_cast<int64_t>(response->GetNumber("inserted"));
}

StatusOr<Json> KbClient::Health() {
  Json request = Json::Object();
  request.Set("op", Json::Str("health"));
  return Call(request);
}

StatusOr<std::string> KbClient::MetricsText() {
  Json request = Json::Object();
  request.Set("op", Json::Str("metrics"));
  auto response = Call(request);
  if (!response.ok()) return response.status();
  return response->GetString("text");
}

}  // namespace server
}  // namespace kb
