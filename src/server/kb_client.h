#ifndef KBFORGE_SERVER_KB_CLIENT_H_
#define KBFORGE_SERVER_KB_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/json.h"
#include "server/wire_fact.h"
#include "util/retry.h"
#include "util/statusor.h"

namespace kb {
namespace server {

/// One decoded query result.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;  ///< abbreviated terms
  bool cached = false;     ///< served from the server's result cache
  bool truncated = false;  ///< row cap hit (prefix, not the full result)
};

/// Client behavior knobs. Defaults preserve the bare PR-5 client: no
/// socket timeouts, overload sheds surfaced to the caller immediately.
struct ClientOptions {
  /// Connect/send/receive timeout for every socket operation;
  /// 0 blocks forever. Routers health-checking replicas set this so a
  /// hung backend cannot wedge them.
  double timeout_ms = 0;
  /// Opt-in: instead of surfacing Unavailable (an admission-control
  /// shed or a mid-failover "not_leader"), reconnect and retry with a
  /// bounded, jittered util::RetryPolicy backoff that honors the
  /// server's retry_after_ms hint (the sleep is at least the hint).
  bool retry_unavailable = false;
  /// Attempt/backoff bounds for retry_unavailable.
  RetryOptions retry;
  /// Attach last_write_epoch() to queries as min_epoch, so a
  /// replicated tier never serves this client's reads from a replica
  /// that has not yet applied this client's own writes.
  bool read_your_writes = false;
  /// Opt-in keep-alive: when a call fails with ConnectionClosed (the
  /// server idle-timed the connection out, or closed it cleanly
  /// between requests), reconnect to the last port and retry the call
  /// once instead of surfacing the error. Long-held load-generator
  /// connections use this to survive server-side idle reaping.
  bool reconnect_on_close = false;
};

/// Blocking client for KbServer's length-prefixed JSON protocol. One
/// connection, one outstanding request at a time; not thread-safe —
/// give each load-generator thread its own client.
///
/// Server-side failures come back as the natural Status codes:
/// admission-control sheds map to Unavailable (retry_after_ms() holds
/// the server's hint; with retry_unavailable they are absorbed
/// instead), missed deadlines to DeadlineExceeded, unknown entities to
/// NotFound, bad requests to InvalidArgument, writes sent to a
/// read-only follower to Unavailable ("not_leader"). A connection the
/// server closed cleanly (idle timeout, drain) maps to
/// ConnectionClosed — distinct from IOError's torn reads — so callers
/// (or reconnect_on_close) can treat it as "reconnect and carry on".
class KbClient {
 public:
  KbClient() = default;
  explicit KbClient(const ClientOptions& options);
  ~KbClient();

  KbClient(const KbClient&) = delete;
  KbClient& operator=(const KbClient&) = delete;
  KbClient(KbClient&& other) noexcept;
  KbClient& operator=(KbClient&& other) noexcept;

  /// Connects to 127.0.0.1:port. On Unavailable (the server shed the
  /// connection at admission), retry_after_ms() carries the hint.
  Status Connect(int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One round-trip: sends `request`, decodes the response envelope.
  /// An {"status":"error"...} response is mapped to a Status; the raw
  /// response is still available via last_response(). With
  /// retry_unavailable set, Unavailable responses are retried (after
  /// reconnecting — the server drops the connection when it sheds)
  /// until the retry budget runs out.
  StatusOr<Json> Call(const Json& request);

  StatusOr<QueryResult> Query(const std::string& sparql,
                              double deadline_ms = -1, int64_t max_rows = -1,
                              bool no_cache = false);
  StatusOr<Json> EntityCard(const std::string& entity, size_t max_facts = 0);
  /// Runs a server-side analytics job ("pagerank" or "class_stats").
  /// top_k 0 keeps the server default; insert=true asserts the results
  /// back into the KB as facts. The returned Json is the job summary
  /// (nodes/edges/iterations or entities/classes, plus "top").
  StatusOr<Json> Analytics(const std::string& job, size_t top_k = 0,
                           bool insert = false, bool no_cache = false);
  /// Returns the number of freshly inserted facts.
  StatusOr<int64_t> InsertFacts(const std::vector<WireFact>& facts);
  StatusOr<Json> Health();
  StatusOr<std::string> MetricsText();

  /// Server's backoff hint from the last Unavailable, in ms.
  int retry_after_ms() const { return retry_after_ms_; }
  const Json& last_response() const { return last_response_; }

  /// Leader epoch acknowledged by the most recent successful
  /// InsertFacts (0 before any write). With read_your_writes this is
  /// attached to queries as min_epoch.
  uint64_t last_write_epoch() const { return last_write_epoch_; }

 private:
  /// Call with the retry_unavailable policy applied (no
  /// reconnect-on-close handling).
  StatusOr<Json> CallWithRetry(const Json& request);
  /// One unretried round-trip (the body of Call).
  StatusOr<Json> CallOnce(const Json& request);

  ClientOptions options_;
  /// Lazily built when retry_unavailable is set (RetryPolicy owns a
  /// mutex, so a pointer keeps the client movable).
  std::unique_ptr<RetryPolicy> retry_policy_;
  int fd_ = -1;
  int last_port_ = -1;  ///< reconnect target for retries
  int retry_after_ms_ = 0;
  uint64_t last_write_epoch_ = 0;
  Json last_response_;
};

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_KB_CLIENT_H_
