#ifndef KBFORGE_SERVER_KB_CLIENT_H_
#define KBFORGE_SERVER_KB_CLIENT_H_

#include <string>
#include <vector>

#include "server/json.h"
#include "util/statusor.h"

namespace kb {
namespace server {

/// One decoded query result.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;  ///< abbreviated terms
  bool cached = false;     ///< served from the server's result cache
  bool truncated = false;  ///< row cap hit (prefix, not the full result)
};

/// A fact to insert via the wire protocol. Exactly one of `o` /
/// `has_year` carries the object.
struct WireFact {
  std::string s, p, o;
  bool has_year = false;
  int32_t year = 0;
  double confidence = 1.0;
  uint32_t support = 1;
};

/// Blocking client for KbServer's length-prefixed JSON protocol. One
/// connection, one outstanding request at a time; not thread-safe —
/// give each load-generator thread its own client.
///
/// Server-side failures come back as the natural Status codes:
/// admission-control sheds map to Unavailable (retry_after_ms() holds
/// the server's hint), missed deadlines to DeadlineExceeded, unknown
/// entities to NotFound, bad requests to InvalidArgument.
class KbClient {
 public:
  KbClient() = default;
  ~KbClient();

  KbClient(const KbClient&) = delete;
  KbClient& operator=(const KbClient&) = delete;
  KbClient(KbClient&& other) noexcept;
  KbClient& operator=(KbClient&& other) noexcept;

  /// Connects to 127.0.0.1:port. On Unavailable (the server shed the
  /// connection at admission), retry_after_ms() carries the hint.
  Status Connect(int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One round-trip: sends `request`, decodes the response envelope.
  /// An {"status":"error"...} response is mapped to a Status; the raw
  /// response is still available via last_response().
  StatusOr<Json> Call(const Json& request);

  StatusOr<QueryResult> Query(const std::string& sparql,
                              double deadline_ms = -1, int64_t max_rows = -1,
                              bool no_cache = false);
  StatusOr<Json> EntityCard(const std::string& entity, size_t max_facts = 0);
  /// Returns the number of freshly inserted facts.
  StatusOr<int64_t> InsertFacts(const std::vector<WireFact>& facts);
  StatusOr<Json> Health();
  StatusOr<std::string> MetricsText();

  /// Server's backoff hint from the last Unavailable, in ms.
  int retry_after_ms() const { return retry_after_ms_; }
  const Json& last_response() const { return last_response_; }

 private:
  int fd_ = -1;
  int retry_after_ms_ = 0;
  Json last_response_;
};

}  // namespace server
}  // namespace kb

#endif  // KBFORGE_SERVER_KB_CLIENT_H_
